//! Sharded lock-free counter: one cache-padded cell per shard, relaxed
//! increments, exact totals on merge.

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam_utils::CachePadded;

use crate::{shard_id, SHARDS};

/// A monotone counter whose hot path is a relaxed `fetch_add` on a
/// thread-affine cache-padded cell. [`ShardedCounter::sum`] is exact once
/// the writers' increments have happened-before the read (e.g. after a
/// `join`); while writers are live it is a consistent lower bound.
pub struct ShardedCounter {
    cells: Box<[CachePadded<AtomicU64>]>,
}

impl Default for ShardedCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardedCounter {
    pub fn new() -> Self {
        let cells = (0..SHARDS)
            .map(|_| CachePadded::new(AtomicU64::new(0)))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        ShardedCounter { cells }
    }

    /// Add `n` to this thread's shard.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cells[shard_id()].fetch_add(n, Ordering::Relaxed);
    }

    /// Add one to this thread's shard.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Merge every shard into an exact total.
    pub fn sum(&self) -> u64 {
        self.cells
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for ShardedCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ShardedCounter({})", self.sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_sum_is_exact() {
        let c = ShardedCounter::new();
        for _ in 0..100 {
            c.incr();
        }
        c.add(17);
        assert_eq!(c.sum(), 117);
    }
}
