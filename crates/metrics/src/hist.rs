//! Sharded log-bucketed latency histogram.
//!
//! Same bucketing scheme as the paper-evaluation harness: each power of
//! two of nanoseconds is split into four sub-buckets (≤ ~19% relative
//! quantile error), covering 1ns .. ~18 minutes in 160 buckets. Each
//! shard is a cache-padded bucket array written with relaxed atomics;
//! the snapshotting reader merges shards.

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam_utils::CachePadded;
use serde::{Deserialize, Serialize};

use crate::{shard_id, SHARDS};

const SUB_BITS: u32 = 2;
const SUBS: usize = 1 << SUB_BITS;
const POWERS: usize = 40;
const BUCKETS: usize = POWERS * SUBS;

#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUBS as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as u64;
    let power = msb.min(POWERS as u64 - 1);
    let sub = (v >> (power - SUB_BITS as u64)) & (SUBS as u64 - 1);
    (power as usize) * SUBS + sub as usize
}

/// Upper bound of bucket `b` (the value reported for quantiles that land
/// in it).
#[inline]
fn bucket_value(b: usize) -> u64 {
    if b < 2 * SUBS {
        // Buckets below `2 * SUBS` are 1:1 (those in `[SUBS, 2*SUBS)`
        // are never produced by `bucket_of`, which jumps straight from
        // the literal region to power ≥ SUB_BITS).
        return b as u64;
    }
    if b >= BUCKETS - 1 {
        // The final bucket absorbs everything past the covered range.
        return u64::MAX;
    }
    let power = (b / SUBS) as u64;
    let sub = (b % SUBS) as u64 + 1;
    (1u64 << power) + (sub << (power - SUB_BITS as u64)) - 1
}

struct Shard {
    buckets: [AtomicU64; BUCKETS],
    max: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            max: AtomicU64::new(0),
        }
    }
}

/// A concurrent log-bucketed histogram of nanosecond latencies.
pub struct LatencyHistogram {
    shards: Box<[CachePadded<Shard>]>,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        let shards = (0..SHARDS)
            .map(|_| CachePadded::new(Shard::new()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        LatencyHistogram { shards }
    }

    /// Record one sample (nanoseconds) into this thread's shard.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        let shard = &self.shards[shard_id()];
        shard.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        shard.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Record a [`std::time::Duration`] sample.
    #[inline]
    pub fn record(&self, d: std::time::Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Total number of recorded samples (exact after writers quiesce).
    pub fn count(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                s.buckets
                    .iter()
                    .map(|b| b.load(Ordering::Relaxed))
                    .sum::<u64>()
            })
            .sum()
    }

    /// Merge all shards into a [`HistogramSnapshot`].
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut merged = [0u64; BUCKETS];
        let mut max = 0u64;
        for s in self.shards.iter() {
            for (m, b) in merged.iter_mut().zip(s.buckets.iter()) {
                *m += b.load(Ordering::Relaxed);
            }
            max = max.max(s.max.load(Ordering::Relaxed));
        }
        let count: u64 = merged.iter().sum();
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((count as f64) * q).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for (b, &n) in merged.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    return bucket_value(b).min(max);
                }
            }
            max
        };
        // Approximate mean from bucket upper bounds (≤ ~19% high).
        let mean = if count == 0 {
            0.0
        } else {
            merged
                .iter()
                .enumerate()
                .map(|(b, &n)| (bucket_value(b).min(max) as f64) * n as f64)
                .sum::<f64>()
                / count as f64
        };
        HistogramSnapshot {
            count,
            mean_ns: mean,
            p50_ns: quantile(0.50),
            p90_ns: quantile(0.90),
            p99_ns: quantile(0.99),
            p999_ns: quantile(0.999),
            max_ns: max,
        }
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LatencyHistogram(count={})", self.count())
    }
}

/// Merged percentile view of a [`LatencyHistogram`]. All latencies in
/// nanoseconds; quantiles are bucket upper bounds (≤ ~19% relative
/// error), clamped to the exact observed max.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub mean_ns: f64,
    pub p50_ns: u64,
    pub p90_ns: u64,
    pub p99_ns: u64,
    pub p999_ns: u64,
    pub max_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone() {
        let mut prev = 0;
        for v in [0u64, 1, 3, 4, 5, 8, 100, 1_000, 1 << 20, u64::MAX >> 2] {
            let b = bucket_of(v);
            assert!(b >= prev || v < 4, "bucket order at {v}");
            assert!(bucket_value(b) >= v, "upper bound at {v}: {}", bucket_value(b));
            prev = b;
        }
    }

    #[test]
    fn quantiles_bound_samples() {
        let h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record_ns(i * 1000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert!(s.p50_ns >= 500_000 && s.p50_ns <= 650_000, "{}", s.p50_ns);
        assert!(s.p99_ns >= 990_000, "{}", s.p99_ns);
        assert_eq!(s.max_ns, 1_000_000);
        assert!(s.p999_ns <= s.max_ns);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let s = LatencyHistogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.max_ns, 0);
        assert_eq!(s.p99_ns, 0);
    }
}
