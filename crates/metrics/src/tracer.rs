//! The checkpoint phase tracer.
//!
//! One checkpoint at a time walks REST→PREPARE→IN-PROGRESS→
//! (WAIT-PENDING)→WAIT-FLUSH→REST. The engine's coordinator calls
//! [`PhaseTracer::begin`] when it leaves REST, [`PhaseTracer::mark`] at
//! every later transition, and [`PhaseTracer::end`] when the system is
//! back at REST (committed or aborted). The tracer turns the marks into
//! a [`CheckpointTimeline`] — time spent in each phase, the watchdog's
//! proxy-advance / eviction counts, and the slowest session observed
//! blocking a transition — kept in a bounded ring of recent checkpoints.
//!
//! Checkpoints are rare (milliseconds apart at their fastest), so a
//! `Mutex` is fine here; only [`PhaseTracer::note_blocker`] is callable
//! from hot refresh paths and that is a single relaxed store.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// How many finished checkpoint timelines are retained.
const RING: usize = 64;

struct ActiveTrace {
    version: u64,
    kind: String,
    started: Instant,
    /// `(phase label, offset-from-start seconds)` per transition entered.
    marks: Vec<(String, f64)>,
}

#[derive(Default)]
struct TracerInner {
    active: Option<ActiveTrace>,
    finished: VecDeque<CheckpointTimeline>,
}

/// Records per-checkpoint phase timelines. Disabled instances ignore all
/// calls.
pub struct PhaseTracer {
    enabled: bool,
    inner: Mutex<TracerInner>,
    /// guid + 1 of the most recently observed straggler; 0 = none.
    last_blocker: AtomicU64,
}

impl PhaseTracer {
    pub fn new(enabled: bool) -> Self {
        PhaseTracer {
            enabled,
            inner: Mutex::new(TracerInner::default()),
            last_blocker: AtomicU64::new(0),
        }
    }

    /// Start tracing checkpoint `version` (the coordinator just left
    /// REST for PREPARE). `kind` labels the checkpoint flavor
    /// (`"fold-over"`, `"snapshot"`, `"cpr"`, `"calc"`, …). If a trace
    /// for an earlier version is still open (the engine aborted without
    /// reaching its end hook), it is finalized as uncommitted.
    pub fn begin(&self, version: u64, kind: &str) {
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.lock();
        if let Some(stale) = inner.active.take() {
            let tl = finalize(stale, false, 0, 0, 0, None);
            push(&mut inner.finished, tl);
        }
        inner.active = Some(ActiveTrace {
            version,
            kind: kind.to_string(),
            started: Instant::now(),
            marks: vec![("prepare".to_string(), 0.0)],
        });
        self.last_blocker.store(0, Ordering::Relaxed);
    }

    /// Record that checkpoint `version` entered `phase` now. Ignored if
    /// no matching trace is open.
    pub fn mark(&self, version: u64, phase: &str) {
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.lock();
        if let Some(t) = inner.active.as_mut() {
            if t.version == version {
                let off = t.started.elapsed().as_secs_f64();
                t.marks.push((phase.to_string(), off));
            }
        }
    }

    /// Note a session observed blocking the in-flight transition (called
    /// from trigger-condition evaluation; one relaxed store). The last
    /// session noted before a transition fires is, to first order, the
    /// slowest one.
    #[inline]
    pub fn note_blocker(&self, guid: u64) {
        if self.enabled {
            self.last_blocker.store(guid + 1, Ordering::Relaxed);
        }
    }

    /// Finish the trace for `version`: the system is back at REST.
    /// `committed` is false for aborted/timed-out checkpoints; the
    /// remaining counts come from the engine's watchdog outcome.
    pub fn end(
        &self,
        version: u64,
        committed: bool,
        attempts: u64,
        proxy_advanced: u64,
        evicted: u64,
    ) {
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.lock();
        let Some(t) = inner.active.take() else { return };
        if t.version != version {
            inner.active = Some(t);
            return;
        }
        let slowest = match self.last_blocker.swap(0, Ordering::Relaxed) {
            0 => None,
            g => Some(g - 1),
        };
        let tl = finalize(t, committed, attempts, proxy_advanced, evicted, slowest);
        push(&mut inner.finished, tl);
    }

    /// Clone of the retained timelines, oldest first.
    pub fn timelines(&self) -> Vec<CheckpointTimeline> {
        self.inner.lock().finished.iter().cloned().collect()
    }
}

fn push(ring: &mut VecDeque<CheckpointTimeline>, tl: CheckpointTimeline) {
    if ring.len() == RING {
        ring.pop_front();
    }
    ring.push_back(tl);
}

fn finalize(
    t: ActiveTrace,
    committed: bool,
    attempts: u64,
    proxy_advanced: u64,
    evicted: u64,
    slowest_session: Option<u64>,
) -> CheckpointTimeline {
    let total = t.started.elapsed().as_secs_f64();
    let mut phases = Vec::with_capacity(t.marks.len());
    for (i, (phase, enter)) in t.marks.iter().enumerate() {
        let exit = t.marks.get(i + 1).map_or(total, |(_, off)| *off);
        phases.push(PhaseSpan {
            phase: phase.clone(),
            enter_secs: *enter,
            secs: (exit - enter).max(0.0),
        });
    }
    CheckpointTimeline {
        version: t.version,
        kind: t.kind,
        committed,
        total_secs: total,
        phases,
        attempts,
        proxy_advanced,
        evicted,
        slowest_session,
    }
}

impl std::fmt::Debug for PhaseTracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("PhaseTracer")
            .field("enabled", &self.enabled)
            .field("active", &inner.active.as_ref().map(|t| t.version))
            .field("finished", &inner.finished.len())
            .finish()
    }
}

/// Time spent in one phase of one checkpoint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseSpan {
    /// Phase label (`"prepare"`, `"in-progress"`, `"wait-pending"`,
    /// `"wait-flush"`).
    pub phase: String,
    /// Offset from the checkpoint's start, seconds.
    pub enter_secs: f64,
    /// Time spent in the phase, seconds.
    pub secs: f64,
}

/// One checkpoint's complete REST→…→REST walk.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CheckpointTimeline {
    /// The CPR version this checkpoint attempted to commit.
    pub version: u64,
    /// Checkpoint flavor label.
    pub kind: String,
    /// False for aborted / timed-out attempts.
    pub committed: bool,
    /// Wall-clock from leaving REST to returning to REST, seconds.
    pub total_secs: f64,
    /// Per-phase spans, in transition order starting at `"prepare"`.
    pub phases: Vec<PhaseSpan>,
    /// Commit attempts recorded by the watchdog (0 when liveness
    /// tracking is off or the engine does not report it).
    pub attempts: u64,
    /// Sessions the watchdog proxy-advanced during this checkpoint.
    pub proxy_advanced: u64,
    /// Sessions the watchdog evicted during this checkpoint.
    pub evicted: u64,
    /// Guid of the last session observed blocking a phase transition —
    /// to first order, the slowest session.
    pub slowest_session: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_walk_yields_complete_timeline() {
        let t = PhaseTracer::new(true);
        t.begin(1, "fold-over");
        t.note_blocker(42);
        t.mark(1, "in-progress");
        t.mark(1, "wait-flush");
        t.end(1, true, 1, 2, 3);
        let tls = t.timelines();
        assert_eq!(tls.len(), 1);
        let tl = &tls[0];
        assert_eq!(tl.version, 1);
        assert!(tl.committed);
        assert_eq!(tl.attempts, 1);
        assert_eq!(tl.proxy_advanced, 2);
        assert_eq!(tl.evicted, 3);
        assert_eq!(tl.slowest_session, Some(42));
        let names: Vec<&str> = tl.phases.iter().map(|p| p.phase.as_str()).collect();
        assert_eq!(names, ["prepare", "in-progress", "wait-flush"]);
        let span_sum: f64 = tl.phases.iter().map(|p| p.secs).sum();
        assert!((span_sum - tl.total_secs).abs() < 1e-6);
    }

    #[test]
    fn stale_trace_is_finalized_as_uncommitted() {
        let t = PhaseTracer::new(true);
        t.begin(1, "cpr");
        t.begin(2, "cpr");
        t.end(2, true, 0, 0, 0);
        let tls = t.timelines();
        assert_eq!(tls.len(), 2);
        assert!(!tls[0].committed);
        assert!(tls[1].committed);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = PhaseTracer::new(false);
        t.begin(1, "cpr");
        t.mark(1, "in-progress");
        t.end(1, true, 0, 0, 0);
        assert!(t.timelines().is_empty());
    }
}
