//! The metrics registry: one fixed-layout bundle of counters,
//! histograms, and the phase tracer, shared by every layer of an engine.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::counter::ShardedCounter;
use crate::hist::{HistogramSnapshot, LatencyHistogram};
use crate::tracer::{CheckpointTimeline, PhaseTracer};

/// Session/operation metrics.
struct OpMetrics {
    committed: ShardedCounter,
    aborted: ShardedCounter,
    reads: ShardedCounter,
    writes: ShardedCounter,
    /// Latency of successfully committed operations / transactions.
    commit_latency: LatencyHistogram,
}

/// Epoch-subsystem metrics.
struct EpochMetrics {
    bumps: ShardedCounter,
    drained: ShardedCounter,
    /// Latency from `bump_epoch` to the trigger action firing.
    bump_to_drain: LatencyHistogram,
    max_drain_depth: AtomicU64,
}

/// Storage-subsystem metrics.
struct StorageMetrics {
    bytes_written: ShardedCounter,
    writes: ShardedCounter,
    syncs: ShardedCounter,
    /// Latency from write issue to durable completion (and sync calls).
    flush_latency: LatencyHistogram,
    queue_depth: AtomicI64,
    max_queue_depth: AtomicU64,
}

/// The shared metrics sink. Engines hold one `Arc<Registry>` and pass
/// clones to their epoch manager, storage device, sessions, and
/// checkpoint coordinator. A [`Registry::noop`] instance (the default)
/// turns every record method into a single-branch no-op.
pub struct Registry {
    enabled: bool,
    ops: OpMetrics,
    /// Checkpoint phase tracer (public: engines drive begin/mark/end).
    pub checkpoints: PhaseTracer,
    epoch: EpochMetrics,
    storage: StorageMetrics,
    /// One-shot named phase durations (recovery stages, bulk flushes).
    phase_timings: Mutex<Vec<PhaseTiming>>,
}

impl Registry {
    fn build(enabled: bool) -> Arc<Registry> {
        Arc::new(Registry {
            enabled,
            ops: OpMetrics {
                committed: ShardedCounter::new(),
                aborted: ShardedCounter::new(),
                reads: ShardedCounter::new(),
                writes: ShardedCounter::new(),
                commit_latency: LatencyHistogram::new(),
            },
            checkpoints: PhaseTracer::new(enabled),
            epoch: EpochMetrics {
                bumps: ShardedCounter::new(),
                drained: ShardedCounter::new(),
                bump_to_drain: LatencyHistogram::new(),
                max_drain_depth: AtomicU64::new(0),
            },
            storage: StorageMetrics {
                bytes_written: ShardedCounter::new(),
                writes: ShardedCounter::new(),
                syncs: ShardedCounter::new(),
                flush_latency: LatencyHistogram::new(),
                queue_depth: AtomicI64::new(0),
                max_queue_depth: AtomicU64::new(0),
            },
            phase_timings: Mutex::new(Vec::new()),
        })
    }

    /// A collecting registry.
    pub fn new() -> Arc<Registry> {
        Registry::build(true)
    }

    /// A disabled registry: every record method is a single-branch
    /// no-op. This is what engines default to.
    pub fn noop() -> Arc<Registry> {
        Registry::build(false)
    }

    /// Whether collection is on. Callers should gate `Instant::now()`
    /// reads on this so a disabled registry costs no timer syscalls.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    // ---- operation hot path -------------------------------------------------

    /// A transaction / operation committed, with its observed latency.
    #[inline]
    pub fn record_commit(&self, latency: Duration, reads: u64, writes: u64) {
        if !self.enabled {
            return;
        }
        self.ops.committed.incr();
        self.ops.reads.add(reads);
        self.ops.writes.add(writes);
        self.ops.commit_latency.record(latency);
    }

    /// A transaction / operation aborted.
    #[inline]
    pub fn record_abort(&self) {
        if self.enabled {
            self.ops.aborted.incr();
        }
    }

    // ---- epoch subsystem ----------------------------------------------------

    /// An epoch bump scheduled a trigger action; `depth` is the drain
    /// list's length after the push.
    #[inline]
    pub fn epoch_bump(&self, depth: u64) {
        if !self.enabled {
            return;
        }
        self.epoch.bumps.incr();
        self.epoch.max_drain_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// A trigger action fired `latency` after its bump.
    #[inline]
    pub fn epoch_drained(&self, latency: Duration) {
        if !self.enabled {
            return;
        }
        self.epoch.drained.incr();
        self.epoch.bump_to_drain.record(latency);
    }

    // ---- storage subsystem --------------------------------------------------

    /// A write of `bytes` was issued to the device.
    #[inline]
    pub fn storage_write_issued(&self, bytes: u64) {
        if !self.enabled {
            return;
        }
        self.storage.writes.incr();
        self.storage.bytes_written.add(bytes);
        let depth = self.storage.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.storage
            .max_queue_depth
            .fetch_max(depth.max(0) as u64, Ordering::Relaxed);
    }

    /// A previously issued write completed (durably or with an error)
    /// `latency` after issue.
    #[inline]
    pub fn storage_write_done(&self, latency: Duration) {
        if !self.enabled {
            return;
        }
        self.storage.queue_depth.fetch_sub(1, Ordering::Relaxed);
        self.storage.flush_latency.record(latency);
    }

    /// A device sync completed in `latency`.
    #[inline]
    pub fn storage_sync(&self, latency: Duration) {
        if !self.enabled {
            return;
        }
        self.storage.syncs.incr();
        self.storage.flush_latency.record(latency);
    }

    // ---- one-shot phase timings ---------------------------------------------

    /// Record one named coarse-grained phase (e.g. `recovery.scan`,
    /// `flush.fold-over`) with the worker parallelism it ran at.
    /// Cold-path only: recovery and checkpoint-flush stages, never
    /// per-operation.
    #[inline]
    pub fn record_phase(&self, name: &str, threads: usize, elapsed: Duration) {
        if !self.enabled {
            return;
        }
        self.phase_timings.lock().push(PhaseTiming {
            name: name.to_string(),
            threads,
            millis: elapsed.as_secs_f64() * 1e3,
        });
    }

    // ---- snapshot -----------------------------------------------------------

    /// Merge everything into a serializable report. Cheap enough to call
    /// periodically; exact once writers have quiesced.
    pub fn snapshot(&self) -> MetricsReport {
        MetricsReport {
            enabled: self.enabled,
            ops: OpsReport {
                committed: self.ops.committed.sum(),
                aborted: self.ops.aborted.sum(),
                reads: self.ops.reads.sum(),
                writes: self.ops.writes.sum(),
                commit_latency: self.ops.commit_latency.snapshot(),
            },
            checkpoints: self.checkpoints.timelines(),
            epoch: EpochReport {
                bumps: self.epoch.bumps.sum(),
                drained: self.epoch.drained.sum(),
                max_drain_depth: self.epoch.max_drain_depth.load(Ordering::Relaxed),
                bump_to_drain: self.epoch.bump_to_drain.snapshot(),
            },
            storage: StorageReport {
                bytes_written: self.storage.bytes_written.sum(),
                writes: self.storage.writes.sum(),
                syncs: self.storage.syncs.sum(),
                max_queue_depth: self.storage.max_queue_depth.load(Ordering::Relaxed),
                flush_latency: self.storage.flush_latency.snapshot(),
                faults_injected: 0,
            },
            phase_timings: self.phase_timings.lock().clone(),
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("enabled", &self.enabled)
            .finish_non_exhaustive()
    }
}

/// Serializable merge of a [`Registry`] — what
/// `MemDb::metrics_snapshot()` / `FasterKv::metrics_snapshot()` return
/// and what `cpr-bench --metrics-out` writes to disk.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricsReport {
    pub enabled: bool,
    pub ops: OpsReport,
    /// Recent checkpoint timelines, oldest first (bounded ring).
    pub checkpoints: Vec<CheckpointTimeline>,
    pub epoch: EpochReport,
    pub storage: StorageReport,
    /// Coarse recovery/flush stage durations, in record order.
    pub phase_timings: Vec<PhaseTiming>,
}

/// One named recovery/flush stage: how long it took and at what worker
/// parallelism it ran.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseTiming {
    pub name: String,
    pub threads: usize,
    pub millis: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OpsReport {
    pub committed: u64,
    pub aborted: u64,
    pub reads: u64,
    pub writes: u64,
    pub commit_latency: HistogramSnapshot,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochReport {
    pub bumps: u64,
    pub drained: u64,
    pub max_drain_depth: u64,
    pub bump_to_drain: HistogramSnapshot,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StorageReport {
    pub bytes_written: u64,
    pub writes: u64,
    pub syncs: u64,
    pub max_queue_depth: u64,
    pub flush_latency: HistogramSnapshot,
    /// Filled in by engines that share a fault injector with the store.
    pub faults_injected: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_registry_stays_empty() {
        let r = Registry::noop();
        r.record_commit(Duration::from_micros(5), 3, 1);
        r.record_abort();
        r.epoch_bump(4);
        r.epoch_drained(Duration::from_micros(1));
        r.storage_write_issued(4096);
        r.storage_write_done(Duration::from_micros(9));
        let s = r.snapshot();
        assert!(!s.enabled);
        assert_eq!(s.ops.committed, 0);
        assert_eq!(s.epoch.bumps, 0);
        assert_eq!(s.storage.bytes_written, 0);
    }

    #[test]
    fn report_serializes_to_json() {
        let r = Registry::new();
        r.record_commit(Duration::from_micros(5), 3, 1);
        r.checkpoints.begin(1, "cpr");
        r.checkpoints.mark(1, "in-progress");
        r.checkpoints.end(1, true, 1, 0, 0);
        r.record_phase("recovery.scan", 4, Duration::from_millis(12));
        let json = serde_json::to_string_pretty(&r.snapshot()).unwrap();
        assert!(json.contains("\"commit_latency\""), "{json}");
        assert!(json.contains("\"in-progress\""), "{json}");
        assert!(json.contains("\"recovery.scan\""), "{json}");
        let back: MetricsReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.ops.committed, 1);
        assert_eq!(back.checkpoints.len(), 1);
        assert_eq!(back.phase_timings.len(), 1);
        assert_eq!(back.phase_timings[0].threads, 4);
    }

    #[test]
    fn phase_timings_round_trip() {
        let r = Registry::new();
        r.record_phase("flush.snapshot", 2, Duration::from_millis(7));
        let json = serde_json::to_string(&r.snapshot()).unwrap();
        let back: MetricsReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.phase_timings.len(), 1);
        assert_eq!(back.phase_timings[0].name, "flush.snapshot");
        assert!(back.phase_timings[0].millis >= 7.0);
    }
}
