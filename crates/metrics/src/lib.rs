//! # cpr-metrics — low-overhead observability for the CPR engines
//!
//! The paper's evaluation (Sec. 7, Appendix E) is a story about *where
//! time goes*: commit-latency distributions, per-phase checkpoint
//! durations, epoch-drain stalls, I/O flush tails. This crate provides
//! the shared instrumentation plumbing that makes those measurable
//! without perturbing the hot paths being measured:
//!
//! * [`ShardedCounter`] — cache-padded per-shard cells with relaxed
//!   increments; exact totals on [`ShardedCounter::sum`].
//! * [`LatencyHistogram`] — log-bucketed (4 sub-buckets per power of
//!   two), sharded the same way; merged into percentile estimates on
//!   snapshot.
//! * [`PhaseTracer`] — records each checkpoint's timestamped walk
//!   through REST→PREPARE→IN-PROGRESS→(WAIT-PENDING)→WAIT-FLUSH→REST and
//!   emits per-checkpoint [`CheckpointTimeline`]s (time-in-phase,
//!   slowest observed session, proxy-advance / eviction counts from the
//!   watchdog).
//! * [`Registry`] — one fixed-layout bundle of the above, shared via
//!   `Arc` by every layer of an engine (epoch manager, storage device,
//!   session hot path, checkpoint coordinator). [`Registry::snapshot`]
//!   merges everything into one serializable [`MetricsReport`].
//!
//! ## Overhead discipline
//!
//! Engines default to [`Registry::noop`]: every record method
//! early-returns on a single predictable branch (`enabled == false`),
//! and — by convention — callers gate their `Instant::now()` reads on
//! [`Registry::is_enabled`] so a disabled registry costs neither timer
//! syscalls nor shared-cache-line traffic. When enabled, writers touch
//! only their own cache-padded shard with relaxed atomics; all merging
//! cost is paid by the (rare) snapshotting reader.
//!
//! This crate deliberately depends on no other `cpr-*` crate, so every
//! layer (including `cpr-epoch`, which `cpr-core` itself depends on) can
//! take an `Arc<Registry>` without a dependency cycle. Phase names cross
//! the boundary as plain strings.

mod counter;
mod hist;
mod registry;
mod tracer;

pub use counter::ShardedCounter;
pub use hist::{HistogramSnapshot, LatencyHistogram};
pub use registry::{
    EpochReport, MetricsReport, OpsReport, PhaseTiming, Registry, StorageReport,
};
pub use tracer::{CheckpointTimeline, PhaseSpan, PhaseTracer};

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of cache-padded shards used by counters and histograms. A
/// power of two so the thread-id fold is a mask, sized to cover typical
/// laptop/server core counts without wasting cache on idle shards.
pub(crate) const SHARDS: usize = 16;

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SHARD_ID: usize =
        NEXT_SHARD.fetch_add(1, Ordering::Relaxed) & (SHARDS - 1);
}

/// This thread's stable shard index in `[0, SHARDS)`.
#[inline]
pub(crate) fn shard_id() -> usize {
    SHARD_ID.with(|s| *s)
}
