//! Concurrent-snapshot consistency: N writer threads hammer the
//! registry while a reader snapshots mid-flight; after join the totals
//! must be exact.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cpr_metrics::Registry;

const WRITERS: usize = 8;
const OPS_PER_WRITER: u64 = 20_000;

#[test]
fn totals_are_exact_after_join() {
    let reg = Registry::new();
    let stop = Arc::new(AtomicBool::new(false));

    // Snapshotting reader: totals it sees mid-flight must never exceed
    // the true final totals and must be internally consistent.
    let reader = {
        let reg = Arc::clone(&reg);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut snaps = 0u64;
            // Snapshot fields are read without mutual atomicity, so
            // cross-field inequalities (e.g. latency count vs committed)
            // only hold after join; mid-flight each counter is bounded
            // by its true final total — overshoot means double-counting.
            let total = WRITERS as u64 * OPS_PER_WRITER;
            while !stop.load(Ordering::Acquire) {
                let s = reg.snapshot();
                assert!(s.ops.committed <= total);
                assert!(s.ops.commit_latency.count <= total);
                assert!(s.ops.reads <= 3 * total);
                snaps += 1;
            }
            snaps
        })
    };

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let reg = Arc::clone(&reg);
            std::thread::spawn(move || {
                for i in 0..OPS_PER_WRITER {
                    reg.record_commit(Duration::from_nanos(100 + i % 1000), 3, 1);
                    if i % 10 == w as u64 % 10 {
                        reg.record_abort();
                    }
                    reg.epoch_bump(i % 7);
                    reg.epoch_drained(Duration::from_nanos(50));
                    reg.storage_write_issued(64);
                    reg.storage_write_done(Duration::from_nanos(200));
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Release);
    let snaps = reader.join().unwrap();
    assert!(snaps > 0, "reader never snapshotted");

    let total = WRITERS as u64 * OPS_PER_WRITER;
    let s = reg.snapshot();
    assert_eq!(s.ops.committed, total);
    assert_eq!(s.ops.aborted, total / 10);
    assert_eq!(s.ops.reads, total * 3);
    assert_eq!(s.ops.writes, total);
    assert_eq!(s.ops.commit_latency.count, total);
    assert_eq!(s.epoch.bumps, total);
    assert_eq!(s.epoch.drained, total);
    assert_eq!(s.epoch.bump_to_drain.count, total);
    assert_eq!(s.epoch.max_drain_depth, 6);
    assert_eq!(s.storage.writes, total);
    assert_eq!(s.storage.bytes_written, total * 64);
    assert_eq!(s.storage.flush_latency.count, total);
    assert!(s.storage.max_queue_depth >= 1);
    assert!(s.ops.commit_latency.p50_ns >= 100);
    assert!(s.ops.commit_latency.max_ns <= 1100);
}
