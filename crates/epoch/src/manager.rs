//! The epoch manager: current epoch, per-thread epoch table, safe epoch,
//! and drain-list processing.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam_utils::CachePadded;
use parking_lot::Mutex;

use crate::drain::{Action, Condition, DrainEntry};

/// Slot value meaning "unregistered". Real epochs start at 1.
const FREE: u64 = 0;

/// Slot value meaning "registered, but the owner is presumed dead or
/// parked": the slot no longer pins the safe epoch, yet stays claimed so
/// a new registrant cannot reuse it while the owner might still wake.
///
/// Transitions: `epoch → STALE` only via [`EpochManager::release_stale`]
/// (watchdog, any thread); `STALE → epoch` only via the owner's plain
/// refresh store (resurrection — the owner was merely parked);
/// `STALE → FREE` only via the owner's guard drop or its thread-exit
/// sentinel (the owner can never store again). [`EpochManager::register`]
/// claims only `FREE` slots, so a stale slot is never handed to a second
/// thread.
const STALE: u64 = u64::MAX;

/// Shared epoch state for a group of cooperating threads.
///
/// One instance is shared (via `Arc`) by all threads of a store/database.
/// See the crate docs for the protocol.
pub struct EpochManager {
    /// The current epoch `E`. Starts at 1; only ever incremented.
    current: CachePadded<AtomicU64>,
    /// Cached maximal safe epoch `Es`. Invariant: `Es < E_T <= E` for every
    /// registered thread `T` (paper Sec. 3). Monotonically non-decreasing.
    safe: CachePadded<AtomicU64>,
    /// One cache line per thread slot; `FREE` marks an unoccupied slot.
    table: Box<[CachePadded<AtomicU64>]>,
    /// Pending trigger actions. The `len` mirror lets `refresh` skip the
    /// lock entirely in the (overwhelmingly common) empty case.
    drain: Mutex<Vec<DrainEntry>>,
    drain_len: AtomicUsize,
    /// Optional metrics sink (bump-to-drain latency, drain-list depth).
    /// Consulted only on `bump_epoch` and when a trigger actually fires —
    /// never on the empty-drain hot path.
    metrics: Mutex<Option<Arc<cpr_metrics::Registry>>>,
}

impl EpochManager {
    /// Create a manager with room for `max_threads` concurrently registered
    /// threads.
    pub fn new(max_threads: usize) -> Self {
        assert!(max_threads > 0, "need at least one thread slot");
        let table = (0..max_threads)
            .map(|_| CachePadded::new(AtomicU64::new(FREE)))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        EpochManager {
            current: CachePadded::new(AtomicU64::new(1)),
            safe: CachePadded::new(AtomicU64::new(0)),
            table,
            drain: Mutex::new(Vec::new()),
            drain_len: AtomicUsize::new(0),
            metrics: Mutex::new(None),
        }
    }

    /// Attach a metrics registry. Typically called once by the owning
    /// engine right after construction; a disabled registry keeps every
    /// instrumentation point a no-op.
    pub fn set_metrics(&self, metrics: Arc<cpr_metrics::Registry>) {
        *self.metrics.lock() = Some(metrics);
    }

    /// The current epoch `E`.
    #[inline]
    pub fn current(&self) -> u64 {
        self.current.load(Ordering::Acquire)
    }

    /// The cached maximal safe epoch `Es` (may lag the true value until the
    /// next refresh).
    #[inline]
    pub fn safe(&self) -> u64 {
        self.safe.load(Ordering::Acquire)
    }

    /// Number of currently registered threads.
    pub fn registered(&self) -> usize {
        self.table
            .iter()
            .filter(|s| s.load(Ordering::Relaxed) != FREE)
            .count()
    }

    /// Capacity of the epoch table.
    pub fn capacity(&self) -> usize {
        self.table.len()
    }

    /// Reserve a slot in the epoch table (paper: *Acquire*).
    ///
    /// # Panics
    /// Panics if all slots are taken.
    pub fn register(self: &Arc<Self>) -> Guard {
        for (i, slot) in self.table.iter().enumerate() {
            let e = self.current();
            if slot
                .compare_exchange(FREE, e, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return Guard {
                    mgr: Arc::clone(self),
                    slot: i,
                    exit_flag: None,
                };
            }
        }
        panic!(
            "epoch table exhausted: {} slots all registered",
            self.table.len()
        );
    }

    /// Recompute the maximal safe epoch by scanning the table, update the
    /// cache, and return it. With no registered threads every epoch below
    /// the current one is safe.
    pub fn compute_safe(&self) -> u64 {
        let mut min_local = u64::MAX;
        for slot in self.table.iter() {
            let e = slot.load(Ordering::Acquire);
            // FREE slots have no owner; STALE slots belong to a thread the
            // watchdog declared dead or parked — neither pins safety.
            if e != FREE && e != STALE && e < min_local {
                min_local = e;
            }
        }
        let safe = if min_local == u64::MAX {
            // Nobody registered: everything strictly below `current` is safe.
            self.current().saturating_sub(1)
        } else {
            min_local - 1
        };
        // Monotone update; concurrent updaters may race but only ever
        // publish values that were true at the time they were computed.
        self.safe.fetch_max(safe, Ordering::AcqRel);
        self.safe()
    }

    /// Increment the current epoch and schedule `action` to run once the
    /// pre-bump epoch is safe and `cond` (if any) holds. Returns the new
    /// current epoch.
    pub fn bump_epoch(&self, cond: Option<Condition>, action: Action) -> u64 {
        let metrics = self.metrics.lock().clone();
        let created = metrics
            .as_ref()
            .is_some_and(|m| m.is_enabled())
            .then(std::time::Instant::now);
        // Reserve the entry *before* publishing the bump so a racing
        // drain cannot miss it: the entry's trigger epoch is the pre-bump
        // current epoch, which cannot be safe until every thread refreshes
        // past it — and `drain_len` is already visible by then.
        let mut drain = self.drain.lock();
        let e = self.current.fetch_add(1, Ordering::AcqRel);
        drain.push(DrainEntry {
            epoch: e,
            cond,
            action,
            created,
        });
        let depth = drain.len();
        self.drain_len.store(depth, Ordering::Release);
        drop(drain);
        if let Some(m) = metrics {
            m.epoch_bump(depth as u64);
        }
        e + 1
    }

    /// Run every ready trigger action. Called from [`Guard::refresh`]; also
    /// callable directly (e.g. by a coordinator with no guard of its own).
    pub fn try_drain(&self) {
        if self.drain_len.load(Ordering::Acquire) == 0 {
            return;
        }
        let safe = self.compute_safe();
        let ready: Vec<(Action, Option<std::time::Instant>)> = {
            let mut drain = self.drain.lock();
            let mut ready = Vec::new();
            let mut i = 0;
            while i < drain.len() {
                if drain[i].ready(safe) {
                    let entry = drain.swap_remove(i);
                    ready.push((entry.action, entry.created));
                } else {
                    i += 1;
                }
            }
            self.drain_len.store(drain.len(), Ordering::Release);
            ready
        };
        if !ready.is_empty() {
            if let Some(m) = self.metrics.lock().clone() {
                for (_, created) in &ready {
                    if let Some(t) = created {
                        m.epoch_drained(t.elapsed());
                    }
                }
            }
        }
        // Run outside the lock: actions are allowed to bump the epoch and
        // schedule further actions.
        for (action, _) in ready {
            action();
        }
    }

    /// Number of pending (not yet fired) trigger actions.
    pub fn pending_actions(&self) -> usize {
        self.drain_len.load(Ordering::Acquire)
    }

    /// Mark `slot` stale on behalf of a thread presumed dead or parked:
    /// its pinned epoch stops holding back the safe epoch, but the slot
    /// stays claimed (only the owner can free or resurrect it). Returns
    /// `true` if the slot was live and is now stale; idempotently `true`
    /// if already stale; `false` for a free slot.
    ///
    /// Safe to call from any thread, racing the owner: if the owner's
    /// refresh store wins, the slot is simply live again (it *was* awake),
    /// and the caller's next scan re-stales it if warranted.
    pub fn release_stale(&self, slot: usize) -> bool {
        let s = &self.table[slot];
        loop {
            let cur = s.load(Ordering::Acquire);
            match cur {
                FREE => return false,
                STALE => return true,
                e => {
                    if s.compare_exchange(e, STALE, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        // The departure may have made epochs safe.
                        self.try_drain();
                        return true;
                    }
                }
            }
        }
    }

    /// Number of slots currently marked stale.
    pub fn stale(&self) -> usize {
        self.table
            .iter()
            .filter(|s| s.load(Ordering::Relaxed) == STALE)
            .count()
    }
}

// ---- thread-exit reclamation ------------------------------------------------

use std::cell::RefCell;
use std::sync::atomic::AtomicBool;
use std::sync::Weak;

struct ExitSentinel {
    mgr: Weak<EpochManager>,
    slot: usize,
    /// Cleared by the guard's normal drop; the sentinel only acts if the
    /// guard was leaked (so the slot can never be a reused one).
    armed: Arc<AtomicBool>,
}

struct SentinelList(RefCell<Vec<ExitSentinel>>);

impl Drop for SentinelList {
    fn drop(&mut self) {
        for s in self.0.borrow_mut().drain(..) {
            if s.armed.load(Ordering::Acquire) {
                if let Some(mgr) = s.mgr.upgrade() {
                    // The owner thread is exiting: it can never store to
                    // this slot again, so FREE (not STALE) is safe and the
                    // slot returns to the pool.
                    mgr.table[s.slot].store(FREE, Ordering::Release);
                    mgr.try_drain();
                }
            }
        }
    }
}

thread_local! {
    static EXIT_SENTINELS: SentinelList = const { SentinelList(RefCell::new(Vec::new())) };
}

impl std::fmt::Debug for EpochManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochManager")
            .field("current", &self.current())
            .field("safe", &self.safe())
            .field("registered", &self.registered())
            .field("pending_actions", &self.pending_actions())
            .finish()
    }
}

/// A registered thread's handle to the epoch table (paper: the thread-local
/// epoch `E_T`). Dropping the guard releases the slot (paper: *Release*).
pub struct Guard {
    mgr: Arc<EpochManager>,
    slot: usize,
    exit_flag: Option<Arc<AtomicBool>>,
}

impl Guard {
    /// Publish the thread's local epoch (paper: *Refresh*): set `E_T = E`,
    /// recompute `Es` when needed, and fire any ready trigger actions.
    #[inline]
    pub fn refresh(&self) {
        let e = self.mgr.current();
        self.mgr.table[self.slot].store(e, Ordering::Release);
        self.mgr.try_drain();
    }

    /// This thread's published local epoch.
    #[inline]
    pub fn local(&self) -> u64 {
        self.mgr.table[self.slot].load(Ordering::Acquire)
    }

    /// Schedule `action` to run once all threads have refreshed past the
    /// current epoch (paper: *BumpEpoch(action)*).
    pub fn bump_epoch(&self, action: impl FnOnce() + Send + 'static) -> u64 {
        self.mgr.bump_epoch(None, Box::new(action))
    }

    /// Schedule `action` to run once all threads have refreshed past the
    /// current epoch **and** `cond` holds (paper: *BumpEpoch(cond, action)*).
    pub fn bump_epoch_with(
        &self,
        cond: impl Fn() -> bool + Send + Sync + 'static,
        action: impl FnOnce() + Send + 'static,
    ) -> u64 {
        self.mgr.bump_epoch(Some(Box::new(cond)), Box::new(action))
    }

    /// The shared manager.
    pub fn manager(&self) -> &Arc<EpochManager> {
        &self.mgr
    }

    /// This guard's slot index in the epoch table.
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Arm a thread-exit sentinel on the *calling* thread: if the thread
    /// exits while this guard is still alive (leaked, or the session
    /// object was never dropped), the slot is freed at thread teardown so
    /// a dead thread's pinned epoch cannot pin `safe` forever. A normal
    /// guard drop disarms the sentinel first, so a reused slot is never
    /// stomped.
    pub fn arm_exit_sentinel(&mut self) {
        if self.exit_flag.is_some() {
            return;
        }
        let flag = Arc::new(AtomicBool::new(true));
        EXIT_SENTINELS.with(|l| {
            l.0.borrow_mut().push(ExitSentinel {
                mgr: Arc::downgrade(&self.mgr),
                slot: self.slot,
                armed: Arc::clone(&flag),
            });
        });
        self.exit_flag = Some(flag);
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        if let Some(flag) = &self.exit_flag {
            flag.store(false, Ordering::Release);
        }
        self.mgr.table[self.slot].store(FREE, Ordering::Release);
        // Our departure may have made epochs safe.
        self.mgr.try_drain();
    }
}
