//! The drain list: pending ⟨epoch, cond, action⟩ trigger actions.

/// A one-shot global action, run after its epoch becomes safe.
pub type Action = Box<dyn FnOnce() + Send>;

/// A condition over shared state that must additionally hold before the
/// action fires (e.g. "all sessions have published phase ≥ PREPARE").
pub type Condition = Box<dyn Fn() -> bool + Send + Sync>;

pub(crate) struct DrainEntry {
    /// The epoch that must become safe before the action may fire. This is
    /// the value of the current epoch *before* the bump that scheduled it.
    pub epoch: u64,
    pub cond: Option<Condition>,
    pub action: Action,
    /// Bump timestamp, stamped only when metrics are enabled, so
    /// [`crate::EpochManager::try_drain`] can report bump-to-drain
    /// latency.
    pub created: Option<std::time::Instant>,
}

impl DrainEntry {
    pub fn ready(&self, safe_epoch: u64) -> bool {
        self.epoch <= safe_epoch && self.cond.as_ref().is_none_or(|c| c())
    }
}
