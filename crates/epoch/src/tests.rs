use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

use crate::EpochManager;

#[test]
fn register_release_reuses_slots() {
    let mgr = Arc::new(EpochManager::new(2));
    let g1 = mgr.register();
    let g2 = mgr.register();
    assert_eq!(mgr.registered(), 2);
    let s1 = g1.slot();
    drop(g1);
    assert_eq!(mgr.registered(), 1);
    let g3 = mgr.register();
    assert_eq!(g3.slot(), s1, "freed slot should be reused");
    drop(g2);
    drop(g3);
    assert_eq!(mgr.registered(), 0);
}

#[test]
#[should_panic(expected = "epoch table exhausted")]
fn register_panics_when_full() {
    let mgr = Arc::new(EpochManager::new(1));
    let _g = mgr.register();
    let _g2 = mgr.register();
}

#[test]
fn current_epoch_starts_at_one_and_bumps() {
    let mgr = Arc::new(EpochManager::new(4));
    assert_eq!(mgr.current(), 1);
    let g = mgr.register();
    assert_eq!(g.bump_epoch(|| {}), 2);
    assert_eq!(mgr.current(), 2);
}

#[test]
fn safe_epoch_tracks_slowest_thread() {
    let mgr = Arc::new(EpochManager::new(4));
    let g1 = mgr.register();
    let g2 = mgr.register();
    g1.bump_epoch(|| {});
    g1.refresh(); // g1 at 2, g2 still at 1
    assert_eq!(mgr.compute_safe(), 0, "g2 pins epoch 1");
    g2.refresh();
    assert_eq!(mgr.compute_safe(), 1, "both past epoch 1 now");
    drop(g1);
    drop(g2);
}

#[test]
fn action_fires_exactly_once_when_safe() {
    let mgr = Arc::new(EpochManager::new(4));
    let g1 = mgr.register();
    let g2 = mgr.register();
    let count = Arc::new(AtomicUsize::new(0));
    let c = count.clone();
    g1.bump_epoch(move || {
        c.fetch_add(1, Ordering::SeqCst);
    });
    g1.refresh();
    assert_eq!(count.load(Ordering::SeqCst), 0, "g2 has not refreshed");
    g2.refresh();
    assert_eq!(count.load(Ordering::SeqCst), 1);
    g1.refresh();
    g2.refresh();
    assert_eq!(count.load(Ordering::SeqCst), 1, "must not re-fire");
}

#[test]
fn conditional_action_waits_for_condition() {
    let mgr = Arc::new(EpochManager::new(4));
    let g = mgr.register();
    let flag = Arc::new(AtomicBool::new(false));
    let fired = Arc::new(AtomicBool::new(false));
    let (fl, fi) = (flag.clone(), fired.clone());
    g.bump_epoch_with(
        move || fl.load(Ordering::SeqCst),
        move || fi.store(true, Ordering::SeqCst),
    );
    g.refresh();
    assert!(!fired.load(Ordering::SeqCst), "epoch safe but cond false");
    flag.store(true, Ordering::SeqCst);
    g.refresh();
    assert!(fired.load(Ordering::SeqCst));
}

#[test]
fn dropping_last_guard_drains_pending_actions() {
    let mgr = Arc::new(EpochManager::new(4));
    let g = mgr.register();
    let fired = Arc::new(AtomicBool::new(false));
    let f = fired.clone();
    g.bump_epoch(move || f.store(true, Ordering::SeqCst));
    assert_eq!(mgr.pending_actions(), 1);
    drop(g); // release must not strand the action
    assert!(fired.load(Ordering::SeqCst));
    assert_eq!(mgr.pending_actions(), 0);
}

#[test]
fn action_can_bump_again_reentrantly() {
    let mgr = Arc::new(EpochManager::new(4));
    let g = mgr.register();
    let stage = Arc::new(AtomicUsize::new(0));
    let s1 = stage.clone();
    let mgr2 = Arc::clone(&mgr);
    g.bump_epoch(move || {
        s1.store(1, Ordering::SeqCst);
        let s2 = s1.clone();
        mgr2.bump_epoch(
            None,
            Box::new(move || {
                s2.store(2, Ordering::SeqCst);
            }),
        );
    });
    g.refresh();
    assert_eq!(stage.load(Ordering::SeqCst), 1);
    g.refresh();
    assert_eq!(stage.load(Ordering::SeqCst), 2);
}

#[test]
fn chained_actions_fire_in_epoch_order() {
    let mgr = Arc::new(EpochManager::new(4));
    let g = mgr.register();
    let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
    for i in 0..4u64 {
        let o = order.clone();
        g.bump_epoch(move || o.lock().push(i));
        g.refresh();
    }
    assert_eq!(*order.lock(), vec![0, 1, 2, 3]);
}

#[test]
fn concurrent_refresh_fires_every_action_once() {
    const THREADS: usize = 8;
    const BUMPS: usize = 50;
    let mgr = Arc::new(EpochManager::new(THREADS + 1));
    let fired = Arc::new(AtomicUsize::new(0));
    let stop = Arc::new(AtomicBool::new(false));

    let workers: Vec<_> = (0..THREADS)
        .map(|_| {
            let mgr = Arc::clone(&mgr);
            let stop = stop.clone();
            thread::spawn(move || {
                let g = mgr.register();
                while !stop.load(Ordering::Relaxed) {
                    g.refresh();
                    std::hint::spin_loop();
                }
            })
        })
        .collect();

    let g = mgr.register();
    for _ in 0..BUMPS {
        let f = fired.clone();
        g.bump_epoch(move || {
            f.fetch_add(1, Ordering::SeqCst);
        });
        g.refresh();
        // Give workers a chance to publish.
        while mgr.pending_actions() > 2 {
            g.refresh();
            thread::yield_now();
        }
    }
    // Drain the tail.
    while mgr.pending_actions() > 0 {
        g.refresh();
        thread::yield_now();
    }
    stop.store(true, Ordering::SeqCst);
    for w in workers {
        w.join().unwrap();
    }
    assert_eq!(fired.load(Ordering::SeqCst), BUMPS);
}

#[test]
fn safe_epoch_is_monotone_under_concurrency() {
    const THREADS: usize = 4;
    let mgr = Arc::new(EpochManager::new(THREADS));
    let stop = Arc::new(AtomicBool::new(false));
    let max_seen = Arc::new(AtomicU64::new(0));

    let workers: Vec<_> = (0..THREADS)
        .map(|_| {
            let mgr = Arc::clone(&mgr);
            let stop = stop.clone();
            let max_seen = max_seen.clone();
            thread::spawn(move || {
                let g = mgr.register();
                for _ in 0..2000 {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    g.bump_epoch(|| {});
                    g.refresh();
                    let s = mgr.safe();
                    let prev = max_seen.fetch_max(s, Ordering::SeqCst);
                    assert!(
                        s >= prev.min(s),
                        "safe epoch regressed: saw {s} after {prev}"
                    );
                    let cur = mgr.current();
                    assert!(s < cur, "invariant Es < E violated: {s} >= {cur}");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::SeqCst);
}

#[test]
fn release_stale_unpins_safe_epoch() {
    let mgr = Arc::new(EpochManager::new(4));
    let g1 = mgr.register();
    let g2 = mgr.register(); // the "parked" thread: never refreshes again
    g2.refresh();
    g1.bump_epoch(|| {});
    g1.refresh();
    assert_eq!(mgr.compute_safe(), 0, "g2 pins epoch 1");
    assert!(mgr.release_stale(g2.slot()));
    assert!(mgr.release_stale(g2.slot()), "idempotent on stale");
    assert_eq!(mgr.compute_safe(), 1, "stale slot no longer pins");
    assert_eq!(mgr.stale(), 1);
    drop(g2);
    assert_eq!(mgr.stale(), 0, "owner drop frees a stale slot");
    drop(g1);
}

#[test]
fn release_stale_fires_blocked_actions() {
    let mgr = Arc::new(EpochManager::new(4));
    let g1 = mgr.register();
    let parked = mgr.register();
    let fired = Arc::new(AtomicBool::new(false));
    let f = fired.clone();
    g1.bump_epoch(move || f.store(true, Ordering::SeqCst));
    g1.refresh();
    assert!(!fired.load(Ordering::SeqCst), "parked guard blocks the drain");
    mgr.release_stale(parked.slot());
    g1.refresh();
    assert!(fired.load(Ordering::SeqCst));
    drop(parked);
    drop(g1);
}

#[test]
fn stale_slot_is_not_reused_and_owner_resurrects() {
    let mgr = Arc::new(EpochManager::new(2));
    let parked = mgr.register();
    mgr.release_stale(parked.slot());
    let other = mgr.register();
    assert_ne!(other.slot(), parked.slot(), "stale slot must stay claimed");
    // The owner was merely parked: its next refresh resurrects the slot.
    parked.refresh();
    assert_eq!(mgr.stale(), 0);
    assert_eq!(parked.local(), mgr.current());
    // And it pins the safe epoch again.
    other.bump_epoch(|| {});
    other.refresh();
    assert!(mgr.compute_safe() < parked.local());
    drop(parked);
    drop(other);
}

#[test]
fn release_stale_on_free_slot_is_noop() {
    let mgr = Arc::new(EpochManager::new(2));
    assert!(!mgr.release_stale(0));
    let g = mgr.register();
    let s = g.slot();
    drop(g);
    assert!(!mgr.release_stale(s));
}

#[test]
fn exit_sentinel_frees_slot_of_dead_thread() {
    let mgr = Arc::new(EpochManager::new(2));
    let g1 = mgr.register();
    let mgr2 = Arc::clone(&mgr);
    thread::spawn(move || {
        let mut g = mgr2.register();
        g.arm_exit_sentinel();
        g.refresh();
        // Simulate a client that dies without tearing down its session:
        // the guard is leaked, so only the sentinel can free the slot.
        std::mem::forget(g);
    })
    .join()
    .unwrap();
    assert_eq!(mgr.registered(), 1, "dead thread's slot was reclaimed");
    // The freed slot no longer pins the safe epoch.
    g1.bump_epoch(|| {});
    g1.refresh();
    assert_eq!(mgr.safe(), mgr.current() - 1);
    drop(g1);
}

#[test]
fn exit_sentinel_disarms_on_normal_drop() {
    let mgr = Arc::new(EpochManager::new(1));
    let mgr2 = Arc::clone(&mgr);
    thread::spawn(move || {
        let mut g = mgr2.register();
        g.arm_exit_sentinel();
        g.refresh();
        drop(g);
        // The slot is free: a new registrant (same thread) may claim it.
        // The disarmed sentinel must not stomp the new owner at exit.
        let g2 = mgr2.register();
        g2.refresh();
        std::mem::forget(g2); // intentionally leaked, but NOT armed
    })
    .join()
    .unwrap();
    // The leaked unarmed guard still holds the slot (leak = still owner).
    assert_eq!(mgr.registered(), 1);
}

#[test]
fn local_epoch_visible_after_refresh() {
    let mgr = Arc::new(EpochManager::new(2));
    let g = mgr.register();
    g.bump_epoch(|| {});
    g.bump_epoch(|| {});
    assert!(g.local() < mgr.current());
    g.refresh();
    assert_eq!(g.local(), mgr.current());
}
