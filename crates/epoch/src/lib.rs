//! Epoch protection framework (CPR paper, Sec. 3).
//!
//! Threads register with an [`EpochManager`] and obtain a [`Guard`]. Each
//! guard owns one slot of a shared *epoch table*, holding that thread's
//! local view of the *current epoch* `E`. A thread performs its work without
//! synchronization and periodically calls [`Guard::refresh`] to publish its
//! local epoch.
//!
//! An epoch `c` is *safe* once every registered thread has a local epoch
//! strictly greater than `c`. Arbitrary global *trigger actions* can be
//! scheduled with [`Guard::bump_epoch`] / [`Guard::bump_epoch_with`]: the
//! action runs (exactly once, on whichever thread drains it) after the epoch
//! at which it was scheduled becomes safe **and** its optional condition on
//! shared state holds. This is the ⟨epoch, cond, action⟩ drain list of the
//! paper, and is the loose-coordination building block used by every CPR
//! commit protocol in this repository.
//!
//! # Example
//! ```
//! use std::sync::Arc;
//! use std::sync::atomic::{AtomicBool, Ordering};
//! use cpr_epoch::EpochManager;
//!
//! let mgr = Arc::new(EpochManager::new(8));
//! let guard = mgr.register();
//! let fired = Arc::new(AtomicBool::new(false));
//! let f = fired.clone();
//! guard.bump_epoch(move || f.store(true, Ordering::SeqCst));
//! assert!(!fired.load(Ordering::SeqCst));
//! guard.refresh(); // we are the only thread: the bumped epoch is now safe
//! assert!(fired.load(Ordering::SeqCst));
//! ```

mod drain;
mod manager;

pub use drain::{Action, Condition};
pub use manager::{EpochManager, Guard};

#[cfg(test)]
mod tests;
