//! Chaos/stress tests for the epoch framework: randomized interleavings
//! of bumps, refreshes, registrations and releases must preserve the
//! core guarantees — every action fires exactly once, never before its
//! epoch is safe, and conditional actions never fire while their
//! condition is false.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

use cpr_epoch::EpochManager;

/// Every bumped action fires exactly once even with thread churn
/// (guards registering and releasing concurrently).
#[test]
fn actions_fire_exactly_once_under_churn() {
    const ROUNDS: usize = 30;
    const CHURNERS: usize = 4;
    let mgr = Arc::new(EpochManager::new(CHURNERS * 2 + 2));
    let stop = Arc::new(AtomicBool::new(false));

    let churners: Vec<_> = (0..CHURNERS)
        .map(|i| {
            let mgr = Arc::clone(&mgr);
            let stop = stop.clone();
            thread::spawn(move || {
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let g = mgr.register();
                    for _ in 0..(n % 7 + 1) {
                        g.refresh();
                    }
                    drop(g); // release; may drain pending actions
                    n += 1;
                    if i == 0 && n.is_multiple_of(16) {
                        thread::yield_now();
                    }
                }
            })
        })
        .collect();

    let fired = Arc::new(AtomicUsize::new(0));
    let g = mgr.register();
    for _ in 0..ROUNDS {
        let f = fired.clone();
        g.bump_epoch(move || {
            f.fetch_add(1, Ordering::SeqCst);
        });
        // Drain until this round's action lands.
        while mgr.pending_actions() > 0 {
            g.refresh();
            thread::yield_now();
        }
    }
    stop.store(true, Ordering::SeqCst);
    for c in churners {
        c.join().unwrap();
    }
    assert_eq!(fired.load(Ordering::SeqCst), ROUNDS);
}

/// An action must never observe a registered guard still pinned at the
/// bump epoch — the definition of epoch safety.
#[test]
fn actions_never_fire_before_epoch_is_safe() {
    const THREADS: usize = 3;
    let mgr = Arc::new(EpochManager::new(THREADS + 1));
    let stop = Arc::new(AtomicBool::new(false));
    let violation = Arc::new(AtomicBool::new(false));

    // Worker threads publish their current "working epoch" before
    // refreshing, mimicking a critical section.
    let published: Arc<Vec<AtomicU64>> =
        Arc::new((0..THREADS).map(|_| AtomicU64::new(0)).collect());
    let workers: Vec<_> = (0..THREADS)
        .map(|i| {
            let mgr = Arc::clone(&mgr);
            let stop = stop.clone();
            let published = Arc::clone(&published);
            thread::spawn(move || {
                let g = mgr.register();
                while !stop.load(Ordering::Relaxed) {
                    // Enter a "critical section" at the current epoch.
                    published[i].store(mgr.current(), Ordering::SeqCst);
                    std::hint::spin_loop();
                    // Leave it and refresh.
                    published[i].store(u64::MAX, Ordering::SeqCst);
                    g.refresh();
                }
            })
        })
        .collect();

    let g = mgr.register();
    for _ in 0..50 {
        let bump_epoch_before = mgr.current();
        let published2 = Arc::clone(&published);
        let violation2 = violation.clone();
        g.bump_epoch(move || {
            // When this runs, no thread may still be inside a critical
            // section entered at or before `bump_epoch_before`.
            for p in published2.iter() {
                let e = p.load(Ordering::SeqCst);
                if e <= bump_epoch_before {
                    violation2.store(true, Ordering::SeqCst);
                }
            }
        });
        while mgr.pending_actions() > 0 {
            g.refresh();
            thread::yield_now();
        }
    }
    stop.store(true, Ordering::SeqCst);
    for w in workers {
        w.join().unwrap();
    }
    assert!(
        !violation.load(Ordering::SeqCst),
        "action observed a critical section from an unsafe epoch"
    );
}

/// Conditional actions: the condition is re-evaluated until true, and
/// the action observes it true when it finally runs.
#[test]
fn conditional_actions_wait_for_condition_under_concurrency() {
    let mgr = Arc::new(EpochManager::new(4));
    let g = mgr.register();
    let gate = Arc::new(AtomicU64::new(0));
    let fired_with = Arc::new(AtomicU64::new(u64::MAX));

    for round in 1..=20u64 {
        let gate_c = gate.clone();
        let gate_a = gate.clone();
        let fired = fired_with.clone();
        g.bump_epoch_with(
            move || gate_c.load(Ordering::SeqCst) >= round,
            move || {
                fired.store(gate_a.load(Ordering::SeqCst), Ordering::SeqCst);
            },
        );
        g.refresh();
        assert_eq!(
            fired_with.load(Ordering::SeqCst),
            if round == 1 { u64::MAX } else { round - 1 },
            "action ran before its gate opened"
        );
        gate.store(round, Ordering::SeqCst);
        g.refresh();
        assert_eq!(fired_with.load(Ordering::SeqCst), round);
    }
}

fn stress_seed() -> u64 {
    std::env::var("CPR_STRESS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE)
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = (*state).max(1);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Watchdog-style lease race: workers refresh (resurrecting their slot if
/// it was staled) while a reaper thread keeps staling every slot it sees.
/// Despite the churn, every bumped action fires exactly once, and the
/// final drain succeeds even with workers parked forever at the end.
/// Seeded via `CPR_STRESS_SEED` (the CI stress job sweeps seeds).
#[test]
fn release_stale_races_owner_refresh() {
    const WORKERS: usize = 4;
    const ROUNDS: usize = 40;
    let seed = stress_seed();
    let mgr = Arc::new(EpochManager::new(WORKERS + 1));
    let stop = Arc::new(AtomicBool::new(false));
    let slots: Arc<Vec<AtomicU64>> =
        Arc::new((0..WORKERS).map(|_| AtomicU64::new(u64::MAX)).collect());

    let workers: Vec<_> = (0..WORKERS)
        .map(|i| {
            let mgr = Arc::clone(&mgr);
            let stop = stop.clone();
            let slots = Arc::clone(&slots);
            let mut rng = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            thread::spawn(move || {
                let g = mgr.register();
                slots[i].store(g.slot() as u64, Ordering::SeqCst);
                while !stop.load(Ordering::Relaxed) {
                    g.refresh();
                    // Random short "parks" so the reaper catches us stale.
                    if xorshift(&mut rng).is_multiple_of(13) {
                        thread::yield_now();
                    }
                }
                // Park forever without dropping: the reaper must be able
                // to finish the drain without us.
                std::mem::forget(g);
            })
        })
        .collect();

    // Reaper + bumper on the main thread.
    let g = mgr.register();
    let fired = Arc::new(AtomicUsize::new(0));
    let mut rng = seed;
    for _ in 0..ROUNDS {
        let f = fired.clone();
        g.bump_epoch(move || {
            f.fetch_add(1, Ordering::SeqCst);
        });
        // Randomly stale some worker slots while draining.
        let mut spins = 0u64;
        while mgr.pending_actions() > 0 {
            if xorshift(&mut rng).is_multiple_of(3) {
                let w = (xorshift(&mut rng) as usize) % WORKERS;
                let s = slots[w].load(Ordering::SeqCst);
                if s != u64::MAX {
                    mgr.release_stale(s as usize);
                }
            }
            g.refresh();
            spins += 1;
            if spins.is_multiple_of(64) {
                thread::yield_now();
            }
        }
        assert!(mgr.safe() < mgr.current());
    }
    // Final phase: workers stop refreshing entirely (parked forever); the
    // reaper alone must still retire a last action by staling them all.
    stop.store(true, Ordering::SeqCst);
    for w in workers {
        w.join().unwrap();
    }
    let f = fired.clone();
    g.bump_epoch(move || {
        f.fetch_add(1, Ordering::SeqCst);
    });
    for s in slots.iter() {
        mgr.release_stale(s.load(Ordering::SeqCst) as usize);
    }
    g.refresh();
    assert_eq!(fired.load(Ordering::SeqCst), ROUNDS + 1);
}

/// Heavy mixed load: many bumps from many threads; total fire count is
/// exact and the safe epoch never exceeds current.
#[test]
fn mixed_bump_refresh_storm() {
    const THREADS: usize = 4;
    const BUMPS_PER_THREAD: usize = 200;
    let mgr = Arc::new(EpochManager::new(THREADS));
    let fired = Arc::new(AtomicUsize::new(0));

    let workers: Vec<_> = (0..THREADS)
        .map(|_| {
            let mgr = Arc::clone(&mgr);
            let fired = fired.clone();
            thread::spawn(move || {
                let g = mgr.register();
                for i in 0..BUMPS_PER_THREAD {
                    let f = fired.clone();
                    g.bump_epoch(move || {
                        f.fetch_add(1, Ordering::SeqCst);
                    });
                    if i % 3 == 0 {
                        g.refresh();
                    }
                    assert!(mgr.safe() < mgr.current());
                }
                // Drain the remainder before leaving.
                while mgr.pending_actions() > 0 {
                    g.refresh();
                    thread::yield_now();
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    mgr.try_drain();
    assert_eq!(fired.load(Ordering::SeqCst), THREADS * BUMPS_PER_THREAD);
}
