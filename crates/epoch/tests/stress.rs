//! Chaos/stress tests for the epoch framework: randomized interleavings
//! of bumps, refreshes, registrations and releases must preserve the
//! core guarantees — every action fires exactly once, never before its
//! epoch is safe, and conditional actions never fire while their
//! condition is false.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

use cpr_epoch::EpochManager;

/// Every bumped action fires exactly once even with thread churn
/// (guards registering and releasing concurrently).
#[test]
fn actions_fire_exactly_once_under_churn() {
    const ROUNDS: usize = 30;
    const CHURNERS: usize = 4;
    let mgr = Arc::new(EpochManager::new(CHURNERS * 2 + 2));
    let stop = Arc::new(AtomicBool::new(false));

    let churners: Vec<_> = (0..CHURNERS)
        .map(|i| {
            let mgr = Arc::clone(&mgr);
            let stop = stop.clone();
            thread::spawn(move || {
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let g = mgr.register();
                    for _ in 0..(n % 7 + 1) {
                        g.refresh();
                    }
                    drop(g); // release; may drain pending actions
                    n += 1;
                    if i == 0 && n.is_multiple_of(16) {
                        thread::yield_now();
                    }
                }
            })
        })
        .collect();

    let fired = Arc::new(AtomicUsize::new(0));
    let g = mgr.register();
    for _ in 0..ROUNDS {
        let f = fired.clone();
        g.bump_epoch(move || {
            f.fetch_add(1, Ordering::SeqCst);
        });
        // Drain until this round's action lands.
        while mgr.pending_actions() > 0 {
            g.refresh();
            thread::yield_now();
        }
    }
    stop.store(true, Ordering::SeqCst);
    for c in churners {
        c.join().unwrap();
    }
    assert_eq!(fired.load(Ordering::SeqCst), ROUNDS);
}

/// An action must never observe a registered guard still pinned at the
/// bump epoch — the definition of epoch safety.
#[test]
fn actions_never_fire_before_epoch_is_safe() {
    const THREADS: usize = 3;
    let mgr = Arc::new(EpochManager::new(THREADS + 1));
    let stop = Arc::new(AtomicBool::new(false));
    let violation = Arc::new(AtomicBool::new(false));

    // Worker threads publish their current "working epoch" before
    // refreshing, mimicking a critical section.
    let published: Arc<Vec<AtomicU64>> =
        Arc::new((0..THREADS).map(|_| AtomicU64::new(0)).collect());
    let workers: Vec<_> = (0..THREADS)
        .map(|i| {
            let mgr = Arc::clone(&mgr);
            let stop = stop.clone();
            let published = Arc::clone(&published);
            thread::spawn(move || {
                let g = mgr.register();
                while !stop.load(Ordering::Relaxed) {
                    // Enter a "critical section" at the current epoch.
                    published[i].store(mgr.current(), Ordering::SeqCst);
                    std::hint::spin_loop();
                    // Leave it and refresh.
                    published[i].store(u64::MAX, Ordering::SeqCst);
                    g.refresh();
                }
            })
        })
        .collect();

    let g = mgr.register();
    for _ in 0..50 {
        let bump_epoch_before = mgr.current();
        let published2 = Arc::clone(&published);
        let violation2 = violation.clone();
        g.bump_epoch(move || {
            // When this runs, no thread may still be inside a critical
            // section entered at or before `bump_epoch_before`.
            for p in published2.iter() {
                let e = p.load(Ordering::SeqCst);
                if e <= bump_epoch_before {
                    violation2.store(true, Ordering::SeqCst);
                }
            }
        });
        while mgr.pending_actions() > 0 {
            g.refresh();
            thread::yield_now();
        }
    }
    stop.store(true, Ordering::SeqCst);
    for w in workers {
        w.join().unwrap();
    }
    assert!(
        !violation.load(Ordering::SeqCst),
        "action observed a critical section from an unsafe epoch"
    );
}

/// Conditional actions: the condition is re-evaluated until true, and
/// the action observes it true when it finally runs.
#[test]
fn conditional_actions_wait_for_condition_under_concurrency() {
    let mgr = Arc::new(EpochManager::new(4));
    let g = mgr.register();
    let gate = Arc::new(AtomicU64::new(0));
    let fired_with = Arc::new(AtomicU64::new(u64::MAX));

    for round in 1..=20u64 {
        let gate_c = gate.clone();
        let gate_a = gate.clone();
        let fired = fired_with.clone();
        g.bump_epoch_with(
            move || gate_c.load(Ordering::SeqCst) >= round,
            move || {
                fired.store(gate_a.load(Ordering::SeqCst), Ordering::SeqCst);
            },
        );
        g.refresh();
        assert_eq!(
            fired_with.load(Ordering::SeqCst),
            if round == 1 { u64::MAX } else { round - 1 },
            "action ran before its gate opened"
        );
        gate.store(round, Ordering::SeqCst);
        g.refresh();
        assert_eq!(fired_with.load(Ordering::SeqCst), round);
    }
}

/// Heavy mixed load: many bumps from many threads; total fire count is
/// exact and the safe epoch never exceeds current.
#[test]
fn mixed_bump_refresh_storm() {
    const THREADS: usize = 4;
    const BUMPS_PER_THREAD: usize = 200;
    let mgr = Arc::new(EpochManager::new(THREADS));
    let fired = Arc::new(AtomicUsize::new(0));

    let workers: Vec<_> = (0..THREADS)
        .map(|_| {
            let mgr = Arc::clone(&mgr);
            let fired = fired.clone();
            thread::spawn(move || {
                let g = mgr.register();
                for i in 0..BUMPS_PER_THREAD {
                    let f = fired.clone();
                    g.bump_epoch(move || {
                        f.fetch_add(1, Ordering::SeqCst);
                    });
                    if i % 3 == 0 {
                        g.refresh();
                    }
                    assert!(mgr.safe() < mgr.current());
                }
                // Drain the remainder before leaving.
                while mgr.pending_actions() > 0 {
                    g.refresh();
                    thread::yield_now();
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    mgr.try_drain();
    assert_eq!(fired.load(Ordering::SeqCst), THREADS * BUMPS_PER_THREAD);
}
