//! Operational tests for the FASTER store: regional behaviour, pending
//! I/O for disk-resident records, deletes, sessions.

use cpr_faster::{FasterBuilder, HlogConfig, OpKind, ReadResult, Status};

fn small_opts(dir: &std::path::Path) -> FasterBuilder<u64> {
    FasterBuilder::u64_sums(dir).hlog(HlogConfig {
        page_bits: 12,
        memory_pages: 8,
        mutable_pages: 4,
        value_size: 8,
    })
}

#[test]
fn upsert_read_roundtrip() {
    let dir = tempfile::tempdir().unwrap();
    let kv = small_opts(dir.path()).open().unwrap();
    let mut s = kv.start_session(1);
    for k in 0..100u64 {
        assert_eq!(s.upsert(k, k * 10), Status::Ok);
    }
    for k in 0..100u64 {
        assert_eq!(s.read(k), ReadResult::Found(k * 10));
    }
    assert_eq!(s.read(12345), ReadResult::NotFound);
}

#[test]
fn rmw_accumulates_sums() {
    let dir = tempfile::tempdir().unwrap();
    let kv = small_opts(dir.path()).open().unwrap();
    let mut s = kv.start_session(1);
    for _ in 0..10 {
        assert_eq!(s.rmw(7, 5), Status::Ok);
    }
    assert_eq!(s.read(7), ReadResult::Found(50), "rmw initializes to input");
}

#[test]
fn delete_hides_key_and_reinsert_works() {
    let dir = tempfile::tempdir().unwrap();
    let kv = small_opts(dir.path()).open().unwrap();
    let mut s = kv.start_session(1);
    s.upsert(9, 99);
    assert_eq!(s.delete(9), Status::Ok);
    assert_eq!(s.read(9), ReadResult::NotFound);
    s.upsert(9, 100);
    assert_eq!(s.read(9), ReadResult::Found(100));
}

#[test]
fn updates_in_readonly_region_copy_to_tail() {
    let dir = tempfile::tempdir().unwrap();
    let kv = small_opts(dir.path()).open().unwrap();
    let mut s = kv.start_session(1);
    // Fill several pages so early keys fall below the read-only offset.
    for k in 0..1000u64 {
        s.upsert(k, k);
    }
    s.refresh();
    // Key 0 is deep in the read-only (or evicted) region now; an update
    // must still land.
    let st = s.upsert(0, 4242);
    if st == Status::Pending {
        // Disk-resident: wait for the IO to complete.
        for _ in 0..1000 {
            s.refresh();
            if s.pending_len() == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(s.pending_len(), 0, "pending upsert never completed");
    }
    match s.read(0) {
        ReadResult::Found(v) => assert_eq!(v, 4242),
        ReadResult::Pending => {
            let mut out = Vec::new();
            for _ in 0..1000 {
                s.refresh();
                s.drain_completions(&mut out);
                if let Some(c) = out.iter().find(|c| c.kind == OpKind::Read && c.key == 0) {
                    assert_eq!(c.value, Some(4242));
                    return;
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            panic!("pending read never completed");
        }
        ReadResult::NotFound => panic!("key 0 lost"),
        ReadResult::Evicted => panic!("session evicted"),
    }
}

#[test]
fn disk_resident_reads_complete_via_pending_path() {
    let dir = tempfile::tempdir().unwrap();
    let kv = small_opts(dir.path()).open().unwrap();
    let mut s = kv.start_session(1);
    // Push enough data that early pages are evicted (8 frames of 4 KiB,
    // 24-byte records → ~170/page; 10k records ≈ 60 pages).
    for k in 0..10_000u64 {
        s.upsert(k, k + 1);
    }
    s.refresh();
    assert!(kv.hlog().head() > 0, "eviction should have happened");

    // Early keys are on disk: reads go pending and complete with the
    // right values.
    let mut pending_keys = Vec::new();
    for k in 0..50u64 {
        match s.read(k) {
            ReadResult::Found(v) => assert_eq!(v, k + 1),
            ReadResult::NotFound => panic!("key {k} lost"),
            ReadResult::Pending => pending_keys.push(k),
            ReadResult::Evicted => panic!("session evicted"),
        }
    }
    assert!(
        !pending_keys.is_empty(),
        "expected some disk-resident reads (head {})",
        kv.hlog().head()
    );
    let mut out = Vec::new();
    for _ in 0..2000 {
        s.refresh();
        s.drain_completions(&mut out);
        if s.pending_len() == 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    assert_eq!(s.pending_len(), 0, "pending reads stuck");
    for c in &out {
        if c.kind == OpKind::Read {
            assert_eq!(c.value, Some(c.key + 1), "key {}", c.key);
        }
    }
    let done: std::collections::HashSet<u64> = out
        .iter()
        .filter(|c| c.kind == OpKind::Read)
        .map(|c| c.key)
        .collect();
    for k in pending_keys {
        assert!(done.contains(&k), "read of key {k} never completed");
    }
}

#[test]
fn rmw_on_disk_resident_key_uses_fetched_base() {
    let dir = tempfile::tempdir().unwrap();
    let kv = small_opts(dir.path()).open().unwrap();
    let mut s = kv.start_session(1);
    s.upsert(5, 1000);
    for k in 100..10_000u64 {
        s.upsert(k, k); // push key 5 to disk
    }
    s.refresh();
    let st = s.rmw(5, 7);
    if st == Status::Pending {
        for _ in 0..2000 {
            s.refresh();
            if s.pending_len() == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(s.pending_len(), 0);
    }
    // Now the updated record is at the tail: read is immediate.
    assert_eq!(s.read(5), ReadResult::Found(1007));
}

#[test]
fn two_sessions_see_each_others_writes() {
    let dir = tempfile::tempdir().unwrap();
    let kv = small_opts(dir.path()).open().unwrap();
    let mut a = kv.start_session(1);
    let mut b = kv.start_session(2);
    a.upsert(1, 11);
    assert_eq!(b.read(1), ReadResult::Found(11));
    b.upsert(1, 22);
    assert_eq!(a.read(1), ReadResult::Found(22));
}

#[test]
fn serial_numbers_are_monotone_per_session() {
    let dir = tempfile::tempdir().unwrap();
    let kv = small_opts(dir.path()).open().unwrap();
    let mut s = kv.start_session(1);
    assert_eq!(s.serial(), 0);
    s.upsert(1, 1);
    s.read(1);
    s.rmw(1, 1);
    assert_eq!(s.serial(), 3);
}

#[test]
fn concurrent_rmw_sums_are_exact() {
    // The canonical atomicity test: N threads × M increments on shared
    // keys must sum exactly.
    let dir = tempfile::tempdir().unwrap();
    let opts = small_opts(dir.path()).refresh_every(16);
    let kv = opts.open().unwrap();
    const THREADS: u64 = 4;
    const INCR: u64 = 2000;
    const KEYS: u64 = 8;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let kv = kv.clone();
            std::thread::spawn(move || {
                let mut s = kv.start_session(t);
                for i in 0..INCR {
                    s.rmw(i % KEYS, 1);
                }
                // Drain anything pending before the session drops.
                for _ in 0..1000 {
                    if s.pending_len() == 0 {
                        break;
                    }
                    s.refresh();
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                assert_eq!(s.pending_len(), 0);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let mut s = kv.start_session(99);
    let mut total = 0u64;
    for k in 0..KEYS {
        match s.read(k) {
            ReadResult::Found(v) => total += v,
            other => panic!("key {k}: {other:?}"),
        }
    }
    assert_eq!(total, THREADS * INCR, "lost or duplicated increments");
}
