//! Independent fuzzy index checkpoints (paper Sec. 6.3) and failure
//! injection around recovery inputs.

use std::time::Duration;

use cpr_faster::{
    CheckpointVariant, FasterBuilder, HlogConfig, ReadResult, VersionGrain,
};

fn opts(dir: &std::path::Path) -> FasterBuilder<u64> {
    FasterBuilder::u64_sums(dir)
        .hlog(HlogConfig {
            page_bits: 12,
            memory_pages: 16,
            mutable_pages: 8,
            value_size: 8,
        })
        .refresh_every(8)
}

fn read_now(s: &mut cpr_faster::FasterSession<u64>, key: u64) -> Option<u64> {
    match s.read(key) {
        ReadResult::Found(v) => Some(v),
        ReadResult::NotFound => None,
        ReadResult::Evicted => panic!("session evicted"),
        ReadResult::Pending => {
            let mut out = Vec::new();
            for _ in 0..5000 {
                s.refresh();
                s.drain_completions(&mut out);
                if let Some(c) = out.iter().find(|c| c.key == key) {
                    return c.value;
                }
                std::thread::sleep(Duration::from_micros(100));
            }
            panic!("pending read never completed");
        }
    }
}

/// The paper's intended cadence: index checkpoints rarely, log-only
/// commits frequently. Recovery stitches the newest log commit with the
/// older standalone index checkpoint and replays the suffix.
#[test]
fn log_only_commits_recover_via_older_index_checkpoint() {
    let dir = tempfile::tempdir().unwrap();
    {
        let kv = opts(dir.path()).open().unwrap();
        let mut s = kv.start_session(3);
        for k in 0..200u64 {
            s.upsert(k, k + 1);
        }
        // Standalone fuzzy index checkpoint.
        kv.checkpoint_index().unwrap();
        // More updates, then several frequent log-only commits.
        for round in 1..=3u64 {
            for k in 0..200u64 {
                s.upsert(k, round * 1000 + k);
            }
            assert!(kv.request_checkpoint(CheckpointVariant::FoldOver, true));
            while kv.committed_version() < round {
                s.refresh();
            }
        }
        s.upsert(9999, 1); // post-point, lost
    }
    let (kv, manifest) = opts(dir.path()).recover().unwrap();
    let manifest = manifest.unwrap();
    assert_eq!(manifest.version, 3);
    assert!(manifest.index_begin.is_none(), "log-only commit");
    let (mut s, point) = kv.continue_session(3);
    assert_eq!(point, 200 * 4);
    for k in (0..200u64).step_by(23) {
        assert_eq!(read_now(&mut s, k), Some(3000 + k), "key {k}");
    }
    assert_eq!(read_now(&mut s, 9999), None);
}

/// Log-only commits with NO index checkpoint at all: recovery replays the
/// whole log from its beginning into a fresh index.
#[test]
fn log_only_without_any_index_checkpoint_replays_from_origin() {
    let dir = tempfile::tempdir().unwrap();
    {
        let kv = opts(dir.path()).open().unwrap();
        let mut s = kv.start_session(1);
        for k in 0..300u64 {
            s.upsert(k, k * 3);
        }
        assert!(kv.request_checkpoint(CheckpointVariant::FoldOver, true));
        while kv.committed_version() < 1 {
            s.refresh();
        }
    }
    let (kv, _) = opts(dir.path()).recover().unwrap();
    let (mut s, _) = kv.continue_session(1);
    for k in (0..300u64).step_by(37) {
        assert_eq!(read_now(&mut s, k), Some(k * 3), "key {k}");
    }
}

/// A corrupted index checkpoint surfaces as a recovery error instead of
/// silently recovering garbage.
#[test]
fn corrupted_index_dump_is_a_recovery_error() {
    let dir = tempfile::tempdir().unwrap();
    {
        let kv = opts(dir.path()).open().unwrap();
        let mut s = kv.start_session(1);
        s.upsert(1, 1);
        assert!(kv.request_checkpoint(CheckpointVariant::FoldOver, false));
        while kv.committed_version() < 1 {
            s.refresh();
        }
    }
    // Corrupt the (full) checkpoint's index file.
    let store = cpr_storage::CheckpointStore::open(dir.path().join("checkpoints")).unwrap();
    let token = store.tokens().unwrap()[0];
    std::fs::write(store.file(token, "index.dat"), vec![0xFF; 64]).unwrap();
    assert!(
        opts(dir.path()).recover().is_err(),
        "corrupted index must not recover silently"
    );
}

/// A missing snapshot file for a snapshot commit is a hard error.
#[test]
fn missing_snapshot_file_is_a_recovery_error() {
    let dir = tempfile::tempdir().unwrap();
    {
        let kv = opts(dir.path()).open().unwrap();
        let mut s = kv.start_session(1);
        for k in 0..50u64 {
            s.upsert(k, k);
        }
        assert!(kv.request_checkpoint(CheckpointVariant::Snapshot, false));
        while kv.committed_version() < 1 {
            s.refresh();
        }
    }
    let store = cpr_storage::CheckpointStore::open(dir.path().join("checkpoints")).unwrap();
    let token = store.tokens().unwrap()[0];
    std::fs::remove_file(store.file(token, "snapshot.dat")).unwrap();
    assert!(opts(dir.path()).recover().is_err());
}

/// Checkpoints tolerate both grains back-to-back on one store (the grain
/// is a per-open configuration; data is grain-agnostic).
#[test]
fn grain_can_change_across_restarts() {
    let dir = tempfile::tempdir().unwrap();
    {
        let kv = opts(dir.path()).grain(VersionGrain::Fine).open().unwrap();
        let mut s = kv.start_session(1);
        s.upsert(5, 50);
        assert!(kv.request_checkpoint(CheckpointVariant::FoldOver, false));
        while kv.committed_version() < 1 {
            s.refresh();
        }
    }
    let (kv, _) = opts(dir.path()).grain(VersionGrain::Coarse).recover().unwrap();
    let (mut s, _) = kv.continue_session(1);
    assert_eq!(read_now(&mut s, 5), Some(50));
    // And commit again under the new grain. Note reads are operations
    // too: the read above advanced the serial.
    s.upsert(6, 60);
    let accepted = s.serial();
    assert!(kv.request_checkpoint(CheckpointVariant::Snapshot, false));
    while kv.committed_version() < 2 {
        s.refresh();
    }
    assert_eq!(s.durable_serial(), accepted);
}

/// The per-phase profile is recorded for every full commit.
#[test]
fn phase_marks_cover_all_transitions() {
    let dir = tempfile::tempdir().unwrap();
    let kv = opts(dir.path()).open().unwrap();
    let mut s = kv.start_session(1);
    for k in 0..50u64 {
        s.upsert(k, k);
    }
    assert!(kv.request_checkpoint(CheckpointVariant::FoldOver, false));
    while kv.committed_version() < 1 {
        s.refresh();
    }
    let marks = kv.last_checkpoint_phases();
    let phases: Vec<_> = marks.iter().map(|(p, _)| *p).collect();
    use cpr_core::Phase::*;
    assert_eq!(
        phases,
        vec![Prepare, InProgress, WaitPending, WaitFlush, Rest]
    );
    // Durations are non-decreasing offsets from commit start.
    for w in marks.windows(2) {
        assert!(w[0].1 <= w[1].1);
    }
}

/// Commit observers (paper Sec. 5.2) fire once per durable commit with
/// the per-session CPR points.
#[test]
fn commit_callbacks_deliver_cpr_points() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    let dir = tempfile::tempdir().unwrap();
    let kv = opts(dir.path()).open().unwrap();
    let seen_version = Arc::new(AtomicU64::new(0));
    let seen_point = Arc::new(AtomicU64::new(u64::MAX));
    let (sv, sp) = (seen_version.clone(), seen_point.clone());
    kv.on_commit(move |version, points| {
        sv.store(version, Ordering::SeqCst);
        if let Some(p) = points.iter().find(|p| p.guid == 11) {
            sp.store(p.cpr_point, Ordering::SeqCst);
        }
    });

    let mut s = kv.start_session(11);
    for k in 0..25u64 {
        s.upsert(k, k);
    }
    assert!(kv.request_checkpoint(CheckpointVariant::FoldOver, true));
    while kv.committed_version() < 1 {
        s.refresh();
    }
    assert_eq!(seen_version.load(Ordering::SeqCst), 1);
    assert_eq!(seen_point.load(Ordering::SeqCst), 25);

    for k in 0..10u64 {
        s.upsert(k, k);
    }
    assert!(kv.request_checkpoint(CheckpointVariant::Snapshot, true));
    while kv.committed_version() < 2 {
        s.refresh();
    }
    assert_eq!(seen_version.load(Ordering::SeqCst), 2);
    assert_eq!(seen_point.load(Ordering::SeqCst), 35);
}
