//! Liveness watchdog tests for the FASTER store, driven by a virtual
//! clock, for **both** checkpoint flavors: an idle straggler is
//! proxy-advanced through fold-over and snapshot commits; a session
//! parked *inside* an operation is evicted (subsequent ops fail with the
//! retryable `Evicted` status, and recovery excludes the late op); and a
//! session parked with outstanding *pending I/O* is evicted through the
//! offline registry — its pendings cancelled, the wait-pending gate
//! released, its CPR point rolled back below the cancelled serials.

use std::sync::{mpsc, Arc};
use std::time::Duration;

use cpr_faster::{
    CheckpointVariant, Clock, FasterKv, FasterBuilder, FasterSession, HlogConfig, LivenessConfig,
    ReadResult, Status, VirtualClock,
};

const GRACE: u64 = 100;

fn liveness_opts(dir: &std::path::Path, clock: &Arc<VirtualClock>) -> FasterBuilder<u64> {
    FasterBuilder::u64_sums(dir)
        .refresh_every(4)
        .liveness(
            LivenessConfig::with_clock(Arc::clone(clock) as Arc<dyn Clock>)
                .grace_ticks(GRACE)
                .backoff_base_ticks(10)
                .backoff_jitter_ticks(5)
                .seed(42),
        )
}

/// Same, but with a log small enough that early pages leave memory and
/// reads of cold keys go down the asynchronous pending path.
fn small_liveness_opts(dir: &std::path::Path, clock: &Arc<VirtualClock>) -> FasterBuilder<u64> {
    liveness_opts(dir, clock).hlog(HlogConfig {
        page_bits: 12,
        memory_pages: 8,
        mutable_pages: 4,
        value_size: 8,
    })
}

/// Drive session `a` and the virtual clock until the commit lands. The
/// driver heartbeats on every refresh so only parked sessions go stale.
fn drive_until_committed(kv: &FasterKv<u64>, a: &mut FasterSession<u64>, clock: &VirtualClock) {
    let mut iters = 0u64;
    while kv.committed_version() < 1 {
        let _ = a.rmw(iters % 10, 1);
        a.refresh();
        clock.advance(GRACE / 2);
        std::thread::sleep(Duration::from_millis(1));
        iters += 1;
        assert!(iters < 10_000, "commit never completed despite watchdog");
    }
}

/// Read a key on a possibly larger-than-memory store, following the
/// pending path to completion if needed.
fn read_eventually(s: &mut FasterSession<u64>, key: u64) -> Option<u64> {
    match s.read(key) {
        ReadResult::Found(v) => return Some(v),
        ReadResult::NotFound => return None,
        ReadResult::Pending => {}
        ReadResult::Evicted => panic!("session evicted"),
    }
    let mut out = Vec::new();
    for _ in 0..10_000 {
        s.refresh();
        s.drain_completions(&mut out);
        if let Some(c) = out.iter().find(|c| c.key == key) {
            return c.value;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    panic!("pending read of key {key} never completed");
}

fn run_idle_straggler(variant: CheckpointVariant) {
    let dir = tempfile::tempdir().unwrap();
    let clock = Arc::new(VirtualClock::new());
    let kv = liveness_opts(dir.path(), &clock).open().unwrap();

    let (done_tx, done_rx) = mpsc::channel::<()>();
    let (unpark_tx, unpark_rx) = mpsc::channel::<()>();
    let kv_b = kv.clone();
    let straggler = std::thread::spawn(move || {
        let mut b = kv_b.start_session(7);
        for k in 100..110u64 {
            assert_eq!(b.upsert(k, 1000 + k), Status::Ok);
        }
        b.refresh();
        done_tx.send(()).unwrap();
        unpark_rx.recv().unwrap(); // park: no ops, no refreshes
        b.refresh();
        b.is_evicted()
    });
    done_rx.recv().unwrap();

    let mut a = kv.start_session(1);
    assert!(kv.request_checkpoint(variant, false));
    drive_until_committed(&kv, &mut a, &clock);

    let out = kv.last_commit_outcome();
    assert!(
        out.proxy_advanced.contains(&7),
        "idle straggler should be proxy-advanced, got {out:?}"
    );
    assert!(out.evicted.is_empty(), "idle straggler must not be evicted");
    assert_eq!(out.attempts, 1);

    unpark_tx.send(()).unwrap();
    assert!(
        !straggler.join().unwrap(),
        "a proxy-advanced session must stay alive"
    );

    drop(a);
    drop(kv);
    let (kv2, manifest) = liveness_opts(dir.path(), &clock).recover().unwrap();
    assert!(manifest.is_some());
    let mut s = kv2.start_session(2);
    for k in 100..110u64 {
        assert_eq!(read_eventually(&mut s, k), Some(1000 + k), "straggler prefix lost");
    }
}

#[test]
fn idle_straggler_is_proxy_advanced_fold_over() {
    run_idle_straggler(CheckpointVariant::FoldOver);
}

#[test]
fn idle_straggler_is_proxy_advanced_snapshot() {
    run_idle_straggler(CheckpointVariant::Snapshot);
}

fn run_mid_op_eviction(variant: CheckpointVariant) {
    let dir = tempfile::tempdir().unwrap();
    let clock = Arc::new(VirtualClock::new());
    let kv = liveness_opts(dir.path(), &clock).open().unwrap();

    let (parked_tx, parked_rx) = mpsc::channel::<()>();
    let (unpark_tx, unpark_rx) = mpsc::channel::<()>();
    let kv_b = kv.clone();
    let straggler = std::thread::spawn(move || {
        let mut b = kv_b.start_session(7);
        for k in 200..205u64 {
            assert_eq!(b.upsert(k, 2000 + k), Status::Ok);
        }
        b.refresh();
        // Hook installed after the warm-up ops: only the next op parks.
        b.set_pause_in_op(move || {
            let _ = parked_tx.send(());
            let _ = unpark_rx.recv();
        });
        // Parks inside; resumes after eviction. The op was accepted
        // before the park, so it still applies to the live store — but
        // past the capture boundary, outside the committed prefix.
        let late = b.upsert(299, 9999);
        let next = b.upsert(300, 1);
        (late, next, b.is_evicted())
    });
    parked_rx.recv().unwrap(); // B is inside an op, lease going stale

    let mut a = kv.start_session(1);
    assert!(kv.request_checkpoint(variant, false));
    drive_until_committed(&kv, &mut a, &clock);

    let out = kv.last_commit_outcome();
    assert!(
        out.evicted.contains(&7),
        "mid-op straggler should be evicted, got {out:?}"
    );

    unpark_tx.send(()).unwrap();
    let (late, next, evicted) = straggler.join().unwrap();
    assert_eq!(late, Status::Ok, "the parked op was accepted pre-eviction");
    assert_eq!(next, Status::Evicted, "post-eviction ops must fail fast");
    assert!(evicted);

    drop(a);
    drop(kv);
    let (kv2, _) = liveness_opts(dir.path(), &clock).recover().unwrap();
    let mut s = kv2.start_session(2);
    for k in 200..205u64 {
        assert_eq!(read_eventually(&mut s, k), Some(2000 + k), "committed prefix lost");
    }
    assert_eq!(
        read_eventually(&mut s, 299),
        None,
        "late op leaked into the recovered prefix"
    );
}

#[test]
fn mid_op_straggler_is_evicted_fold_over() {
    run_mid_op_eviction(CheckpointVariant::FoldOver);
}

#[test]
fn mid_op_straggler_is_evicted_snapshot() {
    run_mid_op_eviction(CheckpointVariant::Snapshot);
}

/// A parked session with outstanding pending I/O wedges the wait-pending
/// gate (its pre-point pendings can never complete). The watchdog evicts
/// it through the offline registry: the pendings are cancelled, their
/// latches/guards/gate counts released, and the session's CPR point is
/// rolled back below the earliest cancelled serial — so recovery claims
/// exactly its completed ops.
#[test]
fn parked_session_with_pending_io_is_evicted_and_cancelled() {
    let dir = tempfile::tempdir().unwrap();
    let clock = Arc::new(VirtualClock::new());
    let kv = small_liveness_opts(dir.path(), &clock).open().unwrap();

    // Fill enough pages that the early keys are disk-resident.
    {
        let mut loader = kv.start_session(3);
        for k in 0..2000u64 {
            loader.upsert(k, k);
        }
        for _ in 0..10_000 {
            if loader.pending_len() == 0 {
                break;
            }
            loader.refresh();
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(loader.pending_len(), 0, "preload pendings never drained");
    }

    let (parked_tx, parked_rx) = mpsc::channel::<usize>();
    let (unpark_tx, unpark_rx) = mpsc::channel::<()>();
    let kv_b = kv.clone();
    let straggler = std::thread::spawn(move || {
        let mut b = kv_b.start_session(7);
        // Completed ops: these are B's committed prefix.
        for k in 3000..3005u64 {
            assert_eq!(b.upsert(k, 3000 + k), Status::Ok);
        }
        b.refresh();
        // Now issue cold reads until some go pending, then park without
        // ever completing them.
        let mut pendings = 0;
        for k in 0..2000u64 {
            if matches!(b.read(k), ReadResult::Pending) {
                pendings = b.pending_len();
                if pendings >= 2 {
                    break;
                }
            }
        }
        parked_tx.send(pendings).unwrap();
        unpark_rx.recv().unwrap(); // park with pendings outstanding
        b.refresh();
        (b.is_evicted(), b.pending_len())
    });
    let pendings = parked_rx.recv().unwrap();
    assert!(pendings > 0, "test setup: no read went pending");

    let mut a = kv.start_session(1);
    assert!(kv.request_checkpoint(CheckpointVariant::FoldOver, false));
    drive_until_committed(&kv, &mut a, &clock);

    let out = kv.last_commit_outcome();
    assert!(
        out.evicted.contains(&7),
        "pending-holding straggler should be evicted, got {out:?}"
    );

    unpark_tx.send(()).unwrap();
    let (evicted, left) = straggler.join().unwrap();
    assert!(evicted);
    assert_eq!(left, 0, "cancelled pendings must be dropped on refresh");

    drop(a);
    drop(kv);
    let (kv2, _) = small_liveness_opts(dir.path(), &clock).recover().unwrap();
    let mut s = kv2.start_session(2);
    for k in 3000..3005u64 {
        assert_eq!(
            read_eventually(&mut s, k),
            Some(3000 + k),
            "straggler's completed prefix lost"
        );
    }
}
