//! CPR checkpoint → crash → recovery tests for FASTER, across all four
//! design-variant combinations (fold-over/snapshot × fine/coarse), plus
//! log-only checkpoints and session continuation (paper Secs. 6.2–6.5).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cpr_faster::{
    CheckpointVariant, FasterBuilder, HlogConfig, ReadResult, VersionGrain,
};

fn opts(dir: &std::path::Path, grain: VersionGrain) -> FasterBuilder<u64> {
    FasterBuilder::u64_sums(dir)
        .hlog(HlogConfig {
            page_bits: 12,
            memory_pages: 16,
            mutable_pages: 8,
            value_size: 8,
        })
        .grain(grain)
        .refresh_every(8)
}

fn read_now(s: &mut cpr_faster::FasterSession<u64>, key: u64) -> Option<u64> {
    match s.read(key) {
        ReadResult::Found(v) => Some(v),
        ReadResult::NotFound => None,
        ReadResult::Evicted => panic!("session evicted"),
        ReadResult::Pending => {
            let mut out = Vec::new();
            for _ in 0..2000 {
                s.refresh();
                s.drain_completions(&mut out);
                if let Some(c) = out
                    .iter()
                    .find(|c| c.key == key && c.kind == cpr_faster::OpKind::Read)
                {
                    return c.value;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            panic!("pending read of {key} never completed");
        }
    }
}

/// Single session: commit after 100 upserts, write 100 more, crash,
/// recover — exactly the first 100 must be visible and the session's
/// recovered CPR point must say so.
fn single_session_prefix(variant: CheckpointVariant, grain: VersionGrain, log_only: bool) {
    let dir = tempfile::tempdir().unwrap();
    {
        let kv = opts(dir.path(), grain).open().unwrap();
        let mut s = kv.start_session(42);
        for k in 0..100u64 {
            s.upsert(k, k + 1);
        }
        assert!(kv.request_checkpoint(variant, log_only));
        while kv.committed_version() < 1 {
            s.refresh();
        }
        assert_eq!(s.durable_serial(), 100);
        for k in 100..200u64 {
            s.upsert(k, k + 1);
        }
        // crash without another commit
    }
    let (kv, manifest) = opts(dir.path(), grain).recover().unwrap();
    let manifest = manifest.expect("one commit");
    assert_eq!(manifest.version, 1);
    let (mut s, point) = kv.continue_session(42);
    assert_eq!(point, 100, "recovered CPR point");
    for k in 0..100u64 {
        assert_eq!(read_now(&mut s, k), Some(k + 1), "pre-point key {k} lost");
    }
    for k in 100..200u64 {
        assert_eq!(read_now(&mut s, k), None, "post-point key {k} leaked");
    }
}

#[test]
fn foldover_fine_prefix() {
    single_session_prefix(CheckpointVariant::FoldOver, VersionGrain::Fine, false);
}
#[test]
fn foldover_coarse_prefix() {
    single_session_prefix(CheckpointVariant::FoldOver, VersionGrain::Coarse, false);
}
#[test]
fn snapshot_fine_prefix() {
    single_session_prefix(CheckpointVariant::Snapshot, VersionGrain::Fine, false);
}
#[test]
fn snapshot_coarse_prefix() {
    single_session_prefix(CheckpointVariant::Snapshot, VersionGrain::Coarse, false);
}
#[test]
fn foldover_fine_log_only_prefix() {
    // No index checkpoint: recovery replays the log from the beginning.
    single_session_prefix(CheckpointVariant::FoldOver, VersionGrain::Fine, true);
}
#[test]
fn snapshot_coarse_log_only_prefix() {
    single_session_prefix(CheckpointVariant::Snapshot, VersionGrain::Coarse, true);
}

/// Concurrent sessions on disjoint key ranges: after recovery each
/// session sees exactly its prefix up to its own CPR point.
fn concurrent_prefix(variant: CheckpointVariant, grain: VersionGrain) {
    const SESSIONS: u64 = 4;
    const KEYS: u64 = 32;
    let dir = tempfile::tempdir().unwrap();
    {
        let kv = opts(dir.path(), grain).open().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let workers: Vec<_> = (0..SESSIONS)
            .map(|g| {
                let kv = kv.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut s = kv.start_session(g);
                    let mut serial = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        serial += 1;
                        let key = g * KEYS + (serial % KEYS);
                        // value encodes the writing serial
                        s.upsert(key, serial);
                    }
                    while kv.committed_version() < 1 {
                        s.refresh();
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    // Drain pendings before dropping.
                    for _ in 0..1000 {
                        if s.pending_len() == 0 {
                            break;
                        }
                        s.refresh();
                        std::thread::sleep(Duration::from_millis(1));
                    }
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(50));
        assert!(kv.request_checkpoint(variant, false));
        assert!(kv.wait_for_version(1, Duration::from_secs(20)));
        stop.store(true, Ordering::Relaxed);
        for w in workers {
            w.join().unwrap();
        }
    }
    let (kv, manifest) = opts(dir.path(), grain).recover().unwrap();
    let manifest = manifest.unwrap();
    for g in 0..SESSIONS {
        let (mut s, point) = kv.continue_session(g);
        assert_eq!(point, manifest.cpr_point(g).unwrap());
        for k in 0..KEYS {
            let key = g * KEYS + k;
            let got = read_now(&mut s, key);
            // Expected: largest serial ≤ point with serial % KEYS == k.
            let expected = if point == 0 {
                None
            } else {
                let cand = point - ((point % KEYS + KEYS - k) % KEYS);
                (cand >= 1 && cand <= point).then_some(cand)
            };
            assert_eq!(
                got, expected,
                "session {g} key {key}: point {point}, got {got:?}"
            );
        }
    }
}

#[test]
fn concurrent_foldover_fine() {
    concurrent_prefix(CheckpointVariant::FoldOver, VersionGrain::Fine);
}
#[test]
fn concurrent_foldover_coarse() {
    concurrent_prefix(CheckpointVariant::FoldOver, VersionGrain::Coarse);
}
#[test]
fn concurrent_snapshot_fine() {
    concurrent_prefix(CheckpointVariant::Snapshot, VersionGrain::Fine);
}
#[test]
fn concurrent_snapshot_coarse() {
    concurrent_prefix(CheckpointVariant::Snapshot, VersionGrain::Coarse);
}

/// RMW under a concurrent checkpoint: the recovered sums must equal the
/// number of committed increments per the CPR point — i.e. the recovered
/// total equals the sum of per-session points (each op adds exactly 1).
fn rmw_checkpoint_sums(variant: CheckpointVariant, grain: VersionGrain) {
    const SESSIONS: u64 = 3;
    const KEYS: u64 = 4;
    let dir = tempfile::tempdir().unwrap();
    {
        let kv = opts(dir.path(), grain).open().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let workers: Vec<_> = (0..SESSIONS)
            .map(|g| {
                let kv = kv.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut s = kv.start_session(g);
                    let mut n = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        s.rmw(n % KEYS, 1);
                        n += 1;
                    }
                    while kv.committed_version() < 1 || s.pending_len() > 0 {
                        s.refresh();
                        std::thread::sleep(Duration::from_millis(1));
                        if kv.committed_version() >= 1 && s.pending_len() == 0 {
                            break;
                        }
                    }
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(40));
        assert!(kv.request_checkpoint(variant, false));
        assert!(kv.wait_for_version(1, Duration::from_secs(20)));
        stop.store(true, Ordering::Relaxed);
        for w in workers {
            w.join().unwrap();
        }
    }
    let (kv, manifest) = opts(dir.path(), grain).recover().unwrap();
    let manifest = manifest.unwrap();
    let committed_ops: u64 = (0..SESSIONS)
        .map(|g| manifest.cpr_point(g).unwrap_or(0))
        .sum();
    let mut s = kv.start_session(99);
    let mut total = 0u64;
    for k in 0..KEYS {
        total += read_now(&mut s, k).unwrap_or(0);
    }
    assert_eq!(
        total, committed_ops,
        "recovered sums must match committed prefix exactly (all-before, none-after)"
    );
}

#[test]
fn rmw_sums_foldover_fine() {
    rmw_checkpoint_sums(CheckpointVariant::FoldOver, VersionGrain::Fine);
}
#[test]
fn rmw_sums_foldover_coarse() {
    rmw_checkpoint_sums(CheckpointVariant::FoldOver, VersionGrain::Coarse);
}
#[test]
fn rmw_sums_snapshot_fine() {
    rmw_checkpoint_sums(CheckpointVariant::Snapshot, VersionGrain::Fine);
}
#[test]
fn rmw_sums_snapshot_coarse() {
    rmw_checkpoint_sums(CheckpointVariant::Snapshot, VersionGrain::Coarse);
}

/// Two commits in sequence; recovery uses the newest.
#[test]
fn second_commit_supersedes_first() {
    let dir = tempfile::tempdir().unwrap();
    let grain = VersionGrain::Fine;
    {
        let kv = opts(dir.path(), grain).open().unwrap();
        let mut s = kv.start_session(1);
        s.upsert(1, 100);
        assert!(kv.request_checkpoint(CheckpointVariant::FoldOver, false));
        while kv.committed_version() < 1 {
            s.refresh();
        }
        s.upsert(1, 200);
        s.upsert(2, 300);
        assert!(kv.request_checkpoint(CheckpointVariant::FoldOver, true));
        while kv.committed_version() < 2 {
            s.refresh();
        }
        s.upsert(3, 999); // lost
    }
    let (kv, manifest) = opts(dir.path(), grain).recover().unwrap();
    assert_eq!(manifest.unwrap().version, 2);
    let (mut s, point) = kv.continue_session(1);
    assert_eq!(point, 3);
    assert_eq!(read_now(&mut s, 1), Some(200));
    assert_eq!(read_now(&mut s, 2), Some(300));
    assert_eq!(read_now(&mut s, 3), None);
}

/// Deletes before the CPR point stay deleted after recovery.
#[test]
fn committed_deletes_survive_recovery() {
    let dir = tempfile::tempdir().unwrap();
    let grain = VersionGrain::Fine;
    {
        let kv = opts(dir.path(), grain).open().unwrap();
        let mut s = kv.start_session(1);
        s.upsert(1, 10);
        s.upsert(2, 20);
        s.delete(1);
        assert!(kv.request_checkpoint(CheckpointVariant::FoldOver, false));
        while kv.committed_version() < 1 {
            s.refresh();
        }
    }
    let (kv, _) = opts(dir.path(), grain).recover().unwrap();
    let (mut s, _) = kv.continue_session(1);
    assert_eq!(read_now(&mut s, 1), None, "committed delete lost");
    assert_eq!(read_now(&mut s, 2), Some(20));
}

/// Recovery with an evicted (disk-resident) working set: the index scan
/// must stitch records that were already on disk before the commit.
#[test]
fn recovery_with_large_log_and_eviction() {
    let dir = tempfile::tempdir().unwrap();
    let grain = VersionGrain::Coarse;
    {
        let kv = opts(dir.path(), grain).open().unwrap();
        let mut s = kv.start_session(5);
        for k in 0..20_000u64 {
            s.upsert(k % 5000, k);
        }
        assert!(kv.request_checkpoint(CheckpointVariant::FoldOver, false));
        while kv.committed_version() < 1 {
            s.refresh();
        }
        for _ in 0..1000 {
            if s.pending_len() == 0 {
                break;
            }
            s.refresh();
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    let (kv, _) = opts(dir.path(), grain).recover().unwrap();
    let (mut s, point) = kv.continue_session(5);
    assert_eq!(point, 20_000);
    // Spot-check: last writer of key k was upsert with value
    // 15_000 + k (the final round 15000..20000 covered keys 0..5000).
    for k in (0..5000u64).step_by(500) {
        assert_eq!(read_now(&mut s, k), Some(15_000 + k), "key {k}");
    }
}

/// An uncommitted checkpoint directory (crash mid-flush) is ignored.
#[test]
fn crash_during_checkpoint_falls_back_to_previous() {
    let dir = tempfile::tempdir().unwrap();
    let grain = VersionGrain::Fine;
    {
        let kv = opts(dir.path(), grain).open().unwrap();
        let mut s = kv.start_session(1);
        s.upsert(1, 111);
        assert!(kv.request_checkpoint(CheckpointVariant::FoldOver, false));
        while kv.committed_version() < 1 {
            s.refresh();
        }
    }
    // Fake a torn second checkpoint: directory without manifest.
    std::fs::create_dir_all(dir.path().join("checkpoints/cpt.99")).unwrap();
    std::fs::write(dir.path().join("checkpoints/cpt.99/index.dat"), b"junk").unwrap();
    let (kv, manifest) = opts(dir.path(), grain).recover().unwrap();
    assert_eq!(manifest.unwrap().version, 1);
    let (mut s, _) = kv.continue_session(1);
    assert_eq!(read_now(&mut s, 1), Some(111));
}

/// A manifest torn mid-write (truncated JSON) reads as *uncommitted*:
/// recovery must skip it and fall back to the previous checkpoint
/// rather than panicking on the parse.
#[test]
fn torn_manifest_reads_as_uncommitted() {
    let dir = tempfile::tempdir().unwrap();
    let grain = VersionGrain::Fine;
    {
        let kv = opts(dir.path(), grain).open().unwrap();
        let mut s = kv.start_session(1);
        s.upsert(1, 111);
        assert!(kv.request_checkpoint(CheckpointVariant::FoldOver, false));
        while kv.committed_version() < 1 {
            s.refresh();
        }
    }
    // Fake a torn later checkpoint: a manifest cut off mid-JSON, as a
    // power failure during the (non-atomic) write would leave it.
    let good = std::fs::read(dir.path().join("checkpoints/cpt.1/manifest.json")).unwrap();
    std::fs::create_dir_all(dir.path().join("checkpoints/cpt.99")).unwrap();
    std::fs::write(
        dir.path().join("checkpoints/cpt.99/manifest.json"),
        &good[..good.len() / 2],
    )
    .unwrap();
    std::fs::write(dir.path().join("checkpoints/cpt.99/index.dat"), b"junk").unwrap();
    let (kv, manifest) = opts(dir.path(), grain).recover().unwrap();
    assert_eq!(manifest.unwrap().version, 1);
    let (mut s, _) = kv.continue_session(1);
    assert_eq!(read_now(&mut s, 1), Some(111));
}

/// continue_session for an unknown guid starts from serial 0.
#[test]
fn continue_unknown_session_starts_fresh() {
    let dir = tempfile::tempdir().unwrap();
    let grain = VersionGrain::Fine;
    {
        let kv = opts(dir.path(), grain).open().unwrap();
        let mut s = kv.start_session(1);
        s.upsert(1, 1);
        assert!(kv.request_checkpoint(CheckpointVariant::FoldOver, false));
        while kv.committed_version() < 1 {
            s.refresh();
        }
    }
    let (kv, _) = opts(dir.path(), grain).recover().unwrap();
    let (s, point) = kv.continue_session(777);
    assert_eq!(point, 0);
    assert_eq!(s.serial(), 0);
}
