//! Checkpoint storm: many back-to-back commits under concurrent load,
//! alternating variants, with recovery at the end. Exercises state
//! machine re-arming, incremental fold-overs, pending hand-off across
//! consecutive version shifts, and monotone CPR points.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cpr_faster::{
    CheckpointVariant, FasterBuilder, HlogConfig, ReadResult, VersionGrain,
};

fn opts(dir: &std::path::Path, grain: VersionGrain) -> FasterBuilder<u64> {
    FasterBuilder::u64_sums(dir)
        .hlog(HlogConfig {
            page_bits: 12,
            memory_pages: 32,
            mutable_pages: 16,
            value_size: 8,
        })
        .grain(grain)
        .refresh_every(8)
}

fn storm(grain: VersionGrain) {
    const SESSIONS: u64 = 3;
    const COMMITS: u64 = 8;
    const KEYS: u64 = 64;
    let dir = tempfile::tempdir().unwrap();
    {
        let kv = opts(dir.path(), grain).open().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let workers: Vec<_> = (0..SESSIONS)
            .map(|g| {
                let kv = kv.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut s = kv.start_session(g);
                    let mut n = 0u64;
                    let mut last_durable = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        // Mix of ops sharing keys across sessions.
                        match n % 3 {
                            0 => {
                                s.rmw(n % KEYS, 1);
                            }
                            1 => {
                                s.upsert(KEYS + (n % KEYS), (g << 32) | n);
                            }
                            _ => {
                                let _ = s.read(n % (2 * KEYS));
                            }
                        }
                        n += 1;
                        // CPR points must be monotone throughout.
                        let d = s.durable_serial();
                        assert!(d >= last_durable, "durable prefix regressed");
                        assert!(d <= s.serial());
                        last_durable = d;
                    }
                    // Drain before exit.
                    for _ in 0..10_000 {
                        if s.pending_len() == 0 && kv.state().0 == cpr_core::Phase::Rest
                        {
                            break;
                        }
                        s.refresh();
                        std::thread::sleep(Duration::from_micros(200));
                    }
                })
            })
            .collect();

        // Fire commits back to back, alternating every knob.
        for round in 1..=COMMITS {
            let variant = if round % 2 == 0 {
                CheckpointVariant::Snapshot
            } else {
                CheckpointVariant::FoldOver
            };
            let log_only = round % 3 == 0;
            // The state machine may still be mid-commit: spin until the
            // request is accepted.
            let deadline = std::time::Instant::now() + Duration::from_secs(20);
            while !kv.request_checkpoint(variant, log_only) {
                assert!(
                    std::time::Instant::now() < deadline,
                    "previous commit never completed (round {round}, state {:?})",
                    kv.state()
                );
                std::thread::sleep(Duration::from_millis(1));
            }
            assert!(
                kv.wait_for_version(round, Duration::from_secs(30)),
                "commit {round} stalled in {:?}",
                kv.state()
            );
        }
        stop.store(true, Ordering::Relaxed);
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(kv.committed_version(), COMMITS);
    }

    // Recovery lands on the last commit and the store is fully usable.
    let (kv, manifest) = opts(dir.path(), grain).recover().unwrap();
    let manifest = manifest.unwrap();
    assert_eq!(manifest.version, COMMITS);
    assert_eq!(manifest.sessions.len() as u64, SESSIONS);
    let (mut s, point) = kv.continue_session(0);
    assert_eq!(point, manifest.cpr_point(0).unwrap());
    // The store accepts new work and a fresh commit after recovery.
    s.upsert(1, 424242);
    assert!(kv.request_checkpoint(CheckpointVariant::FoldOver, true));
    while kv.committed_version() < COMMITS + 1 {
        s.refresh();
    }
    match s.read(1) {
        ReadResult::Found(v) => assert_eq!(v, 424242),
        ReadResult::Pending => {
            let mut out = Vec::new();
            loop {
                s.refresh();
                s.drain_completions(&mut out);
                if let Some(c) = out.iter().find(|c| c.key == 1) {
                    assert_eq!(c.value, Some(424242));
                    break;
                }
                std::thread::sleep(Duration::from_micros(100));
            }
        }
        ReadResult::NotFound => panic!("post-recovery write lost"),
        ReadResult::Evicted => panic!("session evicted"),
    }
}

#[test]
fn checkpoint_storm_fine_grain() {
    storm(VersionGrain::Fine);
}

#[test]
fn checkpoint_storm_coarse_grain() {
    storm(VersionGrain::Coarse);
}
