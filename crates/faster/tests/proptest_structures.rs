//! Property-based tests of FASTER's core structures against reference
//! models: header packing, page arithmetic, the hash index vs a HashMap,
//! and HybridLog write/read round-trips under random schedules.

use std::collections::HashMap;

use proptest::prelude::*;

use cpr_faster::addr::{PageLayout, ADDRESS_MASK};
use cpr_faster::header::{version13, Header, RecordLayout};
use cpr_faster::index::{key_hash, HashIndex};

proptest! {
    #[test]
    fn header_pack_unpack_roundtrip(
        prev in 0u64..=ADDRESS_MASK,
        version in 0u64..8192,
        invalid: bool,
        tombstone: bool,
    ) {
        let h = Header { prev, version, invalid, tombstone };
        prop_assert_eq!(Header::unpack(h.pack()), h);
    }

    #[test]
    fn header_new_truncates_prev_and_version(prev: u64, version: u64) {
        let h = Header::new(prev, version);
        prop_assert_eq!(h.prev, prev & ADDRESS_MASK);
        prop_assert_eq!(h.version, version13(version));
        prop_assert!(!h.invalid && !h.tombstone);
    }

    #[test]
    fn page_layout_split_join(page_bits in 9u32..=24, addr in 0u64..=ADDRESS_MASK) {
        let l = PageLayout::new(page_bits);
        let (p, o) = (l.page(addr), l.offset(addr));
        prop_assert_eq!(l.address(p, o), addr);
        prop_assert!(o < l.page_size());
        prop_assert_eq!(l.page_start(p) + o, addr);
    }

    #[test]
    fn record_layout_invariants(value_size in 1usize..=4096) {
        let r = RecordLayout::new(value_size);
        prop_assert_eq!(r.record_size() % 8, 0, "records are word-aligned");
        prop_assert!(r.record_size() >= 16 + value_size);
        prop_assert!(r.record_size() < 16 + value_size + 8);
        prop_assert_eq!(r.value_words() * 8, r.record_size() - 16);
    }

    /// The index behaves like a map from key-hash groups to the last
    /// installed address, modulo (bucket, tag) collisions — which must
    /// *merge* keys, never lose or corrupt entries.
    #[test]
    fn index_against_model(
        ops in prop::collection::vec((0u64..200, 24u64..1_000_000), 1..300),
    ) {
        let idx = HashIndex::new(64);
        // Model keyed by (bucket, tag): the index's actual resolution.
        let mut model: HashMap<(usize, u64), u64> = HashMap::new();
        let tag_of = |key: u64| {
            // Mirror the index's private tag: verified indirectly — two
            // keys share a slot iff bucket and top bits collide. We model
            // by bucket + full hash>>49.
            (key_hash(key) >> 49) & ((1 << 14) - 1)
        };
        for &(key, addr) in &ops {
            let addr = addr & !7; // aligned, >= 24
            let h = key_hash(key);
            let slot = idx.find_or_create(h);
            loop {
                let cur = slot.address();
                if slot.try_update(cur, addr) {
                    break;
                }
            }
            model.insert((idx.bucket_index(h), tag_of(key)), addr);
        }
        for &(key, _) in &ops {
            let h = key_hash(key);
            let got = idx.find(h).map(|s| s.address());
            let want = model.get(&(idx.bucket_index(h), tag_of(key))).copied();
            prop_assert_eq!(got, want, "key {}", key);
        }
    }

    /// Dump/load keeps every slot's address.
    #[test]
    fn index_dump_load_preserves_slots(
        keys in prop::collection::hash_set(0u64..500, 1..120),
    ) {
        let idx = HashIndex::new(64);
        for &k in &keys {
            let slot = idx.find_or_create(key_hash(k));
            loop {
                let cur = slot.address();
                if slot.try_update(cur, 24 * (k + 1)) {
                    break;
                }
            }
        }
        let restored = HashIndex::load(&idx.dump()).unwrap();
        for &k in &keys {
            prop_assert_eq!(
                idx.find(key_hash(k)).map(|s| s.address()),
                restored.find(key_hash(k)).map(|s| s.address()),
                "key {}", k
            );
        }
    }
}

mod hlog_props {
    use super::*;
    use cpr_epoch::EpochManager;
    use cpr_faster::hlog::{HlogConfig, HybridLog};
    use cpr_storage::MemDevice;
    use std::sync::Arc;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// Random write schedules round-trip through the log, offsets
        /// stay ordered, and flushed prefixes match the device bytes.
        #[test]
        fn writes_roundtrip_and_offsets_are_ordered(
            writes in prop::collection::vec((0u64..1000, 0u64..u64::MAX), 1..400),
        ) {
            let epoch = Arc::new(EpochManager::new(4));
            let dev = MemDevice::new();
            let log = HybridLog::new(
                HlogConfig {
                    page_bits: 10, // 1 KiB pages: force rollover + flush
                    memory_pages: 8,
                    mutable_pages: 4,
                    value_size: 8,
                },
                dev,
                Arc::clone(&epoch),
            );
            let guard = epoch.register();
            let mut written = Vec::new();
            for (i, &(key, val)) in writes.iter().enumerate() {
                let addr = log.allocate(&guard);
                log.write_record(addr, Header::new(0, 1), key, &[val]);
                written.push((addr, key, val));
                if i % 8 == 0 {
                    guard.refresh();
                }
                // Offsets invariant at every step.
                prop_assert!(log.head() <= log.safe_read_only());
                prop_assert!(log.safe_read_only() <= log.read_only());
                prop_assert!(log.read_only() <= log.tail());
            }
            guard.refresh();
            // Everything still in memory reads back exactly.
            let head = log.head();
            for &(addr, key, val) in &written {
                if addr >= head {
                    prop_assert_eq!(log.key_at(addr), key);
                    let mut w = [0u64; 1];
                    log.value_at(addr, &mut w);
                    prop_assert_eq!(w[0], val);
                }
            }
            // Flushed prefix matches the device byte-for-byte.
            log.wait_flushed(log.safe_read_only()).unwrap();
            let flushed = log.flushed_durable();
            for &(addr, key, val) in &written {
                if addr + 24 <= flushed {
                    let mut buf = [0u8; 24];
                    log.device().read_at(addr, &mut buf).unwrap();
                    prop_assert_eq!(
                        u64::from_le_bytes(buf[8..16].try_into().unwrap()),
                        key
                    );
                    prop_assert_eq!(
                        u64::from_le_bytes(buf[16..24].try_into().unwrap()),
                        val
                    );
                }
            }
        }
    }
}
