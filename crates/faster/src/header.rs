//! Record headers and on-log record layout.
//!
//! Every HybridLog record is `[header u64][key u64][value, padded to 8]`.
//! The 64-bit header packs (paper Sec. 6.2):
//!
//! ```text
//!   bits  0..47   previous address (reverse chain within a hash slot)
//!   bits 48..60   13-bit version number v
//!   bit  61       invalid
//!   bit  62       tombstone
//!   bit  63       spare (always 0)
//! ```
//!
//! The 13-bit version stores `v mod 8192`; comparisons against the current
//! checkpoint version use the same truncation. A wrap cannot be confused
//! across a single checkpoint because at most two versions (`v`, `v + 1`)
//! coexist in the log at any time.

use crate::addr::{Address, ADDRESS_MASK};

pub const VERSION_BITS: u32 = 13;
pub const VERSION_MASK: u64 = (1 << VERSION_BITS) - 1;
const VERSION_SHIFT: u32 = 48;
const INVALID_BIT: u64 = 1 << 61;
const TOMBSTONE_BIT: u64 = 1 << 62;

/// Truncate a full version to its 13-bit header representation.
#[inline]
pub fn version13(v: u64) -> u64 {
    v & VERSION_MASK
}

/// Decoded record header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    pub prev: Address,
    /// 13-bit truncated version.
    pub version: u64,
    pub invalid: bool,
    pub tombstone: bool,
}

impl Header {
    pub fn new(prev: Address, version: u64) -> Self {
        Header {
            prev: prev & ADDRESS_MASK,
            version: version13(version),
            invalid: false,
            tombstone: false,
        }
    }

    #[inline]
    pub fn pack(&self) -> u64 {
        (self.prev & ADDRESS_MASK)
            | (self.version << VERSION_SHIFT)
            | if self.invalid { INVALID_BIT } else { 0 }
            | if self.tombstone { TOMBSTONE_BIT } else { 0 }
    }

    #[inline]
    pub fn unpack(word: u64) -> Self {
        Header {
            prev: word & ADDRESS_MASK,
            version: (word >> VERSION_SHIFT) & VERSION_MASK,
            invalid: word & INVALID_BIT != 0,
            tombstone: word & TOMBSTONE_BIT != 0,
        }
    }

    pub fn with_invalid(mut self) -> Self {
        self.invalid = true;
        self
    }

    pub fn with_tombstone(mut self) -> Self {
        self.tombstone = true;
        self
    }
}

/// Byte layout of records for a value type of `value_size` bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordLayout {
    pub value_size: usize,
}

impl RecordLayout {
    pub fn new(value_size: usize) -> Self {
        RecordLayout { value_size }
    }

    /// Total record size: header + key + value, padded to 8 bytes.
    #[inline]
    pub fn record_size(&self) -> usize {
        16 + self.value_size.div_ceil(8) * 8
    }

    /// Number of 8-byte words occupied by the value (padded).
    #[inline]
    pub fn value_words(&self) -> usize {
        self.value_size.div_ceil(8)
    }

    #[inline]
    pub fn key_offset(&self) -> usize {
        8
    }

    #[inline]
    pub fn value_offset(&self) -> usize {
        16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        for prev in [0u64, 1, 0xFFFF_FFFF_FFFF] {
            for version in [0u64, 1, 8191] {
                for invalid in [false, true] {
                    for tombstone in [false, true] {
                        let h = Header {
                            prev,
                            version,
                            invalid,
                            tombstone,
                        };
                        assert_eq!(Header::unpack(h.pack()), h);
                    }
                }
            }
        }
    }

    #[test]
    fn version_truncates_to_13_bits() {
        assert_eq!(version13(8192), 0);
        assert_eq!(version13(8193), 1);
        let h = Header::new(0, 10000);
        assert_eq!(h.version, version13(10000));
    }

    #[test]
    fn flags_do_not_disturb_prev() {
        let h = Header::new(0xABCD_EF01_2345, 7)
            .with_invalid()
            .with_tombstone();
        let u = Header::unpack(h.pack());
        assert_eq!(u.prev, 0xABCD_EF01_2345);
        assert!(u.invalid && u.tombstone);
    }

    #[test]
    fn record_sizes_are_padded() {
        assert_eq!(RecordLayout::new(8).record_size(), 24);
        assert_eq!(RecordLayout::new(100).record_size(), 16 + 104);
        assert_eq!(RecordLayout::new(1).record_size(), 24);
        assert_eq!(RecordLayout::new(100).value_words(), 13);
    }
}
