//! A from-scratch Rust implementation of the **FASTER** key-value store
//! with **Concurrent Prefix Recovery (CPR)** durability — the larger-than-
//! memory system of the paper's Secs. 5–6.
//!
//! Components:
//! * [`index::HashIndex`] — latch-free hash index (8-entry cache-line
//!   buckets, tentative-bit inserts, fuzzy checkpoints);
//! * [`hlog::HybridLog`] — log-structured record store spanning memory
//!   and storage with in-place updates in the mutable region;
//! * [`FasterSession`] — sessions with monotone serial numbers, pending
//!   operations, and per-session CPR points;
//! * checkpoints — fold-over & snapshot variants, fine- & coarse-grained
//!   version shifts, fuzzy index checkpoints, and Alg. 3 recovery.
//!
//! # Quickstart
//! ```
//! use cpr_faster::{CheckpointVariant, FasterBuilder, ReadResult, Status};
//!
//! let dir = tempfile::tempdir().unwrap();
//! let kv = FasterBuilder::u64_sums(dir.path()).open().unwrap();
//! let mut session = kv.start_session(7);
//!
//! assert_eq!(session.upsert(1, 100), Status::Ok);
//! assert_eq!(session.rmw(1, 5), Status::Ok); // running sum
//! assert_eq!(session.read(1), ReadResult::Found(105));
//!
//! // CPR commit: returns immediately; sessions keep working and the
//! // commit completes as they refresh.
//! assert!(kv.request_checkpoint(CheckpointVariant::FoldOver, false));
//! while kv.committed_version() < 1 {
//!     session.refresh();
//! }
//! assert_eq!(session.durable_serial(), 3);
//! ```

pub mod addr;
mod checkpoint;
pub mod header;
pub mod hlog;
pub mod index;
mod io;
mod recovery;
mod session;
mod store;
mod watchdog;

pub use cpr_core::liveness::{
    Clock, CommitOutcome, LivenessConfig, SessionStatus, SystemClock, VirtualClock,
};
pub use cpr_core::{CheckpointVersion, SessionInfo};
pub use hlog::{HlogConfig, HybridLog};
pub use index::HashIndex;
pub use session::{Completion, FasterSession, OpKind, ReadResult, SessionStats, Status};
pub use store::{
    CheckpointVariant, CommitCallback, FasterBuilder, FasterKv, FasterOptions, FasterStore,
    VersionGrain,
};
