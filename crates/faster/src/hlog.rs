//! HybridLog: the log-structured record store spanning memory and storage
//! (paper Sec. 5.1).
//!
//! The logical address space is divided into a *stable* region (on the
//! device), an immutable in-memory *read-only* region, and an in-memory
//! *mutable* region where records are updated in place. Offsets:
//!
//! ```text
//!   0 ....... head ....... safe_read_only ... read_only ....... tail
//!   [device ][   in-memory, immutable      ][ in-memory, mutable ]
//!                          (fuzzy region between safe-ro and ro)
//! ```
//!
//! All offsets only ever advance. `read_only` and `head` are maintained at
//! a lag from the tail; their *safe* counterparts trail them by one epoch
//! bump so that no thread can be acting on a stale offset when pages are
//! flushed or frames reused (the lost-update protection of Sec. 5.1).
//!
//! Frames hold pages as `AtomicU64` words: record fields are word-aligned,
//! so in-place updates and concurrent reads are tear-free at word
//! granularity without locks.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cpr_epoch::{EpochManager, Guard};
use cpr_storage::{Device, IoHandle};
use crossbeam_utils::CachePadded;
use parking_lot::Mutex;

use crate::addr::{Address, PageLayout};
use crate::header::{Header, RecordLayout};

/// HybridLog sizing.
#[derive(Debug, Clone, Copy)]
pub struct HlogConfig {
    /// log2 of the page size in bytes.
    pub page_bits: u32,
    /// Number of in-memory page frames.
    pub memory_pages: usize,
    /// Pages kept mutable (the read-only offset lags the tail by this).
    pub mutable_pages: usize,
    /// Value size in bytes.
    pub value_size: usize,
}

impl HlogConfig {
    pub fn small_for_tests() -> Self {
        HlogConfig {
            page_bits: 12, // 4 KiB pages
            memory_pages: 8,
            mutable_pages: 4,
            value_size: 8,
        }
    }

    pub fn validate(&self) {
        assert!(
            self.memory_pages.is_power_of_two(),
            "memory_pages must be 2^k"
        );
        assert!(
            self.mutable_pages >= 1 && self.mutable_pages < self.memory_pages,
            "mutable_pages must be in [1, memory_pages)"
        );
        let rec = RecordLayout::new(self.value_size).record_size() as u64;
        assert!(
            rec * 4 <= (1u64 << self.page_bits),
            "page size {} too small for record size {rec}",
            1u64 << self.page_bits
        );
    }
}

struct Frame {
    words: Box<[AtomicU64]>,
}

impl Frame {
    fn new(words: usize) -> Self {
        Frame {
            words: (0..words).map(|_| AtomicU64::new(0)).collect(),
        }
    }
    fn zero(&self) {
        for w in self.words.iter() {
            w.store(0, Ordering::Relaxed);
        }
    }
}

/// The log-structured record store. See module docs.
///
/// ## Tail representation
/// Records must not straddle pages, and record sizes (e.g. 24 bytes) need
/// not divide the power-of-two page size, so the tail is a packed
/// *(page, offset)* word (as in FASTER): `page << 32 | offset`. A
/// fetch-add reserves `record_size` in the current page; the thread whose
/// reservation crosses the page boundary becomes the new page's claimant
/// and resets the offset, wasting the slack at the end of the old page
/// (zeroed; scans skip zero headers).
pub struct HybridLog {
    pub layout: PageLayout,
    pub rec: RecordLayout,
    cfg: HlogConfig,
    frames: Box<[Frame]>,
    /// `page + 1` currently resident in each frame (0 = empty).
    page_table: Box<[AtomicU64]>,
    /// Packed `(page << 32) | offset` tail.
    tail_po: CachePadded<AtomicU64>,
    read_only: CachePadded<AtomicU64>,
    safe_read_only: CachePadded<AtomicU64>,
    head: CachePadded<AtomicU64>,
    safe_head: CachePadded<AtomicU64>,
    /// Start of the not-yet-enqueued-for-flush region (guarded by lock).
    flush_state: Mutex<FlushState>,
    flushed_durable: CachePadded<AtomicU64>,
    /// Count of flush I/O errors observed (each failed attempt counts;
    /// failed ranges are retried because eviction gates on
    /// `flushed_durable`, keeping them frame-resident and re-copyable).
    flush_failures: CachePadded<AtomicU64>,
    device: Arc<dyn Device>,
    epoch: Arc<EpochManager>,
}

struct FlushState {
    enqueued: u64,
    inflight: Vec<InflightFlush>,
}

/// Granularity of checkpoint-flush scatter-gather writes. Ranges at or
/// below one chunk issue exactly one buffer, so small (test-sized)
/// flushes behave byte-for-byte like the old single-write path.
const FLUSH_CHUNK_BYTES: u64 = 1 << 20;

struct InflightFlush {
    start: u64,
    target: u64,
    handle: IoHandle,
}

impl HybridLog {
    pub fn new(cfg: HlogConfig, device: Arc<dyn Device>, epoch: Arc<EpochManager>) -> Arc<Self> {
        cfg.validate();
        let layout = PageLayout::new(cfg.page_bits);
        let rec = RecordLayout::new(cfg.value_size);
        let words_per_page = (layout.page_size() / 8) as usize;
        let frames = (0..cfg.memory_pages)
            .map(|_| Frame::new(words_per_page))
            .collect::<Vec<_>>()
            .into();
        let page_table = (0..cfg.memory_pages)
            .map(|i| AtomicU64::new(if i == 0 { 1 } else { 0 })) // page 0 resident
            .collect::<Vec<_>>()
            .into();
        let begin = rec.record_size() as u64; // address 0 is reserved
        Arc::new(HybridLog {
            layout,
            rec,
            cfg,
            frames,
            page_table,
            tail_po: CachePadded::new(AtomicU64::new(begin)), // page 0, offset = begin
            read_only: CachePadded::new(AtomicU64::new(0)),
            safe_read_only: CachePadded::new(AtomicU64::new(0)),
            head: CachePadded::new(AtomicU64::new(0)),
            safe_head: CachePadded::new(AtomicU64::new(0)),
            flush_state: Mutex::new(FlushState {
                enqueued: 0,
                inflight: Vec::new(),
            }),
            flushed_durable: CachePadded::new(AtomicU64::new(0)),
            flush_failures: CachePadded::new(AtomicU64::new(0)),
            device,
            epoch,
        })
    }

    /// First valid record address.
    pub fn begin_address(&self) -> Address {
        self.rec.record_size() as u64
    }

    /// Logical tail: every record below this address is allocated.
    pub fn tail(&self) -> Address {
        let po = self.tail_po.load(Ordering::Acquire);
        let page = po >> 32;
        let off = (po & 0xFFFF_FFFF).min(self.layout.page_size());
        self.layout.page_start(page) + off
    }
    pub fn read_only(&self) -> Address {
        self.read_only.load(Ordering::Acquire)
    }
    pub fn safe_read_only(&self) -> Address {
        self.safe_read_only.load(Ordering::Acquire)
    }
    pub fn head(&self) -> Address {
        self.head.load(Ordering::Acquire)
    }
    pub fn flushed_durable(&self) -> Address {
        self.flushed_durable.load(Ordering::Acquire)
    }
    pub fn device(&self) -> &Arc<dyn Device> {
        &self.device
    }
    pub fn config(&self) -> &HlogConfig {
        &self.cfg
    }

    /// In-memory bytes currently addressable (tail − head).
    pub fn in_memory_bytes(&self) -> u64 {
        self.tail().saturating_sub(self.head())
    }

    #[inline]
    fn frame_of(&self, page: u64) -> &Frame {
        &self.frames[(page as usize) & (self.cfg.memory_pages - 1)]
    }

    #[inline]
    fn page_cell(&self, page: u64) -> &AtomicU64 {
        &self.page_table[(page as usize) & (self.cfg.memory_pages - 1)]
    }

    /// True if `page` is resident (its frame currently maps it).
    #[inline]
    fn resident(&self, page: u64) -> bool {
        self.page_cell(page).load(Ordering::Acquire) == page + 1
    }

    /// Word cell at logical `addr` (must be 8-aligned and resident; the
    /// caller guarantees `addr >= head` within one epoch period).
    #[inline]
    pub fn word(&self, addr: Address) -> &AtomicU64 {
        debug_assert_eq!(addr % 8, 0);
        let page = self.layout.page(addr);
        debug_assert!(self.resident(page), "access to non-resident page {page}");
        let off = (self.layout.offset(addr) / 8) as usize;
        &self.frame_of(page).words[off]
    }

    /// Allocate one record slot at the tail; returns its address.
    ///
    /// The thread whose reservation crosses the page boundary becomes the
    /// next page's *claimant*: it advances the read-only and head offsets
    /// (keeping their lags), waits for the frame to be evictable, installs
    /// the page, and resets the tail offset. Threads that overshoot while
    /// the claimant works spin, refreshing their epoch so trigger actions
    /// keep making progress.
    pub fn allocate(&self, guard: &Guard) -> Address {
        let size = self.rec.record_size() as u64;
        let psz = self.layout.page_size();
        loop {
            let old = self.tail_po.fetch_add(size, Ordering::AcqRel);
            let page = old >> 32;
            let off = old & 0xFFFF_FFFF;
            if off + size <= psz {
                // Common case: fits in the current page (resident by
                // construction: the claimant installed it before
                // publishing the offset reset).
                return self.layout.page_start(page) + off;
            }
            if off <= psz {
                // We crossed the boundary: claim the next page. The slack
                // [off, psz) stays zero and is skipped by scans.
                self.claim_page(page + 1, guard);
                self.tail_po
                    .store(((page + 1) << 32) | size, Ordering::Release);
                return self.layout.page_start(page + 1);
            }
            // Overshot while the claimant works: wait for the reset.
            let mut spins = 0u64;
            while self.tail_po.load(Ordering::Acquire) >> 32 == page {
                spins += 1;
                if spins.is_multiple_of(64) {
                    guard.refresh();
                    self.poll_flushes();
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }

    /// Prepare the frame for `page` and install it.
    fn claim_page(&self, page: u64, guard: &Guard) {
        // Maintain lags: read_only trails by mutable_pages, head by the
        // frame count.
        if page + 1 > self.cfg.mutable_pages as u64 {
            let ro = self
                .layout
                .page_start(page + 1 - self.cfg.mutable_pages as u64);
            self.shift_read_only_to(ro);
        }
        if page + 1 > self.cfg.memory_pages as u64 {
            let desired = self
                .layout
                .page_start(page + 1 - self.cfg.memory_pages as u64);
            // Never advance head past read_only: the region between them
            // must stay in memory for in-place updates.
            let target = desired.min(self.read_only());
            let old = self.head.fetch_max(target, Ordering::AcqRel);
            if old < target {
                let this = self.self_arc();
                self.epoch.bump_epoch(
                    None,
                    Box::new(move || {
                        this.safe_head.fetch_max(target, Ordering::AcqRel);
                    }),
                );
            }
        }
        // Wait until the frame's previous page is evictable: flushed to
        // the device and below the safe head.
        let cell = self.page_cell(page);
        let mut spins = 0u64;
        loop {
            let cur = cell.load(Ordering::Acquire);
            if cur == 0 {
                break;
            }
            let prev_page = cur - 1;
            debug_assert!(prev_page < page);
            let prev_end = self.layout.page_start(prev_page + 1);
            if self.safe_head.load(Ordering::Acquire) >= prev_end
                && self.flushed_durable() >= prev_end
            {
                break;
            }
            spins += 1;
            if spins.is_multiple_of(16) {
                guard.refresh();
                self.epoch.try_drain();
                self.poll_flushes();
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        self.frame_of(page).zero();
        cell.store(page + 1, Ordering::Release);
    }

    /// Obtain an owning handle to ourselves for epoch trigger actions.
    ///
    /// Sound because `HybridLog::new` is the only constructor and returns
    /// `Arc<Self>`, so `self` is always managed by an Arc.
    fn self_arc(&self) -> Arc<HybridLog> {
        unsafe {
            let ptr = self as *const HybridLog;
            Arc::increment_strong_count(ptr);
            Arc::from_raw(ptr)
        }
    }

    /// Advance the read-only offset to at least `target` (fold-over
    /// commits pass the tail). Schedules the safe-read-only shift and the
    /// flush of the newly immutable region on the epoch framework.
    pub fn shift_read_only_to(&self, target: Address) {
        let target = target.min(self.tail());
        let old = self.read_only.fetch_max(target, Ordering::AcqRel);
        if old >= target {
            return;
        }
        let this = self.self_arc();
        self.epoch.bump_epoch(
            None,
            Box::new(move || {
                this.safe_read_only.fetch_max(target, Ordering::AcqRel);
                this.enqueue_flush(target);
            }),
        );
    }

    /// Queue device writes for `[enqueued, target)` as one scatter-gather
    /// write of [`FLUSH_CHUNK_BYTES`]-sized buffers: on a pooled device
    /// the chunks land on different writer queues and flush in parallel,
    /// while a fault-injecting decorator still counts the whole range as
    /// a single operation (its `write_vectored_at` concatenates).
    fn enqueue_flush(&self, target: Address) {
        let mut st = self.flush_state.lock();
        if st.enqueued >= target {
            return;
        }
        let start = st.enqueued;
        let mut bufs = Vec::new();
        let mut at = start;
        while at < target {
            let next = (at + FLUSH_CHUNK_BYTES).min(target);
            bufs.push(self.copy_range(at, next));
            at = next;
        }
        let handle = self.device.write_vectored_at(start, bufs);
        st.inflight.push(InflightFlush {
            start,
            target,
            handle,
        });
        st.enqueued = target;
    }

    /// Flush I/O errors observed so far (see [`Self::wait_flushed`]).
    pub fn flush_failures(&self) -> u64 {
        self.flush_failures.load(Ordering::Acquire)
    }

    /// Fold completed flushes into the durable horizon. A failed flush is
    /// counted and re-issued: its range is still frame-resident (eviction
    /// gates on `flushed_durable`), so the bytes can be re-copied. At most
    /// one retry is issued per call so an instantly-failing device (e.g. a
    /// simulated crash) cannot spin this into a busy loop.
    pub fn poll_flushes(&self) {
        let mut st = self.flush_state.lock();
        while let Some(f) = st.inflight.first() {
            if !f.handle.is_done() {
                break;
            }
            match f.handle.wait() {
                Ok(()) => {
                    self.flushed_durable.fetch_max(f.target, Ordering::AcqRel);
                    st.inflight.remove(0);
                }
                Err(_) => {
                    self.flush_failures.fetch_add(1, Ordering::AcqRel);
                    let (start, target) = (f.start, f.target);
                    let mut bufs = Vec::new();
                    let mut at = start;
                    while at < target {
                        let next = (at + FLUSH_CHUNK_BYTES).min(target);
                        bufs.push(self.copy_range(at, next));
                        at = next;
                    }
                    st.inflight[0] = InflightFlush {
                        start,
                        target,
                        handle: self.device.write_vectored_at(start, bufs),
                    };
                    break;
                }
            }
        }
    }

    /// Block until everything up to `target` is durable, keeping the
    /// epoch drain moving (used by the checkpoint worker). Returns an
    /// error as soon as any flush attempt fails while waiting, so a
    /// checkpoint against a dead device aborts instead of hanging (the
    /// failed range keeps being retried in the background and may still
    /// become durable later).
    pub fn wait_flushed(&self, target: Address) -> io::Result<()> {
        let baseline = self.flush_failures();
        loop {
            if self.flushed_durable() >= target {
                return Ok(());
            }
            if self.flush_failures() != baseline {
                return Err(io::Error::other(format!(
                    "log flush failed below {target:#x}"
                )));
            }
            self.epoch.try_drain();
            self.poll_flushes();
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    }

    /// Copy the resident byte range `[start, end)` out of the frames
    /// (word-wise; wrap-aware across pages). The range must be resident —
    /// guaranteed for anything not yet flushed.
    pub fn copy_range(&self, start: Address, end: Address) -> Vec<u8> {
        assert!(start <= end);
        let mut out = Vec::with_capacity((end - start) as usize);
        let mut addr = start;
        while addr < end {
            let page = self.layout.page(addr);
            let page_end = self.layout.page_start(page + 1).min(end);
            debug_assert!(self.resident(page), "flush of evicted page {page}");
            let frame = self.frame_of(page);
            let w0 = (self.layout.offset(addr) / 8) as usize;
            let w1 = ((self.layout.offset(page_end - 1) / 8) + 1) as usize;
            for w in &frame.words[w0..w1] {
                out.extend_from_slice(&w.load(Ordering::Relaxed).to_le_bytes());
            }
            addr = page_end;
        }
        out
    }

    /// Read `[start, end)` from the durable log image on the device,
    /// bypassing in-memory frames. Only valid below [`Self::head`]:
    /// after [`Self::restore_at`] the recovered prefix exists *only* on
    /// the device (the tail page's frame is zeroed), so frame-first
    /// reads of that region see slack. The [`Device::read_at`] contract
    /// zero-fills past the physical end of the file, so a freshly
    /// truncated or sparse `log.dat` reads as "no record" rather than
    /// failing with a short read.
    pub fn read_durable(&self, start: Address, end: Address) -> io::Result<Vec<u8>> {
        assert!(start <= end);
        let mut buf = vec![0u8; (end - start) as usize];
        self.device.read_at(start, &mut buf)?;
        Ok(buf)
    }

    /// Copy `[start, end)` tolerating concurrent eviction: pages are read
    /// from their frame when resident, from the device otherwise (an
    /// evicted page is flushed by construction). Used by snapshot commits,
    /// whose source region may be flushed+evicted mid-copy. Device read
    /// errors (e.g. injected faults) propagate so the caller can abort.
    pub fn read_range(&self, start: Address, end: Address) -> io::Result<Vec<u8>> {
        assert!(start <= end);
        let mut out = Vec::with_capacity((end - start) as usize);
        let mut addr = start;
        while addr < end {
            let page = self.layout.page(addr);
            let page_end = self.layout.page_start(page + 1).min(end);
            let len = (page_end - addr) as usize;
            let mut chunk = Vec::with_capacity(len);
            let from_frame = self.resident(page) && {
                let frame = self.frame_of(page);
                let w0 = (self.layout.offset(addr) / 8) as usize;
                let w1 = ((self.layout.offset(page_end - 1) / 8) + 1) as usize;
                for w in &frame.words[w0..w1] {
                    chunk.extend_from_slice(&w.load(Ordering::Relaxed).to_le_bytes());
                }
                // Re-check: if the frame was reclaimed mid-copy the bytes
                // may be torn — fall back to the device (valid because
                // eviction requires the flush to have completed).
                self.resident(page)
            };
            if !from_frame {
                chunk.clear();
                chunk.resize(len, 0);
                self.device.read_at(addr, &mut chunk)?;
            }
            chunk.truncate(len);
            out.extend_from_slice(&chunk);
            addr = page_end;
        }
        Ok(out)
    }

    // ---- record accessors ------------------------------------------------

    /// Write a fresh record (header published last with Release so chain
    /// walkers see a complete record).
    pub fn write_record(&self, addr: Address, header: Header, key: u64, value_words: &[u64]) {
        debug_assert_eq!(value_words.len(), self.rec.value_words());
        self.word(addr + 8).store(key, Ordering::Relaxed);
        for (i, w) in value_words.iter().enumerate() {
            self.word(addr + 16 + 8 * i as u64)
                .store(*w, Ordering::Relaxed);
        }
        self.word(addr).store(header.pack(), Ordering::Release);
    }

    #[inline]
    pub fn header_at(&self, addr: Address) -> Header {
        Header::unpack(self.word(addr).load(Ordering::Acquire))
    }

    #[inline]
    pub fn set_header(&self, addr: Address, header: Header) {
        self.word(addr).store(header.pack(), Ordering::Release);
    }

    #[inline]
    pub fn key_at(&self, addr: Address) -> u64 {
        self.word(addr + 8).load(Ordering::Relaxed)
    }

    /// Read the value words into `out`.
    pub fn value_at(&self, addr: Address, out: &mut [u64]) {
        debug_assert_eq!(out.len(), self.rec.value_words());
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.word(addr + 16 + 8 * i as u64).load(Ordering::Relaxed);
        }
    }

    /// Overwrite the value words in place (mutable region only).
    pub fn set_value_at(&self, addr: Address, words: &[u64]) {
        debug_assert_eq!(words.len(), self.rec.value_words());
        for (i, w) in words.iter().enumerate() {
            self.word(addr + 16 + 8 * i as u64)
                .store(*w, Ordering::Relaxed);
        }
    }

    /// CAS the first value word (atomic single-word RMW, e.g. u64 sums).
    pub fn cas_value_word(&self, addr: Address, old: u64, new: u64) -> bool {
        self.word(addr + 16)
            .compare_exchange(old, new, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    // ---- recovery support -------------------------------------------------

    /// Reset the log to resume appending at `tail` with everything below
    /// it on the device (post-recovery state).
    pub fn restore_at(&self, tail: Address) {
        let page = self.layout.page(tail);
        for (i, cell) in self.page_table.iter().enumerate() {
            cell.store(0, Ordering::Relaxed);
            self.frames[i].zero();
        }
        self.page_cell(page).store(page + 1, Ordering::Relaxed);
        self.tail_po
            .store((page << 32) | self.layout.offset(tail), Ordering::Relaxed);
        self.read_only.store(tail, Ordering::Relaxed);
        self.safe_read_only.store(tail, Ordering::Relaxed);
        self.head.store(tail, Ordering::Relaxed);
        self.safe_head.store(tail, Ordering::Relaxed);
        self.flushed_durable.store(tail, Ordering::Relaxed);
        let mut st = self.flush_state.lock();
        st.enqueued = tail;
        st.inflight.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpr_storage::MemDevice;

    fn mk(cfg: HlogConfig) -> (Arc<HybridLog>, Arc<EpochManager>, Guard) {
        let epoch = Arc::new(EpochManager::new(8));
        let dev = MemDevice::new();
        let log = HybridLog::new(cfg, dev, Arc::clone(&epoch));
        let guard = epoch.register();
        (log, epoch, guard)
    }

    #[test]
    fn allocate_is_dense_within_a_page() {
        let (log, _e, g) = mk(HlogConfig::small_for_tests());
        let rs = log.rec.record_size() as u64;
        let a = log.allocate(&g);
        let b = log.allocate(&g);
        assert_eq!(a, rs, "address 0 is reserved");
        assert_eq!(b, 2 * rs);
        assert_eq!(log.tail(), 3 * rs);
    }

    #[test]
    fn page_boundary_skips_slack_and_continues() {
        let (log, _e, g) = mk(HlogConfig::small_for_tests());
        let rs = log.rec.record_size() as u64;
        let psz = log.layout.page_size();
        let per_page0 = (psz / rs) - 1; // address 0 reserved
        let mut last = 0;
        for _ in 0..per_page0 + 3 {
            last = log.allocate(&g);
        }
        // The last records must live in page 1, starting at its base.
        assert_eq!(log.layout.page(last), 1);
        assert_eq!(log.layout.offset(last) % rs, 0);
    }

    #[test]
    fn write_then_read_record() {
        let (log, _e, g) = mk(HlogConfig::small_for_tests());
        let addr = log.allocate(&g);
        log.write_record(addr, Header::new(0, 1), 42, &[99]);
        assert_eq!(log.key_at(addr), 42);
        let mut v = [0u64; 1];
        log.value_at(addr, &mut v);
        assert_eq!(v[0], 99);
        let h = log.header_at(addr);
        assert_eq!(h.version, 1);
        assert!(!h.invalid);
    }

    #[test]
    fn read_only_offset_lags_tail() {
        let cfg = HlogConfig {
            page_bits: 12,
            memory_pages: 8,
            mutable_pages: 2,
            value_size: 8,
        };
        let (log, _e, g) = mk(cfg);
        let per_page = (1 << 12) / log.rec.record_size();
        // Fill 4 pages.
        for _ in 0..per_page * 4 {
            let a = log.allocate(&g);
            log.write_record(a, Header::new(0, 1), 1, &[1]);
        }
        g.refresh();
        // tail page = 4; read_only should be at page 3 (tail - mutable + 1).
        assert_eq!(log.read_only(), log.layout.page_start(3));
        assert_eq!(log.safe_read_only(), log.layout.page_start(3));
    }

    #[test]
    fn pages_flush_to_device_as_read_only_advances() {
        let cfg = HlogConfig {
            page_bits: 12,
            memory_pages: 4,
            mutable_pages: 1,
            value_size: 8,
        };
        let (log, _e, g) = mk(cfg);
        let per_page = (1 << 12) / log.rec.record_size();
        for i in 0..per_page * 3 {
            let a = log.allocate(&g);
            log.write_record(a, Header::new(0, 1), i as u64, &[i as u64]);
            g.refresh();
        }
        log.wait_flushed(log.layout.page_start(2)).unwrap();
        assert!(log.flushed_durable() >= log.layout.page_start(2));
        // Verify device contents for the first record of page 1: keys were
        // written densely, page 0 held (page_size - rec) / rec records
        // starting at address rec (address 0 reserved).
        let rs = log.rec.record_size() as u64;
        let page0_records = (log.layout.page_size() - rs) / rs;
        let addr = log.layout.page_start(1);
        let mut buf = vec![0u8; rs as usize];
        log.device().read_at(addr, &mut buf).unwrap();
        let key = u64::from_le_bytes(buf[8..16].try_into().unwrap());
        assert_eq!(key, page0_records);
    }

    #[test]
    fn eviction_reuses_frames_beyond_memory_budget() {
        let cfg = HlogConfig {
            page_bits: 12,
            memory_pages: 4,
            mutable_pages: 1,
            value_size: 8,
        };
        let (log, _e, g) = mk(cfg);
        let per_page = (1 << 12) / log.rec.record_size();
        // Write ~10 pages worth — far beyond the 4-frame budget.
        for i in 0..per_page * 10 {
            let a = log.allocate(&g);
            log.write_record(a, Header::new(0, 2), i as u64, &[7]);
            if i % 16 == 0 {
                g.refresh();
            }
        }
        g.refresh();
        assert!(
            log.head() >= log.layout.page_start(6),
            "head {}",
            log.head()
        );
        assert!(log.tail() >= log.layout.page_start(10));
    }

    #[test]
    fn fold_over_shift_flushes_to_tail() {
        let (log, _e, g) = mk(HlogConfig::small_for_tests());
        for i in 0..10u64 {
            let a = log.allocate(&g);
            log.write_record(a, Header::new(0, 1), i, &[i]);
        }
        let tail = log.tail();
        log.shift_read_only_to(tail);
        g.refresh(); // make the bump safe
        log.wait_flushed(tail).unwrap();
        assert_eq!(log.flushed_durable(), tail);
        assert_eq!(log.read_only(), tail);
    }

    #[test]
    fn copy_range_matches_written_data() {
        let (log, _e, g) = mk(HlogConfig::small_for_tests());
        let a = log.allocate(&g);
        log.write_record(a, Header::new(0, 3), 0xAB, &[0xCD]);
        let bytes = log.copy_range(a, a + log.rec.record_size() as u64);
        let key = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        let val = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        assert_eq!(key, 0xAB);
        assert_eq!(val, 0xCD);
    }

    #[test]
    fn restore_at_positions_all_offsets() {
        let (log, _e, g) = mk(HlogConfig::small_for_tests());
        for _ in 0..5 {
            log.allocate(&g);
        }
        let rs = log.rec.record_size() as u64;
        log.restore_at(100 * rs);
        assert_eq!(log.tail(), 100 * rs);
        assert_eq!(log.head(), 100 * rs);
        assert_eq!(log.flushed_durable(), 100 * rs);
        let a = log.allocate(&g);
        assert_eq!(a, 100 * rs);
    }

    #[test]
    #[should_panic(expected = "too small for record size")]
    fn bad_page_size_rejected() {
        HlogConfig {
            page_bits: 9, // 512-byte pages
            memory_pages: 4,
            mutable_pages: 1,
            value_size: 200, // record 216 bytes: fewer than 4 per page
        }
        .validate();
    }

    #[test]
    fn concurrent_allocation_is_dense() {
        let cfg = HlogConfig {
            page_bits: 12,
            memory_pages: 16,
            mutable_pages: 8,
            value_size: 8,
        };
        let epoch = Arc::new(EpochManager::new(8));
        let dev = MemDevice::new();
        let log = HybridLog::new(cfg, dev, Arc::clone(&epoch));
        let n_threads = 4;
        let per = 200;
        let addrs: Vec<u64> = (0..n_threads)
            .map(|_| {
                let log = Arc::clone(&log);
                let epoch = Arc::clone(&epoch);
                std::thread::spawn(move || {
                    let g = epoch.register();
                    (0..per).map(|_| log.allocate(&g)).collect::<Vec<u64>>()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let mut sorted = addrs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), n_threads * per, "duplicate addresses");
        let rs = log.rec.record_size() as u64;
        for w in sorted.windows(2) {
            let gap = w[1] - w[0];
            // Dense within a page; a jump only at a page boundary.
            assert!(
                gap == rs || log.layout.offset(w[1]) == 0,
                "unexpected gap {gap} at {:#x}",
                w[1]
            );
        }
    }
}
