//! Asynchronous record retrieval for disk-resident data (paper Sec. 5:
//! "If `l` is less than the head offset, it issues an asynchronous I/O
//! request" while the requesting thread keeps processing).
//!
//! A small pool of reader threads serves requests from a shared channel;
//! each request carries its own buffer and completion handle, which the
//! owning session polls from its pending list.

use std::sync::Arc;
use std::thread::JoinHandle;

use cpr_storage::{Device, IoHandle};
use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;

/// An in-flight read: poll `handle`, then take the record bytes.
#[derive(Clone)]
pub struct IoRead {
    pub handle: IoHandle,
    pub buf: Arc<Mutex<Vec<u8>>>,
}

struct IoRequest {
    addr: u64,
    len: usize,
    read: IoRead,
}

/// Background read pool.
pub struct IoPool {
    tx: Option<Sender<IoRequest>>,
    threads: Vec<JoinHandle<()>>,
}

impl IoPool {
    pub fn new(device: Arc<dyn Device>, threads: usize) -> Self {
        let (tx, rx) = unbounded::<IoRequest>();
        let threads = (0..threads.max(1))
            .map(|i| {
                let rx = rx.clone();
                let device = Arc::clone(&device);
                std::thread::Builder::new()
                    .name(format!("cpr-faster-io-{i}"))
                    .spawn(move || {
                        for req in rx {
                            let mut data = vec![0u8; req.len];
                            let res = device.read_at(req.addr, &mut data);
                            match res {
                                Ok(()) => {
                                    *req.read.buf.lock() = data;
                                    req.read.handle.complete(Ok(()));
                                }
                                Err(e) => req.read.handle.complete(Err(e)),
                            }
                        }
                    })
                    .expect("spawn io thread")
            })
            .collect();
        IoPool {
            tx: Some(tx),
            threads,
        }
    }

    /// Issue an asynchronous read of `len` bytes at `addr`.
    pub fn read(&self, addr: u64, len: usize) -> IoRead {
        let read = IoRead {
            handle: IoHandle::pending(),
            buf: Arc::new(Mutex::new(Vec::new())),
        };
        self.tx
            .as_ref()
            .expect("pool alive")
            .send(IoRequest {
                addr,
                len,
                read: read.clone(),
            })
            .expect("io thread alive");
        read
    }
}

impl Drop for IoPool {
    fn drop(&mut self) {
        self.tx.take();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpr_storage::MemDevice;

    #[test]
    fn async_read_roundtrip() {
        let dev = MemDevice::new();
        dev.write_at(100, vec![1, 2, 3, 4]).wait().unwrap();
        let pool = IoPool::new(dev, 2);
        let r = pool.read(100, 4);
        r.handle.wait().unwrap();
        assert_eq!(*r.buf.lock(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn read_past_end_yields_zeroes() {
        // Devices zero-fill past the physical end (see `Device::read_at`),
        // so a read beyond the durable tail completes with empty bytes —
        // which parse as unwritten log slack, never as a torn record.
        let dev = MemDevice::new();
        let pool = IoPool::new(dev, 1);
        let r = pool.read(1 << 20, 8); // past end
        r.handle.wait().unwrap();
        assert_eq!(*r.buf.lock(), vec![0u8; 8]);
    }

    #[test]
    fn many_concurrent_reads_complete() {
        let dev = MemDevice::new();
        let mut all = Vec::new();
        for i in 0..64u64 {
            dev.write_at(i * 8, i.to_le_bytes().to_vec());
        }
        dev.sync().unwrap();
        let pool = IoPool::new(dev, 3);
        for i in 0..64u64 {
            all.push((i, pool.read(i * 8, 8)));
        }
        for (i, r) in all {
            r.handle.wait().unwrap();
            assert_eq!(*r.buf.lock(), i.to_le_bytes().to_vec());
        }
    }
}
