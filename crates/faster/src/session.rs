//! Sessions and the operation engine (paper Secs. 5.2, 6.2, Algs. 4 & 5).
//!
//! Every user request carries a strictly increasing session-local serial
//! number. A session's thread-local view of the global (phase, version) is
//! synchronized only at epoch refresh; the prepare → in-progress
//! transition demarcates the session's CPR point. Requests that cannot be
//! served immediately (disk-resident record, fuzzy region, version
//! hand-off conflicts) go *pending* and are retried by
//! [`FasterSession::complete_pending`].

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use cpr_core::liveness::{BusyState, Clock, SessionStatus};
use cpr_core::{CheckpointVersion, Phase, Pod, SessionInfo};

use crate::addr::{Address, INVALID_ADDRESS};
use crate::header::{version13, Header};
use crate::index::{key_hash, Slot};
use crate::io::IoRead;
use crate::store::{value_from_words, value_to_words, OfflineGuard, StoreInner, VersionGrain};

/// Result of a read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadResult<V> {
    Found(V),
    NotFound,
    /// Went pending (disk or contention); the result arrives via
    /// [`FasterSession::drain_completions`].
    Pending,
    /// The liveness watchdog evicted this session (stale lease during a
    /// commit); the op was not accepted. Retry on a fresh session.
    Evicted,
}

/// Result of an update operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Status {
    Ok,
    Pending,
    /// The liveness watchdog evicted this session; the op was not
    /// accepted. Retry on a fresh session.
    Evicted,
}

impl std::fmt::Display for Status {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Status::Ok => f.write_str("ok"),
            Status::Pending => f.write_str("pending"),
            Status::Evicted => f.write_str("session evicted"),
        }
    }
}

/// Kind of a user operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    Read,
    Upsert,
    Rmw,
    Delete,
}

/// A completed formerly-pending operation.
#[derive(Debug, Clone, Copy)]
pub struct Completion<V> {
    pub serial: u64,
    pub kind: OpKind,
    pub key: u64,
    /// Read result (`None` = key absent) — unset for updates.
    pub value: Option<V>,
}

/// Per-session op counters.
#[derive(Debug, Default, Clone)]
pub struct SessionStats {
    pub reads: u64,
    pub upserts: u64,
    pub rmws: u64,
    pub deletes: u64,
    pub went_pending: u64,
    pub completed_pending: u64,
}

struct Pending<V> {
    serial: u64,
    kind: OpKind,
    key: u64,
    input: Option<V>,
    /// Full version this op belongs to (its transaction version at
    /// acceptance).
    tag: u64,
    /// Fine grain: bucket whose shared latch this pending op holds.
    latch: Option<usize>,
    /// Coarse grain: key registered in the pending-v-keys guard set.
    guarded: bool,
    io: Option<IoRead>,
    io_addr: Address,
}

enum Outcome<V> {
    Done(Option<V>),
    /// Must wait; optionally with an I/O already issued.
    Pend(Option<(Address, IoRead)>),
    /// CPR shift detected in prepare: refresh and retry.
    Shift,
    /// Index CAS lost a race: retry immediately.
    Retry,
}

/// A client session. Not `Sync`: owned by one thread, as in the paper.
pub struct FasterSession<V: Pod> {
    store: Arc<StoreInner<V>>,
    guard: cpr_epoch::Guard,
    slot_idx: usize,
    guid: u64,
    phase: Phase,
    version: u64,
    serial: u64,
    ops_since_refresh: u64,
    pending: Vec<Pending<V>>,
    completions: Vec<Completion<V>>,
    pending_points: VecDeque<(u64, u64)>,
    durable_serial: u64,
    scratch: Vec<u64>,
    scratch2: Vec<u64>,
    /// Lease clock, present iff the store runs a liveness watchdog.
    clock: Option<Arc<dyn Clock>>,
    /// Cached "this session has been evicted" flag (set once, sticky).
    evicted: bool,
    /// Test hook: runs right after the session enters an operation
    /// (busy = in-txn, before the op touches the log).
    pause_in_op: Option<Box<dyn FnMut() + Send>>,
    pub stats: SessionStats,
}

impl<V: Pod> FasterSession<V> {
    pub(crate) fn new(store: Arc<StoreInner<V>>, guid: u64, start_serial: u64) -> Self {
        let (phase, version) = store.state.load();
        let slot_idx = store.registry.acquire(guid, phase, version);
        store.registry.set_serial(slot_idx, start_serial);
        let mut guard = store.epoch.register();
        let clock = store.liveness.as_ref().map(|l| Arc::clone(&l.clock));
        if let Some(c) = &clock {
            // Publish the epoch slot so the watchdog can reclaim it, stamp
            // the lease, arm the thread-exit sentinel, and clear any
            // offline-pending leftovers from a prior tenant of this slot.
            store.registry.set_epoch_slot(slot_idx, guard.slot());
            store.registry.heartbeat(slot_idx, c.now());
            guard.arm_exit_sentinel();
            store.offline_pending.lock().remove(&slot_idx);
        }
        FasterSession {
            store,
            guard,
            slot_idx,
            guid,
            phase,
            version,
            serial: start_serial,
            ops_since_refresh: 0,
            pending: Vec::new(),
            completions: Vec::new(),
            pending_points: VecDeque::new(),
            durable_serial: start_serial,
            scratch: Vec::new(),
            scratch2: Vec::new(),
            clock,
            evicted: false,
            pause_in_op: None,
            stats: SessionStats::default(),
        }
    }

    /// Test hook: invoked after entering an operation, before the log is
    /// touched.
    #[doc(hidden)]
    pub fn set_pause_in_op(&mut self, f: impl FnMut() + Send + 'static) {
        self.pause_in_op = Some(Box::new(f));
    }

    /// True once the watchdog has evicted this session.
    pub fn is_evicted(&self) -> bool {
        self.evicted
            || (self.clock.is_some()
                && self.store.registry.status(self.slot_idx) == SessionStatus::Evicted)
    }

    pub fn guid(&self) -> u64 {
        self.guid
    }

    /// Serial of the most recently accepted operation.
    pub fn serial(&self) -> u64 {
        self.serial
    }

    /// Thread-local (phase, version) view.
    #[deprecated(since = "0.2.0", note = "use `info()` instead")]
    pub fn view(&self) -> (Phase, u64) {
        (self.phase, self.version)
    }

    /// Structured snapshot of the session's identity and thread-local
    /// CPR state.
    pub fn info(&self) -> SessionInfo {
        SessionInfo {
            guid: self.guid,
            serial: self.serial,
            phase: self.phase,
            version: CheckpointVersion::from(self.version),
        }
    }

    /// Number of operations awaiting completion.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Largest serial known durable: every op with serial ≤ this survives
    /// a crash (the session's committed CPR prefix).
    pub fn durable_serial(&mut self) -> u64 {
        let cv = self.store.committed_version.load(Ordering::Acquire);
        while let Some(&(v, s)) = self.pending_points.front() {
            if v <= cv {
                self.durable_serial = self.durable_serial.max(s);
                self.pending_points.pop_front();
            } else {
                break;
            }
        }
        self.durable_serial
    }

    /// Move completed formerly-pending results into `out`.
    pub fn drain_completions(&mut self, out: &mut Vec<Completion<V>>) {
        out.append(&mut self.completions);
    }

    /// Publish the local epoch, adopt global state changes (marking the
    /// CPR point on the prepare → in-progress crossing), and retry
    /// pending operations.
    pub fn refresh(&mut self) {
        self.guard.refresh();
        self.ops_since_refresh = 0;
        if let Some(c) = &self.clock {
            // Lease renewal: one relaxed store (plus one relaxed probe of
            // the sticky eviction flag) — the whole hot-path liveness cost.
            self.store.registry.heartbeat(self.slot_idx, c.now());
            if self.evicted || self.store.registry.is_evicted(self.slot_idx) {
                self.evicted = true;
                self.drop_cancelled_pendings();
                return;
            }
        }
        let (gp, gv) = self.store.state.load();
        if (gp, gv) != (self.phase, self.version) {
            // Entering prepare: protect pre-existing pending requests so
            // post-point writers cannot overtake them (paper Sec. 6.2.1).
            if gp == Phase::Prepare && gv == self.version && self.phase == Phase::Rest {
                self.protect_pendings();
            }
            let crossed = self.phase <= Phase::Prepare
                && ((gv == self.version && gp >= Phase::InProgress) || gv > self.version);
            if crossed {
                let point = self.store.registry.mark_cpr_point(self.slot_idx);
                self.pending_points.push_back((self.version, point));
            }
            self.phase = gp;
            self.version = gv;
            self.store.registry.publish(self.slot_idx, gp, gv);
        }
        if self.phase != Phase::Rest {
            // A commit is in flight: cede the CPU so the checkpoint and
            // device threads make progress even on a single core.
            std::thread::yield_now();
        }
        self.complete_pending();
    }

    /// Retry pending operations; completed ones become
    /// [`Completion`]s. Returns the number completed this call.
    pub fn complete_pending(&mut self) -> usize {
        if self.pending.is_empty() {
            return 0;
        }
        let live = self.clock.is_some();
        if live && (self.evicted || self.store.registry.is_evicted(self.slot_idx)) {
            self.evicted = true;
            self.drop_cancelled_pendings();
            return 0;
        }
        let mut ops = std::mem::take(&mut self.pending);
        let mut completed = 0;
        let mut i = 0;
        while i < ops.len() {
            // Pending retries apply writes: re-check ownership before each
            // one so an evicted session stops growing the database. A
            // merely-suspended session reactivates itself and proceeds.
            if live && self.store.registry.status(self.slot_idx) != SessionStatus::Active {
                if self.store.registry.await_reactivate(self.slot_idx) {
                    continue;
                }
                self.evicted = true;
                break;
            }
            let op = &mut ops[i];
            let io_data: Option<(Address, Vec<u8>)> = match &op.io {
                Some(io) if io.handle.is_done() => {
                    if io.handle.wait().is_ok() {
                        Some((op.io_addr, io.buf.lock().clone()))
                    } else {
                        // Read raced an in-flight flush; drop and retry
                        // through the normal path.
                        op.io = None;
                        i += 1;
                        continue;
                    }
                }
                Some(_) => {
                    i += 1;
                    continue; // still in flight
                }
                None => None,
            };
            let outcome = self.run_op(
                op.kind,
                op.key,
                op.input,
                op.tag,
                io_data.as_ref().map(|(a, b)| (*a, b.as_slice())),
            );
            let op = &mut ops[i];
            match outcome {
                Outcome::Done(value) => {
                    self.finish_pending(op, value);
                    completed += 1;
                    ops.swap_remove(i);
                }
                Outcome::Pend(io) => {
                    match io {
                        Some((addr, read)) => {
                            op.io_addr = addr;
                            op.io = Some(read);
                        }
                        None => op.io = None,
                    }
                    i += 1;
                }
                Outcome::Shift | Outcome::Retry => {
                    // Re-run the same op immediately (CAS race); a Shift
                    // cannot occur for an already-accepted pending op’s
                    // tag, but retrying is always safe.
                }
            }
        }
        debug_assert!(self.pending.is_empty());
        self.pending = ops;
        if self.evicted {
            self.drop_cancelled_pendings();
        }
        self.stats.completed_pending += completed as u64;
        completed
    }

    fn finish_pending(&mut self, op: &mut Pending<V>, value: Option<V>) {
        if self.clock.is_some() {
            // The offline-pending entry is the ownership token for this
            // op's protections: remove it and release per the *entry* (the
            // watchdog may hold a fresher view of the latches than the
            // local op after an eviction race).
            let owned = {
                let mut map = self.store.offline_pending.lock();
                map.get_mut(&self.slot_idx).and_then(|gs| {
                    gs.iter()
                        .position(|g| g.serial == op.serial)
                        .map(|i| gs.swap_remove(i))
                })
            };
            op.latch = None;
            op.guarded = false;
            let Some(g) = owned else {
                // Cancelled by the watchdog: protections already released,
                // the session is evicted, the result is dropped.
                self.evicted = true;
                return;
            };
            if let Some(b) = g.latch {
                self.store.latches[b].release_shared();
            }
            if let Some(k) = g.guarded_key {
                self.store.pending_v_keys.lock().remove(&k);
            }
            self.store.pending_count[(g.tag & 1) as usize].fetch_sub(1, Ordering::AcqRel);
        } else {
            if let Some(b) = op.latch.take() {
                self.store.latches[b].release_shared();
            }
            if op.guarded {
                self.store.pending_v_keys.lock().remove(&op.key);
                op.guarded = false;
            }
            self.store.pending_count[(op.tag & 1) as usize].fetch_sub(1, Ordering::AcqRel);
        }
        self.completions.push(Completion {
            serial: op.serial,
            kind: op.kind,
            key: op.key,
            value,
        });
    }

    /// Drop local pending ops whose offline entry is gone (cancelled by
    /// the watchdog at eviction): their protections are already released
    /// and their counts already decremented — just forget them.
    fn drop_cancelled_pendings(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let live: Vec<u64> = {
            let map = self.store.offline_pending.lock();
            map.get(&self.slot_idx)
                .map(|gs| gs.iter().map(|g| g.serial).collect())
                .unwrap_or_default()
        };
        self.pending.retain(|op| live.contains(&op.serial));
    }

    /// Fine grain: take shared latches (coarse: register key guards) for
    /// pending requests when entering prepare.
    fn protect_pendings(&mut self) {
        match self.store.grain {
            VersionGrain::Fine => {
                for op in &mut self.pending {
                    if op.tag == self.version && op.latch.is_none() {
                        let b = self.store.index.bucket_index(key_hash(op.key));
                        // Cannot fail persistently: exclusive holders only
                        // exist in in-progress, which starts later.
                        while !self.store.latches[b].try_shared() {
                            std::hint::spin_loop();
                        }
                        op.latch = Some(b);
                    }
                }
            }
            VersionGrain::Coarse => {
                let mut guard = self.store.pending_v_keys.lock();
                for op in &mut self.pending {
                    if op.tag == self.version && !op.guarded {
                        guard.insert(op.key);
                        op.guarded = true;
                    }
                }
            }
        }
        if self.clock.is_some() {
            // Mirror the newly-taken protections so a later watchdog
            // cancellation releases them. The lease was stamped at the top
            // of this refresh, so the watchdog cannot act on this session
            // between the acquisition above and the mirror landing here.
            let mut map = self.store.offline_pending.lock();
            if let Some(gs) = map.get_mut(&self.slot_idx) {
                for op in &self.pending {
                    if let Some(g) = gs.iter_mut().find(|g| g.serial == op.serial) {
                        g.latch = op.latch;
                        g.guarded_key = op.guarded.then_some(op.key);
                    }
                }
            }
        }
    }

    /// Publish a busy-state change iff the liveness watchdog is running.
    /// `Locking` marks the short exclusive-latch windows of the version
    /// hand-off: the watchdog must never evict a session there (it could
    /// be mid-append under the latch) — its only remedy is a checkpoint
    /// abort.
    #[inline]
    fn set_busy_live(&self, b: BusyState) {
        if self.clock.is_some() {
            self.store.registry.set_busy(self.slot_idx, b);
        }
    }

    #[inline]
    fn txn_version(&self) -> u64 {
        if self.phase >= Phase::InProgress {
            self.version + 1
        } else {
            self.version
        }
    }

    #[inline]
    fn maybe_refresh(&mut self) {
        self.ops_since_refresh += 1;
        if self.ops_since_refresh >= self.store.refresh_every {
            self.refresh();
        }
    }

    // ---- public operations ------------------------------------------------

    /// Dekker-style entry protocol against the watchdog: publish
    /// `busy = InTxn` (SeqCst), then load status (SeqCst). If the status
    /// read observes `Active`, the watchdog's suspend CAS had not happened
    /// before that read in the SeqCst total order, so no eviction (which
    /// requires a *prior* successful suspend plus a later scan) can be in
    /// flight — accepting the op is safe. Returns `false` once evicted.
    fn begin_op(&mut self) -> bool {
        loop {
            if self.evicted {
                return false;
            }
            self.store.registry.set_busy(self.slot_idx, BusyState::InTxn);
            match self.store.registry.status(self.slot_idx) {
                SessionStatus::Active => return true,
                _ => {
                    self.store.registry.set_busy(self.slot_idx, BusyState::Idle);
                    if self.store.registry.await_reactivate(self.slot_idx) {
                        self.refresh();
                    } else {
                        self.evicted = true;
                    }
                }
            }
        }
    }

    #[inline]
    fn enter_op(&mut self) -> bool {
        if self.clock.is_none() {
            return true;
        }
        if !self.begin_op() {
            return false;
        }
        if let Some(mut f) = self.pause_in_op.take() {
            f();
            self.pause_in_op = Some(f);
        }
        true
    }

    #[inline]
    fn exit_op(&mut self) {
        if self.clock.is_some() {
            self.store.registry.set_busy(self.slot_idx, BusyState::Idle);
        }
    }

    /// Record op metrics: completed ops contribute a latency sample,
    /// evicted ops count as aborts, pendings are sampled at completion.
    #[inline]
    fn record_op(&self, t0: Option<Instant>, reads: u64, writes: u64, done: bool) {
        if let Some(t0) = t0 {
            if done {
                self.store.metrics.record_commit(t0.elapsed(), reads, writes);
            }
        }
    }

    pub fn read(&mut self, key: u64) -> ReadResult<V> {
        self.maybe_refresh();
        let t0 = self.store.metrics_on.then(Instant::now);
        if !self.enter_op() {
            if self.store.metrics_on {
                self.store.metrics.record_abort();
            }
            return ReadResult::Evicted;
        }
        self.serial += 1;
        self.stats.reads += 1;
        let out = match self.drive(OpKind::Read, key, None) {
            DriveResult::Done(Some(v)) => ReadResult::Found(v),
            DriveResult::Done(None) => ReadResult::NotFound,
            DriveResult::Pending => ReadResult::Pending,
        };
        self.record_op(t0, 1, 0, !matches!(out, ReadResult::Pending));
        self.exit_op();
        out
    }

    pub fn upsert(&mut self, key: u64, value: V) -> Status {
        self.maybe_refresh();
        let t0 = self.store.metrics_on.then(Instant::now);
        if !self.enter_op() {
            if self.store.metrics_on {
                self.store.metrics.record_abort();
            }
            return Status::Evicted;
        }
        self.serial += 1;
        self.stats.upserts += 1;
        let out = match self.drive(OpKind::Upsert, key, Some(value)) {
            DriveResult::Done(_) => Status::Ok,
            DriveResult::Pending => Status::Pending,
        };
        self.record_op(t0, 0, 1, out == Status::Ok);
        self.exit_op();
        out
    }

    /// Read-modify-write: `new = rmw(old, input)`; a missing key is
    /// initialized to `input`.
    pub fn rmw(&mut self, key: u64, input: V) -> Status {
        self.maybe_refresh();
        let t0 = self.store.metrics_on.then(Instant::now);
        if !self.enter_op() {
            if self.store.metrics_on {
                self.store.metrics.record_abort();
            }
            return Status::Evicted;
        }
        self.serial += 1;
        self.stats.rmws += 1;
        let out = match self.drive(OpKind::Rmw, key, Some(input)) {
            DriveResult::Done(_) => Status::Ok,
            DriveResult::Pending => Status::Pending,
        };
        self.record_op(t0, 0, 1, out == Status::Ok);
        self.exit_op();
        out
    }

    pub fn delete(&mut self, key: u64) -> Status {
        self.maybe_refresh();
        let t0 = self.store.metrics_on.then(Instant::now);
        if !self.enter_op() {
            if self.store.metrics_on {
                self.store.metrics.record_abort();
            }
            return Status::Evicted;
        }
        self.serial += 1;
        self.stats.deletes += 1;
        let out = match self.drive(OpKind::Delete, key, None) {
            DriveResult::Done(_) => Status::Ok,
            DriveResult::Pending => Status::Pending,
        };
        self.record_op(t0, 0, 1, out == Status::Ok);
        self.exit_op();
        out
    }

    // ---- op driver ----------------------------------------------------------

    fn drive(&mut self, kind: OpKind, key: u64, input: Option<V>) -> DriveResult<V> {
        loop {
            // Fine grain, prepare phase: every request takes the bucket's
            // shared latch (paper Alg. 4); failure means the CPR shift
            // has begun.
            let mut latch: Option<usize> = None;
            if self.phase == Phase::Prepare && self.store.grain == VersionGrain::Fine {
                let b = self.store.index.bucket_index(key_hash(key));
                if !self.store.latches[b].try_shared() {
                    self.refresh(); // CPR_SHIFT_DETECTED
                    continue;
                }
                latch = Some(b);
            }
            let tag = self.txn_version();
            match self.run_op(kind, key, input, tag, None) {
                Outcome::Done(v) => {
                    if let Some(b) = latch {
                        self.store.latches[b].release_shared();
                    }
                    self.store.registry.set_serial(self.slot_idx, self.serial);
                    return DriveResult::Done(v);
                }
                Outcome::Shift => {
                    if let Some(b) = latch {
                        self.store.latches[b].release_shared();
                    }
                    self.refresh();
                    continue;
                }
                Outcome::Retry => {
                    if let Some(b) = latch {
                        self.store.latches[b].release_shared();
                    }
                    continue;
                }
                Outcome::Pend(io) => {
                    // Pre-point pendings keep their protection: the shared
                    // latch (fine) or a key guard (coarse).
                    let keep_latch = latch.take_if(|_| tag == self.version);
                    if let Some(b) = latch {
                        self.store.latches[b].release_shared();
                    }
                    let guarded = self.store.grain == VersionGrain::Coarse
                        && tag == self.version
                        && self.phase != Phase::Rest;
                    if guarded {
                        self.store.pending_v_keys.lock().insert(key);
                    }
                    self.store.pending_count[(tag & 1) as usize].fetch_add(1, Ordering::AcqRel);
                    if self.clock.is_some() {
                        // Mirror the op's protections for the watchdog.
                        self.store
                            .offline_pending
                            .lock()
                            .entry(self.slot_idx)
                            .or_default()
                            .push(OfflineGuard {
                                serial: self.serial,
                                tag,
                                latch: keep_latch,
                                guarded_key: guarded.then_some(key),
                            });
                    }
                    let (io_addr, io) = match io {
                        Some((a, r)) => (a, Some(r)),
                        None => (INVALID_ADDRESS, None),
                    };
                    self.pending.push(Pending {
                        serial: self.serial,
                        kind,
                        key,
                        input,
                        tag,
                        latch: keep_latch,
                        guarded,
                        io,
                        io_addr,
                    });
                    self.stats.went_pending += 1;
                    self.store.registry.set_serial(self.slot_idx, self.serial);
                    return DriveResult::Pending;
                }
            }
        }
    }

    /// One attempt at an operation. `io_data` carries a fetched disk
    /// record (addr, bytes) when resolving an I/O pending op.
    fn run_op(
        &mut self,
        kind: OpKind,
        key: u64,
        input: Option<V>,
        tag: u64,
        io_data: Option<(Address, &[u8])>,
    ) -> Outcome<V> {
        let store = Arc::clone(&self.store);
        let hl = &store.hlog;
        let hash = key_hash(key);

        let slot = match kind {
            OpKind::Read => match store.index.find(hash) {
                Some(s) => s,
                None => return Outcome::Done(None),
            },
            _ => store.index.find_or_create(hash),
        };
        let entry = slot.address();
        let head = hl.head();
        let ro = hl.read_only();
        let safe_ro = hl.safe_read_only();

        // Walk the in-memory chain for our key.
        let mut addr = entry;
        let mut found: Option<(Address, Header)> = None;
        while addr >= hl.begin_address() {
            if addr < head {
                break; // continues on disk
            }
            let h = hl.header_at(addr);
            if !h.invalid && hl.key_at(addr) == key {
                found = Some((addr, h));
                break;
            }
            addr = h.prev;
        }

        let vnext13 = version13(self.version + 1);
        let is_next = tag > self.version;

        match found {
            Some((_raddr, h)) if h.tombstone => match kind {
                OpKind::Read => Outcome::Done(None),
                OpKind::Delete => Outcome::Done(None),
                // Re-create over the tombstone.
                _ => self.append_record(&slot, entry, key, kind, input, None, tag),
            },
            Some((raddr, h)) => {
                // Prepare-phase shift detection: a record already at
                // version v+1 means the commit has begun (Alg. 4).
                if self.phase == Phase::Prepare && tag == self.version && h.version == vnext13 {
                    return Outcome::Shift;
                }
                if kind == OpKind::Read {
                    self.scratch.resize(store.value_words, 0);
                    hl.value_at(raddr, &mut self.scratch);
                    return Outcome::Done(Some(value_from_words(&self.scratch)));
                }
                if is_next && h.version != vnext13 {
                    // Post-point update over a pre-point record: hand the
                    // record over to version v+1 (Alg. 5).
                    return self
                        .handoff_update(&slot, entry, raddr, key, kind, input, tag, safe_ro);
                }
                // Same-version regional logic.
                if raddr >= ro {
                    self.update_in_place(raddr, h, kind, input);
                    Outcome::Done(None)
                } else if raddr >= safe_ro {
                    Outcome::Pend(None) // fuzzy region (Sec. 5.1)
                } else {
                    // Immutable (read-only region): read-copy-update.
                    self.append_record(&slot, entry, key, kind, input, Some(raddr), tag)
                }
            }
            None if addr >= hl.begin_address() => {
                // Chain continues on disk at `addr`.
                self.resolve_disk(&slot, entry, addr, key, kind, input, tag, io_data, safe_ro)
            }
            None => match kind {
                OpKind::Read | OpKind::Delete => Outcome::Done(None),
                _ => self.append_record(&slot, entry, key, kind, input, None, tag),
            },
        }
    }

    /// In-place update in the mutable region.
    fn update_in_place(&mut self, raddr: Address, h: Header, kind: OpKind, input: Option<V>) {
        let store = &self.store;
        let hl = &store.hlog;
        match kind {
            OpKind::Upsert => {
                value_to_words(
                    &input.expect("upsert input"),
                    &mut self.scratch,
                    store.value_words,
                );
                hl.set_value_at(raddr, &self.scratch);
            }
            OpKind::Rmw => {
                let input = input.expect("rmw input");
                if store.value_words == 1 {
                    // Atomic single-word RMW (the paper's running sums).
                    loop {
                        let old = hl.word(raddr + 16).load(Ordering::Acquire);
                        let oldv = value_from_words::<V>(&[old]);
                        value_to_words(&(store.rmw)(oldv, input), &mut self.scratch, 1);
                        if hl.cas_value_word(raddr, old, self.scratch[0]) {
                            break;
                        }
                    }
                } else {
                    self.scratch.resize(store.value_words, 0);
                    hl.value_at(raddr, &mut self.scratch);
                    let oldv = value_from_words::<V>(&self.scratch);
                    value_to_words(
                        &(store.rmw)(oldv, input),
                        &mut self.scratch2,
                        store.value_words,
                    );
                    hl.set_value_at(raddr, &self.scratch2);
                }
            }
            OpKind::Delete => {
                store.hlog.set_header(raddr, h.with_tombstone());
            }
            OpKind::Read => unreachable!("reads never update"),
        }
    }

    /// Post-point update of a pre-point record (paper Alg. 5): the record
    /// must be copied to the tail as version v+1 without racing pre-point
    /// in-place updates.
    #[allow(clippy::too_many_arguments)]
    fn handoff_update(
        &mut self,
        slot: &Slot<'_>,
        entry: Address,
        raddr: Address,
        key: u64,
        kind: OpKind,
        input: Option<V>,
        tag: u64,
        safe_ro: Address,
    ) -> Outcome<V> {
        let store = Arc::clone(&self.store);
        match store.grain {
            VersionGrain::Fine => {
                let b = store.index.bucket_index(key_hash(key));
                match self.phase {
                    Phase::InProgress => {
                        self.set_busy_live(BusyState::Locking);
                        let out = if store.latches[b].try_exclusive() {
                            let out =
                                self.append_record(slot, entry, key, kind, input, Some(raddr), tag);
                            store.latches[b].release_exclusive();
                            out
                        } else {
                            Outcome::Pend(None)
                        };
                        self.set_busy_live(BusyState::InTxn);
                        out
                    }
                    Phase::WaitPending => {
                        if store.latches[b].shared_count() == 0 {
                            self.append_record(slot, entry, key, kind, input, Some(raddr), tag)
                        } else {
                            Outcome::Pend(None)
                        }
                    }
                    // Wait-flush (and the rest-phase tail of a commit):
                    // all pre-point work is done; copy freely.
                    _ => self.append_record(slot, entry, key, kind, input, Some(raddr), tag),
                }
            }
            VersionGrain::Coarse => {
                if store.pending_v_keys.lock().contains(&key) {
                    return Outcome::Pend(None);
                }
                if raddr < safe_ro || self.phase >= Phase::WaitPending {
                    self.append_record(slot, entry, key, kind, input, Some(raddr), tag)
                } else {
                    // The pre-point record is still mutable: wait until it
                    // is safely immutable (Appx. C).
                    Outcome::Pend(None)
                }
            }
        }
    }

    /// Resolve an operation whose chain continues on disk.
    #[allow(clippy::too_many_arguments)]
    fn resolve_disk(
        &mut self,
        slot: &Slot<'_>,
        entry: Address,
        disk_addr: Address,
        key: u64,
        kind: OpKind,
        input: Option<V>,
        tag: u64,
        io_data: Option<(Address, &[u8])>,
        safe_ro: Address,
    ) -> Outcome<V> {
        let store = Arc::clone(&self.store);
        let hl = &store.hlog;
        let rec_size = hl.rec.record_size();

        if let Some((fetched_addr, bytes)) = io_data {
            if fetched_addr == disk_addr && bytes.len() >= rec_size {
                let h = Header::unpack(u64::from_le_bytes(bytes[..8].try_into().unwrap()));
                let rkey = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
                if !h.invalid && rkey == key {
                    if h.tombstone {
                        return match kind {
                            OpKind::Read | OpKind::Delete => Outcome::Done(None),
                            _ => self.append_record(slot, entry, key, kind, input, None, tag),
                        };
                    }
                    let mut words = vec![0u64; store.value_words];
                    for (i, w) in words.iter_mut().enumerate() {
                        *w = u64::from_le_bytes(bytes[16 + 8 * i..24 + 8 * i].try_into().unwrap());
                    }
                    let value: V = value_from_words(&words);
                    return match kind {
                        OpKind::Read => Outcome::Done(Some(value)),
                        OpKind::Delete => self.append_with_base(
                            slot,
                            entry,
                            key,
                            kind,
                            input,
                            Some(value),
                            tag,
                            safe_ro,
                        ),
                        OpKind::Upsert | OpKind::Rmw => self.append_with_base(
                            slot,
                            entry,
                            key,
                            kind,
                            input,
                            Some(value),
                            tag,
                            safe_ro,
                        ),
                    };
                }
                // Wrong key (hash-chain collision) or invalid: follow the
                // chain further down the log.
                if !h.invalid && h.prev >= hl.begin_address() {
                    return self.issue_or_wait(h.prev);
                }
                // Chain exhausted: key absent.
                return match kind {
                    OpKind::Read | OpKind::Delete => Outcome::Done(None),
                    _ => self.append_record(slot, entry, key, kind, input, None, tag),
                };
            }
            // Stale fetch (chain shape changed): fall through and re-issue.
        }
        self.issue_or_wait(disk_addr)
    }

    fn issue_or_wait(&mut self, addr: Address) -> Outcome<V> {
        let hl = &self.store.hlog;
        if addr < hl.flushed_durable() {
            let read = self.store.io.read(addr, hl.rec.record_size());
            Outcome::Pend(Some((addr, read)))
        } else {
            // Flush still in flight; retry on a later refresh.
            Outcome::Pend(None)
        }
    }

    /// RCU / insert with a disk-fetched base value: still subject to the
    /// hand-off rules when the op is post-point.
    #[allow(clippy::too_many_arguments)]
    fn append_with_base(
        &mut self,
        slot: &Slot<'_>,
        entry: Address,
        key: u64,
        kind: OpKind,
        input: Option<V>,
        base: Option<V>,
        tag: u64,
        safe_ro: Address,
    ) -> Outcome<V> {
        let store = Arc::clone(&self.store);
        if tag > self.version {
            // Post-point op resolving a disk record: respect the same
            // protections as an in-memory hand-off.
            match store.grain {
                VersionGrain::Fine => {
                    let b = store.index.bucket_index(key_hash(key));
                    if self.phase == Phase::InProgress {
                        self.set_busy_live(BusyState::Locking);
                        let out = if store.latches[b].try_exclusive() {
                            let out =
                                self.append_base_inner(slot, entry, key, kind, input, base, tag);
                            store.latches[b].release_exclusive();
                            out
                        } else {
                            Outcome::Pend(None)
                        };
                        self.set_busy_live(BusyState::InTxn);
                        return out;
                    }
                    if self.phase == Phase::WaitPending && store.latches[b].shared_count() != 0 {
                        return Outcome::Pend(None);
                    }
                }
                VersionGrain::Coarse => {
                    if store.pending_v_keys.lock().contains(&key) {
                        return Outcome::Pend(None);
                    }
                    let _ = safe_ro; // disk records are immutable by definition
                }
            }
        }
        self.append_base_inner(slot, entry, key, kind, input, base, tag)
    }

    #[allow(clippy::too_many_arguments)]
    fn append_base_inner(
        &mut self,
        slot: &Slot<'_>,
        entry: Address,
        key: u64,
        kind: OpKind,
        input: Option<V>,
        base: Option<V>,
        tag: u64,
    ) -> Outcome<V> {
        let store = Arc::clone(&self.store);
        let value = match (kind, base) {
            (OpKind::Upsert, _) => input.expect("upsert input"),
            (OpKind::Rmw, Some(b)) => (store.rmw)(b, input.expect("rmw input")),
            (OpKind::Rmw, None) => input.expect("rmw input"),
            (OpKind::Delete, b) => {
                b.unwrap_or_else(|| value_from_words(&vec![0; store.value_words]))
            }
            (OpKind::Read, _) => unreachable!(),
        };
        value_to_words(&value, &mut self.scratch, store.value_words);
        let addr = store.hlog.allocate(&self.guard);
        let mut header = Header::new(entry, tag);
        if kind == OpKind::Delete {
            header = header.with_tombstone();
        }
        store.hlog.write_record(addr, header, key, &self.scratch);
        if slot.try_update(entry, addr) {
            Outcome::Done(None)
        } else {
            store.hlog.set_header(addr, header.with_invalid());
            Outcome::Retry
        }
    }

    /// Append a new version of `key` at the tail (RCU when `src` names an
    /// immutable source record, plain insert otherwise), then CAS the
    /// index slot.
    #[allow(clippy::too_many_arguments)]
    fn append_record(
        &mut self,
        slot: &Slot<'_>,
        entry: Address,
        key: u64,
        kind: OpKind,
        input: Option<V>,
        src: Option<Address>,
        tag: u64,
    ) -> Outcome<V> {
        let base = src.map(|raddr| {
            self.scratch2.resize(self.store.value_words, 0);
            self.store.hlog.value_at(raddr, &mut self.scratch2);
            value_from_words::<V>(&self.scratch2)
        });
        self.append_base_inner(slot, entry, key, kind, input, base, tag)
    }
}

enum DriveResult<V> {
    Done(Option<V>),
    Pending,
}

impl<V: Pod> Drop for FasterSession<V> {
    fn drop(&mut self) {
        // Drain pendings so an in-flight commit is not stranded. An
        // evicted session skips the drain: its pendings were cancelled by
        // the watchdog and `refresh` clears them on the first pass.
        for _ in 0..10_000 {
            if self.pending.is_empty() || self.evicted {
                break;
            }
            self.refresh();
            if !self.pending.is_empty() {
                std::thread::sleep(std::time::Duration::from_micros(100));
            }
        }
        // Force-release anything still stuck (abandoned ops). With the
        // watchdog on, the offline map arbitrates: only protections whose
        // entry is still present are ours to release.
        let ops = std::mem::take(&mut self.pending);
        if self.clock.is_some() {
            let entries = self.store.offline_pending.lock().remove(&self.slot_idx);
            for g in entries.unwrap_or_default() {
                if let Some(b) = g.latch {
                    self.store.latches[b].release_shared();
                }
                if let Some(k) = g.guarded_key {
                    self.store.pending_v_keys.lock().remove(&k);
                }
                self.store.pending_count[(g.tag & 1) as usize].fetch_sub(1, Ordering::AcqRel);
            }
        } else {
            for op in ops {
                if let Some(b) = op.latch {
                    self.store.latches[b].release_shared();
                }
                if op.guarded {
                    self.store.pending_v_keys.lock().remove(&op.key);
                }
                self.store.pending_count[(op.tag & 1) as usize].fetch_sub(1, Ordering::AcqRel);
            }
        }
        // Deposit this session's commit points before freeing the slot:
        // once the slot is released the registry forgets the guid, but a
        // later checkpoint (or a reconnecting client) still needs them.
        if self.evicted || self.store.registry.is_evicted(self.slot_idx) {
            // Eviction cancelled every op after the rolled-back point; the
            // pre-eviction serial must never be reported.
            let point = self.store.registry.cpr_point(self.slot_idx);
            self.store
                .detached
                .record_evicted(self.guid, self.version, point);
        } else {
            let points: Vec<(u64, u64)> = self.pending_points.iter().copied().collect();
            self.store
                .detached
                .record(self.guid, points, (self.txn_version(), self.serial));
        }
        self.store.registry.release(self.slot_idx);
    }
}
