//! The FASTER hash index (paper Secs. 5, 6.3).
//!
//! An array of 64-byte buckets, each holding 7 entries plus an overflow
//! pointer. An entry packs a 48-bit HybridLog address, a 14-bit tag
//! (additional hash bits distinguishing keys that share a bucket), and a
//! *tentative* bit used by the latch-free two-phase insert. All reads and
//! updates are atomic and latch-free.
//!
//! The index is always physically consistent (entries change only by CAS),
//! so a *fuzzy checkpoint* is just an atomic-read dump of the arrays
//! (paper Sec. 6.3).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::addr::{Address, ADDRESS_MASK, INVALID_ADDRESS};

pub const ENTRIES_PER_BUCKET: usize = 7;
const TAG_BITS: u32 = 14;
const TAG_SHIFT: u32 = 48;
const TAG_MASK: u64 = (1 << TAG_BITS) - 1;
const TENTATIVE_BIT: u64 = 1 << 62;

/// 64-byte hash bucket: 7 entries + 1 overflow pointer (index+1 into the
/// overflow pool; 0 = none).
#[repr(align(64))]
pub struct Bucket {
    entries: [AtomicU64; ENTRIES_PER_BUCKET],
    overflow: AtomicU64,
}

impl Bucket {
    fn new() -> Self {
        Bucket {
            entries: Default::default(),
            overflow: AtomicU64::new(0),
        }
    }
}

#[inline]
fn entry_tag(word: u64) -> u64 {
    (word >> TAG_SHIFT) & TAG_MASK
}

#[inline]
fn entry_addr(word: u64) -> Address {
    word & ADDRESS_MASK
}

#[inline]
fn make_entry(tag: u64, addr: Address, tentative: bool) -> u64 {
    (addr & ADDRESS_MASK) | (tag << TAG_SHIFT) | if tentative { TENTATIVE_BIT } else { 0 }
}

/// Mix a key into a 64-bit hash (bucket index from the low bits, tag from
/// the high bits).
#[inline]
pub fn key_hash(key: u64) -> u64 {
    let mut h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 31;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h
}

#[inline]
fn tag_of(hash: u64) -> u64 {
    // Skip the top bit so tags also differ from the tentative bit's
    // position semantics; any 14 bits work.
    (hash >> 49) & TAG_MASK
}

/// A located index slot for some key hash. The caller reads the current
/// address and CASes updates through this handle.
pub struct Slot<'a> {
    cell: &'a AtomicU64,
    tag: u64,
}

impl Slot<'_> {
    /// Current record address in this slot (`INVALID_ADDRESS` if empty).
    #[inline]
    pub fn address(&self) -> Address {
        let w = self.cell.load(Ordering::Acquire);
        debug_assert!(w == 0 || entry_tag(w) == self.tag);
        entry_addr(w)
    }

    /// CAS the slot's address from `old` to `new`. Fails if a concurrent
    /// update changed it.
    #[inline]
    pub fn try_update(&self, old: Address, new: Address) -> bool {
        let old_word = make_entry(self.tag, old, false);
        let new_word = make_entry(self.tag, new, false);
        self.cell
            .compare_exchange(old_word, new_word, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }
}

/// The latch-free hash index.
pub struct HashIndex {
    buckets: Box<[Bucket]>,
    mask: u64,
    overflow: Box<[Bucket]>,
    overflow_next: AtomicUsize,
}

impl HashIndex {
    /// Create an index with at least `bucket_hint` main buckets (rounded
    /// up to a power of two). Overflow capacity is proportional.
    pub fn new(bucket_hint: usize) -> Self {
        let n = bucket_hint.next_power_of_two().max(64);
        let buckets = (0..n).map(|_| Bucket::new()).collect::<Vec<_>>().into();
        // Generous: the index is normally sized at #keys/2 buckets so
        // chains are short, but undersized indexes (tests, skewed loads)
        // must keep working.
        let overflow_cap = (n * 4).max(256);
        let overflow = (0..overflow_cap)
            .map(|_| Bucket::new())
            .collect::<Vec<_>>()
            .into();
        HashIndex {
            buckets,
            mask: (n - 1) as u64,
            overflow,
            overflow_next: AtomicUsize::new(0),
        }
    }

    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Main-bucket index for a key hash — used to key the per-bucket
    /// latches of the fine-grained CPR variant.
    #[inline]
    pub fn bucket_index(&self, hash: u64) -> usize {
        (hash & self.mask) as usize
    }

    fn bucket_chain(&self, hash: u64) -> impl Iterator<Item = &Bucket> {
        let first = &self.buckets[(hash & self.mask) as usize];
        BucketChain {
            index: self,
            cur: Some(first),
        }
    }

    /// Find the slot for `hash` if one exists (does not allocate).
    pub fn find(&self, hash: u64) -> Option<Slot<'_>> {
        let tag = tag_of(hash);
        for bucket in self.bucket_chain(hash) {
            for cell in &bucket.entries {
                let w = cell.load(Ordering::Acquire);
                if w != 0 && entry_tag(w) == tag && w & TENTATIVE_BIT == 0 {
                    return Some(Slot { cell, tag });
                }
            }
        }
        None
    }

    /// Find or create the slot for `hash` (latch-free two-phase insert:
    /// claim a free cell with the tentative bit, re-scan for a racing
    /// duplicate, then clear the bit).
    pub fn find_or_create(&self, hash: u64) -> Slot<'_> {
        let tag = tag_of(hash);
        'retry: loop {
            let mut free: Option<&AtomicU64> = None;
            let mut last_bucket: Option<&Bucket> = None;
            for bucket in self.bucket_chain(hash) {
                for cell in &bucket.entries {
                    let w = cell.load(Ordering::Acquire);
                    if w != 0 && entry_tag(w) == tag {
                        if w & TENTATIVE_BIT != 0 {
                            // A racing insert is mid-flight; wait for it.
                            std::hint::spin_loop();
                            continue 'retry;
                        }
                        return Slot { cell, tag };
                    }
                    if w == 0 && free.is_none() {
                        free = Some(cell);
                    }
                }
                last_bucket = Some(bucket);
            }

            let Some(cell) = free else {
                // Chain full: link a new overflow bucket and retry.
                self.extend_chain(last_bucket.expect("chain has >= 1 bucket"));
                continue 'retry;
            };

            // Phase 1: claim tentatively.
            let tentative = make_entry(tag, INVALID_ADDRESS, true);
            if cell
                .compare_exchange(0, tentative, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue 'retry;
            }
            // Phase 2: if another entry with our tag exists (tentative or
            // not), back off and retry — exactly one insert must win.
            let mut duplicate = false;
            for bucket in self.bucket_chain(hash) {
                for other in &bucket.entries {
                    if std::ptr::eq(other, cell) {
                        continue;
                    }
                    let w = other.load(Ordering::Acquire);
                    if w != 0 && entry_tag(w) == tag {
                        duplicate = true;
                    }
                }
            }
            if duplicate {
                cell.store(0, Ordering::Release);
                continue 'retry;
            }
            // Commit: clear the tentative bit.
            cell.store(make_entry(tag, INVALID_ADDRESS, false), Ordering::Release);
            return Slot { cell, tag };
        }
    }

    /// Link a fresh overflow bucket after `bucket` (no-op if a racer
    /// already did).
    fn extend_chain(&self, bucket: &Bucket) {
        if bucket.overflow.load(Ordering::Acquire) != 0 {
            return;
        }
        let idx = self.overflow_next.fetch_add(1, Ordering::AcqRel);
        assert!(
            idx < self.overflow.len(),
            "hash index overflow pool exhausted ({} buckets)",
            self.overflow.len()
        );
        if bucket
            .overflow
            .compare_exchange(0, idx as u64 + 1, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            // Lost the race; the pool slot idx is leaked (bounded by racer
            // count, and the pool is sized generously).
        }
    }

    /// Visit every non-empty, non-tentative (tag, address) entry.
    pub fn for_each(&self, mut f: impl FnMut(Address)) {
        let visit = |bucket: &Bucket, f: &mut dyn FnMut(Address)| {
            for cell in &bucket.entries {
                let w = cell.load(Ordering::Acquire);
                if w != 0 && w & TENTATIVE_BIT == 0 && entry_addr(w) != INVALID_ADDRESS {
                    f(entry_addr(w));
                }
            }
        };
        for b in self.buckets.iter() {
            visit(b, &mut f);
        }
        let used = self
            .overflow_next
            .load(Ordering::Acquire)
            .min(self.overflow.len());
        for b in self.overflow[..used].iter() {
            visit(b, &mut f);
        }
    }

    /// Fuzzy checkpoint: atomically read every word into a buffer
    /// (paper Sec. 6.3). Layout: `[n_buckets u64][overflow_used u64]
    /// [main words][overflow words]`.
    pub fn dump(&self) -> Vec<u8> {
        let used = self
            .overflow_next
            .load(Ordering::Acquire)
            .min(self.overflow.len());
        let mut out = Vec::with_capacity(16 + (self.buckets.len() + used) * 64);
        out.extend_from_slice(&(self.buckets.len() as u64).to_le_bytes());
        out.extend_from_slice(&(used as u64).to_le_bytes());
        let mut dump_bucket = |b: &Bucket| {
            for cell in &b.entries {
                // Clear tentative bits: a tentative entry is an
                // in-flight insert, logically absent.
                let w = cell.load(Ordering::Acquire);
                let w = if w & TENTATIVE_BIT != 0 { 0 } else { w };
                out.extend_from_slice(&w.to_le_bytes());
            }
            out.extend_from_slice(&b.overflow.load(Ordering::Acquire).to_le_bytes());
        };
        for b in self.buckets.iter() {
            dump_bucket(b);
        }
        for b in self.overflow[..used].iter() {
            dump_bucket(b);
        }
        out
    }

    /// Restore an index from a [`HashIndex::dump`] buffer.
    pub fn load(data: &[u8]) -> std::io::Result<Self> {
        use std::io::{Error, ErrorKind};
        let err = |m: &str| Error::new(ErrorKind::InvalidData, m.to_string());
        if data.len() < 16 {
            return Err(err("index dump truncated"));
        }
        let n = u64::from_le_bytes(data[..8].try_into().unwrap()) as usize;
        let used = u64::from_le_bytes(data[8..16].try_into().unwrap()) as usize;
        if !n.is_power_of_two() {
            return Err(err("bucket count not a power of two"));
        }
        let expect = 16 + (n + used) * 64;
        if data.len() < expect {
            return Err(err("index dump too short"));
        }
        let index = HashIndex::new(n);
        if used > index.overflow.len() {
            return Err(err("overflow pool too large for layout"));
        }
        let mut off = 16;
        let mut load_bucket = |b: &Bucket| {
            for cell in &b.entries {
                let w = u64::from_le_bytes(data[off..off + 8].try_into().unwrap());
                cell.store(w, Ordering::Relaxed);
                off += 8;
            }
            b.overflow.store(
                u64::from_le_bytes(data[off..off + 8].try_into().unwrap()),
                Ordering::Relaxed,
            );
            off += 8;
        };
        for b in index.buckets.iter() {
            load_bucket(b);
        }
        for b in index.overflow[..used].iter() {
            load_bucket(b);
        }
        let _ = &mut load_bucket;
        index.overflow_next.store(used, Ordering::Release);
        Ok(index)
    }
}

struct BucketChain<'a> {
    index: &'a HashIndex,
    cur: Option<&'a Bucket>,
}

impl<'a> Iterator for BucketChain<'a> {
    type Item = &'a Bucket;
    fn next(&mut self) -> Option<&'a Bucket> {
        let cur = self.cur?;
        let next = cur.overflow.load(Ordering::Acquire);
        self.cur = if next == 0 {
            None
        } else {
            Some(&self.index.overflow[(next - 1) as usize])
        };
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn create_then_find() {
        let idx = HashIndex::new(64);
        let h = key_hash(42);
        assert!(idx.find(h).is_none());
        let slot = idx.find_or_create(h);
        assert_eq!(slot.address(), INVALID_ADDRESS);
        assert!(slot.try_update(INVALID_ADDRESS, 1024));
        assert_eq!(idx.find(h).unwrap().address(), 1024);
    }

    #[test]
    fn cas_fails_on_stale_old() {
        let idx = HashIndex::new(64);
        let slot = idx.find_or_create(key_hash(1));
        assert!(slot.try_update(0, 100));
        assert!(!slot.try_update(0, 200), "stale expected value");
        assert!(slot.try_update(100, 200));
        assert_eq!(slot.address(), 200);
    }

    #[test]
    fn many_keys_chain_into_overflow() {
        let idx = HashIndex::new(64); // 64 buckets * 7 entries = 448 slots
        let n = 2000u64;
        for k in 0..n {
            let slot = idx.find_or_create(key_hash(k));
            // Keys with colliding (bucket, tag) share a slot — CAS from
            // whatever is current, as real ops do.
            loop {
                let cur = slot.address();
                if slot.try_update(cur, 24 * (k + 1)) {
                    break;
                }
            }
        }
        for k in 0..n {
            let got = idx.find(key_hash(k)).map(|s| s.address());
            // Tag collisions within a bucket are possible (same 14-bit
            // tag): colliding keys share a slot, the last CAS wins the
            // chain head. What must hold: every key finds *a* slot.
            assert!(got.is_some(), "key {k} lost");
        }
    }

    #[test]
    fn concurrent_find_or_create_converges_to_one_slot() {
        let idx = Arc::new(HashIndex::new(8));
        let addrs: Vec<u64> = (0..8u64)
            .map(|t| {
                let idx = Arc::clone(&idx);
                std::thread::spawn(move || {
                    let slot = idx.find_or_create(key_hash(7));
                    // Everyone tries to install a distinct address.
                    slot.try_update(INVALID_ADDRESS, 24 * (t + 1));
                    slot.address()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect();
        // Exactly one install can succeed from INVALID.
        let final_addr = idx.find(key_hash(7)).unwrap().address();
        assert!(final_addr != 0);
        for a in addrs {
            assert_eq!(a, final_addr, "all racers must converge on one slot");
        }
    }

    #[test]
    fn dump_load_roundtrip() {
        let idx = HashIndex::new(64);
        for k in 0..500u64 {
            let slot = idx.find_or_create(key_hash(k));
            slot.try_update(INVALID_ADDRESS, 24 * (k + 1));
        }
        let dump = idx.dump();
        let restored = HashIndex::load(&dump).unwrap();
        for k in 0..500u64 {
            let a = idx.find(key_hash(k)).unwrap().address();
            let b = restored.find(key_hash(k)).unwrap().address();
            assert_eq!(a, b, "key {k}");
        }
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(HashIndex::load(&[1, 2, 3]).is_err());
        let mut bad = vec![0u8; 1024];
        bad[0] = 3; // not a power of two
        assert!(HashIndex::load(&bad).is_err());
    }

    #[test]
    fn for_each_visits_installed_addresses() {
        let idx = HashIndex::new(64);
        for k in 0..100u64 {
            let slot = idx.find_or_create(key_hash(k));
            slot.try_update(INVALID_ADDRESS, 24 * (k + 1));
        }
        let mut n = 0;
        idx.for_each(|addr| {
            assert!(addr >= 24);
            n += 1;
        });
        // Tag collisions may merge keys; count is <= 100 but close.
        assert!(n > 90 && n <= 100, "visited {n}");
    }
}
