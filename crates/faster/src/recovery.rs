//! Recovery to a CPR-consistent state (paper Sec. 6.4 / Alg. 3).
//!
//! Recovery combines the newest committed log checkpoint (fold-over or
//! snapshot) with the newest fuzzy index checkpoint at or before it, then
//! scans the HybridLog section `[S, E)` fixing the index:
//!
//! * `S = min(L_is, L_hs)`, `E = L_he` (our index dumps complete before
//!   `L_he` is recorded, so every dumped address is durable — see
//!   DESIGN.md);
//! * a record with version ≤ v becomes its slot's newest address (the
//!   scan runs in address order, so later records win);
//! * a record with version v + 1 is marked invalid on the device, and any
//!   slot pointing at or beyond it is unlinked to the record's previous
//!   address — the UNDO of FASTER recovery.
//!
//! ## Partitioned scan
//!
//! The `[S, E)` scan is embarrassingly parallel: `[S, E)` is split into
//! page-aligned chunks pulled from a shared counter by
//! `recovery_threads` workers. Each worker reduces its chunks to a
//! per-slot summary — `(max valid address, lowest v + 1 address and its
//! prev pointer)` — and issues the idempotent invalid-marker writes for
//! its own chunks. The summaries merge with `(max, min-by-address)`,
//! which is commutative and associative, and are applied to the index
//! sequentially in sorted hash order. The same collect-then-merge path
//! runs at every thread count (including 1), so the recovered index and
//! log bytes are identical no matter how many workers ran.
//!
//! ## Crash safety of recovery itself
//!
//! Recovery may be killed and re-run: snapshot normalization always
//! re-copies `snapshot.dat` into the main log and syncs it *before* the
//! index is loaded or scanned, so a crash mid-normalization just means
//! the next attempt re-copies the same committed bytes; invalid-marker
//! writes are 8-byte header rewrites of fixed content at fixed
//! addresses, so replaying them is a no-op. When
//! [`FasterOptions::fault`] is set, the log device and checkpoint reads
//! are routed through the injector so tests can crash recovery at a
//! chosen read or write.

use std::collections::{BTreeMap, HashMap};
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use cpr_core::{CheckpointKind, CheckpointManifest, Pod};
use cpr_storage::{CheckpointStore, Device, FaultDevice, FileDevice};

use crate::addr::PageLayout;
use crate::header::{version13, Header, RecordLayout};
use crate::index::{key_hash, HashIndex};
use crate::store::{FasterKv, FasterOptions};

/// Target bytes per scan chunk / normalization write. One device read
/// per chunk; small enough to spread a log across workers, large enough
/// to amortize per-read latency.
const RECOVERY_CHUNK_BYTES: u64 = 1 << 20;

/// What the scan learned about one hash slot: the fold of every record
/// for the slot in address order, reduced to the two numbers the apply
/// phase needs. Merging two summaries is `(max, min-by-address)`.
#[derive(Clone, Copy, Default)]
struct SlotOutcome {
    /// Highest address of a valid version-≤v record.
    max_valid: Option<u64>,
    /// Lowest-addressed version-v+1 record: `(address, prev pointer)`.
    min_invalid: Option<(u64, u64)>,
}

impl SlotOutcome {
    fn merge(&mut self, other: SlotOutcome) {
        if let Some(a) = other.max_valid {
            self.max_valid = Some(self.max_valid.map_or(a, |b| b.max(a)));
        }
        if let Some((a, p)) = other.min_invalid {
            self.min_invalid = Some(match self.min_invalid {
                Some((b, q)) if b < a => (b, q),
                _ => (a, p),
            });
        }
    }
}

pub(crate) fn recover<V: Pod>(
    opts: FasterOptions<V>,
) -> io::Result<(FasterKv<V>, Option<CheckpointManifest>)> {
    let cs = CheckpointStore::open_with(opts.dir.join("checkpoints"), opts.fault.clone())?;
    let m_log = cs.latest_matching(|m| {
        matches!(m.kind, CheckpointKind::FoldOver | CheckpointKind::Snapshot)
    })?;
    let Some(m_log) = m_log else {
        // Nothing committed: a fresh store.
        return Ok((FasterKv::open_inner(opts)?, None));
    };

    let metrics_on = opts.metrics.is_enabled();
    let base: Arc<dyn Device> = Arc::new(FileDevice::open_with(
        opts.dir.join("log.dat"),
        opts.write_queues,
        opts.io_profile,
    )?);
    let device: Arc<dyn Device> = match &opts.fault {
        Some(inj) => Arc::new(FaultDevice::new(base, Arc::clone(inj))),
        None => base,
    };

    // Normalize a snapshot commit into the main log file so a single
    // contiguous source covers [0, E). Idempotent and re-runnable: the
    // full snapshot is re-copied unconditionally (a previous recovery
    // attempt may have died mid-copy), and it is synced before anything
    // below reads the log.
    if m_log.kind == CheckpointKind::Snapshot {
        let t0 = metrics_on.then(std::time::Instant::now);
        let start = m_log
            .snapshot_start
            .expect("snapshot manifest has snapshot_start");
        let bytes = cs.read_file(m_log.token, "snapshot.dat")?;
        let mut off = 0usize;
        while off < bytes.len() {
            let end = (off + RECOVERY_CHUNK_BYTES as usize).min(bytes.len());
            device
                .write_at(start + off as u64, bytes[off..end].to_vec())
                .wait()?;
            off = end;
        }
        device.sync()?;
        if let Some(t0) = t0 {
            opts.metrics.record_phase("recovery.normalize", 1, t0.elapsed());
        }
    }

    // Newest usable index checkpoint (the log checkpoint itself if full).
    let m_idx = if m_log.index_begin.is_some() {
        Some(m_log.clone())
    } else {
        cs.latest_matching(|m| m.token <= m_log.token && m.index_begin.is_some())?
    };
    let index = match &m_idx {
        Some(mi) => HashIndex::load(&cs.read_file(mi.token, "index.dat")?)?,
        None => HashIndex::new(opts.index_buckets),
    };

    let layout = PageLayout::new(opts.hlog.page_bits);
    let rec = RecordLayout::new(opts.hlog.value_size);
    let rec_size = rec.record_size() as u64;
    let begin = rec_size;

    let v = m_log.version;
    let vnext13 = version13(v + 1);
    let lhs = m_log.log_begin.expect("log checkpoint has log_begin");
    let e = m_log.log_end.expect("log checkpoint has log_end");
    let s = m_idx
        .as_ref()
        .and_then(|m| m.index_begin)
        .unwrap_or(begin)
        .min(lhs)
        .max(begin);

    // Scan [s, e): page-aligned chunks handed to a worker pool, merged
    // into one per-slot summary map.
    let threads = opts.recovery_threads.max(1);
    let t_scan = metrics_on.then(std::time::Instant::now);
    let merged = scan_partitioned(&device, &layout, rec_size, vnext13, s, e, threads)?;
    if let Some(t0) = t_scan {
        opts.metrics.record_phase("recovery.scan", threads, t0.elapsed());
    }

    // Apply summaries to the index in sorted hash order (BTreeMap
    // iteration), so slot creation order — and therefore the index dump
    // bytes — do not depend on worker scheduling.
    let t_apply = metrics_on.then(std::time::Instant::now);
    for (hash, o) in &merged {
        let slot = index.find_or_create(*hash);
        loop {
            let cur = slot.address();
            let new = match (o.max_valid, o.min_invalid) {
                (Some(mv), _) => mv,
                (None, Some((ia, prev))) if cur >= ia => prev,
                _ => break,
            };
            if new == cur || slot.try_update(cur, new) {
                break;
            }
        }
    }
    device.sync()?;
    if let Some(t0) = t_apply {
        opts.metrics.record_phase("recovery.apply", 1, t0.elapsed());
    }

    let sessions: HashMap<u64, u64> = m_log
        .sessions
        .iter()
        .map(|s| (s.guid, s.cpr_point))
        .collect();

    let kv = FasterKv::build(opts, device, Some((index, v + 1, sessions)))?;
    kv.inner.hlog.restore_at(e);
    Ok((kv, Some(m_log)))
}

/// Scan `[s, e)` with `threads` workers over page-aligned chunks and
/// return the merged per-slot summaries. Workers also rewrite the
/// headers of version-v+1 records with the invalid bit set (idempotent
/// 8-byte writes at disjoint addresses; chunks never split a record).
fn scan_partitioned(
    device: &Arc<dyn Device>,
    layout: &PageLayout,
    rec_size: u64,
    vnext13: u64,
    s: u64,
    e: u64,
    threads: usize,
) -> io::Result<BTreeMap<u64, SlotOutcome>> {
    if s >= e {
        return Ok(BTreeMap::new());
    }
    let psz = layout.page_size();
    let chunk_pages = (RECOVERY_CHUNK_BYTES / psz).max(1);
    let chunk_bytes = chunk_pages * psz;
    let chunk0 = layout.page_start(layout.page(s));
    let nchunks = (e - chunk0).div_ceil(chunk_bytes);

    let next = AtomicU64::new(0);
    let failed = AtomicBool::new(false);
    let worker = |_w: usize| -> io::Result<BTreeMap<u64, SlotOutcome>> {
        let mut local: BTreeMap<u64, SlotOutcome> = BTreeMap::new();
        let mut buf: Vec<u8> = Vec::new();
        let mut markers: Vec<cpr_storage::IoHandle> = Vec::new();
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= nchunks || failed.load(Ordering::Acquire) {
                break;
            }
            let cstart = (chunk0 + i * chunk_bytes).max(s);
            let cend = (chunk0 + (i + 1) * chunk_bytes).min(e);
            if cstart >= cend {
                continue;
            }
            buf.clear();
            buf.resize((cend - cstart) as usize, 0);
            device.read_at(cstart, &mut buf)?;
            scan_chunk(
                &buf, cstart, cend, layout, rec_size, vnext13, device, &mut local, &mut markers,
            );
        }
        for m in markers {
            m.wait()?;
        }
        Ok(local)
    };

    let results: Vec<io::Result<BTreeMap<u64, SlotOutcome>>> = if threads == 1 {
        vec![worker(0)]
    } else {
        std::thread::scope(|sc| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let worker = &worker;
                    let failed = &failed;
                    sc.spawn(move || {
                        let r = worker(w);
                        if r.is_err() {
                            failed.store(true, Ordering::Release);
                        }
                        r
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("recovery worker panicked"))
                .collect()
        })
    };

    let mut merged: BTreeMap<u64, SlotOutcome> = BTreeMap::new();
    for r in results {
        for (hash, o) in r? {
            merged.entry(hash).or_default().merge(o);
        }
    }
    Ok(merged)
}

/// Reduce one chunk's records into `local`, issuing invalid-marker
/// writes for version-v+1 records (completion handles are pushed to
/// `markers`; the caller waits them so injected write faults surface).
#[allow(clippy::too_many_arguments)]
fn scan_chunk(
    buf: &[u8],
    cstart: u64,
    cend: u64,
    layout: &PageLayout,
    rec_size: u64,
    vnext13: u64,
    device: &Arc<dyn Device>,
    local: &mut BTreeMap<u64, SlotOutcome>,
    markers: &mut Vec<cpr_storage::IoHandle>,
) {
    let psz = layout.page_size();
    let mut addr = cstart;
    while addr < cend && addr + rec_size <= cend {
        // Records never straddle pages; skip page-tail slack.
        if layout.offset(addr) + rec_size > psz {
            addr = layout.page_start(layout.page(addr) + 1);
            continue;
        }
        let base = (addr - cstart) as usize;
        let word = u64::from_le_bytes(buf[base..base + 8].try_into().unwrap());
        if word == 0 {
            // Unwritten slack: nothing else in this page.
            addr = layout.page_start(layout.page(addr) + 1);
            continue;
        }
        let h = Header::unpack(word);
        let key = u64::from_le_bytes(buf[base + 8..base + 16].try_into().unwrap());
        let entry = local.entry(key_hash(key)).or_default();
        if h.version != vnext13 && !h.invalid {
            // Part of the commit: later addresses win.
            entry.merge(SlotOutcome {
                max_valid: Some(addr),
                min_invalid: None,
            });
        } else {
            // Post-CPR-point record: mark invalid on the device and
            // remember the unlink target — the UNDO of FASTER recovery.
            let inv = Header { invalid: true, ..h };
            markers.push(device.write_at(addr, inv.pack().to_le_bytes().to_vec()));
            entry.merge(SlotOutcome {
                max_valid: None,
                min_invalid: Some((addr, h.prev)),
            });
        }
        addr += rec_size;
    }
}
