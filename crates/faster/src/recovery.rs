//! Recovery to a CPR-consistent state (paper Sec. 6.4 / Alg. 3).
//!
//! Recovery combines the newest committed log checkpoint (fold-over or
//! snapshot) with the newest fuzzy index checkpoint at or before it, then
//! scans the HybridLog section `[S, E)` fixing the index:
//!
//! * `S = min(L_is, L_hs)`, `E = L_he` (our index dumps complete before
//!   `L_he` is recorded, so every dumped address is durable — see
//!   DESIGN.md);
//! * a record with version ≤ v becomes its slot's newest address (the
//!   scan runs in address order, so later records win);
//! * a record with version v + 1 is marked invalid on the device, and any
//!   slot pointing at or beyond it is unlinked to the record's previous
//!   address — the UNDO of FASTER recovery.

use std::collections::HashMap;
use std::io;
use std::sync::Arc;

use cpr_core::{CheckpointKind, CheckpointManifest, Pod};
use cpr_storage::{CheckpointStore, Device, FileDevice};

use crate::addr::PageLayout;
use crate::header::{version13, Header, RecordLayout};
use crate::index::{key_hash, HashIndex};
use crate::store::{FasterKv, FasterOptions};

pub(crate) fn recover<V: Pod>(
    opts: FasterOptions<V>,
) -> io::Result<(FasterKv<V>, Option<CheckpointManifest>)> {
    let cs = CheckpointStore::open(opts.dir.join("checkpoints"))?;
    let m_log = cs.latest_matching(|m| {
        matches!(m.kind, CheckpointKind::FoldOver | CheckpointKind::Snapshot)
    })?;
    let Some(m_log) = m_log else {
        // Nothing committed: a fresh store.
        return Ok((FasterKv::open_inner(opts)?, None));
    };

    let device: Arc<dyn Device> = Arc::new(FileDevice::open(opts.dir.join("log.dat"))?);

    // Normalize a snapshot commit into the main log file so a single
    // contiguous source covers [0, E).
    if m_log.kind == CheckpointKind::Snapshot {
        let start = m_log
            .snapshot_start
            .expect("snapshot manifest has snapshot_start");
        let bytes = std::fs::read(cs.file(m_log.token, "snapshot.dat"))?;
        device.write_at(start, bytes).wait()?;
        device.sync()?;
    }

    // Newest usable index checkpoint (the log checkpoint itself if full).
    let m_idx = if m_log.index_begin.is_some() {
        Some(m_log.clone())
    } else {
        cs.latest_matching(|m| m.token <= m_log.token && m.index_begin.is_some())?
    };
    let index = match &m_idx {
        Some(mi) => HashIndex::load(&std::fs::read(cs.file(mi.token, "index.dat"))?)?,
        None => HashIndex::new(opts.index_buckets),
    };

    let layout = PageLayout::new(opts.hlog.page_bits);
    let rec = RecordLayout::new(opts.hlog.value_size);
    let rec_size = rec.record_size() as u64;
    let begin = rec_size;

    let v = m_log.version;
    let vnext13 = version13(v + 1);
    let lhs = m_log.log_begin.expect("log checkpoint has log_begin");
    let e = m_log.log_end.expect("log checkpoint has log_end");
    let s = m_idx
        .as_ref()
        .and_then(|m| m.index_begin)
        .unwrap_or(begin)
        .min(lhs)
        .max(begin);

    // Scan [s, e) page by page.
    let mut addr = s;
    let psz = layout.page_size();
    let mut page_buf: Vec<u8> = Vec::new();
    let mut cur_page = u64::MAX;
    while addr + rec_size <= e.max(addr) && addr < e {
        // Records never straddle pages; skip page-tail slack.
        if layout.offset(addr) + rec_size > psz {
            addr = layout.page_start(layout.page(addr) + 1);
            continue;
        }
        let page = layout.page(addr);
        if page != cur_page {
            let start = layout.page_start(page).max(s);
            let end = layout.page_start(page + 1).min(e);
            page_buf.clear();
            page_buf.resize((end - start) as usize, 0);
            device.read_at(start, &mut page_buf)?;
            cur_page = page;
        }
        let base = (addr - layout.page_start(page).max(s)) as usize;
        if base + rec_size as usize > page_buf.len() {
            break; // truncated tail
        }
        let word = u64::from_le_bytes(page_buf[base..base + 8].try_into().unwrap());
        if word == 0 {
            // Unwritten slack: nothing else in this page.
            addr = layout.page_start(page + 1);
            continue;
        }
        let h = Header::unpack(word);
        let key = u64::from_le_bytes(page_buf[base + 8..base + 16].try_into().unwrap());
        let slot = index.find_or_create(key_hash(key));
        if h.version != vnext13 && !h.invalid {
            // Part of the commit: the scan is in address order, so this is
            // the newest version-≤v record so far for its slot.
            loop {
                let cur = slot.address();
                if slot.try_update(cur, addr) {
                    break;
                }
            }
        } else {
            // Post-CPR-point record: mark invalid on the device and unlink
            // the slot if it points at or beyond it.
            let inv = Header { invalid: true, ..h };
            device.write_at(addr, inv.pack().to_le_bytes().to_vec());
            loop {
                let cur = slot.address();
                if cur < addr {
                    break;
                }
                if slot.try_update(cur, h.prev) {
                    break;
                }
            }
        }
        addr += rec_size;
    }
    device.sync()?;

    let sessions: HashMap<u64, u64> = m_log
        .sessions
        .iter()
        .map(|s| (s.guid, s.cpr_point))
        .collect();

    let kv = FasterKv::build(opts, device, Some((index, v + 1, sessions)))?;
    kv.inner.hlog.restore_at(e);
    Ok((kv, Some(m_log)))
}
