//! The wait-flush work of a CPR commit, and fuzzy index checkpoints
//! (paper Secs. 6.2.4, 6.3).
//!
//! Runs on a dedicated checkpoint thread so user sessions never block:
//! they keep processing version-`v + 1` requests while the version-`v`
//! state is written out.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use cpr_core::{CheckpointKind, CheckpointManifest, Phase, Pod, SessionCpr};

use crate::store::{mark_phase, CheckpointVariant, StoreInner};

/// Complete the commit of version `v`: capture the volatile log (and
/// optionally the index), persist the manifest, and return to `rest` at
/// `v + 1`.
///
/// Any I/O failure (including injected faults) aborts the checkpoint
/// instead of panicking: the uncommitted directory is discarded, no
/// manifest is written, `committed_version` stays put, and the state
/// machine still returns to `rest` at `v + 1` so sessions proceed and a
/// later checkpoint can succeed.
pub(crate) fn run_wait_flush<V: Pod>(inner: &Arc<StoreInner<V>>, v: u64) {
    let ctx = inner.ckpt.lock().take().expect("checkpoint context set");
    let token = ctx.token;
    let started = ctx.started;
    let mut marks = ctx.phase_marks.clone();

    let committed = try_wait_flush(inner, v, ctx);
    if committed.is_none() {
        // Failed attempt: remove the partial checkpoint (no-op if the
        // fault was a simulated crash — the torn state must survive for
        // recovery) and count the failure so callers can observe it.
        let _ = inner.store.abort(token);
        inner.checkpoint_failures.fetch_add(1, Ordering::AcqRel);
    }

    // Back to rest at v + 1 either way; only success publishes v.
    marks.push((Phase::Rest, started.elapsed()));
    *inner.last_phase_marks.lock() = marks;
    let ok = inner
        .state
        .transition((Phase::WaitFlush, v), (Phase::Rest, v + 1));
    debug_assert!(ok, "state machine out of sync at commit completion");
    let _ = mark_phase::<V>; // (phase marks already pushed above)
    if inner.metrics_on {
        let out = inner.outcome.lock();
        inner.metrics.checkpoints.end(
            v,
            committed.is_some(),
            out.attempts as u64,
            out.proxy_advanced.len() as u64,
            out.evicted.len() as u64,
        );
    }
    if let Some(manifest) = committed {
        // The manifest's points are now the durable baseline; detached
        // entries it subsumes can be dropped.
        {
            let mut durable = inner.durable_points.lock();
            for s in &manifest.sessions {
                let e = durable.entry(s.guid).or_insert(0);
                *e = (*e).max(s.cpr_point);
            }
        }
        inner.detached.prune_committed(v);
        inner.committed_version.store(v, Ordering::Release);
        for cb in inner.commit_callbacks.lock().iter() {
            cb(v, &manifest.sessions);
        }
    }
    let _g = inner.commit_lock.lock();
    inner.commit_cv.notify_all();
}

/// The fallible body of the wait-flush phase. Returns the committed
/// manifest, or `None` if any step failed (checkpoint must abort).
fn try_wait_flush<V: Pod>(
    inner: &Arc<StoreInner<V>>,
    v: u64,
    ctx: crate::store::CkptCtx,
) -> Option<CheckpointManifest> {
    let hl = &inner.hlog;

    // Fuzzy index checkpoint first (full commits only), so that every
    // address the dumped index references is ≤ L_ie ≤ L_he and therefore
    // durable once the log flush below completes (see DESIGN.md).
    let (mut lis, mut lie) = (None, None);
    if !ctx.log_only {
        lis = Some(hl.tail());
        let dump = inner.index.dump();
        inner.store.write_file(ctx.token, "index.dat", &dump).ok()?;
        lie = Some(hl.tail());
    }

    let lhe = hl.tail();
    let flush_t0 = inner.metrics_on.then(std::time::Instant::now);
    let mut snapshot_start = None;
    match ctx.variant {
        CheckpointVariant::FoldOver => {
            // Advance the read-only offset to the tail: every version-v
            // record becomes immutable and is flushed to the main log
            // (chunked across the device's writer queues).
            hl.shift_read_only_to(lhe);
            hl.wait_flushed(lhe).ok()?;
        }
        CheckpointVariant::Snapshot => {
            // Capture the volatile region into a separate file; offsets
            // (and in-place updatability) are untouched.
            let start = hl.flushed_durable();
            let bytes = hl.read_range(start, lhe).ok()?;
            inner
                .store
                .write_file(ctx.token, "snapshot.dat", &bytes)
                .ok()?;
            snapshot_start = Some(start);
        }
    }
    hl.device().sync().ok()?;
    if let Some(t0) = flush_t0 {
        let name = match ctx.variant {
            CheckpointVariant::FoldOver => "flush.fold-over",
            CheckpointVariant::Snapshot => "flush.snapshot",
        };
        inner
            .metrics
            .record_phase(name, inner.write_queues, t0.elapsed());
    }

    let kind = match ctx.variant {
        CheckpointVariant::FoldOver => CheckpointKind::FoldOver,
        CheckpointVariant::Snapshot => CheckpointKind::Snapshot,
    };
    let mut manifest = CheckpointManifest::new(ctx.token, kind, v);
    manifest.log_begin = Some(ctx.lhs);
    manifest.log_end = Some(lhe);
    manifest.index_begin = lis;
    manifest.index_end = lie;
    manifest.snapshot_start = snapshot_start;
    manifest.sessions = session_points(inner, v);
    inner.store.commit(&manifest).ok()?;
    Some(manifest)
}

/// Per-session commit points for the manifest of version `v`: the newest
/// durable points carried forward, detached sessions' deposited points,
/// and the live registry snapshot, merged by max. Serials only grow per
/// guid, so max picks the newest claim each source can justify (and a
/// session that re-attached mid-checkpoint — registry point still 0 —
/// keeps the point it deposited when it detached).
pub(crate) fn session_points<V: Pod>(inner: &Arc<StoreInner<V>>, v: u64) -> Vec<SessionCpr> {
    let mut points: HashMap<u64, u64> = inner.durable_points.lock().clone();
    for (guid, p) in inner
        .detached
        .points_for(v)
        .into_iter()
        .chain(inner.registry.cpr_points())
    {
        let e = points.entry(guid).or_insert(0);
        *e = (*e).max(p);
    }
    let mut out: Vec<SessionCpr> = points
        .into_iter()
        .map(|(guid, cpr_point)| SessionCpr { guid, cpr_point })
        .collect();
    out.sort_unstable_by_key(|s| s.guid);
    out
}

/// Standalone fuzzy index checkpoint (paper Sec. 6.3): the index is
/// physically consistent at all times, so a dump of atomically read words
/// suffices; recovery replays the log suffix `[L_is, …)` over it.
pub(crate) fn index_checkpoint<V: Pod>(inner: &Arc<StoreInner<V>>) -> io::Result<u64> {
    let token = inner.store.begin()?;
    let result = (|| {
        let lis = inner.hlog.tail();
        let dump = inner.index.dump();
        inner.store.write_file(token, "index.dat", &dump)?;
        let lie = inner.hlog.tail();
        let mut manifest =
            CheckpointManifest::new(token, CheckpointKind::Index, inner.state.version());
        manifest.index_begin = Some(lis);
        manifest.index_end = Some(lie);
        inner.store.commit(&manifest)?;
        Ok(token)
    })();
    if result.is_err() {
        let _ = inner.store.abort(token);
        inner.checkpoint_failures.fetch_add(1, Ordering::AcqRel);
    }
    result
}
