//! The wait-flush work of a CPR commit, and fuzzy index checkpoints
//! (paper Secs. 6.2.4, 6.3).
//!
//! Runs on a dedicated checkpoint thread so user sessions never block:
//! they keep processing version-`v + 1` requests while the version-`v`
//! state is written out.

use std::io::{self, Write};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use cpr_core::{CheckpointKind, CheckpointManifest, Phase, Pod, SessionCpr};

use crate::store::{mark_phase, CheckpointVariant, StoreInner};

/// Complete the commit of version `v`: capture the volatile log (and
/// optionally the index), persist the manifest, and return to `rest` at
/// `v + 1`.
pub(crate) fn run_wait_flush<V: Pod>(inner: &Arc<StoreInner<V>>, v: u64) {
    let ctx = inner.ckpt.lock().take().expect("checkpoint context set");
    let hl = &inner.hlog;

    // Fuzzy index checkpoint first (full commits only), so that every
    // address the dumped index references is ≤ L_ie ≤ L_he and therefore
    // durable once the log flush below completes (see DESIGN.md).
    let (mut lis, mut lie) = (None, None);
    if !ctx.log_only {
        lis = Some(hl.tail());
        let dump = inner.index.dump();
        write_atomic(&inner.store.file(ctx.token, "index.dat"), &dump)
            .expect("write index checkpoint");
        lie = Some(hl.tail());
    }

    let lhe = hl.tail();
    let mut snapshot_start = None;
    match ctx.variant {
        CheckpointVariant::FoldOver => {
            // Advance the read-only offset to the tail: every version-v
            // record becomes immutable and is flushed to the main log.
            hl.shift_read_only_to(lhe);
            hl.wait_flushed(lhe);
        }
        CheckpointVariant::Snapshot => {
            // Capture the volatile region into a separate file; offsets
            // (and in-place updatability) are untouched.
            let start = hl.flushed_durable();
            let bytes = hl.read_range(start, lhe);
            write_atomic(&inner.store.file(ctx.token, "snapshot.dat"), &bytes)
                .expect("write snapshot");
            snapshot_start = Some(start);
        }
    }
    hl.device().sync().expect("log device sync");

    let kind = match ctx.variant {
        CheckpointVariant::FoldOver => CheckpointKind::FoldOver,
        CheckpointVariant::Snapshot => CheckpointKind::Snapshot,
    };
    let mut manifest = CheckpointManifest::new(ctx.token, kind, v);
    manifest.log_begin = Some(ctx.lhs);
    manifest.log_end = Some(lhe);
    manifest.index_begin = lis;
    manifest.index_end = lie;
    manifest.snapshot_start = snapshot_start;
    manifest.sessions = inner
        .registry
        .cpr_points()
        .into_iter()
        .map(|(guid, cpr_point)| SessionCpr { guid, cpr_point })
        .collect();
    inner.store.commit(&manifest).expect("commit manifest");

    // Back to rest at v + 1.
    let mut marks = ctx.phase_marks;
    marks.push((Phase::Rest, ctx.started.elapsed()));
    *inner.last_phase_marks.lock() = marks;
    let ok = inner
        .state
        .transition((Phase::WaitFlush, v), (Phase::Rest, v + 1));
    debug_assert!(ok, "state machine out of sync at commit completion");
    let _ = mark_phase::<V>; // (phase marks already pushed above)
    inner.committed_version.store(v, Ordering::Release);
    for cb in inner.commit_callbacks.lock().iter() {
        cb(v, &manifest.sessions);
    }
    let _g = inner.commit_lock.lock();
    inner.commit_cv.notify_all();
}

/// Standalone fuzzy index checkpoint (paper Sec. 6.3): the index is
/// physically consistent at all times, so a dump of atomically read words
/// suffices; recovery replays the log suffix `[L_is, …)` over it.
pub(crate) fn index_checkpoint<V: Pod>(inner: &Arc<StoreInner<V>>) -> io::Result<u64> {
    let token = inner.store.begin()?;
    let lis = inner.hlog.tail();
    let dump = inner.index.dump();
    write_atomic(&inner.store.file(token, "index.dat"), &dump)?;
    let lie = inner.hlog.tail();
    let mut manifest = CheckpointManifest::new(token, CheckpointKind::Index, inner.state.version());
    manifest.index_begin = Some(lis);
    manifest.index_end = Some(lie);
    inner.store.commit(&manifest)?;
    Ok(token)
}

fn write_atomic(path: &std::path::Path, data: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(data)?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, path)
}
