//! The FASTER key-value store with CPR durability (paper Secs. 5–6).

use std::collections::{HashMap, HashSet};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cpr_core::liveness::{CommitOutcome, LivenessConfig};
use cpr_core::{
    CheckpointManifest, CheckpointVersion, DetachedSessions, NoWaitLock, Phase, Pod,
    SessionRegistry, SystemState,
};
use cpr_epoch::EpochManager;
use cpr_metrics::{MetricsReport, Registry};
use cpr_storage::{
    CheckpointStore, Device, FaultDevice, FaultInjector, FileDevice, IoProfile, MeteredDevice,
};
use crossbeam_utils::CachePadded;
use parking_lot::{Condvar, Mutex};

use crate::hlog::{HlogConfig, HybridLog};
use crate::index::HashIndex;
use crate::io::IoPool;
use crate::session::FasterSession;

/// How the volatile version-`v` records are captured (paper Appx. D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointVariant {
    /// Advance the read-only offset to the tail: the log file itself is
    /// the (incremental) checkpoint. Post-commit updates pay a
    /// read-copy-update until the working set migrates back.
    FoldOver,
    /// Write the volatile region to a separate snapshot file; the mutable
    /// region reopens for in-place updates right after the commit.
    Snapshot,
}

/// How threads hand records over to the next version (paper Appx. C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VersionGrain {
    /// Per-hash-bucket latches (lower latency, prepare-phase latch cost).
    Fine,
    /// Use the safe-read-only offset as a coarse marker; contended
    /// requests go pending instead.
    Coarse,
}

/// Store configuration.
pub struct FasterOptions<V: Pod> {
    pub index_buckets: usize,
    pub hlog: HlogConfig,
    /// Directory holding `log.dat` and the checkpoint store.
    pub dir: PathBuf,
    /// Ops between session refreshes.
    pub refresh_every: u64,
    pub grain: VersionGrain,
    pub max_sessions: usize,
    pub io_threads: usize,
    /// Writer queues for the log device: checkpoint flushes stripe their
    /// chunks across this many background writer threads. Defaults to
    /// the `CPR_IO_THREADS` environment variable (1 when unset).
    pub write_queues: usize,
    /// Worker threads for the recovery scan of `[S, E)`. Defaults to the
    /// `CPR_IO_THREADS` environment variable (1 when unset). The
    /// recovered state is byte-identical at any thread count.
    pub recovery_threads: usize,
    /// Simulated device speed profile for the log device (benchmarks);
    /// defaults to [`IoProfile::NONE`] (real hardware speed).
    pub io_profile: IoProfile,
    /// RMW semantics: `new = rmw(old, input)`; a missing key starts from
    /// `input`.
    pub rmw: fn(V, V) -> V,
    /// Optional fault injector for crash-recovery testing: decorates the
    /// log device and the checkpoint store so every durable write draws
    /// from one scriptable fault schedule.
    pub fault: Option<Arc<FaultInjector>>,
    /// Optional session liveness watchdog: lease-based straggler
    /// detection, checkpoint abort + backoff, dead-session reclamation.
    pub liveness: Option<LivenessConfig>,
    /// Metrics registry; defaults to a disabled no-op sink.
    pub metrics: Arc<Registry>,
}

impl FasterOptions<u64> {
    /// The paper's YCSB RMW workload: a running per-key sum.
    pub fn u64_sums(dir: impl Into<PathBuf>) -> Self {
        FasterOptions {
            rmw: |old, input| old.wrapping_add(input),
            ..FasterOptions::defaults(dir.into())
        }
    }
}

impl<V: Pod> FasterOptions<V> {
    /// Baseline configuration shared by every entry point. The default
    /// `rmw` is last-writer-wins (`new = input`); the default `hlog`
    /// sizes `value_size` for `V`.
    pub(crate) fn defaults(dir: PathBuf) -> Self {
        let mut hlog = HlogConfig::small_for_tests();
        hlog.value_size = std::mem::size_of::<V>();
        FasterOptions {
            index_buckets: 1 << 12,
            hlog,
            dir,
            refresh_every: 64,
            grain: VersionGrain::Fine,
            max_sessions: 64,
            io_threads: 2,
            write_queues: cpr_storage::env_io_threads(),
            recovery_threads: cpr_storage::env_io_threads(),
            io_profile: IoProfile::NONE,
            rmw: |_old, input| input,
            fault: None,
            liveness: None,
            metrics: Registry::noop(),
        }
    }

    pub fn with_hlog(mut self, hlog: HlogConfig) -> Self {
        self.hlog = hlog;
        self
    }
    pub fn with_grain(mut self, g: VersionGrain) -> Self {
        self.grain = g;
        self
    }
    pub fn with_index_buckets(mut self, n: usize) -> Self {
        self.index_buckets = n;
        self
    }
    pub fn with_refresh_every(mut self, k: u64) -> Self {
        self.refresh_every = k;
        self
    }
    pub fn with_fault_injector(mut self, injector: Arc<FaultInjector>) -> Self {
        self.fault = Some(injector);
        self
    }
    pub fn with_liveness(mut self, cfg: LivenessConfig) -> Self {
        self.liveness = Some(cfg);
        self
    }
    pub fn with_metrics(mut self, metrics: Arc<Registry>) -> Self {
        self.metrics = metrics;
        self
    }
}

/// Fluent builder for a [`FasterKv`] store; obtained from
/// [`FasterKv::builder`]. Terminal methods are [`open`](Self::open)
/// (fresh store, truncates any existing log) and
/// [`recover`](Self::recover) (Alg. 3 recovery from the newest committed
/// checkpoint).
///
/// Defaults: `index_buckets = 4096`, a small test-sized hybrid log with
/// `value_size = size_of::<V>()`, `refresh_every = 64`,
/// `grain = VersionGrain::Fine`, `max_sessions = 64`, `io_threads = 2`,
/// last-writer-wins RMW (`new = input`), no fault injection, no liveness
/// watchdog, and a disabled metrics registry. Use
/// [`FasterBuilder::u64_sums`] for the paper's summing YCSB workload.
///
/// ```
/// use cpr_faster::{FasterKv, Status};
///
/// let dir = tempfile::tempdir().unwrap();
/// let kv: FasterKv<u64> = FasterKv::builder(dir.path())
///     .refresh_every(16)
///     .open()
///     .unwrap();
/// let mut session = kv.start_session(1);
/// assert_eq!(session.upsert(1, 42), Status::Ok);
/// ```
pub struct FasterBuilder<V: Pod> {
    opts: FasterOptions<V>,
}

impl<V: Pod> std::fmt::Debug for FasterBuilder<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FasterBuilder")
            .field("dir", &self.opts.dir)
            .field("index_buckets", &self.opts.index_buckets)
            .field("grain", &self.opts.grain)
            .finish_non_exhaustive()
    }
}

impl FasterBuilder<u64> {
    /// The paper's YCSB RMW workload preset: a running per-key sum.
    pub fn u64_sums(dir: impl Into<PathBuf>) -> Self {
        FasterBuilder {
            opts: FasterOptions::u64_sums(dir),
        }
    }
}

impl<V: Pod> FasterBuilder<V> {
    /// Start from the documented defaults, rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        FasterBuilder {
            opts: FasterOptions::defaults(dir.into()),
        }
    }

    /// Number of hash-index buckets (8 entries each).
    pub fn index_buckets(mut self, n: usize) -> Self {
        self.opts.index_buckets = n;
        self
    }
    /// Hybrid-log geometry; `value_size` must equal `size_of::<V>()`.
    pub fn hlog(mut self, hlog: HlogConfig) -> Self {
        self.opts.hlog = hlog;
        self
    }
    /// Ops between automatic session refreshes.
    pub fn refresh_every(mut self, k: u64) -> Self {
        self.opts.refresh_every = k;
        self
    }
    /// Version-shift granularity (paper Appx. C).
    pub fn grain(mut self, g: VersionGrain) -> Self {
        self.opts.grain = g;
        self
    }
    /// Maximum number of concurrently live sessions.
    pub fn max_sessions(mut self, n: usize) -> Self {
        self.opts.max_sessions = n;
        self
    }
    /// Size of the background I/O completion pool.
    pub fn io_threads(mut self, n: usize) -> Self {
        self.opts.io_threads = n;
        self
    }
    /// Writer queues for the log device (checkpoint-flush striping).
    pub fn write_queues(mut self, n: usize) -> Self {
        self.opts.write_queues = n.max(1);
        self
    }
    /// Worker threads for the recovery scan (see
    /// [`FasterOptions::recovery_threads`]).
    pub fn recovery_threads(mut self, n: usize) -> Self {
        self.opts.recovery_threads = n.max(1);
        self
    }
    /// Simulated device speed profile for the log device (benchmarks).
    pub fn io_profile(mut self, profile: IoProfile) -> Self {
        self.opts.io_profile = profile;
        self
    }
    /// RMW semantics: `new = rmw(old, input)`; a missing key starts from
    /// `input`.
    pub fn rmw(mut self, f: fn(V, V) -> V) -> Self {
        self.opts.rmw = f;
        self
    }
    /// Decorate the log device and checkpoint store with a scriptable
    /// fault injector (crash-recovery testing).
    pub fn fault_injector(mut self, injector: Arc<FaultInjector>) -> Self {
        self.opts.fault = Some(injector);
        self
    }
    /// Enable the session liveness watchdog.
    pub fn liveness(mut self, cfg: LivenessConfig) -> Self {
        self.opts.liveness = Some(cfg);
        self
    }
    /// Attach a metrics registry (see [`cpr_metrics::Registry::new`]).
    pub fn metrics(mut self, registry: Arc<Registry>) -> Self {
        self.opts.metrics = registry;
        self
    }
    /// Escape hatch: the underlying options struct.
    pub fn options(self) -> FasterOptions<V> {
        self.opts
    }

    /// Open a fresh store (truncates any existing log).
    pub fn open(self) -> io::Result<FasterKv<V>> {
        FasterKv::open_inner(self.opts)
    }

    /// Recover from the newest committed checkpoint (paper Sec. 6.4 /
    /// Alg. 3). Returns the manifest used, if any.
    pub fn recover(self) -> io::Result<(FasterKv<V>, Option<CheckpointManifest>)> {
        crate::recovery::recover(self.opts)
    }
}

/// Commit observer: `(committed version, per-session CPR points)`.
pub type CommitCallback = Box<dyn Fn(u64, &[cpr_core::SessionCpr]) + Send + Sync>;

/// A checkpoint in flight.
pub(crate) struct CkptCtx {
    pub token: u64,
    pub variant: CheckpointVariant,
    pub log_only: bool,
    pub lhs: u64,
    pub started: Instant,
    pub phase_marks: Vec<(Phase, Duration)>,
}

/// Mirror of the protections held by one pending operation, kept in a
/// shared registry (`StoreInner::offline_pending`) so the liveness
/// watchdog can cancel a dead session's pendings: release its shared
/// bucket latches and key guards and decrement the pending counters that
/// gate wait-pending → wait-flush. The map entry is the *ownership token*
/// for those releases — whoever removes it (owner on completion, watchdog
/// on eviction) performs them, so they can never happen twice.
pub(crate) struct OfflineGuard {
    pub serial: u64,
    /// Version the op was accepted under (indexes `pending_count`).
    pub tag: u64,
    pub latch: Option<usize>,
    pub guarded_key: Option<u64>,
}

pub(crate) struct StoreInner<V: Pod> {
    pub(crate) index: HashIndex,
    pub(crate) latches: Box<[NoWaitLock]>,
    pub(crate) hlog: Arc<HybridLog>,
    pub(crate) epoch: Arc<EpochManager>,
    pub(crate) state: SystemState,
    pub(crate) registry: SessionRegistry,
    pub(crate) committed_version: AtomicU64,
    pub(crate) commit_lock: Mutex<()>,
    pub(crate) commit_cv: Condvar,
    pub(crate) store: CheckpointStore,
    /// Outstanding pending operations per version parity (gates the
    /// wait-pending → wait-flush transition).
    pub(crate) pending_count: [CachePadded<AtomicU64>; 2],
    /// Coarse grain: keys with outstanding pre-point (version v) pending
    /// ops; post-point writers must not overtake them.
    pub(crate) pending_v_keys: Mutex<HashSet<u64>>,
    pub(crate) io: IoPool,
    pub(crate) ckpt: Mutex<Option<CkptCtx>>,
    ckpt_tx: Mutex<Option<crossbeam::channel::Sender<u64>>>,
    ckpt_thread: Mutex<Option<JoinHandle<()>>>,
    /// Liveness configuration (None = no watchdog, zero overhead).
    pub(crate) liveness: Option<LivenessConfig>,
    /// Per-session-slot mirror of pending-op protections (see
    /// [`OfflineGuard`]). Populated only when liveness is on.
    pub(crate) offline_pending: Mutex<HashMap<usize, Vec<OfflineGuard>>>,
    /// Book-keeping for the in-flight (or most recent) commit attempt.
    pub(crate) outcome: Mutex<CommitOutcome>,
    watchdog_thread: Mutex<Option<JoinHandle<()>>>,
    /// Per-guid commit points of the newest durable manifest, seeded from
    /// the recovery manifest and updated after every commit. Carried
    /// forward into each new manifest so sessions that are not attached
    /// at commit time keep their recovery contract.
    pub(crate) durable_points: Mutex<HashMap<u64, u64>>,
    /// Commit points (and live-resume serials) of sessions that detached
    /// since the store opened — dropped handles, disconnected clients,
    /// watchdog evictions.
    pub(crate) detached: DetachedSessions,
    /// Checkpoints that failed on I/O and were aborted (no manifest).
    pub(crate) checkpoint_failures: AtomicU64,
    pub(crate) last_phase_marks: Mutex<Vec<(Phase, Duration)>>,
    /// Commit observers (paper Sec. 5.2): called with (version, CPR
    /// points) after every durable commit, on the checkpoint thread.
    pub(crate) commit_callbacks: Mutex<Vec<CommitCallback>>,
    pub(crate) refresh_every: u64,
    pub(crate) grain: VersionGrain,
    /// Log-device writer queues (for flush phase-timing attribution).
    pub(crate) write_queues: usize,
    pub(crate) rmw: fn(V, V) -> V,
    pub(crate) value_words: usize,
    /// Observability sink (no-op unless enabled at open time).
    pub(crate) metrics: Arc<Registry>,
    /// Cached `metrics.is_enabled()` so hot paths skip clock reads.
    pub(crate) metrics_on: bool,
    /// Fault injector handle, kept so snapshots can report fault hits.
    pub(crate) fault: Option<Arc<FaultInjector>>,
}

/// Handle to a FASTER store; cheap to clone.
pub struct FasterKv<V: Pod> {
    pub(crate) inner: Arc<StoreInner<V>>,
}

/// Store-centric alias for [`FasterKv`], matching the builder-first API
/// surface (`FasterStore::builder(dir)...open()`).
pub type FasterStore<V> = FasterKv<V>;

impl<V: Pod> Clone for FasterKv<V> {
    fn clone(&self) -> Self {
        FasterKv {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<V: Pod> FasterKv<V> {
    /// Fluent configuration starting from the documented defaults; see
    /// [`FasterBuilder`].
    pub fn builder(dir: impl Into<PathBuf>) -> FasterBuilder<V> {
        FasterBuilder::new(dir)
    }

    /// Open a fresh store (truncates any existing log).
    #[deprecated(since = "0.2.0", note = "use `FasterKv::builder(dir)...open()` instead")]
    pub fn open(opts: FasterOptions<V>) -> io::Result<Self> {
        Self::open_inner(opts)
    }

    pub(crate) fn open_inner(opts: FasterOptions<V>) -> io::Result<Self> {
        std::fs::create_dir_all(&opts.dir)?;
        let base: Arc<dyn Device> = Arc::new(FileDevice::create_with(
            opts.dir.join("log.dat"),
            opts.write_queues,
            opts.io_profile,
        )?);
        let device: Arc<dyn Device> = match &opts.fault {
            Some(inj) => Arc::new(FaultDevice::new(base, Arc::clone(inj))),
            None => base,
        };
        Self::build(opts, device, None)
    }

    /// Recover from the newest committed checkpoint (paper Sec. 6.4 /
    /// Alg. 3). Returns the manifest used, if any.
    #[deprecated(
        since = "0.2.0",
        note = "use `FasterKv::builder(dir)...recover()` instead"
    )]
    pub fn recover(opts: FasterOptions<V>) -> io::Result<(Self, Option<CheckpointManifest>)> {
        crate::recovery::recover(opts)
    }

    pub(crate) fn build(
        opts: FasterOptions<V>,
        device: Arc<dyn Device>,
        recovered: Option<(HashIndex, u64, HashMap<u64, u64>)>,
    ) -> io::Result<Self> {
        let epoch = Arc::new(EpochManager::new(opts.max_sessions + 8));
        assert_eq!(
            opts.hlog.value_size,
            std::mem::size_of::<V>(),
            "hlog value_size must match size_of::<V>()"
        );
        let metrics_on = opts.metrics.is_enabled();
        let device: Arc<dyn Device> = if metrics_on {
            epoch.set_metrics(Arc::clone(&opts.metrics));
            Arc::new(MeteredDevice::new(device, Arc::clone(&opts.metrics)))
        } else {
            device
        };
        let hlog = HybridLog::new(opts.hlog, Arc::clone(&device), Arc::clone(&epoch));
        let (index, version, sessions) = match recovered {
            Some((index, version, sessions)) => (index, version, sessions),
            None => (HashIndex::new(opts.index_buckets), 1, HashMap::new()),
        };
        let latch_count = index.bucket_count();
        let store = CheckpointStore::open_with(opts.dir.join("checkpoints"), opts.fault.clone())?
            .with_metrics(Arc::clone(&opts.metrics));
        let io = IoPool::new(device, opts.io_threads);
        let inner = Arc::new(StoreInner {
            latches: (0..latch_count).map(|_| NoWaitLock::new()).collect(),
            index,
            hlog,
            epoch,
            state: SystemState::at_version(version),
            registry: SessionRegistry::new(opts.max_sessions),
            committed_version: AtomicU64::new(version - 1),
            commit_lock: Mutex::new(()),
            commit_cv: Condvar::new(),
            store,
            pending_count: [
                CachePadded::new(AtomicU64::new(0)),
                CachePadded::new(AtomicU64::new(0)),
            ],
            pending_v_keys: Mutex::new(HashSet::new()),
            io,
            ckpt: Mutex::new(None),
            ckpt_tx: Mutex::new(None),
            ckpt_thread: Mutex::new(None),
            liveness: opts.liveness.clone(),
            offline_pending: Mutex::new(HashMap::new()),
            outcome: Mutex::new(CommitOutcome::default()),
            watchdog_thread: Mutex::new(None),
            durable_points: Mutex::new(sessions),
            detached: DetachedSessions::new(),
            checkpoint_failures: AtomicU64::new(0),
            last_phase_marks: Mutex::new(Vec::new()),
            commit_callbacks: Mutex::new(Vec::new()),
            refresh_every: opts.refresh_every,
            grain: opts.grain,
            write_queues: opts.write_queues,
            rmw: opts.rmw,
            value_words: crate::header::RecordLayout::new(opts.hlog.value_size).value_words(),
            metrics: opts.metrics,
            metrics_on,
            fault: opts.fault,
        });
        // Checkpoint worker: runs the wait-flush work off the hot path.
        // Holds only a Weak reference so dropping the last user handle
        // tears the store down (no Arc cycle through the thread).
        let (tx, rx) = crossbeam::channel::unbounded::<u64>();
        let worker = Arc::downgrade(&inner);
        let handle = std::thread::Builder::new()
            .name("cpr-faster-checkpoint".into())
            .spawn(move || {
                for version in rx {
                    let Some(inner) = worker.upgrade() else { break };
                    crate::checkpoint::run_wait_flush(&inner, version);
                }
            })
            .expect("spawn checkpoint thread");
        *inner.ckpt_tx.lock() = Some(tx);
        *inner.ckpt_thread.lock() = Some(handle);
        if let Some(cfg) = inner.liveness.clone() {
            let weak = Arc::downgrade(&inner);
            let handle = std::thread::Builder::new()
                .name("cpr-faster-watchdog".into())
                .spawn(move || crate::watchdog::run(weak, cfg))
                .expect("spawn watchdog thread");
            *inner.watchdog_thread.lock() = Some(handle);
        }
        Ok(FasterKv { inner })
    }

    /// Start a session (paper Sec. 5.2). `guid` identifies it across
    /// crashes.
    pub fn start_session(&self, guid: u64) -> FasterSession<V> {
        FasterSession::new(Arc::clone(&self.inner), guid, 0)
    }

    /// Re-establish a session by guid: returns the session and the serial
    /// it should resume from. If the guid detached while this store stayed
    /// up (client reconnect, no crash), that is its last *accepted* serial
    /// — nothing was lost, so nothing needs replay. Otherwise it is the
    /// guid's commit point from the recovery manifest: every later serial
    /// must be re-issued (the CPR resume contract, paper Sec. 2).
    pub fn continue_session(&self, guid: u64) -> (FasterSession<V>, u64) {
        let serial = self
            .inner
            .detached
            .last_serial(guid)
            .or_else(|| self.inner.durable_points.lock().get(&guid).copied())
            .unwrap_or(0);
        (
            FasterSession::new(Arc::clone(&self.inner), guid, serial),
            serial,
        )
    }

    /// The guid's durable commit point: the serial below which every op
    /// is guaranteed recovered after a crash right now.
    pub fn durable_point(&self, guid: u64) -> u64 {
        self.inner.durable_points.lock().get(&guid).copied().unwrap_or(0)
    }

    /// Request a CPR commit (paper Fig. 9a). Returns `false` if one is
    /// already in flight. `log_only = true` skips the fuzzy index
    /// checkpoint (paper Sec. 6.3: the index can be checkpointed far less
    /// frequently).
    pub fn request_checkpoint(&self, variant: CheckpointVariant, log_only: bool) -> bool {
        if !start_checkpoint(&self.inner, variant, log_only) {
            return false;
        }
        *self.inner.outcome.lock() = CommitOutcome {
            attempts: 1,
            ..CommitOutcome::default()
        };
        true
    }

    /// Fuzzy checkpoint of the hash index alone (paper Sec. 6.3).
    pub fn checkpoint_index(&self) -> io::Result<u64> {
        crate::checkpoint::index_checkpoint(&self.inner)
    }

    /// Register a commit observer (paper Sec. 5.2): called with the
    /// committed version and every session's CPR point after each durable
    /// commit. Runs on the checkpoint thread — keep it brief.
    pub fn on_commit(
        &self,
        callback: impl Fn(u64, &[cpr_core::SessionCpr]) + Send + Sync + 'static,
    ) {
        self.inner.commit_callbacks.lock().push(Box::new(callback));
    }

    /// Version of the newest durable commit
    /// ([`CheckpointVersion::NONE`] = none).
    pub fn committed_version(&self) -> CheckpointVersion {
        CheckpointVersion::from(self.inner.committed_version.load(Ordering::Acquire))
    }

    /// Snapshot of every metric the store has recorded: op latencies,
    /// per-checkpoint phase timelines, epoch drain behaviour and storage
    /// traffic. Cheap when metrics are disabled (returns an empty,
    /// `enabled: false` report).
    pub fn metrics_snapshot(&self) -> MetricsReport {
        let mut report = self.inner.metrics.snapshot();
        if let Some(inj) = &self.inner.fault {
            report.storage.faults_injected = inj.fault_hits();
        }
        report
    }

    /// Number of checkpoint attempts that failed on I/O and were aborted
    /// (no manifest committed; sessions returned to rest).
    pub fn checkpoint_failures(&self) -> u64 {
        self.inner.checkpoint_failures.load(Ordering::Acquire)
    }

    /// Watchdog book-keeping for the in-flight (or most recent) commit:
    /// attempts, proxy-advanced and evicted sessions, aborts.
    pub fn last_commit_outcome(&self) -> CommitOutcome {
        self.inner.outcome.lock().clone()
    }

    /// Current (phase, version) of the commit state machine.
    pub fn state(&self) -> (Phase, u64) {
        self.inner.state.load()
    }

    /// Block until the commit of `version` is durable (sessions must keep
    /// refreshing). Returns `false` on timeout.
    pub fn wait_for_version(&self, version: impl Into<CheckpointVersion>, timeout: Duration) -> bool {
        let version = version.into();
        let deadline = Instant::now() + timeout;
        let mut g = self.inner.commit_lock.lock();
        while self.committed_version() < version {
            self.inner.epoch.try_drain();
            if Instant::now() >= deadline {
                return false;
            }
            self.inner
                .commit_cv
                .wait_for(&mut g, Duration::from_millis(1));
        }
        true
    }

    /// Per-phase durations of the last completed checkpoint (the §7.3.1
    /// profile).
    pub fn last_checkpoint_phases(&self) -> Vec<(Phase, Duration)> {
        self.inner.last_phase_marks.lock().clone()
    }

    /// HybridLog tail (log growth metric of Fig. 12d / 18d).
    pub fn log_tail(&self) -> u64 {
        self.inner.hlog.tail()
    }

    /// FNV-1a digest of the serialized hash index. Two stores whose
    /// recovered indexes are byte-identical have equal digests, so this is
    /// the cheap cross-check that recovery lands on the same state no
    /// matter how many threads scanned the log.
    pub fn index_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.inner.index.dump() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Bytes written to the main log device so far.
    pub fn log_durable(&self) -> u64 {
        self.inner.hlog.flushed_durable()
    }

    pub fn hlog(&self) -> &Arc<HybridLog> {
        &self.inner.hlog
    }

    /// Full scan: the live `(key, value)` pairs reachable from the log,
    /// by a log walk over `[begin_address, tail)` — the scan runs in
    /// address order, so later records win; tombstones delete; invalid
    /// records are skipped. Pages are fetched from memory when resident,
    /// from the device otherwise. Intended for quiescent use (verification
    /// and serving scans after recovery): concurrent writers may or may
    /// not be observed.
    pub fn scan_all(&self) -> io::Result<Vec<(u64, V)>> {
        let hl = &self.inner.hlog;
        let rec_size = hl.rec.record_size() as u64;
        let begin = hl.begin_address();
        let end = hl.tail();
        let psz = hl.layout.page_size();
        let mut live: HashMap<u64, Option<V>> = HashMap::new();
        let mut addr = begin;
        let mut page_buf: Vec<u8> = Vec::new();
        let mut buf_start = u64::MAX;
        while addr < end {
            // Records never straddle pages; skip page-tail slack.
            if hl.layout.offset(addr) + rec_size > psz {
                addr = hl.layout.page_start(hl.layout.page(addr) + 1);
                continue;
            }
            let page = hl.layout.page(addr);
            let chunk_start = hl.layout.page_start(page).max(begin);
            if buf_start != chunk_start {
                let chunk_end = hl.layout.page_start(page + 1).min(end);
                // Below `head` the authoritative bytes are the durable
                // image: after recovery the restored tail page is marked
                // resident with a zeroed frame, so frame-first reads of
                // the recovered prefix would see slack. At or above
                // `head`, frames hold appends not yet flushed.
                let head = hl.head();
                page_buf = if chunk_end <= head {
                    hl.read_durable(chunk_start, chunk_end)?
                } else if chunk_start >= head {
                    hl.read_range(chunk_start, chunk_end)?
                } else {
                    let mut buf = hl.read_durable(chunk_start, head)?;
                    buf.extend(hl.read_range(head, chunk_end)?);
                    buf
                };
                buf_start = chunk_start;
            }
            let base = (addr - buf_start) as usize;
            if base + rec_size as usize > page_buf.len() {
                break; // truncated tail
            }
            let word = u64::from_le_bytes(page_buf[base..base + 8].try_into().unwrap());
            if word == 0 {
                // Unwritten slack: nothing else in this page.
                addr = hl.layout.page_start(page + 1);
                continue;
            }
            let h = crate::header::Header::unpack(word);
            if !h.invalid {
                let key = u64::from_le_bytes(page_buf[base + 8..base + 16].try_into().unwrap());
                if h.tombstone {
                    live.insert(key, None);
                } else {
                    let words: Vec<u64> = (0..self.inner.value_words)
                        .map(|i| {
                            let o = base + 16 + 8 * i;
                            u64::from_le_bytes(page_buf[o..o + 8].try_into().unwrap())
                        })
                        .collect();
                    live.insert(key, Some(value_from_words(&words)));
                }
            }
            addr += rec_size;
        }
        let mut out: Vec<(u64, V)> = live
            .into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .collect();
        out.sort_unstable_by_key(|&(k, _)| k);
        Ok(out)
    }
}

/// Begin a CPR commit: `rest → prepare` plus the epoch trigger chain.
/// Shared by [`FasterKv::request_checkpoint`] and the watchdog's
/// backed-off retries (which must re-begin a fresh store token).
pub(crate) fn start_checkpoint<V: Pod>(
    inner: &Arc<StoreInner<V>>,
    variant: CheckpointVariant,
    log_only: bool,
) -> bool {
    let v = inner.state.version();
    if !inner
        .state
        .transition((Phase::Rest, v), (Phase::Prepare, v))
    {
        return false;
    }
    let token = match inner.store.begin() {
        Ok(t) => t,
        Err(_) => {
            // Can't even create the checkpoint directory (e.g. the
            // simulated device crashed): roll back to rest at the same
            // version and report the failure.
            let ok = inner
                .state
                .transition((Phase::Prepare, v), (Phase::Rest, v));
            debug_assert!(ok, "prepare rollback must succeed");
            inner.checkpoint_failures.fetch_add(1, Ordering::AcqRel);
            return false;
        }
    };
    *inner.ckpt.lock() = Some(CkptCtx {
        token,
        variant,
        log_only,
        lhs: inner.hlog.tail(),
        started: Instant::now(),
        phase_marks: vec![(Phase::Prepare, Duration::ZERO)],
    });
    if inner.metrics_on {
        inner.metrics.checkpoints.begin(v, ckpt_kind_label(variant, log_only));
    }

    let i1 = Arc::clone(inner);
    let i2 = Arc::clone(inner);
    inner.epoch.bump_epoch(
        Some(Box::new(move || {
            let ready = i1.registry.all_at_least(Phase::Prepare, v);
            if !ready && i1.metrics_on {
                if let Some((_, guid)) = i1.registry.first_blocker(Phase::Prepare, v) {
                    i1.metrics.checkpoints.note_blocker(guid);
                }
            }
            ready
        })),
        Box::new(move || prepare_to_inprog(i2, v)),
    );
    true
}

/// Human-readable checkpoint-kind label for the phase tracer.
pub(crate) fn ckpt_kind_label(variant: CheckpointVariant, log_only: bool) -> &'static str {
    match (variant, log_only) {
        (CheckpointVariant::FoldOver, false) => "fold-over",
        (CheckpointVariant::FoldOver, true) => "fold-over-log-only",
        (CheckpointVariant::Snapshot, false) => "snapshot",
        (CheckpointVariant::Snapshot, true) => "snapshot-log-only",
    }
}

fn prepare_to_inprog<V: Pod>(inner: Arc<StoreInner<V>>, v: u64) {
    // A failed transition means the watchdog timed this attempt out and
    // returned the machine to rest; the stale trigger is simply dropped.
    if !inner
        .state
        .transition((Phase::Prepare, v), (Phase::InProgress, v))
    {
        return;
    }
    mark_phase(&inner, Phase::InProgress);
    let epoch = Arc::clone(&inner.epoch);
    let i1 = Arc::clone(&inner);
    let i2 = inner;
    epoch.bump_epoch(
        Some(Box::new(move || {
            let ready = i1.registry.all_at_least(Phase::InProgress, v);
            if !ready && i1.metrics_on {
                if let Some((_, guid)) = i1.registry.first_blocker(Phase::InProgress, v) {
                    i1.metrics.checkpoints.note_blocker(guid);
                }
            }
            ready
        })),
        Box::new(move || inprog_to_waitpending(i2, v)),
    );
}

fn inprog_to_waitpending<V: Pod>(inner: Arc<StoreInner<V>>, v: u64) {
    if !inner
        .state
        .transition((Phase::InProgress, v), (Phase::WaitPending, v))
    {
        return; // aborted by the watchdog
    }
    mark_phase(&inner, Phase::WaitPending);
    let epoch = Arc::clone(&inner.epoch);
    let i1 = Arc::clone(&inner);
    let i2 = inner;
    epoch.bump_epoch(
        Some(Box::new(move || {
            let ready = i1.registry.all_at_least(Phase::WaitPending, v)
                && i1.pending_count[(v & 1) as usize].load(Ordering::Acquire) == 0;
            if !ready && i1.metrics_on {
                if let Some((_, guid)) = i1.registry.first_blocker(Phase::WaitPending, v) {
                    i1.metrics.checkpoints.note_blocker(guid);
                }
            }
            ready
        })),
        Box::new(move || waitpending_to_waitflush(i2, v)),
    );
}

fn waitpending_to_waitflush<V: Pod>(inner: Arc<StoreInner<V>>, v: u64) {
    if !inner
        .state
        .transition((Phase::WaitPending, v), (Phase::WaitFlush, v))
    {
        return; // aborted by the watchdog
    }
    mark_phase(&inner, Phase::WaitFlush);
    if let Some(tx) = inner.ckpt_tx.lock().as_ref() {
        tx.send(v).expect("checkpoint thread alive");
    }
}

pub(crate) fn mark_phase<V: Pod>(inner: &StoreInner<V>, phase: Phase) {
    if let Some(ctx) = inner.ckpt.lock().as_mut() {
        ctx.phase_marks.push((phase, ctx.started.elapsed()));
    }
    if inner.metrics_on {
        // The state machine has already transitioned to (phase, v) when
        // this runs, so the current version indexes the active trace.
        inner
            .metrics
            .checkpoints
            .mark(inner.state.version(), phase.name());
    }
}

impl<V: Pod> Drop for StoreInner<V> {
    fn drop(&mut self) {
        self.ckpt_tx.lock().take();
        for slot in [&self.ckpt_thread, &self.watchdog_thread] {
            if let Some(h) = slot.lock().take() {
                // The final Arc may be dropped *by the worker itself* (it
                // upgrades its Weak per job); never join our own thread.
                if h.thread().id() != std::thread::current().id() {
                    let _ = h.join();
                }
            }
        }
    }
}

// ---- value <-> word conversion --------------------------------------------

/// Copy a value's bytes into `n` little-endian words (zero padded).
pub(crate) fn value_to_words<V: Pod>(v: &V, out: &mut Vec<u64>, n: usize) {
    out.clear();
    out.resize(n, 0);
    // SAFETY: Pod guarantees V is readable as bytes.
    let src =
        unsafe { std::slice::from_raw_parts(v as *const V as *const u8, std::mem::size_of::<V>()) };
    // SAFETY: out has n*8 writable bytes.
    let dst = unsafe { std::slice::from_raw_parts_mut(out.as_mut_ptr() as *mut u8, n * 8) };
    dst[..src.len()].copy_from_slice(src);
}

/// Rebuild a value from its words.
pub(crate) fn value_from_words<V: Pod>(words: &[u64]) -> V {
    debug_assert!(words.len() * 8 >= std::mem::size_of::<V>());
    // SAFETY: Pod guarantees any bit pattern of the right length is valid.
    unsafe { std::ptr::read_unaligned(words.as_ptr() as *const V) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_word_roundtrip_u64() {
        let mut w = Vec::new();
        value_to_words(&0xDEADBEEFu64, &mut w, 1);
        assert_eq!(w, vec![0xDEADBEEF]);
        assert_eq!(value_from_words::<u64>(&w), 0xDEADBEEF);
    }

    #[test]
    fn value_word_roundtrip_odd_size() {
        #[derive(Clone, Copy, PartialEq, Debug)]
        #[repr(C)]
        struct V100([u8; 100]);
        unsafe impl Pod for V100 {}
        let v = V100(std::array::from_fn(|i| i as u8));
        let mut w = Vec::new();
        value_to_words(&v, &mut w, 13);
        assert_eq!(w.len(), 13);
        assert_eq!(value_from_words::<V100>(&w), v);
    }
}
