//! Session liveness watchdog for the FASTER store (the memdb twin lives
//! in `cpr-memdb`; the decision table is shared, the remedies differ).
//!
//! A CPR commit advances only when every registered session has refreshed
//! into the current phase *and* — at wait-pending — every pre-point
//! pending operation has completed, so one parked client thread wedges
//! the checkpoint forever. While a commit is in flight this thread scans
//! session leases and acts on stragglers whose heartbeat has gone stale
//! for longer than the grace period:
//!
//! | straggler is…                   | action                             |
//! |---------------------------------|------------------------------------|
//! | idle, no pending ops            | proxy-advance: publish its phase   |
//! |                                 | state (and CPR point) on its behalf|
//! | idle with pending ops, or       | evict: cancel its pendings via the |
//! | parked inside an operation      | offline registry (release latches  |
//! |                                 | and guards, decrement the pending  |
//! |                                 | gate) and roll its CPR point below |
//! |                                 | the earliest cancelled claimed op  |
//! | inside an exclusive-latch       | abort the checkpoint, back off,    |
//! | hand-off window (`Locking`)     | retry (bounded by `max_attempts`)  |
//!
//! **Two-scan rule.** A stale session is first *suspended* (scan N) and
//! only acted upon at a later scan if its lease is still stale.
//!
//! **CPR-point rollback.** FASTER serials bump at *acceptance*, before
//! the op runs, so a session's serial (and a crossed session's marked
//! point) may claim operations that only exist as pending entries.
//! Cancelling those entries makes the claim a lie; the point is therefore
//! rolled back below the earliest cancelled serial it covered. Completed
//! operations between the rolled-back point and the old point stay
//! applied but unclaimed — recovery under-reports the dead session's
//! prefix rather than fabricating unapplied operations (see DESIGN.md).

use std::sync::atomic::Ordering;
use std::sync::{Arc, Weak};

use cpr_core::liveness::{BusyState, LivenessConfig, SessionStatus};
use cpr_core::{Phase, Pod};

use crate::store::{start_checkpoint, CheckpointVariant, OfflineGuard, StoreInner};

pub(crate) fn run<V: Pod>(weak: Weak<StoreInner<V>>, cfg: LivenessConfig) {
    let mut rng = cfg.seed | 1;
    // Clock tick at which an abort's scheduled retry may be issued, and
    // the (variant, log_only) shape of the attempt being retried.
    let mut retry_at: Option<u64> = None;
    let mut retry_req: Option<(CheckpointVariant, bool)> = None;
    loop {
        std::thread::sleep(cfg.poll_interval);
        let Some(db) = weak.upgrade() else { return };
        scan(&db, &cfg, &mut rng, &mut retry_at, &mut retry_req);
    }
}

fn scan<V: Pod>(
    db: &Arc<StoreInner<V>>,
    cfg: &LivenessConfig,
    rng: &mut u64,
    retry_at: &mut Option<u64>,
    retry_req: &mut Option<(CheckpointVariant, bool)>,
) {
    let now = cfg.clock.now();
    let (phase, v) = db.state.load();

    if phase == Phase::Rest {
        if let (Some(at), Some((variant, log_only))) = (*retry_at, *retry_req) {
            if now >= at {
                *retry_at = None;
                if start_checkpoint(db, variant, log_only) {
                    db.outcome.lock().attempts += 1;
                }
            }
        }
        return;
    }

    // A commit is in flight: nudge the drain list and examine leases.
    db.epoch.try_drain();

    let reg = &db.registry;
    let blockers: Vec<usize> = if matches!(
        phase,
        Phase::Prepare | Phase::InProgress | Phase::WaitPending
    ) {
        reg.blockers(phase, v).into_iter().map(|(i, _)| i).collect()
    } else {
        Vec::new()
    };

    let mut abort_wanted = false;
    for idx in 0..reg.capacity() {
        let Some(guid) = reg.guid(idx) else { continue };
        if now.saturating_sub(reg.last_heartbeat(idx)) <= cfg.grace_ticks {
            continue; // lease is fresh
        }
        match reg.status(idx) {
            SessionStatus::Active => {
                // Scan N: suspend only (two-scan rule).
                reg.try_suspend(idx);
            }
            SessionStatus::Evicted | SessionStatus::Proxying => {}
            SessionStatus::Suspended => {
                // Scan N+1: still stale — act. Whatever we decide, unpin
                // the straggler's epoch slot so drain triggers can fire.
                if let Some(slot) = reg.epoch_slot(idx) {
                    db.epoch.release_stale(slot);
                }
                let is_blocker = blockers.contains(&idx);
                let has_pendings = db
                    .offline_pending
                    .lock()
                    .get(&idx)
                    .is_some_and(|gs| !gs.is_empty());
                match reg.busy(idx) {
                    BusyState::Idle if is_blocker && !has_pendings => {
                        proxy_advance(db, idx, guid, v)
                    }
                    BusyState::Idle if has_pendings => evict(db, idx, guid, v),
                    BusyState::InTxn if is_blocker || has_pendings => evict(db, idx, guid, v),
                    BusyState::Locking => {
                        // Stalled under an exclusive hand-off latch: no
                        // per-session remedy is safe — time the whole
                        // checkpoint out.
                        abort_wanted = true;
                    }
                    _ => {}
                }
            }
        }
    }

    if abort_wanted {
        abort_checkpoint(db, cfg, rng, retry_at, retry_req, phase, v, now);
    }
    db.epoch.try_drain();
}

/// Publish phase state on behalf of an idle, suspended straggler with no
/// outstanding pendings. The Suspended → Proxying CAS is the publish
/// lock: the owner cannot reactivate until `end_proxy`, so the state and
/// CPR point published here cannot be stale by the time they land.
fn proxy_advance<V: Pod>(db: &Arc<StoreInner<V>>, idx: usize, guid: u64, v: u64) {
    let reg = &db.registry;
    if !reg.try_begin_proxy(idx) {
        return; // owner resumed (or another decision won) meanwhile
    }
    let (phase, cur_v) = db.state.load();
    if cur_v == v
        && matches!(
            phase,
            Phase::Prepare | Phase::InProgress | Phase::WaitPending
        )
    {
        let (ps, vs) = reg.view(idx);
        let reached = vs > v || (vs == v && ps >= phase);
        if !reached {
            // Mark the CPR point iff this publish crosses the session
            // over prepare → in-progress for version v.
            let mark = phase >= Phase::InProgress && (vs < v || ps <= Phase::Prepare);
            reg.proxy_advance(idx, phase, v, mark);
            let mut out = db.outcome.lock();
            if !out.proxy_advanced.contains(&guid) {
                out.proxy_advanced.push(guid);
            }
        }
    }
    reg.end_proxy(idx);
}

/// Evict a dead session: cancel its pending operations (releasing the
/// shared latches, key guards, and pending-gate counts they hold) and
/// roll its CPR point below the earliest cancelled serial it claimed.
fn evict<V: Pod>(db: &Arc<StoreInner<V>>, idx: usize, guid: u64, v: u64) {
    let reg = &db.registry;
    if !reg.try_evict(idx) {
        return;
    }
    // Base claim: a crossed session keeps its marked point; a blocker has
    // not crossed, so its last *accepted* serial is the starting claim.
    let (ps, vs) = reg.view(idx);
    let crossed = vs > v || (vs == v && ps >= Phase::InProgress);
    let base = if crossed {
        reg.cpr_point(idx)
    } else {
        reg.serial(idx)
    };
    let cancelled = cancel_pendings(db, idx);
    let mut point = base;
    for g in &cancelled {
        if g.serial <= point {
            point = point.min(g.serial.saturating_sub(1));
        }
    }
    reg.set_cpr_point(idx, point);
    db.outcome.lock().evicted.push(guid);
}

/// Remove and release every offline-pending entry of a session slot. The
/// map entry is the ownership token: the owner's `finish_pending` finds
/// it gone and releases nothing, so no protection is dropped twice.
fn cancel_pendings<V: Pod>(db: &Arc<StoreInner<V>>, idx: usize) -> Vec<OfflineGuard> {
    let entries = db
        .offline_pending
        .lock()
        .remove(&idx)
        .unwrap_or_default();
    for g in &entries {
        if let Some(b) = g.latch {
            db.latches[b].release_shared();
        }
        if let Some(k) = g.guarded_key {
            db.pending_v_keys.lock().remove(&k);
        }
        db.pending_count[(g.tag & 1) as usize].fetch_sub(1, Ordering::AcqRel);
    }
    entries
}

/// Time the in-flight checkpoint out: return the state machine to rest
/// at `v + 1`, abort the store token, and schedule a backed-off retry.
/// Wait-flush is never aborted — the checkpoint thread owns that exit and
/// its work is I/O-bound, not straggler-bound.
#[allow(clippy::too_many_arguments)]
fn abort_checkpoint<V: Pod>(
    db: &Arc<StoreInner<V>>,
    cfg: &LivenessConfig,
    rng: &mut u64,
    retry_at: &mut Option<u64>,
    retry_req: &mut Option<(CheckpointVariant, bool)>,
    phase: Phase,
    v: u64,
    now: u64,
) {
    let aborted = match phase {
        Phase::Prepare | Phase::InProgress | Phase::WaitPending => {
            db.state.transition((phase, v), (Phase::Rest, v + 1))
        }
        _ => false,
    };
    if !aborted {
        return;
    }
    if let Some(ctx) = db.ckpt.lock().take() {
        let _ = db.store.abort(ctx.token);
        *retry_req = Some((ctx.variant, ctx.log_only));
        db.checkpoint_failures.fetch_add(1, Ordering::AcqRel);
    }
    let mut out = db.outcome.lock();
    out.aborted += 1;
    if db.metrics_on {
        // The wait-flush worker never runs for this attempt, so the
        // tracer's timeline must be finalized here.
        db.metrics.checkpoints.end(
            v,
            false,
            out.attempts as u64,
            out.proxy_advanced.len() as u64,
            out.evicted.len() as u64,
        );
    }
    if out.attempts >= cfg.max_attempts {
        out.gave_up = true;
        *retry_at = None;
    } else {
        *retry_at = Some(now + cfg.backoff_ticks(out.attempts, rng));
    }
    drop(out);
    db.commit_cv.notify_all();
}
