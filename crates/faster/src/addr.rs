//! HybridLog logical addresses.
//!
//! The log defines a 48-bit logical address space spanning disk and main
//! memory (paper Sec. 5.1). Addresses are plain byte offsets into that
//! space; the page/offset split is a runtime parameter of the log, so this
//! module provides only the invariants every component shares.

/// A logical address into the HybridLog. 48 bits are significant — the
/// same width the hash index and record headers store.
pub type Address = u64;

/// The null address: no record. Address 0 is never allocated (the log's
/// first record starts at `record_size`).
pub const INVALID_ADDRESS: Address = 0;

/// Number of significant address bits.
pub const ADDRESS_BITS: u32 = 48;

/// Mask of the significant bits.
pub const ADDRESS_MASK: u64 = (1 << ADDRESS_BITS) - 1;

/// Page/offset arithmetic for a given page size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageLayout {
    pub page_bits: u32,
}

impl PageLayout {
    pub fn new(page_bits: u32) -> Self {
        assert!(
            (9..=30).contains(&page_bits),
            "page_bits {page_bits} out of range"
        );
        PageLayout { page_bits }
    }

    #[inline]
    pub fn page_size(&self) -> u64 {
        1 << self.page_bits
    }

    #[inline]
    pub fn page(&self, addr: Address) -> u64 {
        addr >> self.page_bits
    }

    #[inline]
    pub fn offset(&self, addr: Address) -> u64 {
        addr & (self.page_size() - 1)
    }

    #[inline]
    pub fn address(&self, page: u64, offset: u64) -> Address {
        debug_assert!(offset < self.page_size());
        (page << self.page_bits) | offset
    }

    /// First address of `page`.
    #[inline]
    pub fn page_start(&self, page: u64) -> Address {
        page << self.page_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_and_join() {
        let l = PageLayout::new(16);
        let a = l.address(3, 100);
        assert_eq!(l.page(a), 3);
        assert_eq!(l.offset(a), 100);
        assert_eq!(a, 3 * 65536 + 100);
    }

    #[test]
    fn page_start_is_offset_zero() {
        let l = PageLayout::new(12);
        assert_eq!(l.page_start(5), 5 * 4096);
        assert_eq!(l.offset(l.page_start(5)), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn tiny_pages_rejected() {
        PageLayout::new(4);
    }

    #[test]
    fn address_mask_is_48_bits() {
        assert_eq!(ADDRESS_MASK, 0x0000_FFFF_FFFF_FFFF);
    }
}
