//! Checkpoint capture, load, and WAL replay.
//!
//! Capture implements the wait-flush pass of paper Alg. 2: for every
//! record that existed in version `v`, persist its version-`v` value —
//! `stable` if the record has already been shifted to `v + 1` by a
//! concurrent post-CPR-point transaction, `live` otherwise. The pass runs
//! on a background thread while version-`v + 1` transactions execute.
//!
//! File format (`db.dat`): `[count u64][(key u64, value bytes)*]`, little
//! endian, values `size_of::<V>()` bytes each.

use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::Ordering;

use cpr_core::{CheckpointKind, CheckpointManifest, Phase, SessionCpr};
use cpr_storage::CheckpointStore;

use crate::db::DbInner;
use crate::value::DbValue;

/// Capture version `v` and complete the commit (runs on the capture
/// worker thread).
pub(crate) fn capture<V: DbValue>(inner: &DbInner<V>, v: u64) {
    let started = std::time::Instant::now();
    let store = inner.store.as_ref().expect("capture requires a store");
    let token = store.begin().expect("begin checkpoint");
    // Delta checkpoints capture only records whose version-v image was
    // produced by a version-v write; everything else is already covered
    // by the base chain. The first commit is always full.
    let base = inner
        .opts
        .incremental
        .then(|| *inner.last_capture_token.lock())
        .flatten();

    let mut buf: Vec<u8> =
        Vec::with_capacity(inner.table.len() * (8 + std::mem::size_of::<V>()) + 8);
    buf.extend_from_slice(&0u64.to_le_bytes()); // count patched below
    let mut count = 0u64;
    inner.table.for_each(|key, rec| {
        // Spin for a shared latch; all lock holders are try-lock based, so
        // this cannot deadlock.
        loop {
            if rec.lock.try_shared() {
                break;
            }
            std::hint::spin_loop();
        }
        let birth = rec.birth();
        if birth == 0 || birth > v {
            // Never written, or born after the commit point: not part of
            // version v.
            rec.lock.release_shared();
            return;
        }
        let (value, image_version) = if rec.version() == v + 1 {
            (rec.read_stable(), rec.stable_modified())
        } else {
            (rec.read_live(), rec.modified())
        };
        rec.lock.release_shared();
        if base.is_some() && image_version != v {
            // Unchanged during cycle v: covered by the base chain.
            return;
        }
        buf.extend_from_slice(&key.to_le_bytes());
        cpr_core::pod_write(&value, &mut buf);
        count += 1;
    });
    buf[..8].copy_from_slice(&count.to_le_bytes());

    let path = store.file(token, "db.dat");
    write_atomically(&path, &buf).expect("write checkpoint data");

    let mut manifest = CheckpointManifest::new(token, CheckpointKind::Database, v);
    manifest.records = Some(count);
    manifest.base = base;
    manifest.sessions = inner
        .registry
        .cpr_points()
        .into_iter()
        .map(|(guid, cpr_point)| SessionCpr { guid, cpr_point })
        .collect();
    store.commit(&manifest).expect("commit manifest");

    // Commit complete: back to rest at the next version.
    let ok = inner
        .state
        .transition((Phase::WaitFlush, v), (Phase::Rest, v + 1));
    debug_assert!(ok, "state machine out of sync at capture completion");
    inner.committed_version.store(v, Ordering::Release);
    *inner.last_capture.lock() = Some(started.elapsed());
    *inner.last_capture_token.lock() = Some(token);
    let _g = inner.commit_lock.lock();
    inner.commit_cv.notify_all();
}

fn write_atomically(path: &Path, data: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(data)?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, path)
}

/// Load a checkpoint produced by [`capture`] into a fresh database.
pub(crate) fn load<V: DbValue>(
    inner: &DbInner<V>,
    store: &CheckpointStore,
    manifest: &CheckpointManifest,
) -> io::Result<()> {
    let data = std::fs::read(store.file(manifest.token, "db.dat"))?;
    let rec_size = 8 + std::mem::size_of::<V>();
    if data.len() < 8 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "checkpoint truncated",
        ));
    }
    let count = u64::from_le_bytes(data[..8].try_into().unwrap()) as usize;
    if data.len() < 8 + count * rec_size {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("checkpoint expects {count} records, file too short"),
        ));
    }
    let mut off = 8;
    for _ in 0..count {
        let key = u64::from_le_bytes(data[off..off + 8].try_into().unwrap());
        let value: V = cpr_core::pod_read(&data[off + 8..off + rec_size]);
        // Delta chains re-load keys: later (newer) checkpoints overwrite.
        let (rec, inserted) = inner.table.get_or_insert(key, manifest.version, value);
        assert!(rec.lock.try_exclusive(), "recovery load is single-threaded");
        rec.write_live(value);
        rec.set_birth_if_unset(manifest.version);
        rec.set_modified(manifest.version);
        rec.set_version(manifest.version);
        rec.lock.release_exclusive();
        let _ = inserted;
        off += rec_size;
    }
    Ok(())
}

/// Replay a WAL generation file: apply every redo record in append order.
pub(crate) fn replay_wal<V: DbValue>(inner: &DbInner<V>, path: &Path) -> io::Result<()> {
    if !path.exists() {
        return Ok(());
    }
    let version = inner.state.version();
    crate::wal::Wal::replay(path, |payload| {
        if payload.len() < 8 {
            return;
        }
        let n = u64::from_le_bytes(payload[..8].try_into().unwrap()) as usize;
        let rec_size = 8 + std::mem::size_of::<V>();
        let mut off = 8;
        for _ in 0..n {
            if off + rec_size > payload.len() {
                return; // torn record: stop applying this payload
            }
            let key = u64::from_le_bytes(payload[off..off + 8].try_into().unwrap());
            let value: V = cpr_core::pod_read(&payload[off + 8..off + rec_size]);
            let (rec, _) = inner.table.get_or_insert(key, version, V::from_seed(0));
            // Replay is single-threaded; locks still taken for discipline.
            assert!(rec.lock.try_exclusive(), "replay is single-threaded");
            rec.write_live(value);
            rec.set_birth_if_unset(version);
            rec.lock.release_exclusive();
            off += rec_size;
        }
    })
}
