//! Checkpoint capture, load, and WAL replay.
//!
//! Capture implements the wait-flush pass of paper Alg. 2: for every
//! record that existed in version `v`, persist its version-`v` value —
//! `stable` if the record has already been shifted to `v + 1` by a
//! concurrent post-CPR-point transaction, `live` otherwise. The pass runs
//! on a background thread while version-`v + 1` transactions execute.
//!
//! File format (`db.dat`): `[count u64][(key u64, flags u64, value)*]`,
//! little endian, values `size_of::<V>()` bytes each. Flags bit 0 marks a
//! tombstone (full checkpoints omit dead records; deltas persist the
//! tombstone so it overrides the base chain).
//!
//! Any I/O failure during capture — including injected faults — aborts
//! the checkpoint instead of panicking: the uncommitted directory is
//! discarded, no manifest is written, `committed_version` stays put, and
//! sessions return to `rest` at `v + 1` so a later commit can succeed.

use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::atomic::Ordering;

use cpr_core::{CheckpointKind, CheckpointManifest, Phase, SessionCpr};
use cpr_storage::CheckpointStore;

use crate::db::DbInner;
use crate::error::RecoveryError;
use crate::value::DbValue;

const FLAG_TOMBSTONE: u64 = 1;

/// Capture version `v` and complete the commit (runs on the capture
/// worker thread).
pub(crate) fn capture<V: DbValue>(inner: &DbInner<V>, v: u64) {
    let started = std::time::Instant::now();
    // Drop any abort request left over from a race with the previous
    // capture's completion; the watchdog re-raises if it still wants one.
    inner.capture_abort.store(false, Ordering::Release);
    let committed = try_capture(inner, v);
    if committed.is_none() {
        inner.checkpoint_failures.fetch_add(1, Ordering::AcqRel);
    }

    // Back to rest at the next version either way; only success publishes
    // the committed version and the delta base.
    let ok = inner
        .state
        .transition((Phase::WaitFlush, v), (Phase::Rest, v + 1));
    debug_assert!(ok, "state machine out of sync at capture completion");
    if let Some((token, sessions)) = &committed {
        // The manifest's points are now the durable baseline; detached
        // entries it subsumes can be dropped.
        {
            let mut durable = inner.durable_points.lock();
            for s in sessions {
                let e = durable.entry(s.guid).or_insert(0);
                *e = (*e).max(s.cpr_point);
            }
        }
        inner.detached.prune_committed(v);
        inner.committed_version.store(v, Ordering::Release);
        *inner.last_capture.lock() = Some(started.elapsed());
        *inner.last_capture_token.lock() = Some(*token);
        for cb in inner.commit_callbacks.lock().iter() {
            cb(v, sessions);
        }
    }
    if inner.opts.metrics.is_enabled() {
        let out = inner.outcome.lock();
        inner.opts.metrics.checkpoints.end(
            v,
            committed.is_some(),
            out.attempts as u64,
            out.proxy_advanced.len() as u64,
            out.evicted.len() as u64,
        );
    }
    let _g = inner.commit_lock.lock();
    inner.commit_cv.notify_all();
}

/// The fallible body of capture. Returns the committed token and the
/// manifest's session points, or `None` if any I/O step failed (the
/// partial checkpoint is aborted).
///
/// Serialization is bucket-sharded across `capture_threads` workers;
/// concatenating the shards in bucket order reproduces exactly the
/// sequential [`Table::for_each`](crate::Table::for_each) order, so the
/// checkpoint bytes are identical at any thread count.
fn try_capture<V: DbValue>(inner: &DbInner<V>, v: u64) -> Option<(u64, Vec<SessionCpr>)> {
    let store = inner.store.as_ref().expect("capture requires a store");
    let token = store.begin().ok()?;
    // Delta checkpoints capture only records whose version-v image was
    // produced by a version-v write; everything else is already covered
    // by the base chain. The first commit is always full.
    let base = inner
        .opts
        .incremental
        .then(|| *inner.last_capture_token.lock())
        .flatten();

    let buckets = inner.table.bucket_count();
    let threads = inner.opts.capture_threads.clamp(1, buckets.max(1));
    let t0 = inner.opts.metrics.is_enabled().then(std::time::Instant::now);
    let shards: Vec<Option<(Vec<u8>, u64)>> = if threads == 1 {
        vec![capture_shard(inner, v, base, 0..buckets)]
    } else {
        std::thread::scope(|sc| {
            (0..threads)
                .map(|w| {
                    let lo = buckets * w / threads;
                    let hi = buckets * (w + 1) / threads;
                    sc.spawn(move || capture_shard(inner, v, base, lo..hi))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("capture shard panicked"))
                .collect()
        })
    };
    if shards.iter().any(Option::is_none) || inner.capture_abort.swap(false, Ordering::AcqRel) {
        let _ = store.abort(token);
        return None;
    }
    let mut buf: Vec<u8> =
        Vec::with_capacity(inner.table.len() * (16 + std::mem::size_of::<V>()) + 8);
    buf.extend_from_slice(&0u64.to_le_bytes()); // count patched below
    let mut count = 0u64;
    for (bytes, n) in shards.into_iter().flatten() {
        buf.extend_from_slice(&bytes);
        count += n;
    }
    buf[..8].copy_from_slice(&count.to_le_bytes());
    if let Some(t0) = t0 {
        inner
            .opts
            .metrics
            .record_phase("capture.serialize", threads, t0.elapsed());
    }

    let sessions = session_points(inner, v);
    let result = (|| -> io::Result<()> {
        store.write_file(token, "db.dat", &buf)?;
        let mut manifest = CheckpointManifest::new(token, CheckpointKind::Database, v);
        manifest.records = Some(count);
        manifest.base = base;
        manifest.sessions = sessions.clone();
        store.commit(&manifest)
    })();
    if result.is_err() {
        // No-op after a simulated crash: the frozen (possibly torn) state
        // is exactly what recovery must cope with.
        let _ = store.abort(token);
        return None;
    }
    Some((token, sessions))
}

/// Serialize the version-`v` images of the records chained off buckets
/// `range` (one capture worker's share). Returns the shard's bytes and
/// record count, or `None` if the watchdog aborted the pass.
fn capture_shard<V: DbValue>(
    inner: &DbInner<V>,
    v: u64,
    base: Option<u64>,
    range: std::ops::Range<usize>,
) -> Option<(Vec<u8>, u64)> {
    let mut buf: Vec<u8> = Vec::new();
    let mut count = 0u64;
    let mut aborted = false;
    inner.table.for_each_in_buckets(range, |key, rec| {
        if aborted {
            return;
        }
        // Spin for a shared latch; lock holders are try-lock based, so
        // this cannot deadlock — but a *parked* lock holder stalls it
        // indefinitely, which is why the watchdog can abort the pass.
        loop {
            if rec.lock.try_shared() {
                break;
            }
            if inner.capture_abort.load(Ordering::Acquire) {
                aborted = true;
                return;
            }
            std::hint::spin_loop();
        }
        let birth = rec.birth();
        if birth == 0 || birth > v {
            // Never written, or born after the commit point: not part of
            // version v.
            rec.lock.release_shared();
            return;
        }
        let (value, image_version, dead) = if rec.version() == v + 1 {
            (rec.read_stable(), rec.stable_modified(), rec.stable_dead())
        } else {
            (rec.read_live(), rec.modified(), rec.is_dead())
        };
        rec.lock.release_shared();
        if base.is_some() && image_version != v {
            // Unchanged during cycle v: covered by the base chain.
            return;
        }
        if dead && base.is_none() {
            // Full checkpoint: deleted records are simply absent.
            return;
        }
        buf.extend_from_slice(&key.to_le_bytes());
        buf.extend_from_slice(&if dead { FLAG_TOMBSTONE } else { 0 }.to_le_bytes());
        cpr_core::pod_write(&value, &mut buf);
        count += 1;
    });
    (!aborted).then_some((buf, count))
}

/// Per-session commit points for the manifest of version `v`: the newest
/// durable points carried forward, detached sessions' deposited points,
/// and the live registry snapshot, merged by max. Serials only grow per
/// guid, so max picks the newest claim each source can justify (and a
/// session that re-attached mid-checkpoint — registry point still 0 —
/// keeps the point it deposited when it detached).
fn session_points<V: DbValue>(inner: &DbInner<V>, v: u64) -> Vec<SessionCpr> {
    let mut points: HashMap<u64, u64> = inner.durable_points.lock().clone();
    for (guid, p) in inner
        .detached
        .points_for(v)
        .into_iter()
        .chain(inner.registry.cpr_points())
    {
        let e = points.entry(guid).or_insert(0);
        *e = (*e).max(p);
    }
    let mut out: Vec<SessionCpr> = points
        .into_iter()
        .map(|(guid, cpr_point)| SessionCpr { guid, cpr_point })
        .collect();
    out.sort_unstable_by_key(|s| s.guid);
    out
}

/// Load a checkpoint produced by [`capture`] into a fresh database.
///
/// The record entries are split across `recovery_threads` workers: every
/// key appears at most once per checkpoint file, so workers touch
/// disjoint records and the result is independent of thread count. A
/// record found locked surfaces as [`RecoveryError::RecordLocked`]
/// instead of a panic — recovery must be the table's only writer.
pub(crate) fn load<V: DbValue>(
    inner: &DbInner<V>,
    store: &CheckpointStore,
    manifest: &CheckpointManifest,
) -> io::Result<()> {
    let data = store.read_file(manifest.token, "db.dat")?;
    let rec_size = 16 + std::mem::size_of::<V>();
    if data.len() < 8 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "checkpoint truncated",
        ));
    }
    let count = u64::from_le_bytes(data[..8].try_into().unwrap()) as usize;
    if data.len() < 8 + count * rec_size {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("checkpoint expects {count} records, file too short"),
        ));
    }

    let load_range = |lo: usize, hi: usize| -> io::Result<()> {
        let mut off = 8 + lo * rec_size;
        for _ in lo..hi {
            let key = u64::from_le_bytes(data[off..off + 8].try_into().unwrap());
            let flags = u64::from_le_bytes(data[off + 8..off + 16].try_into().unwrap());
            let value: V = cpr_core::pod_read(&data[off + 16..off + rec_size]);
            // Delta chains re-load keys: later (newer) checkpoints
            // overwrite.
            let (rec, _inserted) = inner.table.get_or_insert(key, manifest.version, value);
            if !rec.lock.try_exclusive() {
                return Err(RecoveryError::RecordLocked { key }.into());
            }
            rec.write_live(value);
            rec.set_dead(flags & FLAG_TOMBSTONE != 0);
            rec.set_birth_if_unset(manifest.version);
            rec.set_modified(manifest.version);
            rec.set_version(manifest.version);
            rec.lock.release_exclusive();
            off += rec_size;
        }
        Ok(())
    };

    let threads = inner.opts.recovery_threads.clamp(1, count.max(1));
    let t0 = inner.opts.metrics.is_enabled().then(std::time::Instant::now);
    let result = if threads == 1 {
        load_range(0, count)
    } else {
        std::thread::scope(|sc| {
            (0..threads)
                .map(|w| {
                    let lo = count * w / threads;
                    let hi = count * (w + 1) / threads;
                    let load_range = &load_range;
                    sc.spawn(move || load_range(lo, hi))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .try_for_each(|h| h.join().expect("load worker panicked"))
        })
    };
    if let Some(t0) = t0 {
        inner
            .opts
            .metrics
            .record_phase("recovery.load", threads, t0.elapsed());
    }
    result
}

/// Replay a WAL generation file: apply every redo record in append order
/// (replay stays sequential — later records overwrite earlier ones, so
/// the order is semantic). A record found locked surfaces as
/// [`RecoveryError::RecordLocked`] instead of a panic.
pub(crate) fn replay_wal<V: DbValue>(inner: &DbInner<V>, path: &Path) -> io::Result<()> {
    if !path.exists() {
        return Ok(());
    }
    let version = inner.state.version();
    // `Wal::replay`'s visitor cannot return errors; park the first one
    // here and surface it after the walk.
    let mut failed: Option<io::Error> = None;
    crate::wal::Wal::replay(path, |payload| {
        if failed.is_some() || payload.len() < 8 {
            return;
        }
        let n = u64::from_le_bytes(payload[..8].try_into().unwrap()) as usize;
        let rec_size = 16 + std::mem::size_of::<V>();
        let mut off = 8;
        for _ in 0..n {
            if off + rec_size > payload.len() {
                return; // torn record: stop applying this payload
            }
            let key = u64::from_le_bytes(payload[off..off + 8].try_into().unwrap());
            let flags = u64::from_le_bytes(payload[off + 8..off + 16].try_into().unwrap());
            let value: V = cpr_core::pod_read(&payload[off + 16..off + rec_size]);
            let (rec, _) = inner.table.get_or_insert(key, version, V::from_seed(0));
            if !rec.lock.try_exclusive() {
                failed = Some(RecoveryError::RecordLocked { key }.into());
                return;
            }
            rec.write_live(value);
            rec.set_dead(flags & FLAG_TOMBSTONE != 0);
            rec.set_birth_if_unset(version);
            rec.lock.release_exclusive();
            off += rec_size;
        }
    })?;
    match failed {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{Durability, MemDb};

    /// A record held exclusively while recovery loads must surface as
    /// [`RecoveryError::RecordLocked`], not a panic; releasing the lock
    /// lets the same load succeed.
    #[test]
    fn load_surfaces_locked_record_as_error() {
        let dir = tempfile::tempdir().unwrap();
        let store = CheckpointStore::open(dir.path().join("checkpoints")).unwrap();
        let token = store.begin().unwrap();
        let mut buf = Vec::new();
        buf.extend_from_slice(&1u64.to_le_bytes()); // count
        buf.extend_from_slice(&7u64.to_le_bytes()); // key
        buf.extend_from_slice(&0u64.to_le_bytes()); // flags
        buf.extend_from_slice(&42u64.to_le_bytes()); // value
        store.write_file(token, "db.dat", &buf).unwrap();
        let mut manifest = CheckpointManifest::new(token, CheckpointKind::Database, 1);
        manifest.records = Some(1);
        store.commit(&manifest).unwrap();

        let db: MemDb<u64> = MemDb::builder(Durability::None).open().unwrap();
        let (rec, _) = db.inner.table.get_or_insert(7, 1, 0);
        assert!(rec.lock.try_exclusive());
        let err = load(&db.inner, &store, &manifest).unwrap_err();
        assert!(err.to_string().contains("locked"), "{err}");
        rec.lock.release_exclusive();
        load(&db.inner, &store, &manifest).unwrap();
        assert_eq!(db.read(7), Some(42));
    }
}
