//! Per-client execution statistics and the time breakdown of paper
//! Figs. 10e / 16e / 17e.

use std::time::Duration;

/// Counters and (optionally) a time breakdown collected by one client.
///
/// The breakdown buckets mirror the paper's profile: **Exec** (in-memory
/// transaction processing incl. locking), **Abort** (work discarded on
/// aborts), **Tail contention** (LSN allocation / atomic commit-log
/// append), **Log write** (building and copying WAL records).
#[derive(Debug, Default, Clone)]
pub struct ClientStats {
    pub committed: u64,
    pub reads: u64,
    pub writes: u64,
    pub aborts_conflict: u64,
    pub aborts_cpr: u64,
    /// Transactions rejected because the watchdog evicted the session.
    pub aborts_evicted: u64,
    /// Nanoseconds; populated only when profiling is enabled.
    pub exec_ns: u64,
    pub abort_ns: u64,
    pub tail_ns: u64,
    pub log_write_ns: u64,
    /// Side-channel time (tail + log write) accumulated within the current
    /// transaction, subtracted from its exec time on commit.
    pending_side_ns: u64,
}

impl ClientStats {
    /// Attribute `ns` to the tail-contention (`tail = true`) or log-write
    /// bucket, and remember it so the enclosing transaction's exec time
    /// can exclude it.
    pub fn note_side_ns(&mut self, ns: u64, tail: bool) {
        if tail {
            self.tail_ns += ns;
        } else {
            self.log_write_ns += ns;
        }
        self.pending_side_ns += ns;
    }

    /// Take (and reset) the side time accumulated by the current txn.
    pub fn take_pending_side_ns(&mut self) -> u64 {
        std::mem::take(&mut self.pending_side_ns)
    }

    pub fn merge(&mut self, other: &ClientStats) {
        self.committed += other.committed;
        self.reads += other.reads;
        self.writes += other.writes;
        self.aborts_conflict += other.aborts_conflict;
        self.aborts_cpr += other.aborts_cpr;
        self.aborts_evicted += other.aborts_evicted;
        self.exec_ns += other.exec_ns;
        self.abort_ns += other.abort_ns;
        self.tail_ns += other.tail_ns;
        self.log_write_ns += other.log_write_ns;
    }

    pub fn total_attempts(&self) -> u64 {
        self.committed + self.aborts_conflict + self.aborts_cpr + self.aborts_evicted
    }

    /// (exec, abort, tail, log-write) as fractions of profiled time.
    pub fn breakdown(&self) -> [f64; 4] {
        let total = (self.exec_ns + self.abort_ns + self.tail_ns + self.log_write_ns) as f64;
        if total == 0.0 {
            return [0.0; 4];
        }
        [
            self.exec_ns as f64 / total,
            self.abort_ns as f64 / total,
            self.tail_ns as f64 / total,
            self.log_write_ns as f64 / total,
        ]
    }

    pub fn profiled_time(&self) -> Duration {
        Duration::from_nanos(self.exec_ns + self.abort_ns + self.tail_ns + self.log_write_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = ClientStats {
            committed: 10,
            aborts_conflict: 1,
            exec_ns: 100,
            ..Default::default()
        };
        let b = ClientStats {
            committed: 5,
            aborts_cpr: 2,
            tail_ns: 50,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.committed, 15);
        assert_eq!(a.aborts_conflict, 1);
        assert_eq!(a.aborts_cpr, 2);
        assert_eq!(a.total_attempts(), 18);
        assert_eq!(a.exec_ns, 100);
        assert_eq!(a.tail_ns, 50);
    }

    #[test]
    fn breakdown_sums_to_one() {
        let s = ClientStats {
            exec_ns: 60,
            abort_ns: 10,
            tail_ns: 20,
            log_write_ns: 10,
            ..Default::default()
        };
        let b = s.breakdown();
        assert!((b.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((b[0] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_is_zero() {
        assert_eq!(ClientStats::default().breakdown(), [0.0; 4]);
    }
}
