//! Write-ahead-log baseline (paper Secs. 1, 7).
//!
//! A single shared redo log with group commit:
//!
//! * **LSN allocation** — a fetch-add on the shared tail reserves space;
//!   this is the "Tail Contention" cost of the WAL bars in Fig. 10e.
//! * **Log write** — the transaction's redo record (key/value pairs) is
//!   copied into the ring at the reserved offset; this is the "Log Write"
//!   cost.
//! * **Group commit** — a flusher thread periodically writes the ready
//!   prefix of the ring to the log file and syncs it, advancing the
//!   durable horizon (paper's group-commit window).
//!
//! ## Ring protocol
//! Each record is `[header u64][payload][pad to 8]`. The header packs a
//! magic byte, the *lap* (offset / capacity — distinguishes a fresh header
//! from a stale one left by the previous trip around the ring), and the
//! payload length. Writers copy the payload first and publish the header
//! with a release store; the flusher scans headers in order with acquire
//! loads, so a ready header implies a fully visible payload. Writers stall
//! (backpressure) rather than overwrite data the flusher has not yet made
//! durable.

use std::cell::UnsafeCell;
use std::fs::File;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use cpr_storage::{FaultInjector, IoVerdict};
use crossbeam_utils::CachePadded;
use parking_lot::{Condvar, Mutex};

const MAGIC: u64 = 0xA5;
const LEN_BITS: u32 = 24;
const LAP_BITS: u32 = 32;
const LEN_MASK: u64 = (1 << LEN_BITS) - 1;
const LAP_MASK: u64 = (1 << LAP_BITS) - 1;

#[inline]
fn pack_header(lap: u64, len: u64) -> u64 {
    (MAGIC << 56) | ((lap & LAP_MASK) << LEN_BITS) | (len & LEN_MASK)
}

#[inline]
fn unpack_header(h: u64) -> Option<(u64, u64)> {
    if h >> 56 != MAGIC {
        return None;
    }
    Some(((h >> LEN_BITS) & LAP_MASK, h & LEN_MASK))
}

#[inline]
fn padded(len: u64) -> u64 {
    (len + 7) & !7
}

struct Ring {
    /// `u64`-typed for 8-byte alignment; addressed byte-wise.
    words: Box<[UnsafeCell<u64>]>,
    cap: u64,
}

// SAFETY: the ring protocol (module docs) establishes happens-before
// between writer payload stores and flusher reads via the header
// release/acquire pair, and between flusher durability and slot reuse via
// the `durable` release/acquire pair.
unsafe impl Sync for Ring {}
unsafe impl Send for Ring {}

impl Ring {
    fn new(cap: u64) -> Self {
        assert!(cap.is_power_of_two() && cap >= 64);
        let words = (0..cap / 8)
            .map(|_| UnsafeCell::new(0u64))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Ring { words, cap }
    }

    #[inline]
    fn base(&self) -> *mut u8 {
        self.words.as_ptr() as *mut u8
    }

    /// Atomic view of the 8-byte-aligned header slot at logical `off`.
    #[inline]
    fn header(&self, off: u64) -> &AtomicU64 {
        debug_assert_eq!(off % 8, 0);
        let pos = (off % self.cap) as usize;
        // SAFETY: pos is 8-aligned and in bounds; AtomicU64 has the same
        // layout as u64.
        unsafe { &*(self.base().add(pos) as *const AtomicU64) }
    }

    /// Copy `src` into the ring at logical `off` (wrap-aware).
    ///
    /// # Safety
    /// Caller must own the reserved region `[off, off + src.len())`.
    unsafe fn copy_in(&self, off: u64, src: &[u8]) {
        let pos = (off % self.cap) as usize;
        let first = src.len().min((self.cap as usize) - pos);
        std::ptr::copy_nonoverlapping(src.as_ptr(), self.base().add(pos), first);
        if first < src.len() {
            std::ptr::copy_nonoverlapping(src.as_ptr().add(first), self.base(), src.len() - first);
        }
    }

    /// Copy the ring region `[off, off + len)` into `dst` (wrap-aware).
    ///
    /// # Safety
    /// Caller must have acquired visibility of the region (ready headers).
    unsafe fn copy_out(&self, off: u64, len: usize, dst: &mut Vec<u8>) {
        dst.clear();
        dst.reserve(len);
        let pos = (off % self.cap) as usize;
        let first = len.min(self.cap as usize - pos);
        dst.extend_from_slice(std::slice::from_raw_parts(
            self.base().add(pos) as *const u8,
            first,
        ));
        if first < len {
            dst.extend_from_slice(std::slice::from_raw_parts(
                self.base() as *const u8,
                len - first,
            ));
        }
    }
}

/// Shared write-ahead log with group commit. See module docs.
pub struct Wal {
    inner: Arc<WalInner>,
    flusher: Mutex<Option<JoinHandle<()>>>,
}

struct WalInner {
    ring: Ring,
    tail: CachePadded<AtomicU64>,
    durable: CachePadded<AtomicU64>,
    stop: AtomicBool,
    /// Set when the flusher hits a fatal (or simulated-crash) I/O error:
    /// the durable horizon is frozen and `sync()` returns instead of
    /// wedging forever.
    dead: AtomicBool,
    sync_lock: Mutex<()>,
    sync_cv: Condvar,
    file: File,
    group_interval: Duration,
    injector: Option<Arc<FaultInjector>>,
}

impl Wal {
    /// Create a WAL backed by `path`. `capacity` is the ring size in bytes
    /// (power of two); `group_interval` is the group-commit window.
    pub fn create(
        path: impl AsRef<Path>,
        capacity: u64,
        group_interval: Duration,
    ) -> std::io::Result<Self> {
        Self::create_with(path, capacity, group_interval, None)
    }

    /// Create a WAL whose flusher writes are subject to fault injection.
    pub fn create_with(
        path: impl AsRef<Path>,
        capacity: u64,
        group_interval: Duration,
        injector: Option<Arc<FaultInjector>>,
    ) -> std::io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let inner = Arc::new(WalInner {
            ring: Ring::new(capacity),
            tail: CachePadded::new(AtomicU64::new(0)),
            durable: CachePadded::new(AtomicU64::new(0)),
            stop: AtomicBool::new(false),
            dead: AtomicBool::new(false),
            sync_lock: Mutex::new(()),
            sync_cv: Condvar::new(),
            file,
            group_interval,
            injector,
        });
        let fl = Arc::clone(&inner);
        let handle = std::thread::Builder::new()
            .name("cpr-wal-flusher".into())
            .spawn(move || fl.run_flusher())
            .expect("spawn flusher");
        Ok(Wal {
            inner,
            flusher: Mutex::new(Some(handle)),
        })
    }

    /// Append a redo record; returns its LSN (logical byte offset).
    ///
    /// The fetch-add reservation is the WAL's serial bottleneck; the copy
    /// is the log-write cost. Callers measure them separately via
    /// [`Wal::reserve`] + `WalReservation::fill` when profiling.
    pub fn append(&self, payload: &[u8]) -> u64 {
        let r = self.reserve(payload.len());
        r.fill(payload)
    }

    /// Reserve ring space for a payload of `len` bytes (LSN allocation +
    /// backpressure only).
    pub fn reserve(&self, len: usize) -> WalReservation<'_> {
        let len = len as u64;
        assert!(len > 0 && len <= LEN_MASK, "payload size {len}");
        let total = 8 + padded(len);
        assert!(
            total <= self.inner.ring.cap / 2,
            "payload too large for ring"
        );
        let off = self.inner.tail.fetch_add(total, Ordering::AcqRel);
        // Backpressure: wait until the slot's previous lap is durable.
        let mut spins = 0u32;
        while off + total > self.inner.durable.load(Ordering::Acquire) + self.inner.ring.cap {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        WalReservation {
            wal: self,
            off,
            len,
        }
    }

    /// Block until everything appended so far is durable (used by tests
    /// and by explicit commit requests; normal operation relies on the
    /// asynchronous group commit).
    pub fn sync(&self) {
        let target = self.inner.tail.load(Ordering::Acquire);
        let mut g = self.inner.sync_lock.lock();
        while self.inner.durable.load(Ordering::Acquire) < target {
            if self.inner.dead.load(Ordering::Acquire) {
                return; // log device dead/crashed: durability frozen
            }
            self.inner
                .sync_cv
                .wait_for(&mut g, Duration::from_millis(50));
        }
    }

    /// True once the flusher has hit a fatal I/O error (durable horizon
    /// frozen; appends still succeed but will never become durable).
    pub fn is_dead(&self) -> bool {
        self.inner.dead.load(Ordering::Acquire)
    }

    /// Total bytes appended (including headers/padding).
    pub fn tail(&self) -> u64 {
        self.inner.tail.load(Ordering::Acquire)
    }

    /// Durable horizon.
    pub fn durable(&self) -> u64 {
        self.inner.durable.load(Ordering::Acquire)
    }

    /// Parse a log file previously produced by a `Wal`, invoking `f` with
    /// each record payload in append order.
    pub fn replay(path: impl AsRef<Path>, mut f: impl FnMut(&[u8])) -> std::io::Result<()> {
        let data = std::fs::read(path)?;
        let mut off = 0usize;
        while off + 8 <= data.len() {
            let header = u64::from_le_bytes(data[off..off + 8].try_into().unwrap());
            let Some((_lap, len)) = unpack_header(header) else {
                break; // trailing zeros / torn tail
            };
            let len = len as usize;
            if off + 8 + len > data.len() {
                break; // torn tail
            }
            f(&data[off + 8..off + 8 + len]);
            off += 8 + padded(len as u64) as usize;
        }
        Ok(())
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::Release);
        if let Some(h) = self.flusher.lock().take() {
            let _ = h.join();
        }
    }
}

/// A reserved ring region awaiting its payload.
pub struct WalReservation<'a> {
    wal: &'a Wal,
    off: u64,
    len: u64,
}

impl WalReservation<'_> {
    /// Copy the payload and publish the record; returns the LSN.
    pub fn fill(self, payload: &[u8]) -> u64 {
        assert_eq!(payload.len() as u64, self.len);
        let inner = &self.wal.inner;
        // SAFETY: [off+8, off+8+len) was reserved exclusively for us.
        unsafe { inner.ring.copy_in(self.off + 8, payload) };
        let lap = self.off / inner.ring.cap;
        inner
            .ring
            .header(self.off)
            .store(pack_header(lap, self.len), Ordering::Release);
        self.off
    }

    pub fn lsn(&self) -> u64 {
        self.off
    }
}

impl WalInner {
    fn run_flusher(&self) {
        use std::os::unix::fs::FileExt;
        let mut flushed = 0u64;
        let mut buf: Vec<u8> = Vec::new();
        const MAX_BATCH: u64 = 4 << 20;
        loop {
            // Scan forward over ready records.
            let mut scanned = flushed;
            let tail = self.tail.load(Ordering::Acquire);
            while scanned < tail && scanned - flushed < MAX_BATCH {
                let h = self.ring.header(scanned).load(Ordering::Acquire);
                let Some((lap, len)) = unpack_header(h) else {
                    break;
                };
                if lap != (scanned / self.ring.cap) & LAP_MASK {
                    break; // stale header from a previous lap
                }
                scanned += 8 + padded(len);
            }
            if scanned > flushed {
                // SAFETY: headers in [flushed, scanned) were acquired.
                unsafe {
                    self.ring
                        .copy_out(flushed, (scanned - flushed) as usize, &mut buf)
                };
                // Consult the fault schedule for this batch write.
                if let Some(inj) = &self.injector {
                    match inj.next_io() {
                        IoVerdict::Ok => {}
                        IoVerdict::Fail => {
                            // Transient: leave the batch in the ring and
                            // retry it next round.
                            std::thread::sleep(self.group_interval);
                            continue;
                        }
                        IoVerdict::Torn { keep } => {
                            // Persist a prefix of the batch, then die: the
                            // torn tail is what replay must tolerate.
                            let keep = keep.min(buf.len());
                            let _ = self.file.write_all_at(&buf[..keep], flushed);
                            let _ = self.file.sync_data();
                            self.die();
                            break;
                        }
                        IoVerdict::Crashed => {
                            self.die();
                            break;
                        }
                        IoVerdict::Delay { millis } => {
                            std::thread::sleep(Duration::from_millis(millis));
                        }
                    }
                }
                if self.file.write_all_at(&buf, flushed).is_err() || self.file.sync_data().is_err()
                {
                    self.die();
                    break;
                }
                self.durable.store(scanned, Ordering::Release);
                flushed = scanned;
                let _g = self.sync_lock.lock();
                self.sync_cv.notify_all();
            } else {
                if self.stop.load(Ordering::Acquire) && flushed == self.tail.load(Ordering::Acquire)
                {
                    break;
                }
                if self.stop.load(Ordering::Acquire) && scanned == flushed {
                    // Torn reservation at shutdown: nothing more will
                    // become ready.
                    break;
                }
                std::thread::sleep(self.group_interval);
            }
        }
    }

    /// Freeze the durable horizon and wake any `sync()` waiters so they
    /// observe the failure instead of blocking forever.
    fn die(&self) {
        self.dead.store(true, Ordering::Release);
        let _g = self.sync_lock.lock();
        self.sync_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_wal(cap: u64) -> (tempfile::TempDir, Wal) {
        let dir = tempfile::tempdir().unwrap();
        let wal = Wal::create(dir.path().join("wal.log"), cap, Duration::from_millis(1)).unwrap();
        (dir, wal)
    }

    #[test]
    fn append_sync_replay_roundtrip() {
        let (dir, wal) = tmp_wal(1 << 16);
        wal.append(b"record-one");
        wal.append(b"record-two!");
        wal.sync();
        drop(wal);
        let mut seen = Vec::new();
        Wal::replay(dir.path().join("wal.log"), |p| {
            seen.push(p.to_vec());
        })
        .unwrap();
        assert_eq!(seen, vec![b"record-one".to_vec(), b"record-two!".to_vec()]);
    }

    #[test]
    fn lsns_are_monotone_and_spaced() {
        let (_d, wal) = tmp_wal(1 << 16);
        let a = wal.append(&[0u8; 16]);
        let b = wal.append(&[0u8; 9]);
        let c = wal.append(&[0u8; 1]);
        assert_eq!(a, 0);
        assert_eq!(b, 8 + 16);
        assert_eq!(c, b + 8 + 16); // 9 pads to 16
    }

    #[test]
    fn ring_wraps_under_sustained_appends() {
        let (dir, wal) = tmp_wal(1 << 10); // 1 KiB ring, force many laps
        let n = 500;
        for i in 0..n {
            wal.append(format!("payload-{i:04}").as_bytes());
        }
        wal.sync();
        drop(wal);
        let mut count = 0;
        Wal::replay(dir.path().join("wal.log"), |p| {
            assert_eq!(p, format!("payload-{count:04}").as_bytes());
            count += 1;
        })
        .unwrap();
        assert_eq!(count, n);
    }

    #[test]
    fn concurrent_appends_all_replayed() {
        let (dir, wal) = tmp_wal(1 << 14);
        let wal = std::sync::Arc::new(wal);
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let wal = Arc::clone(&wal);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        let mut p = Vec::with_capacity(16);
                        p.extend_from_slice(&t.to_le_bytes());
                        p.extend_from_slice(&i.to_le_bytes());
                        wal.append(&p);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        wal.sync();
        drop(std::sync::Arc::try_unwrap(wal).ok().unwrap());
        let mut per_thread = vec![Vec::new(); 4];
        let mut total = 0;
        Wal::replay(dir.path().join("wal.log"), |p| {
            let t = u64::from_le_bytes(p[..8].try_into().unwrap());
            let i = u64::from_le_bytes(p[8..].try_into().unwrap());
            per_thread[t as usize].push(i);
            total += 1;
        })
        .unwrap();
        assert_eq!(total, 2000);
        for seq in per_thread {
            // Per-thread order must be preserved (appends of one thread
            // are sequential in LSN order).
            assert_eq!(seq, (0..500).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn durable_advances_without_explicit_sync() {
        let (_d, wal) = tmp_wal(1 << 12);
        wal.append(b"x");
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while wal.durable() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(wal.durable() > 0, "group commit should flush on its own");
    }

    #[test]
    #[should_panic(expected = "payload size")]
    fn empty_payload_rejected() {
        let (_d, wal) = tmp_wal(1 << 12);
        wal.append(&[]);
    }

    #[test]
    fn header_roundtrip() {
        let h = pack_header(7, 123);
        assert_eq!(unpack_header(h), Some((7, 123)));
        assert_eq!(unpack_header(0), None);
    }
}
