//! The in-memory transactional database (paper Sec. 4).
//!
//! Shared-everything architecture: any thread can access any record;
//! concurrency control is strict 2PL with No-Wait deadlock avoidance.
//! Durability is pluggable: **CPR** (this paper), **CALC** (atomic commit
//! log baseline), **WAL** (group-commit redo log baseline), or none.

use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use std::collections::HashMap;

use cpr_core::liveness::{CommitOutcome, LivenessConfig, SessionStatus};
use cpr_core::{
    CheckpointKind, CheckpointManifest, CheckpointVersion, DetachedSessions, Phase, SessionId,
    SessionRegistry, SystemState,
};
use cpr_epoch::EpochManager;
use cpr_metrics::{MetricsReport, Registry};
use cpr_storage::{CheckpointStore, FaultInjector};
use parking_lot::{Condvar, Mutex};

use crate::calc::CommitLog;
use crate::checkpoint;
use crate::client::Session;
use crate::error::CommitError;
use crate::stats::ClientStats;
use crate::table::Table;
use crate::value::DbValue;
use crate::wal::Wal;

/// Durability backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// No durability: pure in-memory execution.
    None,
    /// Concurrent Prefix Recovery (paper Sec. 4).
    Cpr,
    /// CALC baseline: CPR capture mechanics plus an atomic commit-log
    /// append on every transaction commit (the measured serial
    /// bottleneck).
    Calc,
    /// Traditional WAL with group commit.
    Wal,
}

/// Database options.
#[derive(Debug, Clone)]
pub struct MemDbOptions {
    pub durability: Durability,
    /// Expected number of records (hash-table sizing hint).
    pub capacity: usize,
    /// Checkpoint / log directory (required unless `Durability::None`).
    pub dir: Option<PathBuf>,
    /// Maximum concurrently open sessions.
    pub max_sessions: usize,
    /// Ops between epoch refreshes — the `k` of Alg. 1.
    pub refresh_every: u64,
    /// Collect the Fig. 10e time breakdown (adds two `Instant` reads per
    /// transaction segment).
    pub profile: bool,
    /// WAL ring capacity in bytes (power of two).
    pub wal_capacity: u64,
    /// WAL group-commit window.
    pub group_commit: Duration,
    /// CALC commit-log ring capacity (entries).
    pub commit_log_capacity: usize,
    /// Incremental CPR checkpoints: capture only records modified since
    /// the previous commit (paper Sec. 4.1's orthogonal optimization;
    /// recovery applies the delta chain oldest → newest). The first
    /// commit is always full.
    pub incremental: bool,
    /// Optional fault injector for crash-recovery testing: applied to
    /// checkpoint-store writes (CPR/CALC) and WAL flushes.
    pub fault: Option<Arc<FaultInjector>>,
    /// Session liveness watchdog (CPR/CALC only). When set, sessions carry
    /// heartbeat leases and a background thread unwedges in-flight commits
    /// blocked by stragglers: proxy-advancing idle ones, evicting those
    /// parked mid-transaction, and timing the checkpoint out (abort +
    /// backoff + retry) when a straggler holds 2PL locks.
    pub liveness: Option<LivenessConfig>,
    /// Metrics registry. Defaults to the no-op sink
    /// ([`cpr_metrics::Registry::noop`]), which keeps the hot paths free
    /// of timing calls; pass [`cpr_metrics::Registry::new`] to collect.
    pub metrics: Arc<Registry>,
    /// Worker threads serializing the stable version during checkpoint
    /// capture (bucket-sharded; the checkpoint bytes are identical at any
    /// thread count). Defaults to the `CPR_IO_THREADS` environment
    /// variable (1 when unset).
    pub capture_threads: usize,
    /// Worker threads loading checkpoint files during recovery. Defaults
    /// to the `CPR_IO_THREADS` environment variable (1 when unset). The
    /// recovered state is identical at any thread count; WAL replay stays
    /// sequential (its records are order-dependent).
    pub recovery_threads: usize,
}

impl MemDbOptions {
    #[deprecated(since = "0.2.0", note = "use `MemDb::builder(durability)` instead")]
    pub fn new(durability: Durability) -> Self {
        Self::defaults(durability)
    }

    pub(crate) fn defaults(durability: Durability) -> Self {
        MemDbOptions {
            durability,
            capacity: 1 << 16,
            dir: None,
            max_sessions: 64,
            refresh_every: 64,
            profile: false,
            wal_capacity: 1 << 26, // 64 MiB
            group_commit: Duration::from_millis(5),
            commit_log_capacity: 1 << 20,
            incremental: false,
            fault: None,
            liveness: None,
            metrics: Registry::noop(),
            capture_threads: cpr_storage::env_io_threads(),
            recovery_threads: cpr_storage::env_io_threads(),
        }
    }

    pub fn capacity(mut self, c: usize) -> Self {
        self.capacity = c;
        self
    }
    pub fn dir(mut self, d: impl Into<PathBuf>) -> Self {
        self.dir = Some(d.into());
        self
    }
    pub fn max_sessions(mut self, n: usize) -> Self {
        self.max_sessions = n;
        self
    }
    pub fn refresh_every(mut self, k: u64) -> Self {
        self.refresh_every = k;
        self
    }
    pub fn profile(mut self, on: bool) -> Self {
        self.profile = on;
        self
    }
    pub fn group_commit(mut self, d: Duration) -> Self {
        self.group_commit = d;
        self
    }
    pub fn incremental(mut self, on: bool) -> Self {
        self.incremental = on;
        self
    }
    pub fn fault_injector(mut self, injector: Arc<FaultInjector>) -> Self {
        self.fault = Some(injector);
        self
    }
    pub fn liveness(mut self, cfg: LivenessConfig) -> Self {
        self.liveness = Some(cfg);
        self
    }
    pub fn metrics(mut self, registry: Arc<Registry>) -> Self {
        self.metrics = registry;
        self
    }
    pub fn capture_threads(mut self, n: usize) -> Self {
        self.capture_threads = n.max(1);
        self
    }
    pub fn recovery_threads(mut self, n: usize) -> Self {
        self.recovery_threads = n.max(1);
        self
    }
}

/// Fluent constructor for [`MemDb`] — the blessed way to open a database.
///
/// Every setter documents its default; omitted settings keep them. The
/// terminal calls are [`open`](MemDbBuilder::open) (fresh database) and
/// [`recover`](MemDbBuilder::recover) (resume from the newest durable
/// checkpoint or WAL).
///
/// ```
/// use cpr_memdb::{Durability, MemDb};
///
/// let db: MemDb<u64> = MemDb::builder(Durability::None)
///     .capacity(1 << 10)
///     .refresh_every(32)
///     .open()
///     .unwrap();
/// db.load(1, 7);
/// assert_eq!(db.read(1), Some(7));
/// ```
pub struct MemDbBuilder<V: DbValue> {
    opts: MemDbOptions,
    _marker: std::marker::PhantomData<fn() -> V>,
}

impl<V: DbValue> std::fmt::Debug for MemDbBuilder<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemDbBuilder").field("opts", &self.opts).finish()
    }
}

impl<V: DbValue> Clone for MemDbBuilder<V> {
    fn clone(&self) -> Self {
        MemDbBuilder {
            opts: self.opts.clone(),
            _marker: std::marker::PhantomData,
        }
    }
}

impl<V: DbValue> MemDbBuilder<V> {
    /// Expected number of records — hash-table sizing hint (default 2^16).
    pub fn capacity(mut self, c: usize) -> Self {
        self.opts.capacity = c;
        self
    }
    /// Checkpoint / log directory. Required for every durability mode but
    /// [`Durability::None`] (no default).
    pub fn dir(mut self, d: impl Into<PathBuf>) -> Self {
        self.opts.dir = Some(d.into());
        self
    }
    /// Maximum concurrently open sessions (default 64).
    pub fn max_sessions(mut self, n: usize) -> Self {
        self.opts.max_sessions = n;
        self
    }
    /// Ops between epoch refreshes — the `k` of paper Alg. 1 (default 64).
    pub fn refresh_every(mut self, k: u64) -> Self {
        self.opts.refresh_every = k;
        self
    }
    /// Collect the Fig. 10e time breakdown (default off; adds two
    /// `Instant` reads per transaction segment).
    pub fn profile(mut self, on: bool) -> Self {
        self.opts.profile = on;
        self
    }
    /// WAL ring capacity in bytes, power of two (default 64 MiB).
    pub fn wal_capacity(mut self, bytes: u64) -> Self {
        self.opts.wal_capacity = bytes;
        self
    }
    /// WAL group-commit window (default 5 ms).
    pub fn group_commit(mut self, d: Duration) -> Self {
        self.opts.group_commit = d;
        self
    }
    /// CALC commit-log ring capacity in entries (default 2^20).
    pub fn commit_log_capacity(mut self, entries: usize) -> Self {
        self.opts.commit_log_capacity = entries;
        self
    }
    /// Incremental CPR checkpoints — capture only records modified since
    /// the previous commit (default off; the first commit is always full).
    pub fn incremental(mut self, on: bool) -> Self {
        self.opts.incremental = on;
        self
    }
    /// Fault injector applied to checkpoint-store writes (CPR/CALC) and
    /// WAL flushes (default none).
    pub fn fault_injector(mut self, injector: Arc<FaultInjector>) -> Self {
        self.opts.fault = Some(injector);
        self
    }
    /// Enable the session liveness watchdog (default off).
    pub fn liveness(mut self, cfg: LivenessConfig) -> Self {
        self.opts.liveness = Some(cfg);
        self
    }
    /// Metrics registry (default: the no-op sink, which keeps hot paths
    /// free of timing calls). Pass [`cpr_metrics::Registry::new`] to
    /// collect counters, latency histograms, and checkpoint timelines.
    pub fn metrics(mut self, registry: Arc<Registry>) -> Self {
        self.opts.metrics = registry;
        self
    }
    /// Worker threads for checkpoint capture serialization (default: the
    /// `CPR_IO_THREADS` environment variable, 1 when unset). The
    /// checkpoint bytes are identical at any thread count.
    pub fn capture_threads(mut self, n: usize) -> Self {
        self.opts.capture_threads = n.max(1);
        self
    }
    /// Worker threads for checkpoint load during recovery (default: the
    /// `CPR_IO_THREADS` environment variable, 1 when unset). The
    /// recovered state is identical at any thread count.
    pub fn recovery_threads(mut self, n: usize) -> Self {
        self.opts.recovery_threads = n.max(1);
        self
    }
    /// Escape hatch: the underlying [`MemDbOptions`].
    pub fn options(self) -> MemDbOptions {
        self.opts
    }
    /// Open a fresh database.
    pub fn open(self) -> io::Result<MemDb<V>> {
        MemDb::open_at_version(self.opts, 1)
    }
    /// Recover from the newest committed checkpoint (CPR/CALC) or by
    /// replaying the redo log (WAL). Returns the manifest used, if any.
    pub fn recover(self) -> io::Result<(MemDb<V>, Option<CheckpointManifest>)> {
        MemDb::recover_inner(self.opts)
    }
}

pub(crate) struct DbInner<V: DbValue> {
    pub(crate) opts: MemDbOptions,
    pub(crate) table: Table<V>,
    pub(crate) state: SystemState,
    pub(crate) registry: SessionRegistry,
    pub(crate) epoch: Arc<EpochManager>,
    /// Highest version whose checkpoint is durable (0 = none).
    pub(crate) committed_version: AtomicU64,
    pub(crate) commit_lock: Mutex<()>,
    pub(crate) commit_cv: Condvar,
    pub(crate) store: Option<CheckpointStore>,
    pub(crate) commit_log: Option<CommitLog>,
    pub(crate) wal: Option<Wal>,
    capture_tx: Mutex<Option<crossbeam::channel::Sender<u64>>>,
    capture_thread: Mutex<Option<JoinHandle<()>>>,
    watchdog_thread: Mutex<Option<JoinHandle<()>>>,
    /// Set by the watchdog to time out a capture stuck behind a straggler's
    /// record latches; the capture pass polls it and takes the abort path.
    pub(crate) capture_abort: AtomicBool,
    /// Outcome of the in-flight (or most recent) supervised commit.
    pub(crate) outcome: Mutex<CommitOutcome>,
    pub(crate) merged_stats: Mutex<ClientStats>,
    /// Checkpoints that failed on I/O and were aborted (no manifest).
    pub(crate) checkpoint_failures: AtomicU64,
    /// Wall-clock duration of the last completed capture pass.
    pub(crate) last_capture: Mutex<Option<Duration>>,
    /// Token of the most recent Database checkpoint (delta base).
    pub(crate) last_capture_token: Mutex<Option<u64>>,
    /// Per-guid commit points of the newest durable manifest, seeded from
    /// the recovery manifest and carried into each new manifest so
    /// sessions absent at commit time keep their recovery contract.
    pub(crate) durable_points: Mutex<HashMap<u64, u64>>,
    /// Commit points (and live-resume serials) of sessions that detached
    /// since the database opened.
    pub(crate) detached: DetachedSessions,
    /// Commit observers: called with (version, CPR points) after every
    /// durable commit, on the capture thread.
    pub(crate) commit_callbacks: Mutex<Vec<CommitCallback>>,
}

/// Commit observer: `(committed version, per-session CPR points)`.
pub type CommitCallback = Box<dyn Fn(u64, &[cpr_core::SessionCpr]) + Send + Sync>;

/// Handle to a database; cheap to clone.
pub struct MemDb<V: DbValue> {
    pub(crate) inner: Arc<DbInner<V>>,
}

impl<V: DbValue> Clone for MemDb<V> {
    fn clone(&self) -> Self {
        MemDb {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<V: DbValue> MemDb<V> {
    /// Start building a database with the given durability backend.
    ///
    /// See [`MemDbBuilder`] for the available settings and defaults.
    pub fn builder(durability: Durability) -> MemDbBuilder<V> {
        MemDbBuilder {
            opts: MemDbOptions::defaults(durability),
            _marker: std::marker::PhantomData,
        }
    }

    /// Open a fresh database.
    #[deprecated(since = "0.2.0", note = "use `MemDb::builder(durability)…open()` instead")]
    pub fn open(opts: MemDbOptions) -> io::Result<Self> {
        Self::open_at_version(opts, 1)
    }

    fn open_at_version(opts: MemDbOptions, version: u64) -> io::Result<Self> {
        let store = match (&opts.durability, &opts.dir) {
            (Durability::Cpr | Durability::Calc, Some(dir)) => {
                let store = CheckpointStore::open_with(dir, opts.fault.clone())?;
                Some(store.with_metrics(Arc::clone(&opts.metrics)))
            }
            (Durability::Cpr | Durability::Calc, None) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "CPR/CALC durability requires a directory",
                ));
            }
            _ => None,
        };
        let wal = match (&opts.durability, &opts.dir) {
            (Durability::Wal, Some(dir)) => {
                std::fs::create_dir_all(dir)?;
                let gen = next_wal_generation(dir)?;
                Some(Wal::create_with(
                    dir.join(format!("wal.{gen}.log")),
                    opts.wal_capacity,
                    opts.group_commit,
                    opts.fault.clone(),
                )?)
            }
            (Durability::Wal, None) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "WAL durability requires a directory",
                ));
            }
            _ => None,
        };
        let commit_log = matches!(opts.durability, Durability::Calc)
            .then(|| CommitLog::new(opts.commit_log_capacity));

        let inner = Arc::new(DbInner {
            table: Table::new(opts.capacity),
            state: SystemState::at_version(version),
            registry: SessionRegistry::new(opts.max_sessions),
            epoch: Arc::new(EpochManager::new(opts.max_sessions + 8)),
            committed_version: AtomicU64::new(version.saturating_sub(1)),
            commit_lock: Mutex::new(()),
            commit_cv: Condvar::new(),
            store,
            commit_log,
            wal,
            capture_tx: Mutex::new(None),
            capture_thread: Mutex::new(None),
            watchdog_thread: Mutex::new(None),
            capture_abort: AtomicBool::new(false),
            outcome: Mutex::new(CommitOutcome::default()),
            merged_stats: Mutex::new(ClientStats::default()),
            checkpoint_failures: AtomicU64::new(0),
            last_capture: Mutex::new(None),
            last_capture_token: Mutex::new(None),
            durable_points: Mutex::new(HashMap::new()),
            detached: DetachedSessions::new(),
            commit_callbacks: Mutex::new(Vec::new()),
            opts,
        });

        if inner.opts.metrics.is_enabled() {
            inner.epoch.set_metrics(Arc::clone(&inner.opts.metrics));
        }

        if inner.store.is_some() {
            let (tx, rx) = crossbeam::channel::unbounded::<u64>();
            // Weak: the capture thread must not keep the database alive.
            let worker = Arc::downgrade(&inner);
            let handle = std::thread::Builder::new()
                .name("cpr-memdb-capture".into())
                .spawn(move || {
                    for version in rx {
                        let Some(inner) = worker.upgrade() else { break };
                        checkpoint::capture(&inner, version);
                    }
                })
                .expect("spawn capture thread");
            *inner.capture_tx.lock() = Some(tx);
            *inner.capture_thread.lock() = Some(handle);

            if let Some(cfg) = inner.opts.liveness.clone() {
                let weak = Arc::downgrade(&inner);
                let handle = std::thread::Builder::new()
                    .name("cpr-memdb-watchdog".into())
                    .spawn(move || crate::watchdog::run(weak, cfg))
                    .expect("spawn watchdog thread");
                *inner.watchdog_thread.lock() = Some(handle);
            }
        }
        Ok(MemDb { inner })
    }

    /// Recover from the newest committed checkpoint (CPR/CALC) or by
    /// replaying the redo log (WAL). Returns the manifest used, if any.
    #[deprecated(
        since = "0.2.0",
        note = "use `MemDb::builder(durability)…recover()` instead"
    )]
    pub fn recover(opts: MemDbOptions) -> io::Result<(Self, Option<CheckpointManifest>)> {
        Self::recover_inner(opts)
    }

    fn recover_inner(opts: MemDbOptions) -> io::Result<(Self, Option<CheckpointManifest>)> {
        match opts.durability {
            Durability::Cpr | Durability::Calc => {
                let dir = opts.dir.clone().ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidInput, "recover requires dir")
                })?;
                // Route recovery reads through the fault injector (when
                // set) so crash-schedule tests can kill recovery itself.
                let store = CheckpointStore::open_with(&dir, opts.fault.clone())?;
                let Some(manifest) =
                    store.latest_matching(|m| m.kind == CheckpointKind::Database)?
                else {
                    return Ok((Self::open_at_version(opts, 1)?, None));
                };
                // Collect the delta chain back to its full base, then
                // apply it oldest → newest.
                let mut chain = vec![manifest.clone()];
                while let Some(base) = chain.last().unwrap().base {
                    chain.push(store.manifest(base)?);
                }
                let db = Self::open_at_version(opts, manifest.version + 1)?;
                for m in chain.iter().rev() {
                    checkpoint::load(&db.inner, &store, m)?;
                }
                *db.inner.last_capture_token.lock() = Some(manifest.token);
                // Seed the durable commit points so resumed sessions learn
                // their recovered prefix (paper Sec. 2's per-session
                // contract).
                *db.inner.durable_points.lock() = manifest
                    .sessions
                    .iter()
                    .map(|s| (s.guid, s.cpr_point))
                    .collect();
                Ok((db, Some(manifest)))
            }
            Durability::Wal => {
                let dir = opts.dir.clone().ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidInput, "recover requires dir")
                })?;
                // Collect existing generations *before* opening (which
                // creates the next generation's file).
                let gens = wal_generations(&dir)?;
                let db = Self::open_at_version(opts, 1)?;
                for gen in gens {
                    checkpoint::replay_wal(&db.inner, &dir.join(format!("wal.{gen}.log")))?;
                }
                Ok((db, None))
            }
            Durability::None => Ok((Self::open_at_version(opts, 1)?, None)),
        }
    }

    /// Pre-load a record (panics on duplicate key).
    pub fn load(&self, key: u64, value: V) {
        self.inner
            .table
            .insert(key, self.inner.state.version(), value);
    }

    /// Pre-load unless present (used when re-seeding after recovery).
    pub fn load_if_absent(&self, key: u64, value: V) {
        if self.inner.table.get(key).is_none() {
            // Benign race with another loader: `insert` would panic, so go
            // through the tolerant path and initialize via a write.
            let version = self.inner.state.version();
            let (rec, _) = self.inner.table.get_or_insert(key, version, value);
            if rec.birth() == 0 {
                loop {
                    if rec.lock.try_exclusive() {
                        break;
                    }
                    std::hint::spin_loop();
                }
                if rec.birth() == 0 {
                    rec.write_live(value);
                    rec.set_birth_if_unset(version);
                }
                rec.lock.release_exclusive();
            }
        }
    }

    /// Number of records (including uninitialized placeholders).
    pub fn len(&self) -> usize {
        self.inner.table.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Open a client session. `guid` identifies the session across crashes
    /// (paper Sec. 5.2).
    pub fn session(&self, guid: u64) -> Session<V> {
        Session::new(Arc::clone(&self.inner), guid, 0)
    }

    /// Re-establish a session by guid: returns the session and the serial
    /// it should resume from. If the guid detached while this database
    /// stayed up (client reconnect, no crash), that is its last accepted
    /// serial — nothing was lost. Otherwise it is the guid's commit point
    /// from the recovery manifest: every later serial must be re-issued
    /// (the CPR resume contract, paper Sec. 2).
    pub fn continue_session(&self, guid: u64) -> (Session<V>, u64) {
        let serial = self
            .inner
            .detached
            .last_serial(guid)
            .or_else(|| self.inner.durable_points.lock().get(&guid).copied())
            .unwrap_or(0);
        (Session::new(Arc::clone(&self.inner), guid, serial), serial)
    }

    /// The guid's durable commit point: the serial below which every op is
    /// guaranteed recovered after a crash right now.
    pub fn durable_point(&self, guid: u64) -> u64 {
        self.inner.durable_points.lock().get(&guid).copied().unwrap_or(0)
    }

    /// Register a commit observer: called with the committed version and
    /// every session's CPR point after each durable commit. Runs on the
    /// capture thread — keep it brief.
    pub fn on_commit(
        &self,
        callback: impl Fn(u64, &[cpr_core::SessionCpr]) + Send + Sync + 'static,
    ) {
        self.inner.commit_callbacks.lock().push(Box::new(callback));
    }

    /// Full scan: every live `(key, value)` pair, sorted by key. Takes
    /// each record's shared lock briefly; intended for quiescent use
    /// (verification and serving scans), not the transaction hot path.
    pub fn scan_all(&self) -> Vec<(u64, V)> {
        let mut out = Vec::with_capacity(self.len());
        self.inner.table.for_each(|key, rec| {
            loop {
                if rec.lock.try_shared() {
                    break;
                }
                std::hint::spin_loop();
            }
            if rec.birth() != 0 && !rec.is_dead() {
                out.push((key, rec.read_live()));
            }
            rec.lock.release_shared();
        });
        out.sort_unstable_by_key(|&(k, _)| k);
        out
    }

    /// Read a record's live value (spins briefly for a shared lock).
    /// Returns `None` for absent or never-written keys.
    pub fn read(&self, key: u64) -> Option<V> {
        let rec = self.inner.table.get(key)?;
        loop {
            if rec.lock.try_shared() {
                break;
            }
            std::hint::spin_loop();
        }
        let out = (rec.birth() != 0 && !rec.is_dead()).then(|| rec.read_live());
        rec.lock.release_shared();
        out
    }

    /// Request a CPR/CALC commit (returns `false` if one is already in
    /// flight) or force a WAL group-commit flush.
    ///
    /// The commit proceeds asynchronously: worker threads realize the
    /// phase transitions as they refresh their epochs, and the version-`v`
    /// snapshot is captured and persisted in the background. Use
    /// [`MemDb::wait_for_version`] to await completion.
    pub fn request_commit(&self) -> bool {
        match self.inner.opts.durability {
            Durability::None => false,
            Durability::Wal => {
                self.inner.wal.as_ref().expect("wal").sync();
                let _g = self.inner.commit_lock.lock();
                self.inner.commit_cv.notify_all();
                true
            }
            Durability::Cpr | Durability::Calc => {
                if !start_commit(&self.inner) {
                    return false;
                }
                *self.inner.outcome.lock() = CommitOutcome {
                    attempts: 1,
                    ..CommitOutcome::default()
                };
                true
            }
        }
    }

    /// Version of the newest durable checkpoint
    /// ([`CheckpointVersion::NONE`] = none yet).
    pub fn committed_version(&self) -> CheckpointVersion {
        CheckpointVersion(self.inner.committed_version.load(Ordering::Acquire))
    }

    /// Number of checkpoint attempts that failed on I/O and were aborted
    /// (no manifest committed; sessions returned to rest).
    pub fn checkpoint_failures(&self) -> u64 {
        self.inner.checkpoint_failures.load(Ordering::Acquire)
    }

    /// Current (phase, version) of the commit state machine.
    pub fn state(&self) -> (Phase, u64) {
        self.inner.state.load()
    }

    /// Block until the checkpoint of `version` is durable. Requires
    /// worker sessions to keep refreshing (or none to be registered).
    /// Returns `false` on timeout.
    pub fn wait_for_version(&self, version: impl Into<CheckpointVersion>, timeout: Duration) -> bool {
        let version = version.into();
        let deadline = Instant::now() + timeout;
        let mut g = self.inner.commit_lock.lock();
        while self.committed_version() < version {
            // Nudge the drain list in case no session is refreshing.
            self.inner.epoch.try_drain();
            if Instant::now() >= deadline {
                return false;
            }
            self.inner
                .commit_cv
                .wait_for(&mut g, Duration::from_millis(1));
        }
        true
    }

    /// Request a commit and wait for its outcome.
    ///
    /// Succeeds once *a* checkpoint covering version `v` (the version at
    /// request time) is durable — if the watchdog aborted and retried, the
    /// durable version may be higher, and its checkpoint includes `v`'s
    /// prefix. Fails with [`CommitError::TimedOut`] when the deadline
    /// passes or the watchdog exhausts its retry budget; the error names
    /// the sessions blocking the commit at that moment.
    pub fn commit_and_wait(&self, timeout: Duration) -> Result<CommitOutcome, CommitError> {
        if !matches!(
            self.inner.opts.durability,
            Durability::Cpr | Durability::Calc
        ) {
            self.request_commit();
            return Ok(CommitOutcome {
                attempts: 1,
                ..CommitOutcome::default()
            });
        }
        let v = self.inner.state.version();
        if !self.request_commit() {
            return Err(CommitError::NotStarted);
        }
        let deadline = Instant::now() + timeout;
        let mut g = self.inner.commit_lock.lock();
        loop {
            if self.committed_version() >= v {
                let mut out = self.inner.outcome.lock();
                out.committed_version = Some(self.committed_version());
                return Ok(out.clone());
            }
            let gave_up = self.inner.outcome.lock().gave_up;
            if gave_up || Instant::now() >= deadline {
                let (phase, _) = self.inner.state.load();
                return Err(CommitError::TimedOut {
                    version: v.into(),
                    phase,
                    blockers: self.straggler_guids(),
                });
            }
            // Nudge the drain list in case no session is refreshing.
            self.inner.epoch.try_drain();
            self.inner
                .commit_cv
                .wait_for(&mut g, Duration::from_millis(1));
        }
    }

    /// Outcome of the in-flight (or most recent) supervised commit.
    pub fn last_commit_outcome(&self) -> CommitOutcome {
        self.inner.outcome.lock().clone()
    }

    /// The sessions currently holding a commit back: phase blockers while
    /// sessions gate the transition, expired leases otherwise (capture
    /// wedged behind a straggler's latches, or the watchdog gave up).
    fn straggler_guids(&self) -> Vec<SessionId> {
        let (phase, v) = self.inner.state.load();
        if matches!(phase, Phase::Prepare | Phase::InProgress) {
            return self
                .inner
                .registry
                .blockers(phase, v)
                .into_iter()
                .map(|(_, guid)| guid)
                .collect();
        }
        let Some(cfg) = &self.inner.opts.liveness else {
            return Vec::new();
        };
        let now = cfg.clock.now();
        let reg = &self.inner.registry;
        (0..reg.capacity())
            .filter_map(|i| {
                let guid = reg.guid(i)?;
                (now.saturating_sub(reg.last_heartbeat(i)) > cfg.grace_ticks
                    && reg.status(i) != SessionStatus::Evicted)
                    .then_some(guid)
            })
            .collect()
    }

    /// Aggregated statistics from dropped sessions.
    pub fn stats(&self) -> ClientStats {
        self.inner.merged_stats.lock().clone()
    }

    /// Wall-clock duration of the most recent capture pass.
    pub fn last_capture_duration(&self) -> Option<Duration> {
        *self.inner.last_capture.lock()
    }

    /// WAL durable horizon in bytes (WAL mode only).
    pub fn wal_durable_bytes(&self) -> Option<u64> {
        self.inner.wal.as_ref().map(|w| w.durable())
    }

    /// Snapshot of the metrics registry this database reports into:
    /// operation counters and commit-latency percentiles, checkpoint
    /// phase timelines, epoch drain latencies, and storage totals.
    ///
    /// Meaningful only when the database was built with an enabled
    /// [`cpr_metrics::Registry`]; with the default no-op sink the report
    /// is empty and flagged `enabled: false`.
    pub fn metrics_snapshot(&self) -> MetricsReport {
        let mut report = self.inner.opts.metrics.snapshot();
        if let Some(injector) = &self.inner.opts.fault {
            report.storage.faults_injected = injector.fault_hits();
        }
        report
    }
}

/// Checkpoint-kind label used by the metrics phase tracer.
pub(crate) fn ckpt_kind_label<V: DbValue>(inner: &DbInner<V>) -> &'static str {
    match (inner.opts.durability, inner.opts.incremental) {
        (Durability::Cpr, true) => "cpr-incremental",
        (Durability::Cpr, false) => "cpr",
        (Durability::Calc, _) => "calc",
        _ => "wal",
    }
}

/// Kick off the CPR/CALC commit state machine at the current version.
/// Shared by [`MemDb::request_commit`] and the watchdog's retries.
pub(crate) fn start_commit<V: DbValue>(inner: &Arc<DbInner<V>>) -> bool {
    let v = inner.state.version();
    if !inner.state.transition((Phase::Rest, v), (Phase::Prepare, v)) {
        return false;
    }
    let metrics_on = inner.opts.metrics.is_enabled();
    if metrics_on {
        inner.opts.metrics.checkpoints.begin(v, ckpt_kind_label(inner));
    }
    let cond = {
        let inner = Arc::clone(inner);
        move || {
            let ready = inner.registry.all_at_least(Phase::Prepare, v);
            if !ready && metrics_on {
                if let Some((_, guid)) = inner.registry.first_blocker(Phase::Prepare, v) {
                    inner.opts.metrics.checkpoints.note_blocker(guid);
                }
            }
            ready
        }
    };
    let action = {
        let inner = Arc::clone(inner);
        move || prepare_to_inprog(inner, v)
    };
    inner
        .epoch
        .bump_epoch(Some(Box::new(cond)), Box::new(action));
    true
}

fn prepare_to_inprog<V: DbValue>(inner: Arc<DbInner<V>>, v: u64) {
    // A failed transition means the watchdog timed this checkpoint out
    // (aborted to rest at v + 1) before the trigger fired: stand down and
    // let the retry start a fresh state machine.
    if !inner
        .state
        .transition((Phase::Prepare, v), (Phase::InProgress, v))
    {
        return;
    }
    let metrics_on = inner.opts.metrics.is_enabled();
    if metrics_on {
        inner.opts.metrics.checkpoints.mark(v, "in-progress");
    }
    let epoch = Arc::clone(&inner.epoch);
    let cond_inner = Arc::clone(&inner);
    let cond = move || {
        let ready = cond_inner.registry.all_at_least(Phase::InProgress, v);
        if !ready && metrics_on {
            if let Some((_, guid)) = cond_inner.registry.first_blocker(Phase::InProgress, v) {
                cond_inner.opts.metrics.checkpoints.note_blocker(guid);
            }
        }
        ready
    };
    let action = move || inprog_to_waitflush(inner, v);
    epoch.bump_epoch(Some(Box::new(cond)), Box::new(action));
}

fn inprog_to_waitflush<V: DbValue>(inner: Arc<DbInner<V>>, v: u64) {
    if !inner
        .state
        .transition((Phase::InProgress, v), (Phase::WaitFlush, v))
    {
        return; // checkpoint aborted by the watchdog
    }
    if inner.opts.metrics.is_enabled() {
        inner.opts.metrics.checkpoints.mark(v, "wait-flush");
    }
    if let Some(tx) = inner.capture_tx.lock().as_ref() {
        tx.send(v).expect("capture thread alive");
    }
}

fn wal_generations(dir: &std::path::Path) -> io::Result<Vec<u64>> {
    let mut gens = Vec::new();
    if dir.exists() {
        for entry in std::fs::read_dir(dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str().map(str::to_owned) else {
                continue;
            };
            if let Some(rest) = name.strip_prefix("wal.") {
                if let Some(gen) = rest.strip_suffix(".log") {
                    if let Ok(g) = gen.parse::<u64>() {
                        gens.push(g);
                    }
                }
            }
        }
    }
    gens.sort_unstable();
    Ok(gens)
}

fn next_wal_generation(dir: &std::path::Path) -> io::Result<u64> {
    Ok(wal_generations(dir)?.last().map_or(0, |g| g + 1))
}

impl<V: DbValue> Drop for DbInner<V> {
    fn drop(&mut self) {
        // Close the capture channel, then join the workers.
        self.capture_tx.lock().take();
        for slot in [&self.capture_thread, &self.watchdog_thread] {
            if let Some(h) = slot.lock().take() {
                // The final Arc may be dropped *by a worker itself* (each
                // upgrades its Weak per job); never join our own thread.
                if h.thread().id() != std::thread::current().id() {
                    let _ = h.join();
                }
            }
        }
    }
}
