//! The session liveness watchdog (paper Sec. 3's "all threads must
//! participate" assumption, made safe against threads that don't).
//!
//! CPR's group commit advances only when every registered session has
//! refreshed into the current phase, so one preempted, parked, or dead
//! client thread wedges the checkpoint forever. While a commit is in
//! flight, this thread scans session leases and acts on stragglers whose
//! heartbeat has gone stale for longer than the grace period:
//!
//! | straggler is…                  | action                              |
//! |--------------------------------|-------------------------------------|
//! | idle between transactions      | proxy-advance: publish its phase    |
//! |                                | state (and CPR point) on its behalf |
//! | parked inside a transaction,   | evict: the session dies, its        |
//! | before acquiring locks         | committed prefix stays exact        |
//! | holding 2PL locks              | abort the checkpoint, back off,     |
//! |                                | retry (bounded by `max_attempts`)   |
//!
//! **Two-scan rule.** A stale session is first *suspended* (scan N) and
//! only acted upon at a later scan if its lease is still stale — a session
//! merely observed mid-transition gets a full poll interval to show life.
//!
//! **Why eviction is only safe pre-lock.** The owner publishes its busy
//! state with sequentially consistent stores and re-checks its status
//! (also SeqCst) *after* acquiring locks and *before* applying any write
//! (`client.rs`). If this watchdog evicts while `busy == InTxn`, the
//! owner's next status check — which precedes its first write — observes
//! the eviction and abandons the transaction, so an evicted session can
//! never grow the database past its published CPR point. A session seen
//! `Locking` may already be past that check, mid-apply; the only safe
//! remedy is timing the whole checkpoint out.
//!
//! Every scan also releases the epoch-table slots of stale sessions
//! ([`cpr_epoch::EpochManager::release_stale`]): a parked thread pins the
//! safe epoch, which blocks the drain-list triggers that drive the phase
//! transitions even when no session blocks the phase logically.

use std::sync::atomic::Ordering;
use std::sync::{Arc, Weak};

use cpr_core::liveness::{BusyState, LivenessConfig, SessionStatus};
use cpr_core::Phase;

use crate::db::{start_commit, DbInner};
use crate::value::DbValue;

pub(crate) fn run<V: DbValue>(weak: Weak<DbInner<V>>, cfg: LivenessConfig) {
    let mut rng = cfg.seed | 1;
    // Clock tick at which an abort's scheduled retry may be issued.
    let mut retry_at: Option<u64> = None;
    loop {
        std::thread::sleep(cfg.poll_interval);
        let Some(db) = weak.upgrade() else { return };
        scan(&db, &cfg, &mut rng, &mut retry_at);
    }
}

fn scan<V: DbValue>(
    db: &Arc<DbInner<V>>,
    cfg: &LivenessConfig,
    rng: &mut u64,
    retry_at: &mut Option<u64>,
) {
    let now = cfg.clock.now();
    let (phase, v) = db.state.load();

    if phase == Phase::Rest {
        if let Some(at) = *retry_at {
            if now >= at {
                *retry_at = None;
                if start_commit(db) {
                    db.outcome.lock().attempts += 1;
                }
            }
        }
        return;
    }

    // A commit is in flight: nudge the drain list and examine leases.
    db.epoch.try_drain();

    let reg = &db.registry;
    let blockers: Vec<usize> = if matches!(phase, Phase::Prepare | Phase::InProgress) {
        reg.blockers(phase, v).into_iter().map(|(i, _)| i).collect()
    } else {
        Vec::new()
    };

    let mut abort_wanted = false;
    for idx in 0..reg.capacity() {
        let Some(guid) = reg.guid(idx) else { continue };
        if now.saturating_sub(reg.last_heartbeat(idx)) <= cfg.grace_ticks {
            continue; // lease is fresh
        }
        match reg.status(idx) {
            SessionStatus::Active => {
                // Scan N: suspend only (two-scan rule).
                reg.try_suspend(idx);
            }
            SessionStatus::Evicted | SessionStatus::Proxying => {}
            SessionStatus::Suspended => {
                // Scan N+1: still stale — act. Whatever we decide, unpin
                // the straggler's epoch slot so triggers can fire.
                if let Some(slot) = reg.epoch_slot(idx) {
                    db.epoch.release_stale(slot);
                }
                let is_blocker = blockers.contains(&idx);
                match reg.busy(idx) {
                    BusyState::Idle if is_blocker => proxy_advance(db, idx, guid, v),
                    BusyState::InTxn if is_blocker && reg.try_evict(idx) => {
                        // Claim exactly the straggler's completed
                        // transactions: its serial bumps only on
                        // success, and — being a blocker — it has not
                        // crossed into in-progress, so every completed
                        // operation is a version-v (or older) write
                        // that the capture will persist.
                        reg.set_cpr_point(idx, reg.serial(idx));
                        db.outcome.lock().evicted.push(guid);
                    }
                    BusyState::Locking => {
                        // Stalled while holding locks: no per-session
                        // remedy is safe — time the checkpoint out.
                        abort_wanted = true;
                    }
                    _ => {}
                }
            }
        }
    }

    if abort_wanted {
        abort_checkpoint(db, cfg, rng, retry_at, phase, v, now);
    }
    db.epoch.try_drain();
}

/// Publish phase state on behalf of an idle, suspended straggler. The
/// Suspended → Proxying CAS is the publish lock: the owner cannot
/// reactivate (and thus cannot run transactions or re-publish) until
/// `end_proxy`, so the state and CPR point we publish cannot be stale by
/// the time they land.
fn proxy_advance<V: DbValue>(db: &Arc<DbInner<V>>, idx: usize, guid: u64, v: u64) {
    let reg = &db.registry;
    if !reg.try_begin_proxy(idx) {
        return; // owner resumed (or another decision won) meanwhile
    }
    // Re-sample everything under the proxy lock.
    let (phase, cur_v) = db.state.load();
    if cur_v == v && matches!(phase, Phase::Prepare | Phase::InProgress) {
        let (ps, vs) = reg.view(idx);
        let reached = vs > v || (vs == v && ps >= phase);
        if !reached {
            // Mark the CPR point iff this publish crosses the session
            // over prepare → in-progress for version v.
            let mark = phase >= Phase::InProgress && (vs < v || ps <= Phase::Prepare);
            reg.proxy_advance(idx, phase, v, mark);
            let mut out = db.outcome.lock();
            if !out.proxy_advanced.contains(&guid) {
                out.proxy_advanced.push(guid);
            }
        }
    }
    reg.end_proxy(idx);
}

/// Time the in-flight checkpoint out: return the state machine to rest at
/// `v + 1` (directly, or via the capture thread's abort path when the
/// capture owns the transition) and schedule a backed-off retry.
fn abort_checkpoint<V: DbValue>(
    db: &Arc<DbInner<V>>,
    cfg: &LivenessConfig,
    rng: &mut u64,
    retry_at: &mut Option<u64>,
    phase: Phase,
    v: u64,
    now: u64,
) {
    let aborted = match phase {
        Phase::Prepare | Phase::InProgress => {
            db.state.transition((phase, v), (Phase::Rest, v + 1))
        }
        // The capture thread owns the WaitFlush → Rest transition: request
        // an abort and let its failure path complete it. `swap` keeps a
        // still-pending request from being counted twice.
        Phase::WaitFlush => !db.capture_abort.swap(true, Ordering::AcqRel),
        _ => false,
    };
    if !aborted {
        return;
    }
    let mut out = db.outcome.lock();
    out.aborted += 1;
    if matches!(phase, Phase::Prepare | Phase::InProgress) && db.opts.metrics.is_enabled() {
        // The capture thread never runs for this attempt, so close the
        // tracer's timeline here (WaitFlush aborts end via the capture
        // thread's failure path).
        db.opts.metrics.checkpoints.end(
            v,
            false,
            out.attempts as u64,
            out.proxy_advanced.len() as u64,
            out.evicted.len() as u64,
        );
    }
    if out.attempts >= cfg.max_attempts {
        out.gave_up = true;
        *retry_at = None;
    } else {
        *retry_at = Some(now + cfg.backoff_ticks(out.attempts, rng));
    }
    drop(out);
    db.commit_cv.notify_all();
}
