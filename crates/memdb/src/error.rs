//! Transaction abort and commit error reasons.

use cpr_core::{CheckpointVersion, Phase, SessionId};

/// Why a transaction aborted. The executor never blocks: under No-Wait
/// 2PL every conflict is an immediate abort, and during a CPR commit a
/// thread may abort at most one transaction per commit (paper Sec. 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Abort {
    /// Lock conflict (No-Wait): retry later.
    Conflict,
    /// The transaction touched a record already shifted to the next
    /// version while this thread was still in `prepare`. The client's
    /// thread-local state has been refreshed; an immediate retry executes
    /// in the new phase.
    CprShift,
    /// The watchdog evicted this session (lease expired mid-transaction).
    /// The transaction was not applied, and no further operations are
    /// accepted: open a fresh session to continue.
    SessionEvicted,
}

impl std::fmt::Display for Abort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Abort::Conflict => f.write_str("lock conflict (no-wait)"),
            Abort::CprShift => f.write_str("CPR version shift detected"),
            Abort::SessionEvicted => f.write_str("session evicted by the liveness watchdog"),
        }
    }
}

impl std::error::Error for Abort {}

/// Why a requested commit did not (or could not) complete.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CommitError {
    /// A commit was already in flight (or durability is off).
    NotStarted,
    /// The commit missed its deadline. `blockers` names the sessions
    /// holding the current phase back at the time of the timeout — the
    /// stragglers a caller would investigate or tear down.
    TimedOut {
        version: CheckpointVersion,
        phase: Phase,
        blockers: Vec<SessionId>,
    },
}

impl std::fmt::Display for CommitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommitError::NotStarted => f.write_str("commit not started (already in flight?)"),
            CommitError::TimedOut {
                version,
                phase,
                blockers,
            } => write!(
                f,
                "commit of {version} timed out in phase {phase}; blockers: {blockers:?}"
            ),
        }
    }
}

impl std::error::Error for CommitError {}

/// Why recovery could not complete. Recovery (checkpoint load and WAL
/// replay) must be the only writer of the fresh table it is populating;
/// a record found locked means another thread is mutating the database
/// mid-recovery, and the load surfaces that as an error instead of
/// asserting.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RecoveryError {
    /// A record was exclusively locked while recovery tried to write it.
    RecordLocked { key: u64 },
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::RecordLocked { key } => write!(
                f,
                "record {key} is locked: recovery must be the only writer"
            ),
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<RecoveryError> for std::io::Error {
    fn from(e: RecoveryError) -> Self {
        std::io::Error::other(e)
    }
}
