//! Transaction abort reasons.

/// Why a transaction aborted. The executor never blocks: under No-Wait
/// 2PL every conflict is an immediate abort, and during a CPR commit a
/// thread may abort at most one transaction per commit (paper Sec. 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Abort {
    /// Lock conflict (No-Wait): retry later.
    Conflict,
    /// The transaction touched a record already shifted to the next
    /// version while this thread was still in `prepare`. The client's
    /// thread-local state has been refreshed; an immediate retry executes
    /// in the new phase.
    CprShift,
}

impl std::fmt::Display for Abort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Abort::Conflict => f.write_str("lock conflict (no-wait)"),
            Abort::CprShift => f.write_str("CPR version shift detected"),
        }
    }
}

impl std::error::Error for Abort {}
