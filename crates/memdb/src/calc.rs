//! The CALC baseline's *atomic commit log* (paper Secs. 1, 2, 7).
//!
//! CALC [Ren et al., SIGMOD '16] determines its virtual point of
//! consistency by recording **every transaction commit** in a single
//! atomic log. The append — a fetch-add on the shared tail plus a slot
//! store — is the serial bottleneck the CPR paper measures as "Tail
//! Contention" (Fig. 10e). Our CALC backend executes this append on every
//! commit; the checkpoint capture itself reuses the same stable/live
//! mechanics as CPR (see DESIGN.md for the documented simplification).

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam_utils::CachePadded;

/// Fixed-capacity ring of commit records (transaction ids).
///
/// The ring wraps: CALC only needs the log to *order* commits relative to
/// the consistency point, not to retain history, so old entries may be
/// overwritten. What matters for the benchmark is the per-commit atomic
/// append cost.
#[derive(Debug)]
pub struct CommitLog {
    tail: CachePadded<AtomicU64>,
    slots: Box<[AtomicU64]>,
    mask: u64,
}

impl CommitLog {
    pub fn new(capacity: usize) -> Self {
        let n = capacity.next_power_of_two().max(1024);
        CommitLog {
            tail: CachePadded::new(AtomicU64::new(0)),
            slots: (0..n).map(|_| AtomicU64::new(0)).collect::<Vec<_>>().into(),
            mask: (n - 1) as u64,
        }
    }

    /// Append a commit record; returns its LSN. This is the measured
    /// serial bottleneck: all threads contend on `tail`.
    #[inline]
    pub fn append(&self, txn_id: u64) -> u64 {
        let lsn = self.tail.fetch_add(1, Ordering::AcqRel);
        self.slots[(lsn & self.mask) as usize].store(txn_id, Ordering::Release);
        lsn
    }

    /// Current tail (the LSN the next append will receive).
    pub fn tail(&self) -> u64 {
        self.tail.load(Ordering::Acquire)
    }

    /// Read the entry at `lsn` (valid only while not yet overwritten).
    pub fn read(&self, lsn: u64) -> u64 {
        self.slots[(lsn & self.mask) as usize].load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn appends_get_sequential_lsns() {
        let log = CommitLog::new(16);
        assert_eq!(log.append(100), 0);
        assert_eq!(log.append(101), 1);
        assert_eq!(log.read(0), 100);
        assert_eq!(log.read(1), 101);
        assert_eq!(log.tail(), 2);
    }

    #[test]
    fn ring_wraps_without_panic() {
        let log = CommitLog::new(4); // rounds up to 1024
        for i in 0..5000u64 {
            log.append(i);
        }
        assert_eq!(log.tail(), 5000);
    }

    #[test]
    fn concurrent_appends_unique_lsns() {
        let log = Arc::new(CommitLog::new(1 << 16));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    (0..1000)
                        .map(|i| log.append(t * 1000 + i))
                        .collect::<Vec<u64>>()
                })
            })
            .collect();
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000, "LSNs must be unique");
        assert_eq!(log.tail(), 4000);
    }
}
