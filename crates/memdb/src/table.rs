//! A concurrent chained hash table from `u64` keys to [`Record`]s.
//!
//! The table supports lock-free lookup and insert (CAS push-front on the
//! bucket head); records are never removed while the table is alive. This
//! matches the paper's setting: data is pre-loaded, and the only runtime
//! inserts come from TPC-C order/order-line rows.

use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};

use cpr_core::Pod;

use crate::record::Record;

struct Node<V: Pod> {
    key: u64,
    record: Record<V>,
    next: *mut Node<V>,
}

/// Concurrent hash table; see module docs.
pub struct Table<V: Pod> {
    buckets: Box<[AtomicPtr<Node<V>>]>,
    mask: u64,
    len: AtomicUsize,
}

// SAFETY: nodes are immutable after publication except for their Record,
// which has its own synchronization; raw pointers are only freed in Drop.
unsafe impl<V: Pod> Send for Table<V> {}
unsafe impl<V: Pod> Sync for Table<V> {}

#[inline]
fn hash(key: u64) -> u64 {
    // Fibonacci / splitmix-style mix: cheap and adequate for u64 keys.
    let mut h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 32;
    h
}

impl<V: Pod> Table<V> {
    /// Create a table with at least `capacity_hint` buckets (rounded up to
    /// a power of two).
    pub fn new(capacity_hint: usize) -> Self {
        let n = capacity_hint.next_power_of_two().max(16);
        let buckets = (0..n)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Table {
            buckets,
            mask: (n - 1) as u64,
            len: AtomicUsize::new(0),
        }
    }

    #[inline]
    fn bucket(&self, key: u64) -> &AtomicPtr<Node<V>> {
        &self.buckets[(hash(key) & self.mask) as usize]
    }

    /// Find the record for `key`.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&Record<V>> {
        let mut cur = self.bucket(key).load(Ordering::Acquire);
        while !cur.is_null() {
            // SAFETY: published nodes are valid until the table drops.
            let node = unsafe { &*cur };
            if node.key == key {
                return Some(&node.record);
            }
            cur = node.next;
        }
        None
    }

    /// Get the record for `key`, inserting an *uninitialized* placeholder
    /// (at `version`) if absent — the record becomes visible to reads and
    /// checkpoints only once a committed write sets its birth version.
    /// Returns (record, inserted).
    pub fn get_or_insert(&self, key: u64, version: u64, default: V) -> (&Record<V>, bool) {
        self.get_or_insert_with(key, || Record::uninitialized(version, default))
    }

    fn get_or_insert_with(&self, key: u64, make: impl FnOnce() -> Record<V>) -> (&Record<V>, bool) {
        if let Some(r) = self.get(key) {
            return (r, false);
        }
        let bucket = self.bucket(key);
        let node = Box::into_raw(Box::new(Node {
            key,
            record: make(),
            next: std::ptr::null_mut(),
        }));
        loop {
            let head = bucket.load(Ordering::Acquire);
            // Re-scan from head in case a racing insert added our key.
            let mut cur = head;
            while !cur.is_null() {
                // SAFETY: published nodes are valid.
                let n = unsafe { &*cur };
                if n.key == key {
                    // Lost the race: free our node, return theirs.
                    // SAFETY: `node` was never published.
                    drop(unsafe { Box::from_raw(node) });
                    return (&n.record, false);
                }
                cur = n.next;
            }
            // SAFETY: we own `node` until it is published.
            unsafe { (*node).next = head };
            match bucket.compare_exchange(head, node, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => {
                    self.len.fetch_add(1, Ordering::Relaxed);
                    // SAFETY: just published; valid for table lifetime.
                    return (unsafe { &(*node).record }, true);
                }
                Err(_) => {
                    // Head moved; retry (node still unpublished and owned).
                    continue;
                }
            }
        }
    }

    /// Insert a fully initialized record (pre-load / recovery); panics on
    /// duplicate key.
    pub fn insert(&self, key: u64, version: u64, value: V) {
        let (_, inserted) = self.get_or_insert_with(key, || Record::new(version, value));
        assert!(inserted, "duplicate key {key}");
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Visit every (key, record). Iteration order is unspecified.
    pub fn for_each(&self, f: impl FnMut(u64, &Record<V>)) {
        self.for_each_in_buckets(0..self.buckets.len(), f);
    }

    /// Number of buckets — the shard boundaries for partitioned scans
    /// (see [`Table::for_each_in_buckets`]).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Visit every (key, record) chained off the buckets in `range`.
    /// Disjoint ranges visit disjoint records, so workers can scan them
    /// concurrently; concatenating the ranges `0..k`, `k..n` visits in
    /// exactly the [`Table::for_each`] order.
    pub fn for_each_in_buckets(
        &self,
        range: std::ops::Range<usize>,
        mut f: impl FnMut(u64, &Record<V>),
    ) {
        for b in self.buckets[range].iter() {
            let mut cur = b.load(Ordering::Acquire);
            while !cur.is_null() {
                // SAFETY: published nodes are valid.
                let node = unsafe { &*cur };
                f(node.key, &node.record);
                cur = node.next;
            }
        }
    }
}

impl<V: Pod> Drop for Table<V> {
    fn drop(&mut self) {
        for b in self.buckets.iter_mut() {
            let mut cur = *b.get_mut();
            while !cur.is_null() {
                // SAFETY: exclusive access in Drop; each node freed once.
                let node = unsafe { Box::from_raw(cur) };
                cur = node.next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn insert_then_get() {
        let t: Table<u64> = Table::new(8);
        t.insert(1, 1, 10);
        t.insert(2, 1, 20);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(1).map(|r| r.version()), Some(1));
        assert!(t.get(3).is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate key")]
    fn duplicate_insert_panics() {
        let t: Table<u64> = Table::new(8);
        t.insert(1, 1, 10);
        t.insert(1, 1, 11);
    }

    #[test]
    fn get_or_insert_returns_existing() {
        let t: Table<u64> = Table::new(8);
        t.insert(5, 1, 50);
        let (r, inserted) = t.get_or_insert(5, 9, 99);
        assert!(!inserted);
        assert_eq!(r.version(), 1, "existing record untouched");
    }

    #[test]
    fn colliding_keys_chain() {
        // Keys mapping to the same bucket (mask 15): craft via same low
        // hash bits by brute force.
        let t: Table<u64> = Table::new(16);
        for k in 0..1000u64 {
            t.insert(k, 1, k);
        }
        assert_eq!(t.len(), 1000);
        for k in 0..1000u64 {
            assert!(t.get(k).is_some(), "missing key {k}");
        }
    }

    #[test]
    fn for_each_visits_everything_once() {
        let t: Table<u64> = Table::new(4);
        for k in 0..100u64 {
            t.insert(k, 1, k * 2);
        }
        let mut seen = std::collections::HashSet::new();
        t.for_each(|k, _| {
            assert!(seen.insert(k));
        });
        assert_eq!(seen.len(), 100);
    }

    #[test]
    fn sharded_iteration_matches_for_each_order() {
        let t: Table<u64> = Table::new(8);
        for k in 0..200u64 {
            t.insert(k, 1, k);
        }
        let mut whole = Vec::new();
        t.for_each(|k, _| whole.push(k));
        let n = t.bucket_count();
        for shards in [1usize, 3, 8] {
            let mut pieced = Vec::new();
            for w in 0..shards {
                t.for_each_in_buckets(n * w / shards..n * (w + 1) / shards, |k, _| {
                    pieced.push(k)
                });
            }
            assert_eq!(pieced, whole, "{shards} shards");
        }
    }

    #[test]
    fn concurrent_get_or_insert_single_winner() {
        let t: Arc<Table<u64>> = Arc::new(Table::new(4));
        let inserted: usize = (0..8)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || t.get_or_insert(42, 1, 0).1 as usize)
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum();
        assert_eq!(inserted, 1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn concurrent_disjoint_inserts_all_land() {
        let t: Arc<Table<u64>> = Arc::new(Table::new(16));
        let handles: Vec<_> = (0..4u64)
            .map(|tid| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        t.insert(tid * 1000 + i, 1, i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 2000);
        for tid in 0..4u64 {
            for i in 0..500u64 {
                assert!(t.get(tid * 1000 + i).is_some());
            }
        }
    }
}
