//! Database records: a 2PL lock word, a version, and *live*/*stable*
//! value slots (paper Sec. 4.1).
//!
//! The CPR and CALC backends both keep two values per record. An optimal
//! CPR implementation needs only one (paper Sec. 7.1 keeps two for a
//! head-to-head comparison with CALC, and so do we).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};

use cpr_core::{NoWaitLock, Pod};

/// One database record.
///
/// # Safety discipline
/// `live` is read under a shared or exclusive lock and written only under
/// the exclusive lock. `stable` is written only under the exclusive lock
/// (during the version shift or a CALC pre-image copy) and read either
/// under any lock or — by the capture thread — under a shared lock after
/// re-checking `version`. Records are never deallocated while the table is
/// alive.
#[derive(Debug)]
pub struct Record<V: Pod> {
    pub lock: NoWaitLock,
    /// CPR database version of the record (paper: the integer stored with
    /// each record). For CALC this doubles as the "stable diverged at
    /// checkpoint epoch" mark.
    pub version: AtomicU64,
    /// Database version of the record's first committed write; 0 means
    /// "never written". Lets the capture pass exclude records inserted by
    /// post-CPR-point transactions (and ghosts left by aborted inserting
    /// transactions) from the version-`v` checkpoint. Written under the
    /// exclusive lock; read under any lock.
    birth: AtomicU64,
    /// Version of the most recent write to `live` (incremental
    /// checkpoints capture only records modified during the committing
    /// cycle). Written under the exclusive lock.
    modified: AtomicU64,
    /// `modified` as of the version shift — pairs with `stable` exactly
    /// as `modified` pairs with `live`.
    stable_modified: AtomicU64,
    /// Tombstone flag for `live` (1 = deleted). Deleted records keep their
    /// slot — the version-shift machinery needs the record to exist so
    /// deletes cross the live/stable path like writes do.
    dead: AtomicU64,
    /// `dead` as of the version shift — pairs with `stable`.
    stable_dead: AtomicU64,
    live: UnsafeCell<V>,
    stable: UnsafeCell<V>,
}

// SAFETY: access to the UnsafeCells follows the lock discipline documented
// on the struct; V: Pod implies V: Send + Sync + Copy.
unsafe impl<V: Pod> Sync for Record<V> {}
unsafe impl<V: Pod> Send for Record<V> {}

impl<V: Pod> Record<V> {
    /// A record whose content is already valid (pre-load / recovery):
    /// `birth` is set to `version`.
    pub fn new(version: u64, value: V) -> Self {
        Record {
            lock: NoWaitLock::new(),
            version: AtomicU64::new(version),
            birth: AtomicU64::new(version),
            modified: AtomicU64::new(version),
            stable_modified: AtomicU64::new(version),
            dead: AtomicU64::new(0),
            stable_dead: AtomicU64::new(0),
            live: UnsafeCell::new(value),
            stable: UnsafeCell::new(value),
        }
    }

    /// A placeholder created by a running transaction; it becomes visible
    /// to checkpoints and reads only after its first committed write sets
    /// `birth`.
    pub fn uninitialized(version: u64, value: V) -> Self {
        Record {
            lock: NoWaitLock::new(),
            version: AtomicU64::new(version),
            birth: AtomicU64::new(0),
            modified: AtomicU64::new(0),
            stable_modified: AtomicU64::new(0),
            dead: AtomicU64::new(0),
            stable_dead: AtomicU64::new(0),
            live: UnsafeCell::new(value),
            stable: UnsafeCell::new(value),
        }
    }

    /// Version of the first write (0 = never written).
    #[inline]
    pub fn birth(&self) -> u64 {
        self.birth.load(Ordering::Acquire)
    }

    /// Record the first-write version if not yet set. Caller must hold the
    /// exclusive lock.
    #[inline]
    pub fn set_birth_if_unset(&self, version: u64) {
        if self.birth.load(Ordering::Relaxed) == 0 {
            self.birth.store(version, Ordering::Release);
        }
    }

    /// Read the live value. Caller must hold the lock (shared or
    /// exclusive).
    #[inline]
    pub fn read_live(&self) -> V {
        // SAFETY: lock held per the struct discipline.
        unsafe { *self.live.get() }
    }

    /// Write the live value. Caller must hold the exclusive lock.
    #[inline]
    pub fn write_live(&self, v: V) {
        // SAFETY: exclusive lock held.
        unsafe { *self.live.get() = v }
    }

    /// Copy live → stable (the version-shift copy of Alg. 1 / CALC's
    /// pre-image materialization), along with its modified-version and
    /// tombstone tags. Caller must hold the exclusive lock.
    #[inline]
    pub fn copy_live_to_stable(&self) {
        // SAFETY: exclusive lock held.
        unsafe { *self.stable.get() = *self.live.get() }
        self.stable_modified
            .store(self.modified.load(Ordering::Relaxed), Ordering::Release);
        self.stable_dead
            .store(self.dead.load(Ordering::Relaxed), Ordering::Release);
    }

    /// Tombstone state of `live`. Read under any lock.
    #[inline]
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire) != 0
    }

    /// Set/clear the live tombstone. Caller must hold the exclusive lock.
    #[inline]
    pub fn set_dead(&self, dead: bool) {
        self.dead.store(dead as u64, Ordering::Release);
    }

    /// Tombstone state as captured at the last version shift.
    #[inline]
    pub fn stable_dead(&self) -> bool {
        self.stable_dead.load(Ordering::Acquire) != 0
    }

    /// Version of the most recent write to `live`.
    #[inline]
    pub fn modified(&self) -> u64 {
        self.modified.load(Ordering::Acquire)
    }

    /// `modified` as captured at the last version shift.
    #[inline]
    pub fn stable_modified(&self) -> u64 {
        self.stable_modified.load(Ordering::Acquire)
    }

    /// Tag a write to `live` with the transaction version. Caller must
    /// hold the exclusive lock.
    #[inline]
    pub fn set_modified(&self, version: u64) {
        self.modified.store(version, Ordering::Release);
    }

    /// Read the stable value. Caller must hold a lock and have verified
    /// `version` indicates the stable slot is the one to capture.
    #[inline]
    pub fn read_stable(&self) -> V {
        // SAFETY: see struct discipline.
        unsafe { *self.stable.get() }
    }

    #[inline]
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    #[inline]
    pub fn set_version(&self, v: u64) {
        self.version.store(v, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn shared_locks_stack() {
        let l = NoWaitLock::new();
        assert!(l.try_shared());
        assert!(l.try_shared());
        assert_eq!(l.shared_count(), 2);
        assert!(!l.try_exclusive(), "exclusive blocked by readers");
        l.release_shared();
        l.release_shared();
        assert!(l.try_exclusive());
    }

    #[test]
    fn exclusive_blocks_everything() {
        let l = NoWaitLock::new();
        assert!(l.try_exclusive());
        assert!(!l.try_shared());
        assert!(!l.try_exclusive());
        l.release_exclusive();
        assert!(l.try_shared());
    }

    #[test]
    fn record_value_roundtrip() {
        let r = Record::new(1, 7u64);
        assert!(r.lock.try_exclusive());
        r.write_live(99);
        assert_eq!(r.read_live(), 99);
        assert_eq!(r.read_stable(), 7, "stable untouched by live write");
        r.copy_live_to_stable();
        assert_eq!(r.read_stable(), 99);
        r.lock.release_exclusive();
    }

    #[test]
    fn version_updates() {
        let r = Record::new(3, 0u64);
        assert_eq!(r.version(), 3);
        r.set_version(4);
        assert_eq!(r.version(), 4);
    }

    #[test]
    fn lock_under_contention_grants_one_exclusive() {
        let l = Arc::new(NoWaitLock::new());
        let wins: usize = (0..8)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || l.try_exclusive() as usize)
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum();
        assert_eq!(wins, 1);
    }
}
