//! Client sessions and the transaction executor (paper Alg. 1).
//!
//! All transactions of a client are processed by one thread; a [`Session`]
//! is that thread's handle. It carries the thread-local view of the global
//! (phase, version), refreshed lazily via the epoch framework; avoiding
//! per-transaction synchronization of this state is the key to CPR's
//! scalability.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use cpr_core::liveness::{BusyState, Clock, SessionStatus};
use cpr_core::{Phase, SessionInfo};
use cpr_metrics::Registry;

use crate::db::{DbInner, Durability};
use crate::error::Abort;
use crate::record::Record;
use crate::stats::ClientStats;
use crate::value::DbValue;

/// Access mode, mirroring `cpr_workload::AccessType` without the
/// dependency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    Read,
    /// Blind write: the record takes `DbValue::from_seed(seed)`.
    Write,
    /// Read-modify-write: the record takes `old.merge(seed)` — atomic
    /// within the transaction (both lock and apply under 2PL).
    Merge,
    /// Tombstone the record: subsequent reads see it as absent. Consumes
    /// no write seed. The record slot survives so the delete crosses the
    /// live/stable version-shift path exactly like a write.
    Delete,
}

/// One transaction: unique keys with access modes, plus a value seed per
/// write (consumed in access order).
#[derive(Debug, Clone)]
pub struct TxnRequest<'a> {
    pub accesses: &'a [(u64, Access)],
    pub write_seeds: &'a [u64],
}

/// A client session (paper Sec. 5.2 applied to the transactional DB).
pub struct Session<V: DbValue> {
    db: Arc<DbInner<V>>,
    guard: cpr_epoch::Guard,
    slot: usize,
    guid: u64,
    /// Thread-local view of the global state machine.
    phase: Phase,
    version: u64,
    /// Serial number of the last *committed* transaction.
    serial: u64,
    ops_since_refresh: u64,
    /// CPR points awaiting durability: (db version, serial at point).
    pending_points: VecDeque<(u64, u64)>,
    durable_serial: u64,
    /// Lease clock, present iff the database runs a liveness watchdog.
    clock: Option<Arc<dyn Clock>>,
    /// Metrics sink (cached Arc + enabled flag so the hot path pays one
    /// branch, no pointer chase, when metrics are off).
    metrics: Arc<Registry>,
    metrics_on: bool,
    /// Cached "this session has been evicted" flag (set once, sticky).
    evicted: bool,
    /// Test hook: runs right after the session enters a transaction
    /// (busy = in-txn, before lock acquisition).
    pause_in_txn: Option<Box<dyn FnMut() + Send>>,
    /// Test hook: runs while the transaction's 2PL locks are held.
    pause_locked: Option<Box<dyn FnMut() + Send>>,
    pub stats: ClientStats,
}

impl<V: DbValue> Session<V> {
    pub(crate) fn new(db: Arc<DbInner<V>>, guid: u64, start_serial: u64) -> Self {
        let (phase, version) = db.state.load();
        let slot = db.registry.acquire(guid, phase, version);
        // Publish the resumed serial immediately: a checkpoint racing this
        // attach must see the session's true position, not a fresh 0.
        db.registry.set_serial(slot, start_serial);
        let mut guard = db.epoch.register();
        let clock = db.opts.liveness.as_ref().map(|l| Arc::clone(&l.clock));
        if let Some(c) = &clock {
            // Publish the epoch slot so the watchdog can reclaim it, stamp
            // the lease, and arm the thread-exit sentinel so a dying
            // client thread frees its epoch slot.
            db.registry.set_epoch_slot(slot, guard.slot());
            db.registry.heartbeat(slot, c.now());
            guard.arm_exit_sentinel();
        }
        let metrics = Arc::clone(&db.opts.metrics);
        let metrics_on = metrics.is_enabled();
        Session {
            db,
            guard,
            slot,
            guid,
            phase,
            version,
            serial: start_serial,
            ops_since_refresh: 0,
            pending_points: VecDeque::new(),
            durable_serial: start_serial,
            clock,
            metrics,
            metrics_on,
            evicted: false,
            pause_in_txn: None,
            pause_locked: None,
            stats: ClientStats::default(),
        }
    }

    /// Install a hook that runs at the start of every transaction, after
    /// the session is marked busy but before locks are taken. Test-only:
    /// lets liveness tests park a thread mid-transaction.
    #[doc(hidden)]
    pub fn set_pause_in_txn(&mut self, f: impl FnMut() + Send + 'static) {
        self.pause_in_txn = Some(Box::new(f));
    }

    /// Install a hook that runs while a transaction's locks are held.
    /// Test-only: lets liveness tests park a stalled lock holder.
    #[doc(hidden)]
    pub fn set_pause_locked(&mut self, f: impl FnMut() + Send + 'static) {
        self.pause_locked = Some(Box::new(f));
    }

    /// True once the watchdog has evicted this session.
    pub fn is_evicted(&self) -> bool {
        self.evicted
            || (self.clock.is_some()
                && self.db.registry.status(self.slot) == SessionStatus::Evicted)
    }

    pub fn guid(&self) -> u64 {
        self.guid
    }

    /// Serial number of the last committed transaction.
    pub fn serial(&self) -> u64 {
        self.serial
    }

    /// Thread-local (phase, version) view.
    #[deprecated(since = "0.2.0", note = "use `Session::info()` instead")]
    pub fn view(&self) -> (Phase, u64) {
        (self.phase, self.version)
    }

    /// Snapshot of this session's identity and thread-local state-machine
    /// view. Shares its shape with `cpr-faster`'s sessions.
    pub fn info(&self) -> SessionInfo {
        SessionInfo {
            guid: self.guid,
            serial: self.serial,
            phase: self.phase,
            version: self.version.into(),
        }
    }

    /// Publish the local epoch, adopt any global state change, and mark a
    /// CPR point when crossing prepare → in-progress (paper Alg. 1).
    pub fn refresh(&mut self) {
        self.guard.refresh();
        self.ops_since_refresh = 0;
        if let Some(c) = &self.clock {
            // Lease renewal: one relaxed store (plus one relaxed probe of
            // the sticky eviction flag) — the whole hot-path liveness cost.
            self.db.registry.heartbeat(self.slot, c.now());
            if self.evicted || self.db.registry.is_evicted(self.slot) {
                self.evicted = true;
                return;
            }
        }
        let (gp, gv) = self.db.state.load();
        if (gp, gv) == (self.phase, self.version) {
            return;
        }
        let crossed = self.phase <= Phase::Prepare
            && ((gv == self.version && gp >= Phase::InProgress) || gv > self.version);
        if crossed {
            let point = self.db.registry.mark_cpr_point(self.slot);
            self.pending_points.push_back((self.version, point));
        }
        self.phase = gp;
        self.version = gv;
        self.db.registry.publish(self.slot, gp, gv);
        if self.phase != Phase::Rest {
            // A commit is in flight: cede the CPU so the capture thread
            // makes progress even on a single core.
            std::thread::yield_now();
        }
    }

    /// Largest serial number known durable for this session: every
    /// transaction with serial ≤ this survives any crash.
    pub fn durable_serial(&mut self) -> u64 {
        match self.db.opts.durability {
            Durability::Wal => {
                // Group commit: everything synced so far. We approximate
                // with the last explicit sync (tests call request_commit).
                self.durable_serial
            }
            _ => {
                let cv = self.db.committed_version.load(Ordering::Acquire);
                while let Some(&(v, s)) = self.pending_points.front() {
                    if v <= cv {
                        self.durable_serial = self.durable_serial.max(s);
                        self.pending_points.pop_front();
                    } else {
                        break;
                    }
                }
                self.durable_serial
            }
        }
    }

    /// Execute one transaction. Reads are appended to `reads` (cleared
    /// first). On `Abort::Conflict` the caller may retry; on
    /// `Abort::CprShift` the session has already refreshed and an
    /// immediate retry executes in the new phase (at most one such abort
    /// per commit — paper Sec. 4.1).
    pub fn execute(&mut self, txn: &TxnRequest<'_>, reads: &mut Vec<V>) -> Result<(), Abort> {
        reads.clear();
        self.ops_since_refresh += 1;
        if self.ops_since_refresh >= self.db.opts.refresh_every {
            self.refresh();
        }
        if self.clock.is_some() {
            self.begin_op()?;
        }
        if let Some(mut f) = self.pause_in_txn.take() {
            f();
            self.pause_in_txn = Some(f);
        }
        let profile = self.db.opts.profile;
        let t0 = profile.then(Instant::now);
        let m0 = self.metrics_on.then(Instant::now);

        let result = match self.db.opts.durability {
            Durability::Wal => self.exec_wal(txn, reads, profile),
            _ => self.exec_versioned(txn, reads),
        };
        if self.clock.is_some() {
            self.db.registry.set_busy(self.slot, BusyState::Idle);
        }

        match result {
            Ok(()) => {
                self.serial += 1;
                self.db.registry.set_serial(self.slot, self.serial);
                self.stats.committed += 1;
                if let Some(t0) = t0 {
                    let side = self.stats.take_pending_side_ns();
                    self.stats.exec_ns += (t0.elapsed().as_nanos() as u64).saturating_sub(side);
                }
                if let Some(m0) = m0 {
                    let reads = txn
                        .accesses
                        .iter()
                        .filter(|&&(_, a)| a == Access::Read)
                        .count() as u64;
                    let writes = txn.accesses.len() as u64 - reads;
                    self.metrics.record_commit(m0.elapsed(), reads, writes);
                }
                Ok(())
            }
            Err(a) => {
                match a {
                    Abort::Conflict => self.stats.aborts_conflict += 1,
                    Abort::CprShift => self.stats.aborts_cpr += 1,
                    Abort::SessionEvicted => self.stats.aborts_evicted += 1,
                }
                if let Some(t0) = t0 {
                    let _ = self.stats.take_pending_side_ns();
                    self.stats.abort_ns += t0.elapsed().as_nanos() as u64;
                }
                if self.metrics_on {
                    self.metrics.record_abort();
                }
                if a == Abort::CprShift {
                    // Paper: the thread refreshes immediately so the retry
                    // runs in the new phase.
                    self.refresh();
                }
                Err(a)
            }
        }
    }

    /// Enter the busy window (Dekker: SeqCst busy store, then SeqCst
    /// status load — pairs with the watchdog's suspend/evict CASes). A
    /// suspended session waits out any in-flight proxy publish, adopts the
    /// state published on its behalf, and retries; an evicted one fails
    /// fast with a sticky error.
    fn begin_op(&mut self) -> Result<(), Abort> {
        loop {
            if self.evicted {
                return Err(Abort::SessionEvicted);
            }
            self.db.registry.set_busy(self.slot, BusyState::InTxn);
            match self.db.registry.status(self.slot) {
                SessionStatus::Active => return Ok(()),
                _ => {
                    // The watchdog intervened while we were idle: step back
                    // out, wait for the hand-off to finish, refresh to at
                    // least whatever it published for us, and try again.
                    self.db.registry.set_busy(self.slot, BusyState::Idle);
                    if self.db.registry.await_reactivate(self.slot) {
                        self.refresh();
                    } else {
                        self.evicted = true;
                    }
                }
            }
        }
    }

    /// Executor for CPR / CALC / no-durability modes (paper Alg. 1).
    fn exec_versioned(&mut self, txn: &TxnRequest<'_>, reads: &mut Vec<V>) -> Result<(), Abort> {
        let table = &self.db.table;
        let v = self.version;
        let phase = self.phase;
        // The version new records/writes belong to.
        let txn_version = if phase >= Phase::InProgress { v + 1 } else { v };

        if self.clock.is_some() {
            // From here we acquire (and then hold) 2PL locks: the watchdog
            // must not evict us — its only remedy for a straggler in this
            // window is aborting the checkpoint and backing off.
            self.db.registry.set_busy(self.slot, BusyState::Locking);
        }

        // Acquire phase: lock the full read-write set (No-Wait).
        let mut locked: Vec<(&Record<V>, bool)> = Vec::with_capacity(txn.accesses.len());
        let mut fail: Option<Abort> = None;
        'acquire: for &(key, access) in txn.accesses {
            let (rec, _) = table.get_or_insert(key, txn_version, V::from_seed(0));
            let exclusive = access != Access::Read;
            let got = if exclusive {
                rec.lock.try_exclusive()
            } else {
                rec.lock.try_shared()
            };
            if !got {
                fail = Some(Abort::Conflict);
                break 'acquire;
            }
            locked.push((rec, exclusive));

            match phase {
                Phase::Rest => {}
                Phase::Prepare => {
                    // A record already shifted to v+1 means the CPR shift
                    // has begun: this transaction cannot belong to the
                    // version-v commit.
                    if rec.version() > v {
                        fail = Some(Abort::CprShift);
                        break 'acquire;
                    }
                }
                Phase::InProgress | Phase::WaitPending | Phase::WaitFlush => {
                    if rec.version() < txn_version {
                        // Shift the record: capture its final version-v
                        // value in `stable` before this v+1 transaction
                        // touches `live`. Requires the exclusive lock.
                        if exclusive {
                            rec.copy_live_to_stable();
                            rec.set_version(txn_version);
                        } else if rec.lock.try_upgrade() {
                            rec.copy_live_to_stable();
                            rec.set_version(txn_version);
                            rec.lock.downgrade();
                        } else {
                            fail = Some(Abort::Conflict);
                            break 'acquire;
                        }
                    }
                }
            }
        }

        if let Some(abort) = fail {
            release_all(&locked);
            return Err(abort);
        }

        if self.clock.is_some() {
            if let Some(mut f) = self.pause_locked.take() {
                f();
                self.pause_locked = Some(f);
            }
            // All locks held; re-check ownership before applying a single
            // write. If the watchdog suspended (or evicted) this session
            // while it straggled through acquisition, its view may be
            // stale and its CPR point may have been proxy-published —
            // applying now could grow the committed prefix inconsistently.
            // Shifts done above are safe: they are idempotent maintenance
            // any session at this view would perform.
            match self.db.registry.status(self.slot) {
                SessionStatus::Active => {}
                SessionStatus::Evicted => {
                    release_all(&locked);
                    self.evicted = true;
                    return Err(Abort::SessionEvicted);
                }
                _ => {
                    release_all(&locked);
                    if self.db.registry.await_reactivate(self.slot) {
                        self.refresh();
                        return Err(Abort::Conflict);
                    }
                    self.evicted = true;
                    return Err(Abort::SessionEvicted);
                }
            }
        }

        // Execute phase: all locks held.
        let mut seed_idx = 0;
        for (i, &(_, access)) in txn.accesses.iter().enumerate() {
            let (rec, _) = locked[i];
            match access {
                Access::Read => {
                    reads.push(if rec.birth() == 0 || rec.is_dead() {
                        V::from_seed(0)
                    } else {
                        rec.read_live()
                    });
                    self.stats.reads += 1;
                }
                Access::Write => {
                    rec.write_live(V::from_seed(txn.write_seeds[seed_idx]));
                    rec.set_dead(false);
                    rec.set_birth_if_unset(txn_version);
                    rec.set_modified(txn_version);
                    seed_idx += 1;
                    self.stats.writes += 1;
                }
                Access::Merge => {
                    let old = if rec.birth() == 0 || rec.is_dead() {
                        V::from_seed(0)
                    } else {
                        rec.read_live()
                    };
                    rec.write_live(old.merge(txn.write_seeds[seed_idx]));
                    rec.set_dead(false);
                    rec.set_birth_if_unset(txn_version);
                    rec.set_modified(txn_version);
                    seed_idx += 1;
                    self.stats.writes += 1;
                }
                Access::Delete => {
                    rec.set_dead(true);
                    rec.set_birth_if_unset(txn_version);
                    rec.set_modified(txn_version);
                    self.stats.writes += 1;
                }
            }
        }

        // CALC: every commit appends to the atomic commit log while locks
        // are held — the measured serial bottleneck.
        if let Some(log) = &self.db.commit_log {
            let t = self.db.opts.profile.then(Instant::now);
            log.append((self.guid << 32) | (self.serial + 1));
            if let Some(t) = t {
                self.stats.note_side_ns(t.elapsed().as_nanos() as u64, true);
            }
        }

        release_all(&locked);
        Ok(())
    }

    /// Executor for the WAL baseline: 2PL + redo record + group commit.
    fn exec_wal(
        &mut self,
        txn: &TxnRequest<'_>,
        reads: &mut Vec<V>,
        profile: bool,
    ) -> Result<(), Abort> {
        let table = &self.db.table;
        if self.clock.is_some() {
            self.db.registry.set_busy(self.slot, BusyState::Locking);
        }
        let mut locked: Vec<(&Record<V>, bool)> = Vec::with_capacity(txn.accesses.len());
        for &(key, access) in txn.accesses {
            let (rec, _) = table.get_or_insert(key, 1, V::from_seed(0));
            let exclusive = access != Access::Read;
            let got = if exclusive {
                rec.lock.try_exclusive()
            } else {
                rec.lock.try_shared()
            };
            if !got {
                release_all(&locked);
                return Err(Abort::Conflict);
            }
            locked.push((rec, exclusive));
        }

        // Execute and build the redo record. Payload format:
        // `[count u64][(key u64, flags u64, value)*]`, flags bit 0 =
        // tombstone; count patched below (deletes consume no write seed,
        // so the seed count cannot serve as the entry count).
        let mut payload: Vec<u8> = Vec::with_capacity(8 + txn.accesses.len() * 24);
        let t_build = profile.then(Instant::now);
        payload.extend_from_slice(&0u64.to_le_bytes());
        let mut seed_idx = 0;
        let mut entries = 0u64;
        for (i, &(key, access)) in txn.accesses.iter().enumerate() {
            let (rec, _) = locked[i];
            match access {
                Access::Read => {
                    reads.push(if rec.birth() == 0 || rec.is_dead() {
                        V::from_seed(0)
                    } else {
                        rec.read_live()
                    });
                    self.stats.reads += 1;
                }
                Access::Write | Access::Merge => {
                    let val = if access == Access::Write {
                        V::from_seed(txn.write_seeds[seed_idx])
                    } else if rec.birth() == 0 || rec.is_dead() {
                        V::from_seed(0).merge(txn.write_seeds[seed_idx])
                    } else {
                        rec.read_live().merge(txn.write_seeds[seed_idx])
                    };
                    rec.write_live(val);
                    rec.set_dead(false);
                    rec.set_birth_if_unset(1);
                    // Redo-log the *result* value: replay is then
                    // idempotent and order-faithful.
                    payload.extend_from_slice(&key.to_le_bytes());
                    payload.extend_from_slice(&0u64.to_le_bytes());
                    cpr_core::pod_write(&val, &mut payload);
                    seed_idx += 1;
                    entries += 1;
                    self.stats.writes += 1;
                }
                Access::Delete => {
                    rec.set_dead(true);
                    rec.set_birth_if_unset(1);
                    payload.extend_from_slice(&key.to_le_bytes());
                    payload.extend_from_slice(&1u64.to_le_bytes());
                    cpr_core::pod_write(&V::from_seed(0), &mut payload);
                    entries += 1;
                    self.stats.writes += 1;
                }
            }
        }
        payload[..8].copy_from_slice(&entries.to_le_bytes());
        if let Some(t) = t_build {
            self.stats
                .note_side_ns(t.elapsed().as_nanos() as u64, false);
        }

        if entries > 0 {
            let wal = self.db.wal.as_ref().expect("wal");
            // LSN allocation (tail contention) then the record copy (log
            // write), measured separately when profiling.
            let t_tail = profile.then(Instant::now);
            let reservation = wal.reserve(payload.len());
            if let Some(t) = t_tail {
                self.stats.note_side_ns(t.elapsed().as_nanos() as u64, true);
            }
            let t_copy = profile.then(Instant::now);
            reservation.fill(&payload);
            if let Some(t) = t_copy {
                self.stats
                    .note_side_ns(t.elapsed().as_nanos() as u64, false);
            }
        }

        release_all(&locked);
        Ok(())
    }

    /// Record that everything up to the current serial was made durable by
    /// an explicit WAL sync (used by the bench harness after
    /// `request_commit` in WAL mode).
    pub fn note_wal_synced(&mut self) {
        self.durable_serial = self.serial;
    }
}

fn release_all<V: DbValue>(locked: &[(&Record<V>, bool)]) {
    for &(rec, exclusive) in locked.iter().rev() {
        if exclusive {
            rec.lock.release_exclusive();
        } else {
            rec.lock.release_shared();
        }
    }
}

impl<V: DbValue> Drop for Session<V> {
    fn drop(&mut self) {
        self.db.merged_stats.lock().merge(&self.stats);
        // Deposit this session's commit points before freeing the slot:
        // once released the registry forgets the guid, but a later
        // checkpoint (or a reconnecting client) still needs them.
        if self.evicted || self.db.registry.is_evicted(self.slot) {
            // Eviction aborted everything after the rolled-back point; the
            // pre-eviction serial must never be reported.
            let point = self.db.registry.cpr_point(self.slot);
            self.db
                .detached
                .record_evicted(self.guid, self.version, point);
        } else {
            let txn_version = if self.phase >= Phase::InProgress {
                self.version + 1
            } else {
                self.version
            };
            let points: Vec<(u64, u64)> = self.pending_points.iter().copied().collect();
            self.db
                .detached
                .record(self.guid, points, (txn_version, self.serial));
        }
        self.db.registry.release(self.slot);
        // The epoch guard drops afterwards, draining any pending actions.
    }
}
