//! An in-memory transactional database with **Concurrent Prefix Recovery**
//! (paper Sec. 4), plus the two baselines the paper compares against:
//! **CALC** (atomic-commit-log checkpointing) and a traditional **WAL**
//! with group commit.
//!
//! * Concurrency control: strict two-phase locking with a No-Wait
//!   deadlock-avoidance policy — lock acquisition never blocks.
//! * Every record carries two values, *live* and *stable*, and a version;
//!   a CPR commit shifts the database from version `v` to `v + 1` while a
//!   background pass captures the version-`v` snapshot (Algs. 1 & 2).
//! * The commit is coordinated lazily through the epoch framework: worker
//!   threads observe phase changes only when they refresh, so the hot
//!   path carries no extra synchronization.
//!
//! # Quickstart
//! ```
//! use cpr_memdb::{Access, Durability, MemDb, TxnRequest};
//!
//! let dir = tempfile::tempdir().unwrap();
//! let db: MemDb<u64> = MemDb::builder(Durability::Cpr)
//!     .dir(dir.path())
//!     .open()
//!     .unwrap();
//! db.load(1, 10);
//! db.load(2, 20);
//!
//! let mut session = db.session(0);
//! let mut reads = Vec::new();
//! let txn = TxnRequest {
//!     accesses: &[(1, Access::Write), (2, Access::Read)],
//!     write_seeds: &[99],
//! };
//! session.execute(&txn, &mut reads).unwrap();
//! assert_eq!(reads, vec![20]);
//!
//! // Commit: all transactions up to each session's CPR point become
//! // durable; sessions keep refreshing until it completes.
//! assert!(db.request_commit());
//! while db.committed_version() < 1 {
//!     session.refresh();
//! }
//! assert_eq!(session.durable_serial(), 1);
//! ```

mod calc;
mod checkpoint;
mod client;
mod db;
mod error;
mod record;
mod stats;
mod table;
mod value;
mod wal;
mod watchdog;

pub use calc::CommitLog;
pub use client::{Access, Session, TxnRequest};
pub use cpr_core::liveness::{
    Clock, CommitOutcome, LivenessConfig, SessionStatus, SystemClock, VirtualClock,
};
pub use cpr_core::{CheckpointVersion, NoWaitLock, SessionInfo};
pub use db::{Durability, MemDb, MemDbBuilder, MemDbOptions};
pub use error::{Abort, CommitError, RecoveryError};
pub use record::Record;
pub use stats::ClientStats;
pub use table::Table;
pub use value::DbValue;
pub use wal::Wal;
