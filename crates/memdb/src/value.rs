//! Value types storable by the database.

use cpr_core::Pod;

/// A database value: plain old data with a default and a cheap way to
/// derive a value from a workload-generator seed.
pub trait DbValue: Pod {
    /// Build a value from a 64-bit workload seed (YCSB write values, TPC-C
    /// amounts). For wide values the seed is splatted so every byte
    /// depends on it — checkpoints then detect torn captures in tests.
    fn from_seed(seed: u64) -> Self;

    /// A 64-bit digest of the value (inverse-ish of `from_seed`; used by
    /// tests to compare states cheaply).
    fn seed(&self) -> u64;

    /// Combine a delta into the value (used by `Access::Merge`): the
    /// default adds `delta` (wrapping) to the value's first 64-bit lane,
    /// modelling balance/YTD updates.
    fn merge(self, delta: u64) -> Self;
}

impl DbValue for u64 {
    #[inline]
    fn from_seed(seed: u64) -> Self {
        seed
    }
    #[inline]
    fn seed(&self) -> u64 {
        *self
    }
    #[inline]
    fn merge(self, delta: u64) -> Self {
        self.wrapping_add(delta)
    }
}

impl<const N: usize> DbValue for [u64; N] {
    #[inline]
    fn from_seed(seed: u64) -> Self {
        let mut v = [0u64; N];
        for (i, slot) in v.iter_mut().enumerate() {
            *slot = seed.wrapping_add(i as u64);
        }
        v
    }
    #[inline]
    fn seed(&self) -> u64 {
        if N == 0 {
            0
        } else {
            self[0]
        }
    }
    #[inline]
    fn merge(mut self, delta: u64) -> Self {
        if N > 0 {
            self[0] = self[0].wrapping_add(delta);
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip() {
        assert_eq!(u64::from_seed(42).seed(), 42);
    }

    #[test]
    fn merge_adds_wrapping() {
        assert_eq!(10u64.merge(5), 15);
        assert_eq!(u64::MAX.merge(2), 1);
        let v = <[u64; 4]>::from_seed(10).merge(7);
        assert_eq!(v[0], 17);
        assert_eq!(v[1], 11, "other lanes untouched");
    }

    #[test]
    fn array_from_seed_fills_all_lanes() {
        let v = <[u64; 8]>::from_seed(100);
        assert_eq!(v, [100, 101, 102, 103, 104, 105, 106, 107]);
        assert_eq!(v.seed(), 100);
    }
}
