//! End-to-end CPR consistency tests for the transactional database:
//! commit under concurrent load, "crash" (drop), recover, and verify the
//! all-before / none-after prefix property per session (paper Def. 1).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cpr_memdb::{Access, Durability, MemDb};

const KEYS_PER_SESSION: u64 = 16;

fn encode(guid: u64, serial: u64) -> u64 {
    (guid << 40) | serial
}

fn decode(v: u64) -> (u64, u64) {
    (v >> 40, v & ((1 << 40) - 1))
}

/// Each session owns a disjoint key range and writes key `serial % R` of
/// its range with value `encode(guid, serial)`. After recovery, the value
/// of each key must be exactly the last write at-or-before the session's
/// recovered CPR point.
#[test]
fn concurrent_commit_recovers_exact_prefix_per_session() {
    let dir = tempfile::tempdir().unwrap();
    let opts = || {
        MemDb::builder(Durability::Cpr)
            .dir(dir.path())
            .capacity(1 << 10)
            .refresh_every(8)
    };
    const SESSIONS: u64 = 4;

    let db: MemDb<u64> = opts().open().unwrap();
    for g in 0..SESSIONS {
        for k in 0..KEYS_PER_SESSION {
            db.load(g * KEYS_PER_SESSION + k, encode(g, 0));
        }
    }

    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..SESSIONS)
        .map(|g| {
            let db = db.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut s = db.session(g);
                let mut reads = Vec::new();
                let mut serial = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    serial += 1;
                    let key = g * KEYS_PER_SESSION + (serial % KEYS_PER_SESSION);
                    let accesses = [(key, Access::Write)];
                    let seeds = [encode(g, serial)];
                    let txn = cpr_memdb::TxnRequest {
                        accesses: &accesses,
                        write_seeds: &seeds,
                    };
                    while s.execute(&txn, &mut reads).is_err() {
                        // disjoint keys: only CPR aborts possible; retry
                    }
                    assert_eq!(s.serial(), serial);
                }
                // Keep refreshing so an in-flight commit can finish.
                for _ in 0..100 {
                    s.refresh();
                    std::thread::sleep(Duration::from_millis(1));
                    if db.committed_version() >= 1 {
                        break;
                    }
                }
            })
        })
        .collect();

    // Let them run, then commit mid-stream.
    std::thread::sleep(Duration::from_millis(50));
    assert!(db.request_commit());
    assert!(db.wait_for_version(1, Duration::from_secs(10)));
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().unwrap();
    }
    drop(db); // crash

    let (db2, manifest) = opts().recover().unwrap();
    let manifest = manifest.expect("one checkpoint committed");
    assert_eq!(manifest.version, 1);
    assert_eq!(manifest.sessions.len() as u64, SESSIONS);

    for g in 0..SESSIONS {
        let point = manifest.cpr_point(g).expect("session in manifest");
        for k in 0..KEYS_PER_SESSION {
            let key = g * KEYS_PER_SESSION + k;
            let (rg, rs) = decode(db2.read(key).expect("key recovered"));
            assert_eq!(rg, g);
            // Expected: the largest serial s in [1, point] with
            // s % R == k (serials are assigned 1, 2, 3, ... round-robin
            // over the session's keys); 0 means only the pre-load value.
            let r = KEYS_PER_SESSION;
            let cand = point.wrapping_sub((point % r + r - k) % r);
            let expected = if point > 0 && cand >= 1 && cand <= point {
                cand
            } else {
                0
            };
            assert_eq!(
                rs, expected,
                "session {g} key {key}: recovered serial {rs}, cpr point {point}"
            );
        }
    }
}

/// Shared hot keys: recovered values must come from the committed prefix
/// of *some* session (all-before/none-after with racing writers).
#[test]
fn shared_keys_recover_only_pre_point_writes() {
    let dir = tempfile::tempdir().unwrap();
    let opts = || {
        MemDb::builder(Durability::Cpr)
            .dir(dir.path())
            .capacity(64)
            .refresh_every(4)
    };
    const SESSIONS: u64 = 3;
    const HOT_KEYS: u64 = 4;

    let db: MemDb<u64> = opts().open().unwrap();
    for k in 0..HOT_KEYS {
        db.load(k, encode(7, 0)); // sentinel guid 7
    }

    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..SESSIONS)
        .map(|g| {
            let db = db.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut s = db.session(g);
                let mut reads = Vec::new();
                let mut serial = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let key = serial % HOT_KEYS;
                    let accesses = [(key, Access::Write)];
                    let seeds = [encode(g, serial + 1)];
                    let txn = cpr_memdb::TxnRequest {
                        accesses: &accesses,
                        write_seeds: &seeds,
                    };
                    if s.execute(&txn, &mut reads).is_ok() {
                        serial += 1;
                    }
                }
                while db.committed_version() < 1 {
                    s.refresh();
                    std::thread::sleep(Duration::from_millis(1));
                }
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(30));
    assert!(db.request_commit());
    assert!(db.wait_for_version(1, Duration::from_secs(10)));
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().unwrap();
    }
    drop(db);

    let (db2, manifest) = opts().recover().unwrap();
    let manifest = manifest.unwrap();
    for k in 0..HOT_KEYS {
        let (g, s) = decode(db2.read(k).unwrap());
        if g == 7 {
            continue; // pre-load value, fine
        }
        let point = manifest
            .cpr_point(g)
            .unwrap_or_else(|| panic!("unknown writer session {g}"));
        assert!(
            s <= point,
            "key {k} holds serial {s} from session {g}, beyond its CPR point {point}"
        );
    }
}

/// Repeated commits advance the version and each is recoverable.
#[test]
fn multiple_sequential_commits() {
    let dir = tempfile::tempdir().unwrap();
    let opts = || {
        MemDb::builder(Durability::Cpr)
            .dir(dir.path())
            .capacity(64)
            .refresh_every(2)
    };
    let db: MemDb<u64> = opts().open().unwrap();
    db.load(0, 0);
    let mut s = db.session(1);
    let mut reads = Vec::new();

    for round in 1..=3u64 {
        let accesses = [(0, Access::Write)];
        let seeds = [round * 100];
        let txn = cpr_memdb::TxnRequest {
            accesses: &accesses,
            write_seeds: &seeds,
        };
        while s.execute(&txn, &mut reads).is_err() {}
        assert!(db.request_commit(), "round {round}");
        while db.committed_version() < round {
            s.refresh();
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(s.durable_serial(), round);
    }
    drop(s);
    drop(db);

    let (db2, manifest) = opts().recover().unwrap();
    assert_eq!(manifest.unwrap().version, 3);
    assert_eq!(db2.read(0), Some(300));
}

/// A commit with zero registered sessions still completes (conditions are
/// vacuously true) and captures the pre-loaded state.
#[test]
fn commit_with_no_sessions_completes() {
    let dir = tempfile::tempdir().unwrap();
    let opts = || {
        MemDb::builder(Durability::Cpr)
            .dir(dir.path())
            .capacity(64)
    };
    let db: MemDb<u64> = opts().open().unwrap();
    db.load(1, 11);
    db.load(2, 22);
    db.commit_and_wait(Duration::from_secs(10)).unwrap();
    drop(db);

    let (db2, manifest) = opts().recover().unwrap();
    assert_eq!(manifest.unwrap().records, Some(2));
    assert_eq!(db2.read(1), Some(11));
    assert_eq!(db2.read(2), Some(22));
}

/// Keys first written *after* a session's CPR point must be absent from
/// the recovered state (insert case: no pre-load).
#[test]
fn post_point_inserts_are_not_recovered() {
    let dir = tempfile::tempdir().unwrap();
    let opts = || {
        MemDb::builder(Durability::Cpr)
            .dir(dir.path())
            .capacity(256)
            .refresh_every(1) // refresh every txn: adopt phases promptly
    };
    let db: MemDb<u64> = opts().open().unwrap();
    let mut s = db.session(0);
    let mut reads = Vec::new();

    // Insert keys 0..50, then commit, then insert 50..100.
    for k in 0..50u64 {
        let accesses = [(k, Access::Write)];
        let seeds = [k + 1000];
        let txn = cpr_memdb::TxnRequest {
            accesses: &accesses,
            write_seeds: &seeds,
        };
        while s.execute(&txn, &mut reads).is_err() {}
    }
    assert!(db.request_commit());
    while db.committed_version() < 1 {
        s.refresh();
        std::thread::sleep(Duration::from_millis(1));
    }
    let point = s.durable_serial();
    assert_eq!(point, 50);

    for k in 50..100u64 {
        let accesses = [(k, Access::Write)];
        let seeds = [k + 1000];
        let txn = cpr_memdb::TxnRequest {
            accesses: &accesses,
            write_seeds: &seeds,
        };
        while s.execute(&txn, &mut reads).is_err() {}
    }
    drop(s);
    drop(db);

    let (db2, _) = opts().recover().unwrap();
    for k in 0..50u64 {
        assert_eq!(db2.read(k), Some(k + 1000), "pre-point insert lost");
    }
    for k in 50..100u64 {
        assert_eq!(db2.read(k), None, "post-point insert leaked into commit");
    }
}

/// CALC mode produces the same recovered state as CPR for an identical
/// single-session history, and its commit log records every commit.
#[test]
fn calc_checkpoint_recovers_and_logs_every_commit() {
    let dir = tempfile::tempdir().unwrap();
    let opts = || {
        MemDb::builder(Durability::Calc)
            .dir(dir.path())
            .capacity(64)
            .refresh_every(2)
    };
    let db: MemDb<u64> = opts().open().unwrap();
    for k in 0..8u64 {
        db.load(k, 0);
    }
    let mut s = db.session(0);
    let mut reads = Vec::new();
    for i in 0..32u64 {
        let accesses = [(i % 8, Access::Write)];
        let seeds = [i + 1];
        let txn = cpr_memdb::TxnRequest {
            accesses: &accesses,
            write_seeds: &seeds,
        };
        while s.execute(&txn, &mut reads).is_err() {}
    }
    assert!(db.request_commit());
    while db.committed_version() < 1 {
        s.refresh();
        std::thread::sleep(Duration::from_millis(1));
    }
    drop(s);
    drop(db);

    let (db2, manifest) = opts().recover().unwrap();
    assert!(manifest.is_some());
    for k in 0..8u64 {
        // Last write to key k was serial 24+k+1... writes hit key i%8 with
        // value i+1; the last i with i%8==k in 0..32 is 24+k.
        assert_eq!(db2.read(k), Some(24 + k + 1));
    }
}

/// WAL mode: replay after crash restores everything that was synced.
#[test]
fn wal_replay_recovers_synced_writes() {
    let dir = tempfile::tempdir().unwrap();
    let opts = || {
        MemDb::builder(Durability::Wal)
            .dir(dir.path())
            .capacity(64)
            .group_commit(Duration::from_millis(1))
    };
    let db: MemDb<u64> = opts().open().unwrap();
    for k in 0..4u64 {
        db.load(k, 0);
    }
    let mut s = db.session(0);
    let mut reads = Vec::new();
    for i in 0..100u64 {
        let accesses = [(i % 4, Access::Write)];
        let seeds = [i + 1];
        let txn = cpr_memdb::TxnRequest {
            accesses: &accesses,
            write_seeds: &seeds,
        };
        while s.execute(&txn, &mut reads).is_err() {}
    }
    db.request_commit(); // WAL: force group-commit sync
    s.note_wal_synced();
    assert_eq!(s.durable_serial(), 100);
    drop(s);
    drop(db);

    let (db2, _) = opts().recover().unwrap();
    for k in 0..4u64 {
        let last_i = 96 + k; // last i with i%4==k in 0..100
        assert_eq!(db2.read(k), Some(last_i + 1), "key {k}");
    }

    // Recovery again (second crash) must still see the data via the old
    // generations even though a new generation file was created.
    drop(db2);
    let (db3, _) = opts().recover().unwrap();
    assert_eq!(db3.read(0), Some(97));
}

/// Transactions spanning multiple keys stay atomic across recovery: either
/// all of a transaction's writes are in the checkpoint or none are.
#[test]
fn multi_key_txn_atomicity_across_recovery() {
    let dir = tempfile::tempdir().unwrap();
    let opts = || {
        MemDb::builder(Durability::Cpr)
            .dir(dir.path())
            .capacity(256)
            .refresh_every(4)
    };
    const PAIRS: u64 = 8;

    let db: MemDb<u64> = opts().open().unwrap();
    for k in 0..PAIRS * 2 {
        db.load(k, 0);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let dbw = db.clone();
    // One writer keeps the invariant: keys 2i and 2i+1 always hold the
    // same value (written in one transaction).
    let writer = std::thread::spawn(move || {
        let mut s = dbw.session(0);
        let mut reads = Vec::new();
        let mut n = 0u64;
        while !stop2.load(Ordering::Relaxed) {
            n += 1;
            let pair = n % PAIRS;
            let accesses = [(2 * pair, Access::Write), (2 * pair + 1, Access::Write)];
            let seeds = [n, n];
            let txn = cpr_memdb::TxnRequest {
                accesses: &accesses,
                write_seeds: &seeds,
            };
            while s.execute(&txn, &mut reads).is_err() {}
        }
        while dbw.committed_version() < 1 {
            s.refresh();
            std::thread::sleep(Duration::from_millis(1));
        }
    });

    std::thread::sleep(Duration::from_millis(30));
    assert!(db.request_commit());
    assert!(db.wait_for_version(1, Duration::from_secs(10)));
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
    drop(db);

    let (db2, _) = opts().recover().unwrap();
    for pair in 0..PAIRS {
        let a = db2.read(2 * pair).unwrap();
        let b = db2.read(2 * pair + 1).unwrap();
        assert_eq!(a, b, "pair {pair} torn across recovery: {a} vs {b}");
    }
}

/// Wide values survive capture + recovery bit-for-bit.
#[test]
fn wide_values_roundtrip_through_checkpoint() {
    let dir = tempfile::tempdir().unwrap();
    let opts = || {
        MemDb::builder(Durability::Cpr)
            .dir(dir.path())
            .capacity(64)
    };
    let db: MemDb<[u64; 8]> = opts().open().unwrap();
    for k in 0..10u64 {
        db.load(k, <[u64; 8] as cpr_memdb::DbValue>::from_seed(k * 7));
    }
    db.commit_and_wait(Duration::from_secs(10)).unwrap();
    drop(db);
    let (db2, _) = opts().recover().unwrap();
    for k in 0..10u64 {
        let v = db2.read(k).unwrap();
        assert_eq!(v, <[u64; 8] as cpr_memdb::DbValue>::from_seed(k * 7));
    }
}

/// Incremental checkpoints: deltas capture only records modified during
/// the committing cycle, and recovery applies the full chain.
#[test]
fn incremental_checkpoints_capture_deltas_and_recover() {
    let dir = tempfile::tempdir().unwrap();
    let opts = || {
        MemDb::builder(Durability::Cpr)
            .dir(dir.path())
            .capacity(256)
            .refresh_every(2)
            .incremental(true)
    };
    let db: MemDb<u64> = opts().open().unwrap();
    let mut s = db.session(0);
    let mut reads = Vec::new();
    let mut write = |s: &mut cpr_memdb::Session<u64>, k: u64, v: u64| {
        let accesses = [(k, cpr_memdb::Access::Write)];
        let seeds = [v];
        let txn = cpr_memdb::TxnRequest {
            accesses: &accesses,
            write_seeds: &seeds,
        };
        while s.execute(&txn, &mut reads).is_err() {}
    };

    // Full base: 100 keys.
    for k in 0..100u64 {
        write(&mut s, k, k + 1);
    }
    db.request_commit();
    while db.committed_version() < 1 {
        s.refresh();
        std::thread::sleep(Duration::from_millis(1));
    }

    // Delta 1: touch only keys 0..10.
    for k in 0..10u64 {
        write(&mut s, k, 1000 + k);
    }
    db.request_commit();
    while db.committed_version() < 2 {
        s.refresh();
        std::thread::sleep(Duration::from_millis(1));
    }

    // Delta 2: touch only key 50.
    write(&mut s, 50, 5555);
    db.request_commit();
    while db.committed_version() < 3 {
        s.refresh();
        std::thread::sleep(Duration::from_millis(1));
    }
    drop(s);
    drop(db);

    // Inspect the chain: the two deltas must be small.
    let store = cpr_storage::CheckpointStore::open(dir.path()).unwrap();
    let tokens = store.tokens().unwrap();
    assert_eq!(tokens.len(), 3);
    let m1 = store.manifest(tokens[0]).unwrap();
    let m2 = store.manifest(tokens[1]).unwrap();
    let m3 = store.manifest(tokens[2]).unwrap();
    assert_eq!(m1.base, None, "first commit is full");
    assert_eq!(m1.records, Some(100));
    assert_eq!(m2.base, Some(m1.token));
    assert_eq!(m2.records, Some(10), "delta 1 captures only touched keys");
    assert_eq!(m3.base, Some(m2.token));
    assert_eq!(m3.records, Some(1), "delta 2 captures a single key");

    // Recovery applies the chain and lands on the newest values.
    let (db2, manifest) = opts().recover().unwrap();
    assert_eq!(manifest.unwrap().version, 3);
    for k in 0..10u64 {
        assert_eq!(db2.read(k), Some(1000 + k), "delta-1 key {k}");
    }
    assert_eq!(db2.read(50), Some(5555), "delta-2 key");
    for k in 10..100u64 {
        if k != 50 {
            assert_eq!(db2.read(k), Some(k + 1), "base key {k}");
        }
    }
}

/// Incremental and full checkpointing recover identical states for the
/// same history.
#[test]
fn incremental_equals_full_recovery() {
    let mk = |dir: &std::path::Path, inc: bool| {
        MemDb::builder(Durability::Cpr)
            .dir(dir)
            .capacity(128)
            .refresh_every(2)
            .incremental(inc)
    };
    let dir_a = tempfile::tempdir().unwrap();
    let dir_b = tempfile::tempdir().unwrap();

    for (dir, inc) in [(&dir_a, true), (&dir_b, false)] {
        let db: MemDb<u64> = mk(dir.path(), inc).open().unwrap();
        let mut s = db.session(0);
        let mut reads = Vec::new();
        let mut x = 7u64;
        for round in 1..=3u64 {
            for _ in 0..40 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(round);
                let k = x % 32;
                let accesses = [(k, cpr_memdb::Access::Write)];
                let seeds = [x];
                let txn = cpr_memdb::TxnRequest {
                    accesses: &accesses,
                    write_seeds: &seeds,
                };
                while s.execute(&txn, &mut reads).is_err() {}
            }
            db.request_commit();
            while db.committed_version() < round {
                s.refresh();
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }

    let (a, _) = mk(dir_a.path(), true).recover().unwrap();
    let (b, _) = mk(dir_b.path(), false).recover().unwrap();
    for k in 0..32u64 {
        assert_eq!(a.read(k), b.read(k), "key {k}: incremental vs full differ");
    }
}
