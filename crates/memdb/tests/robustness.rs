//! Robustness and edge-case tests for the transactional database:
//! failure injection, commit-request races, the read-upgrade path during
//! version shifts, and a TPC-C-lite end-to-end cycle.

use std::time::Duration;

use cpr_memdb::{MemDbBuilder, Abort, Access, Durability, MemDb, TxnRequest};
use cpr_workload::tpcc::{TpccConfig, TpccGenerator};
use cpr_workload::txn::AccessType;

fn cpr_opts(dir: &std::path::Path) -> MemDbBuilder<u64> {
    MemDb::builder(Durability::Cpr)
        .dir(dir)
        .capacity(1 << 10)
        .refresh_every(4)
}

#[test]
fn truncated_checkpoint_data_is_a_recovery_error() {
    let dir = tempfile::tempdir().unwrap();
    {
        let db: MemDb<u64> = cpr_opts(dir.path()).open().unwrap();
        for k in 0..50u64 {
            db.load(k, k);
        }
        db.commit_and_wait(Duration::from_secs(10)).unwrap();
    }
    let store = cpr_storage::CheckpointStore::open(dir.path()).unwrap();
    let token = store.tokens().unwrap()[0];
    // Truncate db.dat below its declared record count.
    let path = store.file(token, "db.dat");
    let data = std::fs::read(&path).unwrap();
    std::fs::write(&path, &data[..data.len() / 2]).unwrap();
    assert!(
        cpr_opts(dir.path()).recover().is_err(),
        "truncated checkpoint must not recover silently"
    );
}

#[test]
fn second_commit_request_while_in_flight_is_rejected() {
    let dir = tempfile::tempdir().unwrap();
    let db: MemDb<u64> = cpr_opts(dir.path()).open().unwrap();
    db.load(0, 0);
    let mut s = db.session(0);
    assert!(db.request_commit());
    // A second request in any non-rest phase must be refused, not queued.
    assert!(!db.request_commit());
    while db.committed_version() < 1 {
        s.refresh();
        std::thread::sleep(Duration::from_millis(1));
    }
    // After completion a new commit is accepted again.
    assert!(db.request_commit());
    while db.committed_version() < 2 {
        s.refresh();
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Read-only transactions during the shift exercise the shared-latch
/// upgrade path (a reader must still move the record's stable image to
/// version v+1 before reading in in-progress).
#[test]
fn read_only_txns_during_commit_stay_consistent() {
    let dir = tempfile::tempdir().unwrap();
    let db: MemDb<u64> = cpr_opts(dir.path()).open().unwrap();
    for k in 0..8u64 {
        db.load(k, 100 + k);
    }
    let mut s = db.session(0);
    let mut reads = Vec::new();

    assert!(db.request_commit());
    // Drive the whole commit with read-only transactions: the session
    // still transitions through every phase, and in in-progress the
    // reads themselves shift record versions via lock upgrade.
    let mut iterations = 0;
    while db.committed_version() < 1 {
        let accesses = [(iterations % 8, Access::Read)];
        let txn = TxnRequest {
            accesses: &accesses,
            write_seeds: &[],
        };
        match s.execute(&txn, &mut reads) {
            Ok(()) => {
                assert_eq!(reads[0], 100 + (iterations % 8), "read saw torn value");
            }
            Err(Abort::CprShift) => {} // retried next loop in the new phase
            Err(Abort::Conflict) => {}
            Err(other) => unreachable!("unexpected abort without a watchdog: {other:?}"),
        }
        iterations += 1;
        if iterations % 16 == 0 {
            s.refresh();
        }
        assert!(iterations < 1_000_000, "commit never completed");
    }
    drop(s);
    drop(db);
    let (db2, _) = cpr_opts(dir.path()).recover().unwrap();
    for k in 0..8u64 {
        assert_eq!(db2.read(k), Some(100 + k));
    }
}

/// TPC-C lite end to end: run a Payment/New-Order mix on the CPR
/// backend, commit, crash, recover — warehouse YTD totals must equal the
/// sum of committed payment amounts (money conservation on the merge
/// path) and order rows must exist exactly for pre-point orders.
#[test]
fn tpcc_lite_commit_and_recover() {
    let dir = tempfile::tempdir().unwrap();
    let warehouses = 2;
    let opts = || {
        MemDb::builder(Durability::Cpr)
            .dir(dir.path())
            .capacity(400_000)
            .refresh_every(8)
    };
    let cfg = TpccConfig::mix(warehouses, 50);
    let mut committed_payment_total = 0u64;
    let mut committed_orders: Vec<u64> = Vec::new();

    {
        let db: MemDb<[u64; 4]> = opts().open().unwrap();
        for k in cfg.preload_keys() {
            db.load(k, [0, 0, 0, 0]);
        }
        let mut s = db.session(0);
        let mut gen = TpccGenerator::new(cfg, 0, 99);
        let mut reads = Vec::new();
        let mut accesses = Vec::new();

        let mut run_txns = |s: &mut cpr_memdb::Session<[u64; 4]>,
                            n: usize,
                            record: bool,
                            payment_total: &mut u64,
                            orders: &mut Vec<u64>| {
            for _ in 0..n {
                let (kind, txn) = gen.next_txn();
                accesses.clear();
                // Payments use Merge so YTD sums are additive.
                let merge = kind == cpr_workload::tpcc::TpccKind::Payment;
                accesses.extend(txn.accesses.iter().map(|&(k, a)| {
                    (
                        k,
                        match a {
                            AccessType::Read => Access::Read,
                            AccessType::Write if merge => Access::Merge,
                            AccessType::Write => Access::Write,
                        },
                    )
                }));
                let req = TxnRequest {
                    accesses: &accesses,
                    write_seeds: &txn.write_vals,
                };
                while s.execute(&req, &mut reads).is_err() {}
                if record {
                    if merge {
                        *payment_total += txn.write_vals[0]; // warehouse YTD
                    } else {
                        for (k, _) in &txn.accesses {
                            if let Some((cpr_workload::tpcc::Table::Order, row)) =
                                cpr_workload::tpcc::decode(*k)
                            {
                                orders.push(row);
                            }
                        }
                    }
                }
            }
        };

        run_txns(
            &mut s,
            400,
            true,
            &mut committed_payment_total,
            &mut committed_orders,
        );
        db.request_commit();
        while db.committed_version() < 1 {
            s.refresh();
            std::thread::sleep(Duration::from_millis(1));
        }
        // Post-point work: lost on crash.
        let (mut scratch_total, mut scratch_orders) = (0, Vec::new());
        run_txns(&mut s, 200, false, &mut scratch_total, &mut scratch_orders);
    }

    let (db2, _) = opts().recover().unwrap();
    let ytd_total: u64 = (0..warehouses)
        .map(|w| {
            db2.read(cpr_workload::tpcc::warehouse_key(w))
                .map(|v| v[0])
                .unwrap_or(0)
        })
        .sum();
    assert_eq!(
        ytd_total, committed_payment_total,
        "warehouse YTD totals must equal committed payment amounts"
    );
    for row in committed_orders {
        let key = cpr_workload::tpcc::key(cpr_workload::tpcc::Table::Order, row);
        assert!(db2.read(key).is_some(), "committed order {row} lost");
    }
}

/// Durability::None never writes anything and rejects commit requests.
#[test]
fn no_durability_mode_runs_without_a_directory() {
    let db: MemDb<u64> = MemDb::builder(Durability::None).open().unwrap();
    db.load(1, 10);
    let mut s = db.session(0);
    let mut reads = Vec::new();
    let accesses = [(1u64, Access::Write)];
    let seeds = [99u64];
    let req = TxnRequest {
        accesses: &accesses,
        write_seeds: &seeds,
    };
    s.execute(&req, &mut reads).unwrap();
    assert!(!db.request_commit());
    assert_eq!(db.read(1), Some(99));
}

/// Missing directory for a durable mode is an immediate open error.
#[test]
fn durable_modes_require_a_directory() {
    assert!(MemDb::<u64>::builder(Durability::Cpr).open().is_err());
    assert!(MemDb::<u64>::builder(Durability::Wal).open().is_err());
}

/// Sessions outliving the database handle keep working (Arc-based
/// lifetime), and their stats fold into the shared aggregate on drop.
#[test]
fn session_outlives_db_handle_and_merges_stats() {
    let dir = tempfile::tempdir().unwrap();
    let db: MemDb<u64> = cpr_opts(dir.path()).open().unwrap();
    db.load(1, 1);
    let db2 = db.clone();
    let mut s = db.session(0);
    drop(db);
    let accesses = [(1u64, Access::Write)];
    let seeds = [5u64];
    let req = TxnRequest {
        accesses: &accesses,
        write_seeds: &seeds,
    };
    let mut reads = Vec::new();
    for _ in 0..10 {
        s.execute(&req, &mut reads).unwrap();
    }
    drop(s);
    assert_eq!(db2.stats().committed, 10);
}
