//! Liveness watchdog tests for the transactional database, driven by a
//! virtual clock: an idle straggler is proxy-advanced (and survives), a
//! straggler parked mid-transaction is evicted with an exact committed
//! prefix, and a straggler parked while *holding 2PL locks* times the
//! checkpoint out — abort + backoff + retry, or `max_attempts`
//! exhaustion surfaced as `CommitError::TimedOut` naming the blocker.

use std::sync::{mpsc, Arc};
use std::time::Duration;

use cpr_memdb::{MemDbBuilder, 
    Abort, Access, CommitError, Durability, LivenessConfig, MemDb, TxnRequest,
    VirtualClock,
};

const GRACE: u64 = 100;

fn liveness_opts(dir: &std::path::Path, clock: &Arc<VirtualClock>) -> MemDbBuilder<u64> {
    MemDb::builder(Durability::Cpr)
        .dir(dir)
        .capacity(1 << 10)
        .refresh_every(4)
        .liveness(
            LivenessConfig::with_clock(Arc::clone(clock) as Arc<dyn cpr_memdb::Clock>)
                .grace_ticks(GRACE)
                .backoff_base_ticks(10)
                .backoff_jitter_ticks(5)
                .seed(42),
        )
}

fn write(s: &mut cpr_memdb::Session<u64>, key: u64, val: u64) -> Result<(), Abort> {
    let accesses = [(key, Access::Write)];
    let seeds = [val];
    let txn = TxnRequest {
        accesses: &accesses,
        write_seeds: &seeds,
    };
    let mut reads = Vec::new();
    s.execute(&txn, &mut reads)
}

/// Drive session `a` (keys 0..10) and the virtual clock until the commit
/// lands. The driver's own lease stays fresh — it heartbeats on every
/// refresh — while a parked session's heartbeat falls ever further
/// behind, so only the straggler crosses the grace threshold.
fn drive_until_committed(db: &MemDb<u64>, a: &mut cpr_memdb::Session<u64>, clock: &VirtualClock) {
    let mut iters = 0u64;
    while db.committed_version() < 1 {
        let _ = write(a, iters % 10, iters);
        a.refresh();
        clock.advance(GRACE / 2);
        std::thread::sleep(Duration::from_millis(1));
        iters += 1;
        assert!(iters < 10_000, "commit never completed despite watchdog");
    }
}

/// An idle straggler (parked between transactions, holding nothing) is
/// proxy-advanced: the commit completes, the straggler is *not* evicted,
/// and its pre-commit writes are in the recovered prefix.
#[test]
fn idle_straggler_is_proxy_advanced() {
    let dir = tempfile::tempdir().unwrap();
    let clock = Arc::new(VirtualClock::new());
    let db: MemDb<u64> = liveness_opts(dir.path(), &clock).open().unwrap();
    for k in 0..70u64 {
        db.load(k, 0);
    }

    let (done_tx, done_rx) = mpsc::channel::<()>();
    let (unpark_tx, unpark_rx) = mpsc::channel::<()>();
    let db_b = db.clone();
    let straggler = std::thread::spawn(move || {
        let mut b = db_b.session(7);
        for k in 10..15u64 {
            write(&mut b, k, 1000 + k).unwrap();
        }
        done_tx.send(()).unwrap();
        unpark_rx.recv().unwrap(); // park: no ops, no refreshes
        b.refresh();
        b.is_evicted()
    });
    done_rx.recv().unwrap();

    let mut a = db.session(1);
    assert!(db.request_commit());
    drive_until_committed(&db, &mut a, &clock);

    let out = db.last_commit_outcome();
    assert!(
        out.proxy_advanced.contains(&7),
        "idle straggler should be proxy-advanced, got {out:?}"
    );
    assert!(out.evicted.is_empty(), "idle straggler must not be evicted");
    assert_eq!(out.attempts, 1, "no abort expected for an idle straggler");

    unpark_tx.send(()).unwrap();
    assert!(
        !straggler.join().unwrap(),
        "a proxy-advanced session must stay alive"
    );

    drop(a);
    drop(db);
    let (db2, _) = liveness_opts(dir.path(), &clock).recover().unwrap();
    for k in 10..15u64 {
        assert_eq!(db2.read(k), Some(1000 + k), "straggler prefix lost");
    }
}

/// A straggler parked *inside* a transaction is evicted: the commit
/// completes without it, the parked transaction fails with
/// `SessionEvicted` when the thread resumes, and recovery reproduces
/// exactly the straggler's committed prefix — its five finished
/// transactions, not the in-flight sixth.
#[test]
fn mid_txn_straggler_is_evicted_with_exact_prefix() {
    let dir = tempfile::tempdir().unwrap();
    let clock = Arc::new(VirtualClock::new());
    let db: MemDb<u64> = liveness_opts(dir.path(), &clock).open().unwrap();
    for k in 0..70u64 {
        db.load(k, 0);
    }

    let (parked_tx, parked_rx) = mpsc::channel::<()>();
    let (unpark_tx, unpark_rx) = mpsc::channel::<()>();
    let db_b = db.clone();
    let straggler = std::thread::spawn(move || {
        let mut b = db_b.session(7);
        let mut calls = 0u32;
        b.set_pause_in_txn(move || {
            calls += 1;
            if calls == 6 {
                parked_tx.send(()).unwrap();
                let _ = unpark_rx.recv();
            }
        });
        for i in 0..5u64 {
            write(&mut b, 60 + i, 600 + i).unwrap();
        }
        // Sixth transaction: parks inside, resumes evicted.
        let r = write(&mut b, 69, 9999);
        (r, b.is_evicted())
    });
    parked_rx.recv().unwrap(); // B is inside txn 6, lease going stale

    let mut a = db.session(1);
    assert!(db.request_commit());
    drive_until_committed(&db, &mut a, &clock);

    let out = db.last_commit_outcome();
    assert!(
        out.evicted.contains(&7),
        "mid-txn straggler should be evicted, got {out:?}"
    );

    unpark_tx.send(()).unwrap();
    let (r, evicted) = straggler.join().unwrap();
    assert_eq!(r, Err(Abort::SessionEvicted));
    assert!(evicted);
    // The in-flight transaction was refused even on the live store.
    assert_eq!(db.read(69), Some(0), "evicted txn must not apply");

    drop(a);
    drop(db);
    let (db2, _) = liveness_opts(dir.path(), &clock).recover().unwrap();
    for i in 0..5u64 {
        assert_eq!(db2.read(60 + i), Some(600 + i), "committed prefix lost");
    }
    assert_eq!(db2.read(69), Some(0), "uncommitted suffix leaked into recovery");
}

/// A straggler parked while holding record locks cannot be safely
/// remedied per-session: the watchdog aborts the checkpoint attempt and
/// schedules a backed-off retry. Once the straggler resumes and releases
/// its locks, the retry succeeds (attempts > 1).
#[test]
fn locked_straggler_aborts_then_retry_succeeds() {
    let dir = tempfile::tempdir().unwrap();
    let clock = Arc::new(VirtualClock::new());
    let db: MemDb<u64> = liveness_opts(dir.path(), &clock).open().unwrap();
    for k in 0..80u64 {
        db.load(k, 0);
    }

    let (parked_tx, parked_rx) = mpsc::channel::<()>();
    let (unpark_tx, unpark_rx) = mpsc::channel::<()>();
    let db_b = db.clone();
    let straggler = std::thread::spawn(move || {
        let mut b = db_b.session(7);
        let mut first = true;
        b.set_pause_locked(move || {
            if first {
                first = false;
                parked_tx.send(()).unwrap();
                let _ = unpark_rx.recv();
            }
        });
        // Parks inside, holding the lock on key 70. On resume the
        // suspended session releases and retries until it lands.
        loop {
            match write(&mut b, 70, 700) {
                Ok(()) => break Ok(()),
                Err(Abort::Conflict) | Err(Abort::CprShift) => continue,
                Err(e) => break Err(e),
            }
        }
    });
    parked_rx.recv().unwrap(); // B holds the lock, lease going stale

    let mut a = db.session(1);
    assert!(db.request_commit());

    // Drive until the watchdog times the first attempt out.
    let mut iters = 0u64;
    while db.last_commit_outcome().aborted == 0 {
        let _ = write(&mut a, iters % 10, iters);
        a.refresh();
        clock.advance(GRACE / 2);
        std::thread::sleep(Duration::from_millis(1));
        iters += 1;
        assert!(iters < 10_000, "watchdog never aborted the checkpoint");
    }

    // Release the straggler; its transaction completes and the session
    // retires cleanly before the backed-off retry fires.
    unpark_tx.send(()).unwrap();
    assert_eq!(straggler.join().unwrap(), Ok(()));

    drive_until_committed(&db, &mut a, &clock);
    let out = db.last_commit_outcome();
    assert!(out.aborted >= 1, "expected at least one aborted attempt");
    assert!(out.attempts >= 2, "expected a retry, got {out:?}");
    assert!(!out.gave_up);

    drop(a);
    drop(db);
    let (db2, _) = liveness_opts(dir.path(), &clock).recover().unwrap();
    assert_eq!(db2.read(70), Some(700), "straggler's completed write lost");
}

/// A straggler that holds locks *forever* exhausts `max_attempts`:
/// `commit_and_wait` surfaces `CommitError::TimedOut` naming the dead
/// session among the blockers, and the outcome records `gave_up`.
#[test]
fn permanent_lock_straggler_exhausts_attempts_and_names_blocker() {
    let dir = tempfile::tempdir().unwrap();
    let clock = Arc::new(VirtualClock::new());
    let opts = MemDb::builder(Durability::Cpr)
        .dir(dir.path())
        .capacity(1 << 10)
        .refresh_every(4)
        .liveness(
            LivenessConfig::with_clock(Arc::clone(&clock) as Arc<dyn cpr_memdb::Clock>)
                .grace_ticks(GRACE)
                .backoff_base_ticks(10)
                .backoff_jitter_ticks(5)
                .max_attempts(2)
                .seed(42),
        );
    let db: MemDb<u64> = opts.open().unwrap();
    for k in 0..80u64 {
        db.load(k, 0);
    }

    let (parked_tx, parked_rx) = mpsc::channel::<()>();
    let (unpark_tx, unpark_rx) = mpsc::channel::<()>();
    let db_b = db.clone();
    let straggler = std::thread::spawn(move || {
        let mut b = db_b.session(7);
        let mut first = true;
        b.set_pause_locked(move || {
            if first {
                first = false;
                parked_tx.send(()).unwrap();
                let _ = unpark_rx.recv();
            }
        });
        loop {
            match write(&mut b, 70, 700) {
                Ok(()) => break,
                Err(Abort::Conflict) | Err(Abort::CprShift) => continue,
                Err(_) => break,
            }
        }
    });
    parked_rx.recv().unwrap();

    // Driver keeps a live session refreshed and moves virtual time so
    // every abort's backoff elapses and the retry fires.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let driver = {
        let db = db.clone();
        let clock = Arc::clone(&clock);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut a = db.session(1);
            let mut i = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let _ = write(&mut a, i % 10, i);
                a.refresh();
                clock.advance(GRACE / 2);
                std::thread::sleep(Duration::from_millis(1));
                i += 1;
            }
        })
    };

    let err = db
        .commit_and_wait(Duration::from_secs(60))
        .expect_err("commit must give up with a permanent lock-holder");
    match err {
        CommitError::TimedOut { blockers, .. } => {
            assert!(
                blockers.contains(&7),
                "timeout must name the dead session, got {blockers:?}"
            );
        }
        other => panic!("expected TimedOut, got {other:?}"),
    }
    let out = db.last_commit_outcome();
    assert!(out.gave_up, "outcome must record exhaustion: {out:?}");
    assert_eq!(out.attempts, 2);
    assert!(out.committed_version.is_none());

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    driver.join().unwrap();
    unpark_tx.send(()).unwrap();
    straggler.join().unwrap();
}
