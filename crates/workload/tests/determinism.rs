//! Seeded-determinism contract for every workload generator.
//!
//! The crash harness and the network resume tests both rely on replaying a
//! workload from a seed and getting byte-identical op streams: after a
//! crash the client re-generates its input deterministically, so any
//! divergence would masquerade as a CPR recovery bug. These tests pin that
//! contract: same seed → identical stream, cloned generator → identical
//! continuation, different seed or thread id → different stream.

use cpr_workload::tpcc::{TpccConfig, TpccGenerator};
use cpr_workload::{
    KeyDist, Op, Sampler, Txn, TxnConfig, TxnGenerator, YcsbConfig, YcsbGenerator,
};

const N: usize = 10_000;

fn ycsb_stream(cfg: YcsbConfig, seed: u64, n: usize) -> Vec<Op> {
    let mut g = YcsbGenerator::new(cfg, seed);
    (0..n).map(|_| g.next_op()).collect()
}

fn txn_stream(cfg: TxnConfig, seed: u64, n: usize) -> Vec<Txn> {
    let mut g = TxnGenerator::new(cfg, seed);
    (0..n).map(|_| g.next_txn()).collect()
}

fn tpcc_stream(cfg: TpccConfig, thread: u64, seed: u64, n: usize) -> Vec<Txn> {
    let mut g = TpccGenerator::new(cfg, thread, seed);
    (0..n).map(|_| g.next_txn().1).collect()
}

#[test]
fn sampler_streams_are_seed_deterministic() {
    for dist in [
        KeyDist::Uniform,
        KeyDist::Zipfian { theta: 0.1 },
        KeyDist::Zipfian { theta: 0.99 },
    ] {
        let keys = |seed| {
            let mut s = Sampler::new(dist, 1 << 20, seed);
            (0..N).map(|_| s.next_key()).collect::<Vec<_>>()
        };
        assert_eq!(keys(42), keys(42), "{dist:?}: same seed must replay");
        assert_ne!(keys(42), keys(43), "{dist:?}: different seed must diverge");
    }
}

#[test]
fn ycsb_streams_are_seed_deterministic() {
    for cfg in [
        YcsbConfig::read_update(1 << 20, KeyDist::Uniform, 50),
        YcsbConfig::read_update(1 << 20, KeyDist::Zipfian { theta: 0.99 }, 90),
        YcsbConfig::rmw_only(1 << 20, KeyDist::Zipfian { theta: 0.1 }),
    ] {
        assert_eq!(ycsb_stream(cfg, 7, N), ycsb_stream(cfg, 7, N));
        assert_ne!(ycsb_stream(cfg, 7, N), ycsb_stream(cfg, 8, N));
    }
}

#[test]
fn ycsb_clone_resumes_mid_stream() {
    // A cloned generator must continue exactly where the original was —
    // this is what lets a crashed client regenerate only its suffix.
    let cfg = YcsbConfig::read_update(1 << 16, KeyDist::Zipfian { theta: 0.99 }, 50);
    let mut g = YcsbGenerator::new(cfg, 99);
    for _ in 0..N / 2 {
        g.next_op();
    }
    let mut replica = g.clone();
    let tail: Vec<Op> = (0..N).map(|_| g.next_op()).collect();
    let replayed: Vec<Op> = (0..N).map(|_| replica.next_op()).collect();
    assert_eq!(tail, replayed);
}

#[test]
fn txn_streams_are_seed_deterministic() {
    for (size, write_pct, theta) in [(1, 100, 0.1), (5, 50, 0.99), (10, 0, 0.99)] {
        let cfg = TxnConfig::mix(1 << 16, KeyDist::Zipfian { theta }, size, write_pct);
        let a = txn_stream(cfg, 11, N / 4);
        assert_eq!(a, txn_stream(cfg, 11, N / 4));
        assert_ne!(a, txn_stream(cfg, 12, N / 4));
        // Determinism must extend to intra-txn ordering: the 2PL executor
        // replays accesses in generated order.
        assert!(a.iter().all(|t| t.accesses.len() == size));
    }
}

#[test]
fn tpcc_streams_are_seed_and_thread_deterministic() {
    let cfg = TpccConfig::mix(4, 50);
    let a = tpcc_stream(cfg, 0, 5, N / 4);
    assert_eq!(a, tpcc_stream(cfg, 0, 5, N / 4), "same (thread, seed) replays");
    assert_ne!(a, tpcc_stream(cfg, 1, 5, N / 4), "thread id perturbs the stream");
    assert_ne!(a, tpcc_stream(cfg, 0, 6, N / 4), "seed perturbs the stream");
}
