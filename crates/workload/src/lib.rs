//! Workload generators for the CPR evaluation.
//!
//! * [`keys`] — uniform and Zipfian (Gray et al.) key distributions,
//!   including the scrambled variant used by YCSB;
//! * [`ycsb`] — the extended YCSB-A op streams of paper Sec. 7.1
//!   (reads, blind updates, read-modify-writes; 8- or 100-byte values);
//! * [`txn`] — multi-key transaction workloads for the in-memory
//!   transactional database (sizes 1..10, W:R mixes, θ ∈ {0.1, 0.99});
//! * [`tpcc`] — a TPC-C-lite input generator (Payment + New-Order) mapped
//!   onto a single u64 key space (paper Appendix E.2).
//!
//! Generators are deterministic given a seed, cheap enough to run on the
//! benchmark hot path, and `Send` so each worker thread owns one.

pub mod keys;
pub mod tpcc;
pub mod txn;
pub mod ycsb;

pub use keys::{KeyDist, Sampler};
pub use txn::{AccessType, Txn, TxnConfig, TxnGenerator};
pub use ycsb::{Op, OpKind, YcsbConfig, YcsbGenerator};
