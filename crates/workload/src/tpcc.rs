//! TPC-C-lite input generator (paper Appendix E.2).
//!
//! The paper evaluates a mixture of **Payment** and **New-Order**
//! transactions against the in-memory transactional database. We model the
//! TPC-C tables in a single `u64` key space (table id in the high bits) and
//! emit transactions as read/write sets, exactly what the memdb executor
//! consumes:
//!
//! * Payment — a short transaction writing 3 records: warehouse YTD,
//!   district YTD, customer balance.
//! * New-Order — a longer transaction touching ~23 records on average:
//!   reads warehouse tax + customer; updates district next-order-id;
//!   for each of 5–15 order lines, reads an item and updates its stock;
//!   inserts an order record and one order-line record per item.
//!
//! Inputs follow the standard spec: NURand(1023/8191) customer/item draws,
//! 1% remote warehouses, uniform districts.

use crate::keys::Sampler;
use crate::txn::{AccessType, Txn};
use crate::KeyDist;

/// Standard TPC-C cardinalities (per warehouse).
pub const DISTRICTS_PER_WAREHOUSE: u64 = 10;
pub const CUSTOMERS_PER_DISTRICT: u64 = 3000;
pub const ITEMS: u64 = 100_000;
const MAX_ORDERS_PER_DISTRICT: u64 = 1 << 24;

/// Table tags in the high byte of the key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u64)]
pub enum Table {
    Warehouse = 1,
    District = 2,
    Customer = 3,
    Item = 4,
    Stock = 5,
    Order = 6,
    OrderLine = 7,
}

const TABLE_SHIFT: u32 = 56;

/// Compose a key: table tag in the top byte, row id below.
#[inline]
pub fn key(table: Table, row: u64) -> u64 {
    debug_assert!(row < (1 << TABLE_SHIFT));
    ((table as u64) << TABLE_SHIFT) | row
}

/// Decompose a key into (table tag, row id). Returns `None` for an unknown
/// tag.
pub fn decode(k: u64) -> Option<(Table, u64)> {
    let row = k & ((1 << TABLE_SHIFT) - 1);
    let t = match k >> TABLE_SHIFT {
        1 => Table::Warehouse,
        2 => Table::District,
        3 => Table::Customer,
        4 => Table::Item,
        5 => Table::Stock,
        6 => Table::Order,
        7 => Table::OrderLine,
        _ => return None,
    };
    Some((t, row))
}

pub fn warehouse_key(w: u64) -> u64 {
    key(Table::Warehouse, w)
}
pub fn district_key(w: u64, d: u64) -> u64 {
    key(Table::District, w * DISTRICTS_PER_WAREHOUSE + d)
}
pub fn customer_key(w: u64, d: u64, c: u64) -> u64 {
    key(
        Table::Customer,
        (w * DISTRICTS_PER_WAREHOUSE + d) * CUSTOMERS_PER_DISTRICT + c,
    )
}
pub fn item_key(i: u64) -> u64 {
    key(Table::Item, i)
}
pub fn stock_key(w: u64, i: u64) -> u64 {
    key(Table::Stock, w * ITEMS + i)
}
pub fn order_key(w: u64, d: u64, o: u64) -> u64 {
    key(
        Table::Order,
        (w * DISTRICTS_PER_WAREHOUSE + d) * MAX_ORDERS_PER_DISTRICT + o,
    )
}
pub fn order_line_key(w: u64, d: u64, o: u64, l: u64) -> u64 {
    key(
        Table::OrderLine,
        ((w * DISTRICTS_PER_WAREHOUSE + d) * MAX_ORDERS_PER_DISTRICT + o) * 16 + l,
    )
}

/// Which TPC-C transaction a generated txn models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TpccKind {
    Payment,
    NewOrder,
}

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct TpccConfig {
    pub warehouses: u64,
    /// Fraction of Payment transactions (the paper uses 50:50 and 100:0
    /// Payment:New-Order mixes).
    pub payment_frac: f64,
}

impl TpccConfig {
    pub fn mix(warehouses: u64, payment_pct: u32) -> Self {
        TpccConfig {
            warehouses,
            payment_frac: payment_pct as f64 / 100.0,
        }
    }

    /// Number of keys that must be pre-loaded (excludes orders/order-lines,
    /// which are inserted by New-Order).
    pub fn preload_keys(&self) -> Vec<u64> {
        let w = self.warehouses;
        let mut keys = Vec::new();
        for wh in 0..w {
            keys.push(warehouse_key(wh));
            for d in 0..DISTRICTS_PER_WAREHOUSE {
                keys.push(district_key(wh, d));
                for c in 0..CUSTOMERS_PER_DISTRICT {
                    keys.push(customer_key(wh, d, c));
                }
            }
            for i in 0..ITEMS {
                keys.push(stock_key(wh, i));
            }
        }
        for i in 0..ITEMS {
            keys.push(item_key(i));
        }
        keys
    }
}

/// Per-thread deterministic TPC-C transaction stream.
pub struct TpccGenerator {
    cfg: TpccConfig,
    rng: Sampler,
    /// Per-(warehouse, district) next order id for this generator. Each
    /// thread owns a disjoint order-id space (thread id in the high bits)
    /// so concurrent generators never collide on insert keys.
    next_order: Vec<u64>,
    thread_id: u64,
}

impl TpccGenerator {
    pub fn new(cfg: TpccConfig, thread_id: u64, seed: u64) -> Self {
        assert!(cfg.warehouses > 0);
        assert!(thread_id < 256);
        let slots = (cfg.warehouses * DISTRICTS_PER_WAREHOUSE) as usize;
        TpccGenerator {
            cfg,
            rng: Sampler::new(KeyDist::Uniform, u64::MAX, seed),
            next_order: vec![0; slots],
            thread_id,
        }
    }

    /// TPC-C NURand(A, 0, x).
    fn nurand(&mut self, a: u64, x: u64) -> u64 {
        let r1 = self.rng.next_u64_below(a + 1);
        let r2 = self.rng.next_u64_below(x);
        ((r1 | r2) + 42) % x // constant C = 42
    }

    fn home_warehouse(&mut self) -> u64 {
        self.rng.next_u64_below(self.cfg.warehouses)
    }

    /// Generate the next transaction with its kind.
    pub fn next_txn(&mut self) -> (TpccKind, Txn) {
        if self.rng.next_f64() < self.cfg.payment_frac {
            (TpccKind::Payment, self.payment())
        } else {
            (TpccKind::NewOrder, self.new_order())
        }
    }

    /// Payment: update warehouse YTD, district YTD, customer balance.
    pub fn payment(&mut self) -> Txn {
        let w = self.home_warehouse();
        let d = self.rng.next_u64_below(DISTRICTS_PER_WAREHOUSE);
        // 15% of payments touch a remote customer per spec; with one
        // warehouse everything is local.
        let (cw, cd) = if self.cfg.warehouses > 1 && self.rng.next_f64() < 0.15 {
            let mut rw = self.rng.next_u64_below(self.cfg.warehouses);
            if rw == w {
                rw = (rw + 1) % self.cfg.warehouses;
            }
            (rw, self.rng.next_u64_below(DISTRICTS_PER_WAREHOUSE))
        } else {
            (w, d)
        };
        let c = self.nurand(1023, CUSTOMERS_PER_DISTRICT);
        let amount = 1 + self.rng.next_u64_below(5000);
        Txn {
            accesses: vec![
                (warehouse_key(w), AccessType::Write),
                (district_key(w, d), AccessType::Write),
                (customer_key(cw, cd, c), AccessType::Write),
            ],
            write_vals: vec![amount, amount, amount],
        }
    }

    /// New-Order: read customer + warehouse, bump district order counter,
    /// per line read item + update stock, insert order + order lines.
    pub fn new_order(&mut self) -> Txn {
        let w = self.home_warehouse();
        let d = self.rng.next_u64_below(DISTRICTS_PER_WAREHOUSE);
        let c = self.nurand(1023, CUSTOMERS_PER_DISTRICT);
        let lines = 5 + self.rng.next_u64_below(11); // 5..=15

        let slot = (w * DISTRICTS_PER_WAREHOUSE + d) as usize;
        let o = (self.thread_id << 40) | self.next_order[slot];
        self.next_order[slot] += 1;

        let mut accesses = vec![
            (warehouse_key(w), AccessType::Read),
            (customer_key(w, d, c), AccessType::Read),
            (district_key(w, d), AccessType::Write),
            (order_key(w, d, o), AccessType::Write),
        ];
        let mut write_vals = vec![o, c];
        for l in 0..lines {
            let i = self.nurand(8191, ITEMS);
            // 1% remote stock per spec.
            let sw = if self.cfg.warehouses > 1 && self.rng.next_f64() < 0.01 {
                let mut rw = self.rng.next_u64_below(self.cfg.warehouses);
                if rw == w {
                    rw = (rw + 1) % self.cfg.warehouses;
                }
                rw
            } else {
                w
            };
            if !accesses.iter().any(|(k, _)| *k == item_key(i)) {
                accesses.push((item_key(i), AccessType::Read));
            }
            if !accesses.iter().any(|(k, _)| *k == stock_key(sw, i)) {
                accesses.push((stock_key(sw, i), AccessType::Write));
                write_vals.push(10 + l);
            }
            accesses.push((order_line_key(w, d, o, l), AccessType::Write));
            write_vals.push(i);
        }
        Txn {
            accesses,
            write_vals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_encoding_roundtrips_and_is_disjoint() {
        let ks = [
            warehouse_key(3),
            district_key(3, 9),
            customer_key(3, 9, 2999),
            item_key(99_999),
            stock_key(3, 99_999),
            order_key(3, 9, 12345),
            order_line_key(3, 9, 12345, 14),
        ];
        let mut set = std::collections::HashSet::new();
        for k in ks {
            assert!(decode(k).is_some());
            assert!(set.insert(k), "key collision");
        }
        assert_eq!(decode(customer_key(1, 2, 3)).unwrap().0, Table::Customer);
    }

    #[test]
    fn payment_touches_exactly_three_records() {
        let mut g = TpccGenerator::new(TpccConfig::mix(4, 100), 0, 1);
        for _ in 0..100 {
            let t = g.payment();
            assert_eq!(t.accesses.len(), 3);
            assert_eq!(t.writes(), 3);
            assert_eq!(t.write_vals.len(), 3);
        }
    }

    #[test]
    fn new_order_touches_about_23_records() {
        let mut g = TpccGenerator::new(TpccConfig::mix(4, 0), 0, 2);
        let mut total = 0usize;
        let n = 200;
        for _ in 0..n {
            let t = g.new_order();
            assert!(t.accesses.len() >= 4 + 3 * 5 - 2);
            total += t.accesses.len();
            // keys unique within the txn
            let mut keys: Vec<u64> = t.accesses.iter().map(|(k, _)| *k).collect();
            keys.sort_unstable();
            let before = keys.len();
            keys.dedup();
            assert_eq!(keys.len(), before, "duplicate key in new-order");
            assert_eq!(t.write_vals.len(), t.writes());
        }
        let avg = total as f64 / n as f64;
        assert!(
            (20.0..40.0).contains(&avg),
            "avg accesses {avg}, expected ~23-34"
        );
    }

    #[test]
    fn order_ids_are_unique_across_txns_and_threads() {
        let mut a = TpccGenerator::new(TpccConfig::mix(1, 0), 0, 3);
        let mut b = TpccGenerator::new(TpccConfig::mix(1, 0), 1, 3);
        let mut orders = std::collections::HashSet::new();
        for _ in 0..100 {
            for t in [a.new_order(), b.new_order()] {
                for (k, _) in &t.accesses {
                    if let Some((Table::Order, row)) = decode(*k) {
                        assert!(orders.insert(row), "order id reused: {row}");
                    }
                }
            }
        }
    }

    #[test]
    fn mix_ratio_respected() {
        let mut g = TpccGenerator::new(TpccConfig::mix(2, 50), 0, 4);
        let n = 2000;
        let payments = (0..n)
            .filter(|_| matches!(g.next_txn().0, TpccKind::Payment))
            .count();
        let frac = payments as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.05, "payment frac {frac}");
    }

    #[test]
    fn nurand_in_range() {
        let mut g = TpccGenerator::new(TpccConfig::mix(1, 50), 0, 5);
        for _ in 0..1000 {
            assert!(g.nurand(1023, CUSTOMERS_PER_DISTRICT) < CUSTOMERS_PER_DISTRICT);
            assert!(g.nurand(8191, ITEMS) < ITEMS);
        }
    }

    #[test]
    fn preload_covers_txn_non_insert_keys() {
        let cfg = TpccConfig::mix(1, 50);
        let preload: std::collections::HashSet<u64> = cfg.preload_keys().into_iter().collect();
        let mut g = TpccGenerator::new(cfg, 0, 6);
        for _ in 0..50 {
            let (_, t) = g.next_txn();
            for (k, _) in &t.accesses {
                let (table, _) = decode(*k).unwrap();
                if !matches!(table, Table::Order | Table::OrderLine) {
                    assert!(preload.contains(k), "key {k:#x} not preloaded");
                }
            }
        }
    }
}
