//! Multi-key transaction workloads for the in-memory transactional
//! database (paper Sec. 7.1–7.2).
//!
//! Each transaction is a sequence of read/write accesses over keys drawn
//! from a Zipfian or uniform distribution; each access is classified as a
//! read or write by a `W:R` ratio. Keys within one transaction are
//! deduplicated (the 2PL lock table is not re-entrant) and lock order is
//! irrelevant because the database uses No-Wait deadlock avoidance.

use crate::keys::{KeyDist, Sampler};

/// Access mode for one key in a transaction's read-write set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessType {
    Read,
    Write,
}

/// One generated transaction: a read-write set plus write arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Txn {
    /// Unique keys with their access type.
    pub accesses: Vec<(u64, AccessType)>,
    /// Value written by each write access (consumed in order).
    pub write_vals: Vec<u64>,
}

impl Txn {
    pub fn is_read_only(&self) -> bool {
        self.accesses.iter().all(|(_, a)| *a == AccessType::Read)
    }
    pub fn writes(&self) -> usize {
        self.accesses
            .iter()
            .filter(|(_, a)| *a == AccessType::Write)
            .count()
    }
}

/// Transaction workload description.
#[derive(Debug, Clone, Copy)]
pub struct TxnConfig {
    pub num_keys: u64,
    pub dist: KeyDist,
    /// Number of key accesses per transaction (1, 3, 5, 7, 10 in the paper).
    pub txn_size: usize,
    /// Probability an access is a *read* (the paper's `W:R` read side).
    pub read_frac: f64,
}

impl TxnConfig {
    /// Paper notation `W:R` (e.g. `50:50`, `100:0` = write-only).
    pub fn mix(num_keys: u64, dist: KeyDist, txn_size: usize, write_pct: u32) -> Self {
        TxnConfig {
            num_keys,
            dist,
            txn_size,
            read_frac: 1.0 - write_pct as f64 / 100.0,
        }
    }
}

/// Per-thread deterministic transaction stream.
#[derive(Debug, Clone)]
pub struct TxnGenerator {
    cfg: TxnConfig,
    sampler: Sampler,
}

impl TxnGenerator {
    pub fn new(cfg: TxnConfig, seed: u64) -> Self {
        assert!(cfg.txn_size >= 1);
        assert!((0.0..=1.0).contains(&cfg.read_frac));
        assert!(
            cfg.num_keys >= cfg.txn_size as u64,
            "key space smaller than txn size"
        );
        TxnGenerator {
            cfg,
            sampler: Sampler::new(cfg.dist, cfg.num_keys, seed),
        }
    }

    pub fn next_txn(&mut self) -> Txn {
        let mut accesses: Vec<(u64, AccessType)> = Vec::with_capacity(self.cfg.txn_size);
        while accesses.len() < self.cfg.txn_size {
            let key = self.sampler.next_key();
            if accesses.iter().any(|(k, _)| *k == key) {
                continue; // dedup within the transaction
            }
            let at = if self.sampler.next_f64() < self.cfg.read_frac {
                AccessType::Read
            } else {
                AccessType::Write
            };
            accesses.push((key, at));
        }
        let writes = accesses
            .iter()
            .filter(|(_, a)| *a == AccessType::Write)
            .count();
        let write_vals = (0..writes).map(|_| self.sampler.next_u64()).collect();
        Txn {
            accesses,
            write_vals,
        }
    }

    pub fn config(&self) -> &TxnConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_has_requested_size_and_unique_keys() {
        let cfg = TxnConfig::mix(1000, KeyDist::Zipfian { theta: 0.99 }, 10, 50);
        let mut g = TxnGenerator::new(cfg, 1);
        for _ in 0..100 {
            let t = g.next_txn();
            assert_eq!(t.accesses.len(), 10);
            let mut keys: Vec<u64> = t.accesses.iter().map(|(k, _)| *k).collect();
            keys.sort_unstable();
            keys.dedup();
            assert_eq!(keys.len(), 10, "duplicate key in txn");
        }
    }

    #[test]
    fn write_vals_match_write_count() {
        let cfg = TxnConfig::mix(100, KeyDist::Uniform, 5, 50);
        let mut g = TxnGenerator::new(cfg, 2);
        for _ in 0..100 {
            let t = g.next_txn();
            assert_eq!(t.write_vals.len(), t.writes());
        }
    }

    #[test]
    fn write_only_mix_has_no_reads() {
        let cfg = TxnConfig::mix(100, KeyDist::Uniform, 3, 100);
        let mut g = TxnGenerator::new(cfg, 3);
        for _ in 0..50 {
            let t = g.next_txn();
            assert_eq!(t.writes(), 3);
            assert!(!t.is_read_only());
        }
    }

    #[test]
    fn read_only_mix_is_read_only() {
        let cfg = TxnConfig::mix(100, KeyDist::Uniform, 3, 0);
        let mut g = TxnGenerator::new(cfg, 3);
        assert!(g.next_txn().is_read_only());
    }

    #[test]
    fn mixed_ratio_roughly_respected() {
        let cfg = TxnConfig::mix(10_000, KeyDist::Uniform, 10, 50);
        let mut g = TxnGenerator::new(cfg, 4);
        let mut writes = 0usize;
        let n = 1000;
        for _ in 0..n {
            writes += g.next_txn().writes();
        }
        let frac = writes as f64 / (n * 10) as f64;
        assert!((frac - 0.5).abs() < 0.05, "write frac {frac}");
    }

    #[test]
    #[should_panic(expected = "key space smaller")]
    fn oversized_txn_rejected() {
        TxnGenerator::new(TxnConfig::mix(2, KeyDist::Uniform, 3, 50), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = TxnConfig::mix(500, KeyDist::Zipfian { theta: 0.1 }, 5, 50);
        let mut a = TxnGenerator::new(cfg, 9);
        let mut b = TxnGenerator::new(cfg, 9);
        for _ in 0..50 {
            assert_eq!(a.next_txn(), b.next_txn());
        }
    }
}
