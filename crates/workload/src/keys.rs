//! Key distributions: uniform and Zipfian.
//!
//! The Zipfian sampler follows Gray et al., *"Quickly generating
//! billion-record synthetic databases"* (SIGMOD '94) — the same algorithm
//! YCSB uses — with an optional scramble (FNV-1a) so that hot keys are
//! spread over the key space instead of clustered at 0.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// Which distribution to draw keys from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    Uniform,
    /// Zipfian with parameter θ (paper uses 0.1 for low contention, 0.99
    /// for high contention).
    Zipfian {
        theta: f64,
    },
}

impl KeyDist {
    /// Short label used by the bench harness ("uniform", "zipf(0.99)").
    pub fn label(&self) -> String {
        match self {
            KeyDist::Uniform => "uniform".to_string(),
            KeyDist::Zipfian { theta } => format!("zipf({theta})"),
        }
    }
}

/// Draws keys in `[0, n)` from a [`KeyDist`].
#[derive(Debug, Clone)]
pub struct Sampler {
    n: u64,
    rng: SmallRng,
    kind: SamplerKind,
    scramble: bool,
}

#[derive(Debug, Clone)]
enum SamplerKind {
    Uniform,
    Zipfian {
        theta: f64,
        alpha: f64,
        zetan: f64,
        eta: f64,
    },
}

/// ζ(n, θ) = Σ_{i=1..n} 1/i^θ. O(n) but computed once per sampler; for the
/// key counts used here (≤ a few million) this is milliseconds.
fn zeta(n: u64, theta: f64) -> f64 {
    let mut sum = 0.0;
    for i in 1..=n {
        sum += 1.0 / (i as f64).powf(theta);
    }
    sum
}

impl Sampler {
    pub fn new(dist: KeyDist, n: u64, seed: u64) -> Self {
        assert!(n > 0, "empty key space");
        let kind = match dist {
            KeyDist::Uniform => SamplerKind::Uniform,
            KeyDist::Zipfian { theta } => {
                assert!(
                    (0.0..1.0).contains(&theta),
                    "theta must be in [0, 1): {theta}"
                );
                let zetan = zeta(n, theta);
                let zeta2theta = zeta(2.min(n), theta);
                let alpha = 1.0 / (1.0 - theta);
                let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan);
                let _ = zeta2theta;
                SamplerKind::Zipfian {
                    theta,
                    alpha,
                    zetan,
                    eta,
                }
            }
        };
        Sampler {
            n,
            rng: SmallRng::seed_from_u64(seed),
            kind,
            scramble: matches!(dist, KeyDist::Zipfian { .. }),
        }
    }

    /// Key space size.
    pub fn key_count(&self) -> u64 {
        self.n
    }

    /// Draw the next key in `[0, n)`.
    #[inline]
    pub fn next_key(&mut self) -> u64 {
        let rank = match &self.kind {
            SamplerKind::Uniform => self.rng.gen_range(0..self.n),
            SamplerKind::Zipfian {
                theta,
                alpha,
                zetan,
                eta,
            } => {
                // Gray et al. constant-time inversion.
                let u: f64 = self.rng.gen();
                let uz = u * zetan;
                if uz < 1.0 {
                    0
                } else if uz < 1.0 + 0.5f64.powf(*theta) {
                    1
                } else {
                    ((self.n as f64) * (eta * u - eta + 1.0).powf(*alpha)) as u64
                }
            }
        };
        let rank = rank.min(self.n - 1);
        if self.scramble {
            scramble(rank) % self.n
        } else {
            rank
        }
    }

    /// Access to the underlying RNG (for mix decisions that must share the
    /// deterministic stream).
    #[inline]
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// Next value uniform in `[0, bound)` from the shared stream.
    #[inline]
    pub fn next_u64_below(&mut self, bound: u64) -> u64 {
        self.rng.gen_range(0..bound)
    }

    /// Next f64 in `[0, 1)` from the shared stream.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        self.rng.gen()
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
}

/// FNV-1a based scramble, as in YCSB's `ScrambledZipfianGenerator`.
#[inline]
pub fn scramble(x: u64) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x1000_0000_01b3;
    let mut h = FNV_OFFSET;
    for i in 0..8 {
        h ^= (x >> (8 * i)) & 0xff;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_small_space() {
        let mut s = Sampler::new(KeyDist::Uniform, 4, 1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.next_key() as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn keys_always_in_range() {
        for dist in [
            KeyDist::Uniform,
            KeyDist::Zipfian { theta: 0.1 },
            KeyDist::Zipfian { theta: 0.99 },
        ] {
            let mut s = Sampler::new(dist, 1000, 7);
            for _ in 0..10_000 {
                assert!(s.next_key() < 1000);
            }
        }
    }

    #[test]
    fn zipf_high_theta_is_skewed() {
        let n = 10_000u64;
        let mut s = Sampler::new(KeyDist::Zipfian { theta: 0.99 }, n, 42);
        let mut counts = std::collections::HashMap::new();
        let draws = 100_000;
        for _ in 0..draws {
            *counts.entry(s.next_key()).or_insert(0u64) += 1;
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u64 = freqs.iter().take(10).sum();
        assert!(
            top10 as f64 / draws as f64 > 0.3,
            "θ=0.99: top-10 keys should dominate, got {top10}/{draws}"
        );
    }

    #[test]
    fn zipf_low_theta_is_nearly_uniform() {
        let n = 10_000u64;
        let mut s = Sampler::new(KeyDist::Zipfian { theta: 0.1 }, n, 42);
        let mut counts = std::collections::HashMap::new();
        let draws = 100_000;
        for _ in 0..draws {
            *counts.entry(s.next_key()).or_insert(0u64) += 1;
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u64 = freqs.iter().take(10).sum();
        assert!(
            (top10 as f64 / draws as f64) < 0.05,
            "θ=0.1 should be near-uniform, top-10 got {top10}/{draws}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Sampler::new(KeyDist::Zipfian { theta: 0.99 }, 100, 5);
        let mut b = Sampler::new(KeyDist::Zipfian { theta: 0.99 }, 100, 5);
        for _ in 0..1000 {
            assert_eq!(a.next_key(), b.next_key());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Sampler::new(KeyDist::Uniform, 1 << 40, 1);
        let mut b = Sampler::new(KeyDist::Uniform, 1 << 40, 2);
        let same = (0..100).filter(|_| a.next_key() == b.next_key()).count();
        assert!(same < 5);
    }

    #[test]
    fn scramble_is_deterministic_and_spreading() {
        assert_eq!(scramble(1), scramble(1));
        assert_ne!(scramble(1), scramble(2));
        // Consecutive ranks should not map to consecutive keys.
        let d = scramble(11).abs_diff(scramble(10));
        assert!(d > 1000);
    }

    #[test]
    #[should_panic(expected = "theta must be in [0, 1)")]
    fn theta_one_rejected() {
        Sampler::new(KeyDist::Zipfian { theta: 1.0 }, 10, 0);
    }

    #[test]
    #[should_panic(expected = "empty key space")]
    fn empty_keyspace_rejected() {
        Sampler::new(KeyDist::Uniform, 0, 0);
    }

    #[test]
    fn zeta_matches_hand_computation() {
        let z = zeta(3, 1.0_f64.min(0.99));
        let expect = 1.0 + 1.0 / 2f64.powf(0.99) + 1.0 / 3f64.powf(0.99);
        assert!((z - expect).abs() < 1e-12);
    }
}
