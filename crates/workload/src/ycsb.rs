//! Extended YCSB-A op streams (paper Sec. 7.1).
//!
//! Mixes are written `R:BU` (reads : blind updates) plus an optional RMW
//! fraction ("0:100 RMW" in the paper = 100% read-modify-write). RMW
//! updates add a number from a small user-provided input array, modelling a
//! running per-key sum.

use crate::keys::{KeyDist, Sampler};

/// A single key-value operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    Read,
    /// Blind upsert of a new value.
    Upsert,
    /// Read-modify-write: add `delta` to the stored value.
    Rmw,
}

/// One generated operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Op {
    pub kind: OpKind,
    pub key: u64,
    /// Upsert value or RMW delta.
    pub arg: u64,
}

/// Workload description.
#[derive(Debug, Clone, Copy)]
pub struct YcsbConfig {
    pub num_keys: u64,
    pub dist: KeyDist,
    /// Fractions summing to 1.0.
    pub read_frac: f64,
    pub upsert_frac: f64,
    pub rmw_frac: f64,
}

impl YcsbConfig {
    /// The paper's `R:BU` notation, e.g. `50:50`.
    pub fn read_update(num_keys: u64, dist: KeyDist, read_pct: u32) -> Self {
        let read_frac = read_pct as f64 / 100.0;
        YcsbConfig {
            num_keys,
            dist,
            read_frac,
            upsert_frac: 1.0 - read_frac,
            rmw_frac: 0.0,
        }
    }

    /// The paper's `0:100 RMW` workload.
    pub fn rmw_only(num_keys: u64, dist: KeyDist) -> Self {
        YcsbConfig {
            num_keys,
            dist,
            read_frac: 0.0,
            upsert_frac: 0.0,
            rmw_frac: 1.0,
        }
    }

    pub fn validate(&self) {
        let sum = self.read_frac + self.upsert_frac + self.rmw_frac;
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "op fractions must sum to 1, got {sum}"
        );
    }
}

/// Per-thread deterministic op stream.
#[derive(Debug, Clone)]
pub struct YcsbGenerator {
    cfg: YcsbConfig,
    sampler: Sampler,
    /// The paper's RMW deltas come from a user-provided 8-entry array.
    deltas: [u64; 8],
    tick: u64,
}

impl YcsbGenerator {
    pub fn new(cfg: YcsbConfig, seed: u64) -> Self {
        cfg.validate();
        YcsbGenerator {
            cfg,
            sampler: Sampler::new(cfg.dist, cfg.num_keys, seed),
            deltas: [1, 3, 5, 7, 11, 13, 17, 19],
            tick: 0,
        }
    }

    #[inline]
    pub fn next_op(&mut self) -> Op {
        let key = self.sampler.next_key();
        let r = self.sampler.next_f64();
        self.tick = self.tick.wrapping_add(1);
        let kind = if r < self.cfg.read_frac {
            OpKind::Read
        } else if r < self.cfg.read_frac + self.cfg.upsert_frac {
            OpKind::Upsert
        } else {
            OpKind::Rmw
        };
        let arg = match kind {
            OpKind::Read => 0,
            OpKind::Upsert => self.sampler.next_u64(),
            OpKind::Rmw => self.deltas[(self.tick % 8) as usize],
        };
        Op { kind, key, arg }
    }

    pub fn config(&self) -> &YcsbConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix_counts(cfg: YcsbConfig, n: usize) -> (usize, usize, usize) {
        let mut g = YcsbGenerator::new(cfg, 99);
        let (mut r, mut u, mut m) = (0, 0, 0);
        for _ in 0..n {
            match g.next_op().kind {
                OpKind::Read => r += 1,
                OpKind::Upsert => u += 1,
                OpKind::Rmw => m += 1,
            }
        }
        (r, u, m)
    }

    #[test]
    fn mix_50_50_is_balanced() {
        let cfg = YcsbConfig::read_update(1000, KeyDist::Uniform, 50);
        let (r, u, m) = mix_counts(cfg, 100_000);
        assert_eq!(m, 0);
        assert!((r as f64 - 50_000.0).abs() < 2_000.0, "reads {r}");
        assert!((u as f64 - 50_000.0).abs() < 2_000.0, "upserts {u}");
    }

    #[test]
    fn mix_90_10_mostly_reads() {
        let cfg = YcsbConfig::read_update(1000, KeyDist::Uniform, 90);
        let (r, _, _) = mix_counts(cfg, 100_000);
        assert!((r as f64 / 100_000.0 - 0.9).abs() < 0.02);
    }

    #[test]
    fn rmw_only_generates_only_rmw() {
        let cfg = YcsbConfig::rmw_only(1000, KeyDist::Uniform);
        let (r, u, m) = mix_counts(cfg, 10_000);
        assert_eq!((r, u), (0, 0));
        assert_eq!(m, 10_000);
    }

    #[test]
    fn rmw_deltas_come_from_eight_entry_array() {
        let cfg = YcsbConfig::rmw_only(16, KeyDist::Uniform);
        let mut g = YcsbGenerator::new(cfg, 3);
        let allowed: std::collections::HashSet<u64> =
            [1, 3, 5, 7, 11, 13, 17, 19].into_iter().collect();
        for _ in 0..1000 {
            let op = g.next_op();
            assert!(allowed.contains(&op.arg), "delta {} not allowed", op.arg);
        }
    }

    #[test]
    #[should_panic(expected = "fractions must sum to 1")]
    fn bad_fractions_rejected() {
        let cfg = YcsbConfig {
            num_keys: 10,
            dist: KeyDist::Uniform,
            read_frac: 0.5,
            upsert_frac: 0.2,
            rmw_frac: 0.0,
        };
        YcsbGenerator::new(cfg, 0);
    }

    #[test]
    fn generator_is_deterministic() {
        let cfg = YcsbConfig::read_update(100, KeyDist::Zipfian { theta: 0.99 }, 50);
        let mut a = YcsbGenerator::new(cfg, 5);
        let mut b = YcsbGenerator::new(cfg, 5);
        for _ in 0..100 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }
}
