//! Standalone CPR server: serve an engine over TCP.
//!
//! ```text
//! cpr-net-server --addr 127.0.0.1:7171 --engine faster --dir /tmp/db \
//!     [--variant fold-over|snapshot] [--checkpoint-every-ms 200]
//! ```
//!
//! Always opens the store in recovery mode: on a fresh directory that is
//! an empty store; after a crash it recovers the last durable checkpoint
//! and reconnecting clients learn their commit points through the
//! resume handshake. Prints `READY <addr> version=<v>` on stdout once
//! serving (the smoke script waits for it), then blocks until killed.

use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

use cpr_faster::FasterBuilder;
use cpr_memdb::{Durability, MemDb};
use cpr_net::wire::checkpoint_variant;
use cpr_net::{NetEngine, NetServer};

struct Opts {
    addr: String,
    engine: String,
    dir: String,
    variant: u8,
    checkpoint_every: Option<Duration>,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        addr: "127.0.0.1:7171".into(),
        engine: "faster".into(),
        dir: String::new(),
        variant: checkpoint_variant::FOLD_OVER,
        checkpoint_every: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--addr" => opts.addr = value("--addr"),
            "--engine" => opts.engine = value("--engine"),
            "--dir" => opts.dir = value("--dir"),
            "--variant" => {
                opts.variant = match value("--variant").as_str() {
                    "fold-over" => checkpoint_variant::FOLD_OVER,
                    "snapshot" => checkpoint_variant::SNAPSHOT,
                    v => die(&format!("unknown variant {v}")),
                }
            }
            "--checkpoint-every-ms" => {
                let ms: u64 = value("--checkpoint-every-ms")
                    .parse()
                    .unwrap_or_else(|_| die("--checkpoint-every-ms needs a number"));
                opts.checkpoint_every = Some(Duration::from_millis(ms));
            }
            "--help" | "-h" => {
                println!(
                    "usage: cpr-net-server --dir PATH [--addr HOST:PORT] \
                     [--engine faster|memdb] [--variant fold-over|snapshot] \
                     [--checkpoint-every-ms N]"
                );
                std::process::exit(0);
            }
            f => die(&format!("unknown flag {f}")),
        }
    }
    if opts.dir.is_empty() {
        die("--dir is required");
    }
    opts
}

fn die(msg: &str) -> ! {
    eprintln!("cpr-net-server: {msg}");
    std::process::exit(2);
}

fn serve<E: NetEngine>(engine: Arc<E>, opts: &Opts) {
    let listener = TcpListener::bind(&opts.addr)
        .unwrap_or_else(|e| die(&format!("bind {}: {e}", opts.addr)));
    let server = NetServer::serve(Arc::clone(&engine), listener)
        .unwrap_or_else(|e| die(&format!("serve: {e}")));
    println!(
        "READY {} version={}",
        server.addr(),
        engine.committed_version()
    );
    // Line-buffered stdout may sit on READY forever under a pipe.
    use std::io::Write;
    let _ = std::io::stdout().flush();

    if let Some(every) = opts.checkpoint_every {
        let variant = opts.variant;
        std::thread::spawn(move || loop {
            std::thread::sleep(every);
            engine.request_checkpoint(variant, false);
        });
    }
    // Serve until killed (the smoke test SIGKILLs mid-checkpoint).
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn main() {
    let opts = parse_args();
    match opts.engine.as_str() {
        "faster" => {
            let (kv, manifest) = FasterBuilder::u64_sums(&opts.dir)
                .recover()
                .unwrap_or_else(|e| die(&format!("recover {}: {e}", opts.dir)));
            eprintln!(
                "recovered: {}",
                manifest
                    .as_ref()
                    .map(|m| format!("version {} (token {})", m.version, m.token))
                    .unwrap_or_else(|| "fresh store".into())
            );
            serve(Arc::new(kv), &opts);
        }
        "memdb" => {
            let (db, manifest) = MemDb::<u64>::builder(Durability::Cpr)
                .dir(&opts.dir)
                .recover()
                .unwrap_or_else(|e| die(&format!("recover {}: {e}", opts.dir)));
            eprintln!(
                "recovered: {}",
                manifest
                    .as_ref()
                    .map(|m| format!("version {} (token {})", m.version, m.token))
                    .unwrap_or_else(|| "fresh store".into())
            );
            serve(Arc::new(db), &opts);
        }
        e => die(&format!("unknown engine {e} (faster|memdb)")),
    }
}
