//! End-to-end server-crash smoke test, driven as a real multi-process
//! scenario (CI runs this via `scripts/net_smoke.sh`):
//!
//! 1. spawn `cpr-net-server` on a scratch directory;
//! 2. push 100 durable ops (checkpoint 1), then 100 acked-but-undurable
//!    ops, then request checkpoint 2 and `SIGKILL` the server the moment
//!    the checkpoint is acked as started — i.e. mid-checkpoint, between
//!    PREPARE and WAIT-FLUSH;
//! 3. restart the server (it recovers the last durable checkpoint),
//!    verify the wire-visible state is exactly the committed prefix;
//! 4. reconnect with the surviving replay buffer: the client learns the
//!    recovered commit point `t`, replays exactly serials `t+1..=200`,
//!    and a final checkpoint makes the whole stream durable.
//!
//! The kill races the commit on purpose — that is the scenario. If the
//! checkpoint wins, the recovered point is 200 and nothing replays; if
//! the kill wins (the common case: the commit needs several session
//! refresh cycles), the point is 100 and the suffix replays. Both sides
//! of the race must satisfy the CPR contract, and the test asserts the
//! full scan equals the 200-op stream either way.
//!
//! ```text
//! cpr-net-smoke --server target/release/cpr-net-server --dir /tmp/db \
//!     [--engine faster|memdb] [--variant fold-over|snapshot]
//! ```

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use cpr_net::wire::checkpoint_variant;
use cpr_net::{NetClient, ReplayBuffer};

const GUID: u64 = 7;
const OPS: u64 = 200;
const DURABLE: u64 = 100;

struct Opts {
    server: String,
    dir: String,
    engine: String,
    variant: &'static str,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        server: String::new(),
        dir: String::new(),
        engine: "faster".into(),
        variant: "fold-over",
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--server" => opts.server = value("--server"),
            "--dir" => opts.dir = value("--dir"),
            "--engine" => opts.engine = value("--engine"),
            "--variant" => {
                opts.variant = match value("--variant").as_str() {
                    "fold-over" => "fold-over",
                    "snapshot" => "snapshot",
                    v => die(&format!("unknown variant {v}")),
                }
            }
            f => die(&format!("unknown flag {f}")),
        }
    }
    if opts.server.is_empty() {
        // Default: the server binary sitting next to this one.
        let mut exe = std::env::current_exe().expect("current_exe");
        exe.set_file_name("cpr-net-server");
        opts.server = exe.to_string_lossy().into_owned();
    }
    if opts.dir.is_empty() {
        die("--dir is required");
    }
    opts
}

fn die(msg: &str) -> ! {
    eprintln!("cpr-net-smoke: {msg}");
    std::process::exit(2);
}

/// Spawn the server and block until its `READY <addr> version=<v>` line.
fn spawn_server(opts: &Opts) -> (Child, String, u64) {
    let mut child = Command::new(&opts.server)
        .args([
            "--addr",
            "127.0.0.1:0",
            "--engine",
            &opts.engine,
            "--dir",
            &opts.dir,
            "--variant",
            opts.variant,
        ])
        .stdout(Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| die(&format!("spawn {}: {e}", opts.server)));
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .unwrap_or_else(|e| die(&format!("reading READY line: {e}")));
    let mut parts = line.split_whitespace();
    let (ready, addr, version) = (parts.next(), parts.next(), parts.next());
    if ready != Some("READY") {
        let _ = child.kill();
        die(&format!("expected READY line, got {line:?}"));
    }
    let addr = addr.expect("READY addr").to_string();
    let version: u64 = version
        .and_then(|v| v.strip_prefix("version="))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| die(&format!("malformed READY line {line:?}")));
    (child, addr, version)
}

fn variant_byte(v: &str) -> u8 {
    match v {
        "snapshot" => checkpoint_variant::SNAPSHOT,
        _ => checkpoint_variant::FOLD_OVER,
    }
}

/// Phase one: durable prefix, undurable suffix, SIGKILL mid-checkpoint.
fn run_until_kill(opts: &Opts) -> ReplayBuffer {
    let (mut server, addr, version) = spawn_server(opts);
    assert_eq!(version, 0, "fresh directory must start at version 0");
    let mut c = NetClient::connect(&addr, GUID).expect("connect");

    for k in 0..DURABLE {
        c.upsert(k, k + 1).expect("upsert");
    }
    c.sync().expect("sync");
    assert!(c
        .request_checkpoint(variant_byte(opts.variant), false)
        .expect("checkpoint 1"));
    let cp = c
        .wait_commit(1, Duration::from_secs(30))
        .expect("commit 1");
    assert_eq!(
        (cp.version, cp.until_serial),
        (1, DURABLE),
        "checkpoint 1 must cover the first {DURABLE} serials"
    );

    for k in DURABLE..OPS {
        c.upsert(k, k + 1).expect("upsert");
    }
    c.sync().expect("sync");
    assert_eq!(c.uncommitted() as u64, OPS - DURABLE);

    // The ack means the checkpoint started (PREPARE is underway); the
    // commit still needs every session to cross InProgress and the flush
    // to land, so SIGKILLing now lands mid-checkpoint.
    assert!(c
        .request_checkpoint(variant_byte(opts.variant), false)
        .expect("checkpoint 2"));
    server.kill().expect("SIGKILL server");
    server.wait().expect("reap server");
    eprintln!("[smoke] server killed mid-checkpoint, {} ops in flight", c.uncommitted());
    c.take_buffer()
}

/// Phase two: restart, verify the recovered prefix, resume, verify all.
fn recover_and_verify(opts: &Opts, buffer: ReplayBuffer) {
    let (mut server, addr, recovered) = spawn_server(opts);
    assert!(
        recovered == 1 || recovered == 2,
        "recovered version must be checkpoint 1 or (if the commit won the \
         race) checkpoint 2, got {recovered}"
    );
    let durable_serials = if recovered == 1 { DURABLE } else { OPS };

    // The wire-visible state after recovery is exactly the committed
    // prefix: serials 1..=durable_serials, i.e. keys 0..durable_serials.
    let mut observer = NetClient::connect(&addr, 999).expect("observer connect");
    let scan = observer.scan().expect("scan");
    assert_eq!(scan.len() as u64, durable_serials, "recovered prefix");
    assert!(
        scan.iter()
            .enumerate()
            .all(|(i, &(k, v))| k == i as u64 && v == k + 1),
        "recovered prefix content"
    );

    // Resume: learn t, replay exactly t+1..=200.
    let mut c = NetClient::connect_with(&addr, GUID, buffer).expect("resume");
    assert_eq!(c.resume_point().version, recovered);
    assert_eq!(c.resume_point().until_serial, durable_serials, "commit point t");
    assert_eq!(c.replayed() as u64, OPS - durable_serials, "replay = suffix only");
    assert_eq!(c.next_serial(), OPS + 1, "serials continue past N");

    let scan = observer.scan().expect("scan after replay");
    assert_eq!(scan.len() as u64, OPS, "full stream visible after replay");
    assert!(scan
        .iter()
        .enumerate()
        .all(|(i, &(k, v))| k == i as u64 && v == k + 1));

    // The replayed suffix becomes durable under the next checkpoint.
    assert!(c
        .request_checkpoint(variant_byte(opts.variant), false)
        .expect("checkpoint 3"));
    let cp = c
        .wait_commit(recovered + 1, Duration::from_secs(30))
        .expect("commit after resume");
    assert_eq!(cp.until_serial, OPS);
    assert_eq!(c.uncommitted(), 0);
    println!(
        "SMOKE OK engine={} variant={} recovered_version={recovered} replayed={}",
        opts.engine,
        opts.variant,
        OPS - durable_serials
    );

    let _ = observer.goodbye();
    let _ = c.goodbye();
    let _ = server.kill();
    let _ = server.wait();
}

fn main() {
    let opts = parse_args();
    let buffer = run_until_kill(&opts);
    assert!(
        !buffer.is_empty(),
        "the undurable suffix must survive in the replay buffer"
    );
    recover_and_verify(&opts, buffer);
}
