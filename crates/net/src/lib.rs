//! Network sessions for CPR engines (paper Sec. 2: the client contract).
//!
//! The paper's recovery guarantee is phrased per *client session*: each
//! session numbers its operations and, after a failure, learns a commit
//! point `t` such that exactly the prefix of its ops up to `t` (minus
//! any exclusions) survived. This crate makes that contract literal by
//! putting the client on the other side of a socket:
//!
//! - [`wire`] — a length-prefixed binary protocol carrying op batches
//!   tagged with client-assigned serials, checkpoint requests, scans,
//!   and server-pushed [`cpr_core::CommitPoint`] notifications;
//! - [`engine`] — the [`engine::NetEngine`] trait adapting both engines
//!   ([`cpr_faster::FasterKv`] and [`cpr_memdb::MemDb`]) to the server;
//! - [`server`] — a thread-per-connection server mapping each connection
//!   onto an epoch-protected engine session;
//! - [`client`] — a pipelining client that buffers the un-durable suffix
//!   of its op stream and, on reconnect, replays exactly the ops beyond
//!   the recovered commit point.

pub mod client;
pub mod engine;
pub mod server;
pub mod wire;

pub use client::{NetClient, OpResult, ReplayBuffer};
pub use engine::{NetEngine, NetSession};
pub use server::NetServer;
pub use wire::{checkpoint_variant, Frame, OpKind, OpStatus, WireOp};
