//! Thread-per-connection server mapping TCP connections onto engine
//! sessions.
//!
//! Each accepted connection gets two threads: a **reader** that owns the
//! engine session (sessions are thread-affine) and a **writer** that
//! drains a channel of outbound frames. Commit-point pushes originate on
//! the engine's checkpoint thread; routing them through the writer
//! channel means a slow client socket can never block a checkpoint.
//!
//! The reader polls its socket with a short timeout so an idle
//! connection still refreshes its session — an unrefreshed session would
//! stall the CPR state machine for everyone (the paper's cooperative
//! epoch protocol), and refreshing from the read loop keeps the
//! no-dedicated-threads spirit: the connection thread *is* the session
//! thread.
//!
//! Per-connection protocol state: serials are validated here, not in the
//! engine. A batch may overlap the session's resume point after a
//! reconnect — ops at or below the current serial were already applied
//! by a previous incarnation and are acked `Skipped` without touching
//! the engine (idempotent replay); the remainder must continue the
//! serial sequence contiguously.

use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cpr_core::CommitPoint;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::engine::{NetEngine, NetSession};
use crate::wire::{error_code, Frame, FrameReader, OpReply, OpStatus, WireOp};

/// How often an idle reader wakes to refresh its session.
const POLL: Duration = Duration::from_millis(5);
/// How long a fresh connection may take to say Hello.
const HELLO_DEADLINE: Duration = Duration::from_secs(10);
/// Scan results are streamed in chunks of this many entries.
const SCAN_CHUNK: usize = 64 * 1024;

type Conns = Arc<Mutex<HashMap<u64, Sender<Frame>>>>;

/// A running server; dropping it (or calling [`NetServer::shutdown`])
/// stops the accept loop and disconnects every client.
pub struct NetServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl NetServer {
    /// Serve `engine` on `listener` until shutdown. The engine is shared:
    /// callers keep their own handle (e.g. to inject faults or inspect
    /// state) while the server runs.
    pub fn serve<E: NetEngine>(engine: Arc<E>, listener: TcpListener) -> io::Result<NetServer> {
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Conns = Arc::new(Mutex::new(HashMap::new()));
        let workers = Arc::new(Mutex::new(Vec::new()));

        // Push a commit point to every connected session named in the
        // manifest. Runs on the checkpoint thread; sends are unbounded
        // channel writes, never socket writes.
        {
            let conns = Arc::clone(&conns);
            engine.on_commit(Box::new(move |version, sessions| {
                let conns = conns.lock();
                for s in sessions {
                    if let Some(tx) = conns.get(&s.guid) {
                        let _ = tx.send(Frame::CommitPoint(CommitPoint::prefix(
                            version,
                            s.cpr_point,
                        )));
                    }
                }
            }));
        }

        let accept = {
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            let workers = Arc::clone(&workers);
            std::thread::Builder::new()
                .name("cpr-net-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let engine = Arc::clone(&engine);
                        let conns = Arc::clone(&conns);
                        let stop = Arc::clone(&stop);
                        let handle = std::thread::Builder::new()
                            .name("cpr-net-conn".into())
                            .spawn(move || {
                                let _ = Connection::run(engine, stream, conns, stop);
                            })
                            .expect("spawn connection thread");
                        workers.lock().push(handle);
                    }
                })?
        };

        Ok(NetServer {
            addr,
            stop,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, disconnect clients, join all threads.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = self.workers.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

struct Connection<E: NetEngine> {
    session: E::Session,
    guid: u64,
    tx: Sender<Frame>,
}

impl<E: NetEngine> Connection<E> {
    fn run(
        engine: Arc<E>,
        stream: TcpStream,
        conns: Conns,
        stop: Arc<AtomicBool>,
    ) -> io::Result<()> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(POLL))?;
        let mut reader = FrameReader::new();
        let mut stream = stream;

        // Handshake: the first frame must be Hello.
        let deadline = Instant::now() + HELLO_DEADLINE;
        let guid = loop {
            if stop.load(Ordering::Acquire) || Instant::now() > deadline {
                return Ok(());
            }
            match reader.poll(&mut stream)? {
                Some(Frame::Hello { guid }) => break guid,
                Some(_) => {
                    send_now(
                        &mut stream,
                        &Frame::Error {
                            code: error_code::PROTOCOL,
                            msg: "expected Hello".into(),
                        },
                    );
                    return Ok(());
                }
                None => {}
            }
        };

        // One connection per guid: a session is single-threaded state.
        let (tx, rx) = unbounded::<Frame>();
        {
            let mut map = conns.lock();
            if map.contains_key(&guid) {
                drop(map);
                send_now(
                    &mut stream,
                    &Frame::Error {
                        code: error_code::GUID_IN_USE,
                        msg: format!("guid {guid} already connected"),
                    },
                );
                return Ok(());
            }
            map.insert(guid, tx.clone());
        }

        // Writer thread: owns the write half, drains the channel.
        let writer = {
            let stream = stream.try_clone()?;
            std::thread::Builder::new()
                .name("cpr-net-writer".into())
                .spawn(move || writer_loop(stream, rx))
                .expect("spawn writer thread")
        };

        let (session, resume_from) = engine.continue_session(guid);
        let mut conn = Connection {
            session,
            guid,
            tx,
        };
        let _ = conn.tx.send(Frame::HelloAck {
            guid,
            resume: CommitPoint::prefix(engine.committed_version(), resume_from),
        });

        let result = conn.serve_loop(&engine, &mut stream, &mut reader, &stop);

        conns.lock().remove(&guid);
        // Dropping the sender (and the conns entry) closes the channel;
        // the writer flushes what's queued and exits.
        drop(conn);
        let _ = writer.join();
        result
    }

    fn serve_loop(
        &mut self,
        engine: &Arc<E>,
        stream: &mut TcpStream,
        reader: &mut FrameReader,
        stop: &AtomicBool,
    ) -> io::Result<()> {
        loop {
            if stop.load(Ordering::Acquire) {
                return Ok(());
            }
            let frame = match reader.poll(stream) {
                Ok(Some(f)) => f,
                Ok(None) => {
                    // Idle: keep the CPR state machine moving.
                    self.session.refresh();
                    continue;
                }
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => return Ok(()),
                Err(e) => return Err(e),
            };
            match frame {
                Frame::OpBatch { ops } => {
                    if !self.handle_batch(ops)? {
                        return Ok(());
                    }
                }
                Frame::CheckpointReq { variant, log_only } => {
                    let started = engine.request_checkpoint(variant, log_only);
                    let _ = self.tx.send(Frame::CheckpointAck { started });
                }
                Frame::ScanReq => match engine.scan() {
                    Ok(entries) => {
                        let mut chunks = entries.chunks(SCAN_CHUNK).peekable();
                        if chunks.peek().is_none() {
                            let _ = self.tx.send(Frame::ScanChunk {
                                last: true,
                                entries: Vec::new(),
                            });
                        }
                        while let Some(chunk) = chunks.next() {
                            let _ = self.tx.send(Frame::ScanChunk {
                                last: chunks.peek().is_none(),
                                entries: chunk.to_vec(),
                            });
                        }
                    }
                    Err(e) => {
                        let _ = self.tx.send(Frame::Error {
                            code: error_code::IO,
                            msg: format!("scan failed: {e}"),
                        });
                    }
                },
                Frame::Goodbye => return Ok(()),
                other => {
                    let _ = self.tx.send(Frame::Error {
                        code: error_code::PROTOCOL,
                        msg: format!("unexpected frame {other:?}"),
                    });
                    return Ok(());
                }
            }
        }
    }

    /// Apply one batch; returns `false` if the connection must close
    /// (protocol violation or session eviction).
    fn handle_batch(&mut self, ops: Vec<WireOp>) -> io::Result<bool> {
        // Split the replayed-overlap prefix (already applied before a
        // reconnect) from ops to apply, preserving order for the ack.
        let current = self.session.serial();
        let mut replies: Vec<OpReply> = Vec::with_capacity(ops.len());
        let mut to_apply: Vec<WireOp> = Vec::with_capacity(ops.len());
        let mut expected = current;
        for op in &ops {
            if op.serial <= current {
                replies.push(OpReply {
                    serial: op.serial,
                    status: OpStatus::Skipped,
                    value: None,
                });
                continue;
            }
            expected += 1;
            if op.serial != expected {
                let _ = self.tx.send(Frame::Error {
                    code: error_code::PROTOCOL,
                    msg: format!(
                        "serial gap: got {}, expected {} (guid {})",
                        op.serial, expected, self.guid
                    ),
                });
                return Ok(false);
            }
            to_apply.push(*op);
        }
        let applied = self.session.apply_batch(&to_apply);
        let evicted = applied.iter().any(|r| r.status == OpStatus::Evicted);
        replies.extend(applied);
        // Keep acks in the order ops arrived (skips were all leading,
        // since serials in a batch are ascending).
        replies.sort_by_key(|r| r.serial);
        let _ = self.tx.send(Frame::BatchAck { replies });
        if evicted {
            // The engine rolled this session back to its CPR point; the
            // client must reconnect and replay from there.
            let _ = self.tx.send(Frame::Error {
                code: error_code::EVICTED,
                msg: format!("session {} evicted during checkpoint", self.guid),
            });
            return Ok(false);
        }
        Ok(true)
    }
}

fn writer_loop(mut stream: TcpStream, rx: Receiver<Frame>) {
    while let Ok(frame) = rx.recv() {
        if stream.write_all(&frame.encode()).is_err() {
            return;
        }
    }
    let _ = stream.flush();
}

fn send_now(stream: &mut TcpStream, frame: &Frame) {
    let _ = stream.write_all(&frame.encode());
}
