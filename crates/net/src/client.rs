//! Client library: pipelined batches, a bounded in-flight window, and
//! the CPR resume dance.
//!
//! The client assigns every op a serial and keeps it buffered until a
//! server-pushed [`CommitPoint`] covers it — a `BatchAck` means
//! *applied*, not *durable*. On reconnect the handshake returns the
//! serial to resume from: the client discards covered ops, re-issues the
//! uncommitted suffix (and any excluded serials) with a contiguous
//! serial sequence continuing from the resume point, and carries on.
//! Against a recovered server this replays exactly the ops beyond the
//! recovered commit point; against a live server the resume point is the
//! session's last accepted serial and only genuinely-lost ops (sent but
//! never received) are replayed — nothing is ever applied twice.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cpr_core::CommitPoint;
use cpr_metrics::Registry;

use crate::wire::{Frame, FrameReader, OpKind, WireOp};

/// Socket poll granularity while waiting on the server.
const POLL: Duration = Duration::from_millis(5);
/// Default cap on sent-but-unacked batches.
const DEFAULT_WINDOW: usize = 8;
/// Default ops per batch when using [`NetClient::submit`].
const DEFAULT_BATCH: usize = 256;

/// A completed operation as reported to the application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpResult {
    pub serial: u64,
    pub kind: OpKind,
    pub key: u64,
    pub status: crate::wire::OpStatus,
    pub value: Option<u64>,
}

/// The un-durable suffix of a client's op stream, carried across a
/// reconnect. Obtained from [`NetClient::take_buffer`] (or built empty
/// for a fresh session) and consumed by [`NetClient::connect_with`].
#[derive(Debug, Default, Clone)]
pub struct ReplayBuffer {
    /// Ops beyond the last known commit point, serial-ascending.
    ops: Vec<WireOp>,
}

impl ReplayBuffer {
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// The replay set against resume point `resume`: ops not covered
    /// (beyond `until_serial`, or excluded), renumbered contiguously
    /// from `resume.until_serial + 1` in original order. Pure — the
    /// core of the resume dance, unit-tested below.
    pub fn resolve(&self, resume: &CommitPoint) -> Vec<WireOp> {
        let mut next = resume.until_serial;
        self.ops
            .iter()
            .filter(|op| !resume.covers(op.serial))
            .map(|op| {
                next += 1;
                WireOp {
                    serial: next,
                    ..*op
                }
            })
            .collect()
    }
}

/// A connection to a [`crate::server::NetServer`], bound to one session
/// guid.
pub struct NetClient {
    stream: TcpStream,
    reader: FrameReader,
    guid: u64,
    /// Serial of the last op enqueued.
    next_serial: u64,
    /// Ops accumulated for the next batch.
    batch: Vec<WireOp>,
    /// Ops per batch for `submit` auto-flush.
    batch_size: usize,
    /// Sent batches not yet acked: (first_serial, op count, kinds/keys
    /// for result reporting).
    inflight: VecDeque<Vec<WireOp>>,
    /// Send timestamp per in-flight batch, for RTT metrics.
    sent_at: VecDeque<Instant>,
    /// Max sent-but-unacked batches before `flush` blocks on acks.
    window: usize,
    /// Every sent op whose serial is beyond `committed.until_serial`.
    retained: VecDeque<WireOp>,
    /// Commit point learned at the handshake.
    resume: CommitPoint,
    /// Latest commit point (handshake or server push).
    committed: CommitPoint,
    /// Completed results not yet taken by the application.
    results: Vec<OpResult>,
    /// Ops replayed by the last `connect_with` resume.
    replayed: usize,
    /// Sink for batch round-trip latencies ([`Registry::record_commit`]
    /// per acked batch). Defaults to a no-op registry.
    metrics: Arc<Registry>,
}

impl NetClient {
    /// Connect a fresh session (nothing to replay).
    pub fn connect(addr: impl ToSocketAddrs, guid: u64) -> io::Result<NetClient> {
        Self::connect_with(addr, guid, ReplayBuffer::default())
    }

    /// Connect and run the resume dance: handshake, learn the commit
    /// point for `guid`, replay `buffer`'s uncovered suffix.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        guid: u64,
        buffer: ReplayBuffer,
    ) -> io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(POLL))?;
        let mut client = NetClient {
            stream,
            reader: FrameReader::new(),
            guid,
            next_serial: 0,
            batch: Vec::new(),
            batch_size: DEFAULT_BATCH,
            inflight: VecDeque::new(),
            sent_at: VecDeque::new(),
            window: DEFAULT_WINDOW,
            retained: VecDeque::new(),
            resume: CommitPoint::prefix(0, 0),
            committed: CommitPoint::prefix(0, 0),
            results: Vec::new(),
            replayed: 0,
            metrics: Registry::noop(),
        };
        client.send(&Frame::Hello { guid })?;
        let resume = match client.recv_blocking(Duration::from_secs(10))? {
            Frame::HelloAck { guid: g, resume } if g == guid => resume,
            Frame::Error { code, msg } => {
                return Err(io::Error::other(format!("handshake refused ({code}): {msg}")))
            }
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("expected HelloAck, got {other:?}"),
                ))
            }
        };
        client.next_serial = resume.until_serial;
        client.resume = resume.clone();
        client.committed = CommitPoint::prefix(resume.version, 0);

        // Replay the uncovered suffix. These are ordinary batches: the
        // server skips nothing (all serials are beyond its resume point)
        // and acks them like new work.
        let replay = buffer.resolve(&resume);
        client.replayed = replay.len();
        for op in replay {
            client.next_serial = op.serial;
            client.batch.push(op);
            if client.batch.len() >= client.batch_size {
                client.flush()?;
            }
        }
        client.flush()?;
        client.wait_acks(Duration::from_secs(30))?;
        Ok(client)
    }

    /// The commit point learned at the handshake — after a server crash
    /// and recovery, the durable prefix for this guid.
    pub fn resume_point(&self) -> &CommitPoint {
        &self.resume
    }

    /// The latest commit point the server has pushed.
    pub fn committed(&self) -> &CommitPoint {
        &self.committed
    }

    /// Ops replayed during the last connect (0 for a fresh session).
    pub fn replayed(&self) -> usize {
        self.replayed
    }

    pub fn guid(&self) -> u64 {
        self.guid
    }

    /// Serial that will be assigned to the next op.
    pub fn next_serial(&self) -> u64 {
        self.next_serial + 1
    }

    /// Ops not yet covered by a commit point (would be replayed if the
    /// server crashed now).
    pub fn uncommitted(&self) -> usize {
        self.retained.len() + self.inflight.iter().map(Vec::len).sum::<usize>() + self.batch.len()
    }

    pub fn set_window(&mut self, batches: usize) {
        self.window = batches.max(1);
    }

    pub fn set_batch_size(&mut self, ops: usize) {
        self.batch_size = ops.max(1);
    }

    /// Record per-batch round-trip latency (and op counts) into a
    /// metrics registry; share one registry across clients to merge.
    pub fn set_metrics(&mut self, metrics: Arc<Registry>) {
        self.metrics = metrics;
    }

    // ---- op submission ------------------------------------------------------

    /// Enqueue an op; auto-flushes at the batch size. Returns the
    /// assigned serial.
    pub fn submit(&mut self, kind: OpKind, key: u64, arg: u64) -> io::Result<u64> {
        self.next_serial += 1;
        let serial = self.next_serial;
        self.batch.push(WireOp {
            serial,
            kind,
            key,
            arg,
        });
        if self.batch.len() >= self.batch_size {
            self.flush()?;
        }
        Ok(serial)
    }

    pub fn read(&mut self, key: u64) -> io::Result<u64> {
        self.submit(OpKind::Read, key, 0)
    }

    pub fn upsert(&mut self, key: u64, value: u64) -> io::Result<u64> {
        self.submit(OpKind::Upsert, key, value)
    }

    pub fn rmw(&mut self, key: u64, delta: u64) -> io::Result<u64> {
        self.submit(OpKind::Rmw, key, delta)
    }

    pub fn delete(&mut self, key: u64) -> io::Result<u64> {
        self.submit(OpKind::Delete, key, 0)
    }

    /// Send the pending batch, then drain acks until the in-flight
    /// window has room again.
    pub fn flush(&mut self) -> io::Result<()> {
        if !self.batch.is_empty() {
            let batch = std::mem::take(&mut self.batch);
            self.send(&Frame::OpBatch { ops: batch.clone() })?;
            self.inflight.push_back(batch);
            self.sent_at.push_back(Instant::now());
        }
        let deadline = Instant::now() + Duration::from_secs(30);
        while self.inflight.len() > self.window {
            self.pump_one(deadline)?;
        }
        Ok(())
    }

    /// Flush and wait until every sent batch is acked; returns all
    /// results accumulated since the last take.
    pub fn sync(&mut self) -> io::Result<Vec<OpResult>> {
        self.flush()?;
        self.wait_acks(Duration::from_secs(30))?;
        Ok(self.take_results())
    }

    /// Results accumulated since the last call (acks arrive during any
    /// pump: `flush`, `sync`, `wait_commit`, ...).
    pub fn take_results(&mut self) -> Vec<OpResult> {
        std::mem::take(&mut self.results)
    }

    fn wait_acks(&mut self, timeout: Duration) -> io::Result<()> {
        let deadline = Instant::now() + timeout;
        while !self.inflight.is_empty() {
            self.pump_one(deadline)?;
        }
        Ok(())
    }

    // ---- checkpoints & scans ------------------------------------------------

    /// Ask the server to start a checkpoint. Returns whether one was
    /// started (false: another is already in flight).
    pub fn request_checkpoint(&mut self, variant: u8, log_only: bool) -> io::Result<bool> {
        self.send(&Frame::CheckpointReq { variant, log_only })?;
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match self.recv_blocking_deadline(deadline)? {
                Frame::CheckpointAck { started } => return Ok(started),
                other => self.absorb(other)?,
            }
        }
    }

    /// Wait until a pushed commit point reaches `version`. The client
    /// must keep its session refreshed server-side, which happens
    /// automatically (the server refreshes idle sessions).
    pub fn wait_commit(&mut self, version: u64, timeout: Duration) -> io::Result<CommitPoint> {
        let deadline = Instant::now() + timeout;
        while self.committed.version < version {
            let frame = self.recv_blocking_deadline(deadline)?;
            self.absorb(frame)?;
        }
        Ok(self.committed.clone())
    }

    /// Full scan of the server's live state, sorted by key.
    pub fn scan(&mut self) -> io::Result<Vec<(u64, u64)>> {
        self.send(&Frame::ScanReq)?;
        let deadline = Instant::now() + Duration::from_secs(60);
        let mut out = Vec::new();
        loop {
            match self.recv_blocking_deadline(deadline)? {
                Frame::ScanChunk { last, entries } => {
                    out.extend(entries);
                    if last {
                        return Ok(out);
                    }
                }
                other => self.absorb(other)?,
            }
        }
    }

    /// Close politely. For crash testing, just drop the client (after
    /// [`NetClient::take_buffer`]).
    pub fn goodbye(mut self) -> io::Result<()> {
        self.flush()?;
        self.wait_acks(Duration::from_secs(30))?;
        self.send(&Frame::Goodbye)
    }

    /// Extract the un-durable suffix for a later
    /// [`NetClient::connect_with`]. Includes acked-but-uncommitted,
    /// in-flight, and unsent ops, in serial order.
    pub fn take_buffer(self) -> ReplayBuffer {
        let mut ops: Vec<WireOp> = self.retained.into_iter().collect();
        for b in self.inflight {
            ops.extend(b);
        }
        ops.extend(self.batch);
        ops.sort_unstable_by_key(|op| op.serial);
        ops.dedup_by_key(|op| op.serial);
        ReplayBuffer { ops }
    }

    // ---- frame plumbing -----------------------------------------------------

    fn send(&mut self, frame: &Frame) -> io::Result<()> {
        self.stream.write_all(&frame.encode())
    }

    /// Receive one frame and fold it into client state.
    fn pump_one(&mut self, deadline: Instant) -> io::Result<()> {
        let frame = self.recv_blocking_deadline(deadline)?;
        self.absorb(frame)
    }

    /// Fold a data frame (ack / commit point) into state; control frames
    /// reaching here are protocol errors.
    fn absorb(&mut self, frame: Frame) -> io::Result<()> {
        match frame {
            Frame::BatchAck { replies } => {
                let batch = self.inflight.pop_front().ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "unexpected BatchAck")
                })?;
                if let Some(t0) = self.sent_at.pop_front() {
                    if self.metrics.is_enabled() {
                        let reads =
                            batch.iter().filter(|op| op.kind == OpKind::Read).count() as u64;
                        self.metrics.record_commit(
                            t0.elapsed(),
                            reads,
                            batch.len() as u64 - reads,
                        );
                    }
                }
                // Acked ops stay retained until a commit point covers
                // them; an ack only means applied.
                self.retained.extend(batch.iter().copied());
                for (r, op) in replies.iter().zip(batch.iter()) {
                    self.results.push(OpResult {
                        serial: r.serial,
                        kind: op.kind,
                        key: op.key,
                        status: r.status,
                        value: r.value,
                    });
                }
                let _ = replies;
                Ok(())
            }
            Frame::CommitPoint(cp) => {
                self.retained.retain(|op| !cp.covers(op.serial));
                self.committed = cp;
                Ok(())
            }
            Frame::Error { code, msg } => Err(io::Error::other(format!(
                "server error ({code}): {msg}"
            ))),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected frame {other:?}"),
            )),
        }
    }

    fn recv_blocking(&mut self, timeout: Duration) -> io::Result<Frame> {
        self.recv_blocking_deadline(Instant::now() + timeout)
    }

    fn recv_blocking_deadline(&mut self, deadline: Instant) -> io::Result<Frame> {
        loop {
            if let Some(frame) = self.reader.poll(&mut self.stream)? {
                return Ok(frame);
            }
            if Instant::now() > deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "timed out waiting for server",
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(serial: u64, key: u64) -> WireOp {
        WireOp {
            serial,
            kind: OpKind::Upsert,
            key,
            arg: key,
        }
    }

    #[test]
    fn resolve_replays_exactly_the_uncovered_suffix() {
        let buf = ReplayBuffer {
            ops: (1..=10).map(|s| op(s, 100 + s)).collect(),
        };
        // Commit point at 6: replay 7..=10 with unchanged serials.
        let replay = buf.resolve(&CommitPoint::prefix(3, 6));
        assert_eq!(replay.len(), 4);
        assert_eq!(
            replay.iter().map(|o| o.serial).collect::<Vec<_>>(),
            vec![7, 8, 9, 10]
        );
        assert_eq!(
            replay.iter().map(|o| o.key).collect::<Vec<_>>(),
            vec![107, 108, 109, 110]
        );
    }

    #[test]
    fn resolve_reissues_exclusions_with_fresh_serials() {
        let buf = ReplayBuffer {
            ops: (1..=8).map(|s| op(s, 100 + s)).collect(),
        };
        // Point at 6 excluding 2 and 5: replay {2, 5, 7, 8}, renumbered
        // 7..=10, original order preserved.
        let cp = CommitPoint {
            version: 4,
            until_serial: 6,
            exclusions: vec![2, 5],
        };
        let replay = buf.resolve(&cp);
        assert_eq!(
            replay.iter().map(|o| (o.serial, o.key)).collect::<Vec<_>>(),
            vec![(7, 102), (8, 105), (9, 107), (10, 108)]
        );
    }

    #[test]
    fn resolve_empty_when_fully_covered() {
        let buf = ReplayBuffer {
            ops: (1..=5).map(|s| op(s, s)).collect(),
        };
        assert!(buf.resolve(&CommitPoint::prefix(1, 5)).is_empty());
        assert!(ReplayBuffer::default()
            .resolve(&CommitPoint::prefix(0, 0))
            .is_empty());
    }
}
