//! Engine adapters: one trait the server speaks, implemented for both
//! CPR engines ([`cpr_faster::FasterKv`] and [`cpr_memdb::MemDb`], served
//! as `u64` stores).
//!
//! The trait surface is exactly what a network session needs: establish
//! or resume a session by guid, apply a batch of serial-tagged ops,
//! request checkpoints, observe durable commits, and scan the committed
//! state. Sessions are created *on the connection's thread* (they are
//! not `Sync`, mirroring the paper's thread-affine sessions), so the
//! trait only requires the engine itself to be shareable.

use std::io;

use cpr_core::SessionCpr;
use cpr_faster::{CheckpointVariant, FasterKv, FasterSession, ReadResult, Status};
use cpr_memdb::{Abort, Access, MemDb, Session as MemdbSession, TxnRequest};

use crate::wire::{checkpoint_variant, OpKind, OpReply, OpStatus, WireOp};

/// Durable-commit observer: commit version + every session's CPR point.
pub type CommitObserver = Box<dyn Fn(u64, &[SessionCpr]) + Send + Sync>;

/// A CPR engine servable over the network.
pub trait NetEngine: Send + Sync + 'static {
    type Session: NetSession;

    /// Establish or resume the session for `guid`; returns the session
    /// and the serial to resume from (see the engines'
    /// `continue_session` docs for live-reattach vs post-crash
    /// semantics).
    fn continue_session(&self, guid: u64) -> (Self::Session, u64);

    /// Kick off a checkpoint; `false` if one is already in flight.
    /// `variant` uses [`checkpoint_variant`] codes (ignored by engines
    /// with a single checkpoint flavor).
    fn request_checkpoint(&self, variant: u8, log_only: bool) -> bool;

    /// Register a durable-commit observer (commit version + every
    /// session's CPR point). Runs on the engine's checkpoint thread.
    fn on_commit(&self, cb: CommitObserver);

    /// Newest durable checkpoint version (0 = none).
    fn committed_version(&self) -> u64;

    /// Every live `(key, value)` pair, sorted by key.
    fn scan(&self) -> io::Result<Vec<(u64, u64)>>;
}

/// One engine session bound to a connection thread.
pub trait NetSession {
    /// Apply ops in order, driving any pending operations to completion,
    /// and return one reply per op (same order). The caller guarantees
    /// `ops[i].serial` continues the session's serial sequence
    /// contiguously.
    fn apply_batch(&mut self, ops: &[WireOp]) -> Vec<OpReply>;

    /// Participate in the CPR state machine while idle (epoch refresh).
    fn refresh(&mut self);

    /// Serial of the last accepted op.
    fn serial(&self) -> u64;
}

// ---- FASTER ----------------------------------------------------------------

impl NetEngine for FasterKv<u64> {
    type Session = FasterSession<u64>;

    fn continue_session(&self, guid: u64) -> (Self::Session, u64) {
        FasterKv::continue_session(self, guid)
    }

    fn request_checkpoint(&self, variant: u8, log_only: bool) -> bool {
        let variant = if variant == checkpoint_variant::SNAPSHOT {
            CheckpointVariant::Snapshot
        } else {
            CheckpointVariant::FoldOver
        };
        FasterKv::request_checkpoint(self, variant, log_only)
    }

    fn on_commit(&self, cb: CommitObserver) {
        FasterKv::on_commit(self, cb)
    }

    fn committed_version(&self) -> u64 {
        FasterKv::committed_version(self).0
    }

    fn scan(&self) -> io::Result<Vec<(u64, u64)>> {
        self.scan_all()
    }
}

impl NetSession for FasterSession<u64> {
    fn apply_batch(&mut self, ops: &[WireOp]) -> Vec<OpReply> {
        let mut replies: Vec<OpReply> = Vec::with_capacity(ops.len());
        // Engine-assigned serial -> reply index, for ops that went
        // pending. The caller keeps wire serials aligned with the
        // session's internal counter, so completions match up by serial.
        let mut pending: Vec<(u64, usize)> = Vec::new();
        for op in ops {
            let idx = replies.len();
            let (status, value) = match op.kind {
                OpKind::Read => match self.read(op.key) {
                    ReadResult::Found(v) => (OpStatus::Ok, Some(v)),
                    ReadResult::NotFound => (OpStatus::NotFound, None),
                    ReadResult::Pending => {
                        pending.push((self.serial(), idx));
                        (OpStatus::Ok, None)
                    }
                    ReadResult::Evicted => (OpStatus::Evicted, None),
                },
                OpKind::Upsert => match self.upsert(op.key, op.arg) {
                    Status::Ok => (OpStatus::Ok, None),
                    Status::Pending => {
                        pending.push((self.serial(), idx));
                        (OpStatus::Ok, None)
                    }
                    _ => (OpStatus::Evicted, None),
                },
                OpKind::Rmw => match self.rmw(op.key, op.arg) {
                    Status::Ok => (OpStatus::Ok, None),
                    Status::Pending => {
                        pending.push((self.serial(), idx));
                        (OpStatus::Ok, None)
                    }
                    _ => (OpStatus::Evicted, None),
                },
                OpKind::Delete => match self.delete(op.key) {
                    Status::Ok => (OpStatus::Ok, None),
                    Status::Pending => {
                        pending.push((self.serial(), idx));
                        (OpStatus::Ok, None)
                    }
                    _ => (OpStatus::Evicted, None),
                },
            };
            replies.push(OpReply {
                serial: op.serial,
                status,
                value,
            });
        }
        if !pending.is_empty() {
            // Batch acks mean "applied": drive every pending op home
            // before replying.
            while self.pending_len() > 0 {
                self.refresh();
                self.complete_pending();
                std::hint::spin_loop();
            }
            let mut done = Vec::new();
            self.drain_completions(&mut done);
            for c in done {
                if let Some(&(_, idx)) = pending.iter().find(|&&(s, _)| s == c.serial) {
                    if ops[idx].kind == OpKind::Read {
                        replies[idx].status = if c.value.is_some() {
                            OpStatus::Ok
                        } else {
                            OpStatus::NotFound
                        };
                        replies[idx].value = c.value;
                    }
                }
            }
        }
        replies
    }

    fn refresh(&mut self) {
        FasterSession::refresh(self);
        self.complete_pending();
    }

    fn serial(&self) -> u64 {
        FasterSession::serial(self)
    }
}

// ---- MemDb -----------------------------------------------------------------

impl NetEngine for MemDb<u64> {
    type Session = MemdbSession<u64>;

    fn continue_session(&self, guid: u64) -> (Self::Session, u64) {
        MemDb::continue_session(self, guid)
    }

    fn request_checkpoint(&self, _variant: u8, _log_only: bool) -> bool {
        // The transactional DB has one checkpoint flavor (capture).
        self.request_commit()
    }

    fn on_commit(&self, cb: CommitObserver) {
        MemDb::on_commit(self, cb)
    }

    fn committed_version(&self) -> u64 {
        MemDb::committed_version(self).0
    }

    fn scan(&self) -> io::Result<Vec<(u64, u64)>> {
        Ok(self.scan_all())
    }
}

impl NetSession for MemdbSession<u64> {
    fn apply_batch(&mut self, ops: &[WireOp]) -> Vec<OpReply> {
        let mut replies = Vec::with_capacity(ops.len());
        let mut reads: Vec<u64> = Vec::with_capacity(1);
        for op in ops {
            let access = match op.kind {
                OpKind::Read => Access::Read,
                OpKind::Upsert => Access::Write,
                OpKind::Rmw => Access::Merge,
                OpKind::Delete => Access::Delete,
            };
            let accesses = [(op.key, access)];
            let seeds = [op.arg];
            let req = TxnRequest {
                accesses: &accesses,
                write_seeds: if matches!(op.kind, OpKind::Upsert | OpKind::Rmw) {
                    &seeds
                } else {
                    &[]
                },
            };
            let status = loop {
                match self.execute(&req, &mut reads) {
                    Ok(()) => break OpStatus::Ok,
                    // No-Wait conflicts and CPR shifts are transient
                    // (execute() already refreshed after a shift);
                    // single-key transactions cannot deadlock.
                    Err(Abort::Conflict) => std::hint::spin_loop(),
                    Err(Abort::CprShift) => {}
                    Err(Abort::SessionEvicted) => break OpStatus::Evicted,
                    Err(_) => break OpStatus::Evicted,
                }
            };
            // Reads of absent keys yield the zero value — the
            // transactional DB has no key-existence notion, so NotFound
            // is never reported here (unlike the FASTER adapter).
            let value = (op.kind == OpKind::Read && status == OpStatus::Ok)
                .then(|| reads.first().copied().unwrap_or(0));
            replies.push(OpReply {
                serial: op.serial,
                status,
                value,
            });
        }
        replies
    }

    fn refresh(&mut self) {
        MemdbSession::refresh(self);
    }

    fn serial(&self) -> u64 {
        MemdbSession::serial(self)
    }
}
