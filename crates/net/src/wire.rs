//! The wire protocol: length-prefixed binary frames.
//!
//! Every frame is `[len: u32 le][tag: u8][body]`, where `len` counts the
//! tag plus body. Integers are little-endian fixed width; values are
//! `u64` (both engines are served as `u64` stores). Client-to-server
//! tags occupy `0x01..=0x7f`, server-to-client tags `0x80..=0xff`.
//!
//! | tag  | frame            | body |
//! |------|------------------|------|
//! | 0x01 | `Hello`          | `guid u64` |
//! | 0x02 | `OpBatch`        | `count u32, (serial u64, kind u8, key u64, arg u64)*` |
//! | 0x03 | `CheckpointReq`  | `variant u8, log_only u8` |
//! | 0x04 | `ScanReq`        | — |
//! | 0x05 | `Goodbye`        | — |
//! | 0x81 | `HelloAck`       | `guid u64, commit-point` |
//! | 0x82 | `BatchAck`       | `count u32, (serial u64, status u8, has_value u8, value u64)*` |
//! | 0x83 | `CommitPoint`    | `commit-point` |
//! | 0x84 | `CheckpointAck`  | `started u8` |
//! | 0x85 | `ScanChunk`      | `last u8, count u32, (key u64, value u64)*` |
//! | 0x86 | `Error`          | `code u8, msg_len u32, msg utf-8` |
//!
//! where `commit-point` is `version u64, until_serial u64,
//! excl_count u32, (serial u64)*` — the [`CommitPoint`] a server pushes
//! after every durable checkpoint and returns during the resume
//! handshake.

use std::io::{self, Read, Write};

use cpr_core::CommitPoint;

/// Upper bound on a frame body; a peer announcing more is corrupt (or
/// hostile) and the connection is dropped.
pub const MAX_FRAME: usize = 64 << 20;

/// Kind of one client operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    Read,
    Upsert,
    /// Read-modify-write; for the `u64` stores served here the merge is a
    /// wrapping add of `arg`.
    Rmw,
    Delete,
}

impl OpKind {
    fn to_u8(self) -> u8 {
        match self {
            OpKind::Read => 0,
            OpKind::Upsert => 1,
            OpKind::Rmw => 2,
            OpKind::Delete => 3,
        }
    }

    fn from_u8(b: u8) -> io::Result<OpKind> {
        Ok(match b {
            0 => OpKind::Read,
            1 => OpKind::Upsert,
            2 => OpKind::Rmw,
            3 => OpKind::Delete,
            _ => return Err(bad(format!("unknown op kind {b}"))),
        })
    }
}

/// One operation in a batch, tagged with its client-assigned serial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireOp {
    pub serial: u64,
    pub kind: OpKind,
    pub key: u64,
    /// Upsert value / RMW delta; ignored for reads and deletes.
    pub arg: u64,
}

/// Per-op outcome in a [`Frame::BatchAck`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpStatus {
    Ok,
    /// Read of an absent key.
    NotFound,
    /// The engine session was evicted; the op was NOT applied. The server
    /// closes the connection after the ack — reconnect and replay.
    Evicted,
    /// The op's serial was at or below the session's resume point: it was
    /// already applied in a previous incarnation and was skipped.
    Skipped,
}

impl OpStatus {
    fn to_u8(self) -> u8 {
        match self {
            OpStatus::Ok => 0,
            OpStatus::NotFound => 1,
            OpStatus::Evicted => 2,
            OpStatus::Skipped => 3,
        }
    }

    fn from_u8(b: u8) -> io::Result<OpStatus> {
        Ok(match b {
            0 => OpStatus::Ok,
            1 => OpStatus::NotFound,
            2 => OpStatus::Evicted,
            3 => OpStatus::Skipped,
            _ => return Err(bad(format!("unknown op status {b}"))),
        })
    }
}

/// Per-op reply carried by a [`Frame::BatchAck`], in batch order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpReply {
    pub serial: u64,
    pub status: OpStatus,
    /// Read result; `None` for updates and read misses.
    pub value: Option<u64>,
}

/// Error codes carried by [`Frame::Error`].
pub mod error_code {
    /// Malformed or out-of-order request; the connection is closed.
    pub const PROTOCOL: u8 = 1;
    /// The engine session was evicted by the liveness watchdog.
    pub const EVICTED: u8 = 2;
    /// A session for this guid is already connected.
    pub const GUID_IN_USE: u8 = 3;
    /// Server-side I/O failure (e.g. scan against a crashed device).
    pub const IO: u8 = 4;
}

/// A protocol frame. See the module docs for the byte layout.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    Hello { guid: u64 },
    OpBatch { ops: Vec<WireOp> },
    CheckpointReq { variant: u8, log_only: bool },
    ScanReq,
    Goodbye,
    HelloAck { guid: u64, resume: CommitPoint },
    BatchAck { replies: Vec<OpReply> },
    CommitPoint(CommitPoint),
    CheckpointAck { started: bool },
    ScanChunk { last: bool, entries: Vec<(u64, u64)> },
    Error { code: u8, msg: String },
}

/// Checkpoint variants over the wire (`CheckpointReq.variant`).
pub mod checkpoint_variant {
    pub const FOLD_OVER: u8 = 0;
    pub const SNAPSHOT: u8 = 1;
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn put_commit_point(buf: &mut Vec<u8>, cp: &CommitPoint) {
    buf.extend_from_slice(&cp.version.to_le_bytes());
    buf.extend_from_slice(&cp.until_serial.to_le_bytes());
    buf.extend_from_slice(&(cp.exclusions.len() as u32).to_le_bytes());
    for s in &cp.exclusions {
        buf.extend_from_slice(&s.to_le_bytes());
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(bad("frame truncated".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn commit_point(&mut self) -> io::Result<CommitPoint> {
        let version = self.u64()?;
        let until_serial = self.u64()?;
        let n = self.u32()? as usize;
        let mut exclusions = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            exclusions.push(self.u64()?);
        }
        Ok(CommitPoint {
            version,
            until_serial,
            exclusions,
        })
    }

    fn done(&self) -> io::Result<()> {
        if self.pos != self.buf.len() {
            return Err(bad(format!(
                "{} trailing bytes in frame",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

impl Frame {
    /// Encode into `[len][tag][body]` bytes ready for the socket.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = vec![0u8; 4]; // len patched at the end
        match self {
            Frame::Hello { guid } => {
                buf.push(0x01);
                buf.extend_from_slice(&guid.to_le_bytes());
            }
            Frame::OpBatch { ops } => {
                buf.push(0x02);
                buf.extend_from_slice(&(ops.len() as u32).to_le_bytes());
                for op in ops {
                    buf.extend_from_slice(&op.serial.to_le_bytes());
                    buf.push(op.kind.to_u8());
                    buf.extend_from_slice(&op.key.to_le_bytes());
                    buf.extend_from_slice(&op.arg.to_le_bytes());
                }
            }
            Frame::CheckpointReq { variant, log_only } => {
                buf.push(0x03);
                buf.push(*variant);
                buf.push(u8::from(*log_only));
            }
            Frame::ScanReq => buf.push(0x04),
            Frame::Goodbye => buf.push(0x05),
            Frame::HelloAck { guid, resume } => {
                buf.push(0x81);
                buf.extend_from_slice(&guid.to_le_bytes());
                put_commit_point(&mut buf, resume);
            }
            Frame::BatchAck { replies } => {
                buf.push(0x82);
                buf.extend_from_slice(&(replies.len() as u32).to_le_bytes());
                for r in replies {
                    buf.extend_from_slice(&r.serial.to_le_bytes());
                    buf.push(r.status.to_u8());
                    buf.push(u8::from(r.value.is_some()));
                    buf.extend_from_slice(&r.value.unwrap_or(0).to_le_bytes());
                }
            }
            Frame::CommitPoint(cp) => {
                buf.push(0x83);
                put_commit_point(&mut buf, cp);
            }
            Frame::CheckpointAck { started } => {
                buf.push(0x84);
                buf.push(u8::from(*started));
            }
            Frame::ScanChunk { last, entries } => {
                buf.push(0x85);
                buf.push(u8::from(*last));
                buf.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                for (k, v) in entries {
                    buf.extend_from_slice(&k.to_le_bytes());
                    buf.extend_from_slice(&v.to_le_bytes());
                }
            }
            Frame::Error { code, msg } => {
                buf.push(0x86);
                buf.push(*code);
                buf.extend_from_slice(&(msg.len() as u32).to_le_bytes());
                buf.extend_from_slice(msg.as_bytes());
            }
        }
        let len = (buf.len() - 4) as u32;
        buf[..4].copy_from_slice(&len.to_le_bytes());
        buf
    }

    /// Decode a frame body (`[tag][body]`, without the length prefix).
    pub fn decode(body: &[u8]) -> io::Result<Frame> {
        let mut c = Cursor { buf: body, pos: 0 };
        let tag = c.u8()?;
        let frame = match tag {
            0x01 => Frame::Hello { guid: c.u64()? },
            0x02 => {
                let n = c.u32()? as usize;
                let mut ops = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    ops.push(WireOp {
                        serial: c.u64()?,
                        kind: OpKind::from_u8(c.u8()?)?,
                        key: c.u64()?,
                        arg: c.u64()?,
                    });
                }
                Frame::OpBatch { ops }
            }
            0x03 => Frame::CheckpointReq {
                variant: c.u8()?,
                log_only: c.u8()? != 0,
            },
            0x04 => Frame::ScanReq,
            0x05 => Frame::Goodbye,
            0x81 => Frame::HelloAck {
                guid: c.u64()?,
                resume: c.commit_point()?,
            },
            0x82 => {
                let n = c.u32()? as usize;
                let mut replies = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let serial = c.u64()?;
                    let status = OpStatus::from_u8(c.u8()?)?;
                    let has_value = c.u8()? != 0;
                    let value = c.u64()?;
                    replies.push(OpReply {
                        serial,
                        status,
                        value: has_value.then_some(value),
                    });
                }
                Frame::BatchAck { replies }
            }
            0x83 => Frame::CommitPoint(c.commit_point()?),
            0x84 => Frame::CheckpointAck {
                started: c.u8()? != 0,
            },
            0x85 => {
                let last = c.u8()? != 0;
                let n = c.u32()? as usize;
                let mut entries = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    entries.push((c.u64()?, c.u64()?));
                }
                Frame::ScanChunk { last, entries }
            }
            0x86 => {
                let code = c.u8()?;
                let n = c.u32()? as usize;
                let msg = String::from_utf8_lossy(c.take(n)?).into_owned();
                Frame::Error { code, msg }
            }
            _ => return Err(bad(format!("unknown frame tag {tag:#x}"))),
        };
        c.done()?;
        Ok(frame)
    }
}

/// Write one frame to the socket (length prefix + body).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    w.write_all(&frame.encode())
}

/// Incremental frame reader that tolerates read timeouts.
///
/// Sockets in this crate carry a short read timeout so server threads
/// can refresh their engine session (and notice shutdown) while idle. A
/// timeout can land mid-frame, so the reader keeps partial progress
/// across calls: [`FrameReader::poll`] returns `Ok(None)` on timeout and
/// a complete frame once all its bytes arrived. A clean EOF at a frame
/// boundary reads as `ErrorKind::ConnectionAborted`.
#[derive(Debug, Default)]
pub struct FrameReader {
    /// Bytes of the current frame gathered so far; the first 4 are the
    /// length prefix.
    buf: Vec<u8>,
    /// Total bytes the current frame needs (4 until the prefix is in).
    need: usize,
}

impl FrameReader {
    pub fn new() -> Self {
        FrameReader {
            buf: Vec::new(),
            need: 4,
        }
    }

    /// Pull bytes until a frame completes, the read would block, or the
    /// peer hangs up.
    pub fn poll(&mut self, r: &mut impl Read) -> io::Result<Option<Frame>> {
        loop {
            if self.buf.len() == self.need {
                if self.need == 4 {
                    let len = u32::from_le_bytes(self.buf[..4].try_into().unwrap()) as usize;
                    if len == 0 || len > MAX_FRAME {
                        return Err(bad(format!("bad frame length {len}")));
                    }
                    self.need = 4 + len;
                } else {
                    let frame = Frame::decode(&self.buf[4..])?;
                    self.buf.clear();
                    self.need = 4;
                    return Ok(Some(frame));
                }
            }
            let mut chunk = [0u8; 64 * 1024];
            let want = (self.need - self.buf.len()).min(chunk.len());
            match r.read(&mut chunk[..want]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionAborted,
                        "peer closed connection",
                    ))
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(None),
                Err(e) if e.kind() == io::ErrorKind::TimedOut => return Ok(None),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: Frame) {
        let bytes = f.encode();
        let len = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
        assert_eq!(len + 4, bytes.len());
        assert_eq!(Frame::decode(&bytes[4..]).unwrap(), f);
    }

    #[test]
    fn frames_roundtrip() {
        roundtrip(Frame::Hello { guid: 42 });
        roundtrip(Frame::OpBatch {
            ops: vec![
                WireOp {
                    serial: 1,
                    kind: OpKind::Upsert,
                    key: 7,
                    arg: 99,
                },
                WireOp {
                    serial: 2,
                    kind: OpKind::Read,
                    key: 7,
                    arg: 0,
                },
                WireOp {
                    serial: 3,
                    kind: OpKind::Rmw,
                    key: 8,
                    arg: 5,
                },
                WireOp {
                    serial: 4,
                    kind: OpKind::Delete,
                    key: 9,
                    arg: 0,
                },
            ],
        });
        roundtrip(Frame::CheckpointReq {
            variant: checkpoint_variant::SNAPSHOT,
            log_only: true,
        });
        roundtrip(Frame::ScanReq);
        roundtrip(Frame::Goodbye);
        roundtrip(Frame::HelloAck {
            guid: 42,
            resume: CommitPoint {
                version: 3,
                until_serial: 17,
                exclusions: vec![12, 15],
            },
        });
        roundtrip(Frame::BatchAck {
            replies: vec![
                OpReply {
                    serial: 1,
                    status: OpStatus::Ok,
                    value: Some(99),
                },
                OpReply {
                    serial: 2,
                    status: OpStatus::NotFound,
                    value: None,
                },
            ],
        });
        roundtrip(Frame::CommitPoint(CommitPoint::prefix(5, 1000)));
        roundtrip(Frame::CheckpointAck { started: true });
        roundtrip(Frame::ScanChunk {
            last: false,
            entries: vec![(1, 2), (3, 4)],
        });
        roundtrip(Frame::Error {
            code: error_code::GUID_IN_USE,
            msg: "guid 42 already connected".into(),
        });
    }

    #[test]
    fn reader_handles_split_frames() {
        let a = Frame::Hello { guid: 7 }.encode();
        let b = Frame::CommitPoint(CommitPoint::prefix(1, 9)).encode();
        let mut bytes = a;
        bytes.extend_from_slice(&b);

        // Feed one byte at a time through a reader that sees WouldBlock
        // between each byte.
        struct Trickle<'a> {
            data: &'a [u8],
            pos: usize,
            ready: bool,
        }
        impl Read for Trickle<'_> {
            fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
                if !self.ready {
                    self.ready = true;
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "not yet"));
                }
                self.ready = false;
                if self.pos == self.data.len() {
                    return Ok(0);
                }
                out[0] = self.data[self.pos];
                self.pos += 1;
                Ok(1)
            }
        }
        let mut r = Trickle {
            data: &bytes,
            pos: 0,
            ready: false,
        };
        let mut fr = FrameReader::new();
        let mut frames = Vec::new();
        loop {
            match fr.poll(&mut r) {
                Ok(Some(f)) => frames.push(f),
                Ok(None) => continue,
                Err(e) => {
                    assert_eq!(e.kind(), io::ErrorKind::ConnectionAborted);
                    break;
                }
            }
        }
        assert_eq!(
            frames,
            vec![
                Frame::Hello { guid: 7 },
                Frame::CommitPoint(CommitPoint::prefix(1, 9)),
            ]
        );
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut bytes = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
        bytes.push(0x04);
        let mut fr = FrameReader::new();
        let err = fr.poll(&mut &bytes[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
