//! End-to-end CPR resume over the wire: kill the server mid-checkpoint
//! (between PREPARE and WAIT-FLUSH, via the fault injector freezing
//! storage), recover, reconnect — the client learns the recovered commit
//! point `t` and replays exactly serials `t+1..=N`.
//!
//! Mirrors the paper's Sec. 2 client contract: after the crash the
//! durable state is the committed prefix (checkpoint 1 here); everything
//! the client pushed after it — applied and acked, but not yet durable —
//! must be re-issued, and nothing at or below `t` may be applied twice.

use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cpr_core::Phase;
use cpr_faster::{FasterBuilder, HlogConfig};
use cpr_memdb::{Durability, MemDb};
use cpr_net::wire::checkpoint_variant;
use cpr_net::{NetClient, NetEngine, NetServer, ReplayBuffer};
use cpr_storage::{FaultInjector, FaultPlan};

const GUID: u64 = 7;

fn faster_builder(dir: &std::path::Path) -> FasterBuilder<u64> {
    FasterBuilder::u64_sums(dir)
        .hlog(HlogConfig {
            page_bits: 12,
            memory_pages: 16,
            mutable_pages: 8,
            value_size: 8,
        })
        .refresh_every(8)
}

fn serve<E: NetEngine>(engine: Arc<E>) -> NetServer {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    NetServer::serve(engine, listener).unwrap()
}

/// Drive phase one against a served engine: 100 durable upserts
/// (checkpoint 1), 100 acked-but-undurable upserts, then a second
/// checkpoint crashed between PREPARE and WAIT-FLUSH. Returns the
/// client's replay buffer, as carried across the "crash".
fn run_until_crash<E: NetEngine>(
    engine: &Arc<E>,
    injector: &FaultInjector,
    state: impl Fn() -> (Phase, u64),
    variant: u8,
) -> ReplayBuffer {
    let server = serve(Arc::clone(engine));
    let mut c = NetClient::connect(server.addr(), GUID).unwrap();

    // Serials 1..=100, made durable by checkpoint 1.
    for k in 0..100u64 {
        c.upsert(k, k + 1).unwrap();
    }
    c.sync().unwrap();
    assert!(c.request_checkpoint(variant, false).unwrap());
    let cp = c.wait_commit(1, Duration::from_secs(20)).unwrap();
    assert_eq!((cp.version, cp.until_serial), (1, 100));

    // Serials 101..=200: applied and acked, never durable.
    for k in 100..200u64 {
        c.upsert(k, k + 1).unwrap();
    }
    c.sync().unwrap();
    assert_eq!(c.uncommitted(), 100);

    // Checkpoint 2 — freeze storage once the CPR shift is past PREPARE
    // but the flush has not committed. Session refreshes arrive on the
    // server's idle-poll cadence (~5ms per phase transition), so the
    // window is wide; the InProgress/WaitPending observation guarantees
    // we are between the CPR point and the manifest write.
    assert!(c.request_checkpoint(variant, false).unwrap());
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (phase, v) = state();
        if v == 2 && matches!(phase, Phase::InProgress | Phase::WaitPending) {
            break;
        }
        assert!(
            !(phase == Phase::Rest && v >= 3),
            "checkpoint 2 committed before the crash landed"
        );
        assert!(Instant::now() < deadline, "checkpoint 2 never left prepare");
        std::hint::spin_loop();
    }
    injector.crash_now();

    // The engine must abort the checkpoint (frozen storage), not commit.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let (phase, v) = state();
        if phase == Phase::Rest && v >= 3 {
            break;
        }
        assert!(Instant::now() < deadline, "crashed checkpoint never aborted");
        std::thread::sleep(Duration::from_millis(2));
    }

    drop(server); // kill the server: connections die, sessions detach
    c.take_buffer()
}

/// Phase two: recover from the crashed directory, serve, and verify the
/// resume contract over the wire.
fn recover_and_resume<E: NetEngine>(engine: Arc<E>, recovered_version: u64, variant: u8) {
    let server = serve(Arc::clone(&engine));
    let addr = server.addr();

    // Before replay: the wire-visible state is exactly the committed
    // prefix (keys 0..100 from checkpoint 1).
    let mut observer = NetClient::connect(addr, 999).unwrap();
    let scan = observer.scan().unwrap();
    assert_eq!(scan.len(), 100, "recovered state is the durable prefix");
    assert!(scan
        .iter()
        .enumerate()
        .all(|(i, &(k, v))| k == i as u64 && v == k + 1));

    // The resume dance: learn t = 100, replay exactly 101..=200.
    let buffer = CRASH_BUFFER.with(|b| b.borrow_mut().take().unwrap());
    assert_eq!(buffer.len(), 100, "un-durable suffix carried across the crash");
    let mut c = NetClient::connect_with(addr, GUID, buffer).unwrap();
    assert_eq!(
        (c.resume_point().version, c.resume_point().until_serial),
        (recovered_version, 100),
        "client learns the recovered commit point"
    );
    assert_eq!(c.replayed(), 100, "exactly the uncommitted suffix replays");
    assert_eq!(c.next_serial(), 201, "serial sequence continues past N");

    // After replay: the full op stream is visible.
    let scan = observer.scan().unwrap();
    assert_eq!(scan.len(), 200);
    assert!(scan
        .iter()
        .enumerate()
        .all(|(i, &(k, v))| k == i as u64 && v == k + 1));

    // And the replayed ops become durable under the next checkpoint.
    assert!(c.request_checkpoint(variant, false).unwrap());
    let cp = c
        .wait_commit(recovered_version + 1, Duration::from_secs(20))
        .unwrap();
    assert_eq!(cp.until_serial, 200);
    assert_eq!(c.uncommitted(), 0);
    c.goodbye().unwrap();
    observer.goodbye().unwrap();
}

// The buffer crosses the crash boundary through a thread-local so the
// two phases keep symmetric engine-typed signatures.
thread_local! {
    static CRASH_BUFFER: std::cell::RefCell<Option<ReplayBuffer>> =
        const { std::cell::RefCell::new(None) };
}

fn faster_crash_resume(variant: u8) {
    let dir = tempfile::tempdir().unwrap();
    let injector = Arc::new(FaultInjector::new(FaultPlan::new()));
    {
        let kv = Arc::new(
            faster_builder(dir.path())
                .fault_injector(Arc::clone(&injector))
                .open()
                .unwrap(),
        );
        let state = {
            let kv = Arc::clone(&kv);
            move || kv.state()
        };
        let buffer = run_until_crash(&kv, &injector, state, variant);
        CRASH_BUFFER.with(|b| *b.borrow_mut() = Some(buffer));
        // Engine dropped here: in-memory state gone, storage is the
        // frozen (possibly torn) crash image.
    }
    let (kv, manifest) = faster_builder(dir.path()).recover().unwrap();
    let manifest = manifest.expect("checkpoint 1 must have survived");
    assert_eq!(manifest.version, 1, "the crashed checkpoint 2 must not commit");
    recover_and_resume(Arc::new(kv), 1, variant);
}

#[test]
fn faster_fold_over_crash_resume() {
    faster_crash_resume(checkpoint_variant::FOLD_OVER);
}

#[test]
fn faster_snapshot_crash_resume() {
    faster_crash_resume(checkpoint_variant::SNAPSHOT);
}

#[test]
fn memdb_crash_resume() {
    let dir = tempfile::tempdir().unwrap();
    let injector = Arc::new(FaultInjector::new(FaultPlan::new()));
    {
        let db = Arc::new(
            MemDb::<u64>::builder(Durability::Cpr)
                .dir(dir.path())
                .fault_injector(Arc::clone(&injector))
                .open()
                .unwrap(),
        );
        let state = {
            let db = Arc::clone(&db);
            move || db.state()
        };
        let buffer = run_until_crash(&db, &injector, state, checkpoint_variant::FOLD_OVER);
        CRASH_BUFFER.with(|b| *b.borrow_mut() = Some(buffer));
    }
    let (db, manifest) = MemDb::<u64>::builder(Durability::Cpr)
        .dir(dir.path())
        .recover()
        .unwrap();
    let manifest = manifest.expect("checkpoint 1 must have survived");
    assert_eq!(manifest.version, 1, "the crashed checkpoint 2 must not commit");
    recover_and_resume(Arc::new(db), 1, checkpoint_variant::FOLD_OVER);
}
