//! Loopback server/client roundtrips against both engines: ops, scans,
//! checkpoint-driven commit points, and live (no-crash) reconnects.

use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

use cpr_faster::{FasterBuilder, HlogConfig};
use cpr_memdb::{Durability, MemDb};
use cpr_net::wire::checkpoint_variant;
use cpr_net::{NetClient, NetEngine, NetServer, OpKind, OpStatus};

fn serve<E: NetEngine>(engine: Arc<E>) -> NetServer {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    NetServer::serve(engine, listener).unwrap()
}

fn faster_engine(dir: &std::path::Path) -> Arc<cpr_faster::FasterKv<u64>> {
    Arc::new(
        FasterBuilder::u64_sums(dir)
            .hlog(HlogConfig {
                page_bits: 12,
                memory_pages: 16,
                mutable_pages: 8,
                value_size: 8,
            })
            .refresh_every(8)
            .open()
            .unwrap(),
    )
}

fn memdb_engine(dir: &std::path::Path) -> Arc<MemDb<u64>> {
    Arc::new(
        MemDb::<u64>::builder(Durability::Cpr)
            .dir(dir)
            .open()
            .unwrap(),
    )
}

fn ops_scan_commit<E: NetEngine>(engine: Arc<E>, reads_see_absent: bool) {
    let server = serve(engine);
    let addr = server.addr();

    let mut c = NetClient::connect(addr, 7).unwrap();
    assert_eq!(c.resume_point().until_serial, 0);

    // Upserts + RMWs, pipelined.
    for k in 0..100u64 {
        c.upsert(k, k + 1).unwrap();
    }
    for k in 0..50u64 {
        c.rmw(k, 10).unwrap();
    }
    c.delete(99).unwrap();
    let results = c.sync().unwrap();
    assert_eq!(results.len(), 151);
    assert!(results.iter().all(|r| r.status == OpStatus::Ok));

    // Reads see the merged values.
    let s1 = c.read(0).unwrap();
    let s2 = c.read(60).unwrap();
    let s3 = c.read(12345).unwrap();
    let results = c.sync().unwrap();
    let get = |serial| {
        results
            .iter()
            .find(|r| r.serial == serial)
            .copied()
            .unwrap()
    };
    assert_eq!(get(s1).value, Some(11)); // 1 + 10
    assert_eq!(get(s2).value, Some(61));
    if reads_see_absent {
        assert_eq!(get(s3).status, OpStatus::NotFound);
    }
    assert_eq!(get(s3).value.unwrap_or(0), 0);

    // Scan over the wire: keys 0..99 minus the deleted 99.
    let scan = c.scan().unwrap();
    assert_eq!(scan.len(), 99);
    assert_eq!(scan[0], (0, 11));
    assert_eq!(scan[49], (49, 60));
    assert_eq!(scan[98], (98, 99));
    assert!(!scan.iter().any(|&(k, _)| k == 99));

    // A checkpoint pushes a commit point covering every acked serial.
    let serial_now = c.next_serial() - 1;
    assert!(c
        .request_checkpoint(checkpoint_variant::FOLD_OVER, false)
        .unwrap());
    let cp = c.wait_commit(1, Duration::from_secs(20)).unwrap();
    assert_eq!(cp.version, 1);
    assert_eq!(cp.until_serial, serial_now);
    assert!(cp.covers(serial_now));
    assert_eq!(c.uncommitted(), 0, "commit point prunes the replay buffer");
    c.goodbye().unwrap();
}

#[test]
fn faster_ops_scan_commit() {
    let dir = tempfile::tempdir().unwrap();
    ops_scan_commit(faster_engine(dir.path()), true);
}

#[test]
fn memdb_ops_scan_commit() {
    let dir = tempfile::tempdir().unwrap();
    ops_scan_commit(memdb_engine(dir.path()), false);
}

/// A live reconnect (server never crashed) resumes from the last
/// accepted serial: nothing is replayed, nothing applied twice.
fn live_reconnect_is_lossless<E: NetEngine>(engine: Arc<E>) {
    let server = serve(engine);
    let addr = server.addr();

    let mut c = NetClient::connect(addr, 11).unwrap();
    for _ in 0..20 {
        c.rmw(5, 1).unwrap();
    }
    c.sync().unwrap();
    let sent = c.next_serial() - 1;
    // Drop without Goodbye: the un-durable suffix survives client-side.
    let buffer = c.take_buffer();
    assert_eq!(buffer.len(), 20, "nothing committed yet: all retained");

    let mut c = NetClient::connect_with(addr, 11, buffer).unwrap();
    assert_eq!(
        c.resume_point().until_serial,
        sent,
        "live reattach resumes after the last accepted serial"
    );
    assert_eq!(c.replayed(), 0, "nothing lost, nothing replayed");
    let s = c.read(5).unwrap();
    let results = c.sync().unwrap();
    let r = results.iter().find(|r| r.serial == s).unwrap();
    assert_eq!(r.value, Some(20), "RMWs applied exactly once");
    c.goodbye().unwrap();
}

#[test]
fn faster_live_reconnect() {
    let dir = tempfile::tempdir().unwrap();
    live_reconnect_is_lossless(faster_engine(dir.path()));
}

#[test]
fn memdb_live_reconnect() {
    let dir = tempfile::tempdir().unwrap();
    live_reconnect_is_lossless(memdb_engine(dir.path()));
}

#[test]
fn duplicate_guid_rejected() {
    let dir = tempfile::tempdir().unwrap();
    let server = serve(memdb_engine(dir.path()));
    let _c1 = NetClient::connect(server.addr(), 3).unwrap();
    let err = match NetClient::connect(server.addr(), 3) {
        Ok(_) => panic!("second connection for guid 3 must be refused"),
        Err(e) => e,
    };
    assert!(err.to_string().contains("already connected"), "{err}");
}

#[test]
fn concurrent_clients_share_the_engine() {
    let dir = tempfile::tempdir().unwrap();
    let server = serve(memdb_engine(dir.path()));
    let addr = server.addr();
    let threads: Vec<_> = (0..4u64)
        .map(|t| {
            std::thread::spawn(move || {
                let mut c = NetClient::connect(addr, 100 + t).unwrap();
                for _ in 0..200 {
                    c.rmw(77, 1).unwrap();
                }
                c.sync().unwrap();
                c.goodbye().unwrap();
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let mut c = NetClient::connect(addr, 999).unwrap();
    let s = c.read(77).unwrap();
    let results = c.sync().unwrap();
    assert_eq!(
        results.iter().find(|r| r.serial == s).unwrap().value,
        Some(800),
        "all four sessions' RMWs applied"
    );
    assert_eq!(results[0].kind, OpKind::Read);
}
