//! Commit state machine phases.

use serde::{Deserialize, Serialize};

/// Phase of the CPR commit state machine.
///
/// The in-memory database (paper Fig. 4) uses `Rest → Prepare → InProgress →
/// WaitFlush → Rest`; FASTER (paper Fig. 9a) additionally passes through
/// `WaitPending` between `InProgress` and `WaitFlush`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Phase {
    /// Normal processing at some version `v`; no commit in flight.
    Rest = 0,
    /// Threads "prepare" for the version shift: transactions must be fully
    /// executable against version `v` or abort (at most once per thread).
    Prepare = 1,
    /// The prepare→in-progress transition demarcates a thread's CPR point;
    /// subsequent operations belong to version `v + 1`.
    InProgress = 2,
    /// FASTER only: wait until all pending version-`v` requests complete.
    WaitPending = 3,
    /// Version-`v` state is being written to storage asynchronously.
    WaitFlush = 4,
}

impl Phase {
    /// All phases in state-machine order.
    pub const ALL: [Phase; 5] = [
        Phase::Rest,
        Phase::Prepare,
        Phase::InProgress,
        Phase::WaitPending,
        Phase::WaitFlush,
    ];

    /// Decode from the representation produced by `as u8`.
    #[inline]
    pub fn from_u8(v: u8) -> Phase {
        match v {
            0 => Phase::Rest,
            1 => Phase::Prepare,
            2 => Phase::InProgress,
            3 => Phase::WaitPending,
            4 => Phase::WaitFlush,
            _ => panic!("invalid phase encoding: {v}"),
        }
    }

    /// True while a commit is in flight (any phase but `Rest`).
    #[inline]
    pub fn checkpointing(self) -> bool {
        self != Phase::Rest
    }

    /// The paper's phase name, without allocating (same strings as
    /// `Display`). Used as phase labels by the metrics tracer.
    #[inline]
    pub fn name(self) -> &'static str {
        match self {
            Phase::Rest => "rest",
            Phase::Prepare => "prepare",
            Phase::InProgress => "in-progress",
            Phase::WaitPending => "wait-pending",
            Phase::WaitFlush => "wait-flush",
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_phases() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_u8(p as u8), p);
        }
    }

    #[test]
    #[should_panic(expected = "invalid phase")]
    fn invalid_encoding_panics() {
        Phase::from_u8(9);
    }

    #[test]
    fn only_rest_is_not_checkpointing() {
        assert!(!Phase::Rest.checkpointing());
        for p in [
            Phase::Prepare,
            Phase::InProgress,
            Phase::WaitPending,
            Phase::WaitFlush,
        ] {
            assert!(p.checkpointing());
        }
    }

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(Phase::WaitFlush.to_string(), "wait-flush");
        assert_eq!(Phase::InProgress.to_string(), "in-progress");
    }
}
