//! Session resume support: commit points that survive detach.
//!
//! The paper's recovery contract (Sec. 2) is *per session*: after a crash,
//! session `i` learns a commit point `t_i` such that exactly the serials
//! `<= t_i` are durable. That contract must hold even for sessions that
//! are not attached when the checkpoint's manifest is written — a client
//! that disconnected, or a straggler the watchdog evicted. The registry
//! ([`crate::SessionRegistry`]) only tracks *occupied* slots, so both
//! engines pair it with a [`DetachedSessions`] side table: when a session
//! detaches, it deposits the commit points it had already contributed to
//! in-flight checkpoint versions plus its final accepted serial; when a
//! checkpoint's manifest is assembled, detached sessions contribute their
//! points alongside the live registry snapshot.
//!
//! [`CommitPoint`] is the value a server pushes to a remote client (and
//! what a reconnecting client learns during the resume handshake): ops
//! with serial `<= until_serial` are durable as of `version`, except the
//! listed `exclusions`, which the client must re-issue. The engines in
//! this repo produce pure prefixes (no exclusions), but the type — and
//! the wire protocol built on it — carries them so a client implements
//! the full CPR contract from the paper.

use std::collections::HashMap;
use std::sync::Mutex;

use crate::SessionId;

/// A session's commit point as published to clients: everything up to
/// `until_serial` is durable at checkpoint `version`, except `exclusions`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitPoint {
    /// Checkpoint version whose manifest established this point.
    pub version: u64,
    /// Highest serial included in the durable prefix.
    pub until_serial: u64,
    /// Serials `<= until_serial` that are *not* durable and must be
    /// re-issued by the client (paper, Sec. 2: commit points may exclude
    /// a finite set of operations). Always empty for the engines here.
    pub exclusions: Vec<u64>,
}

impl CommitPoint {
    /// A pure-prefix commit point (no exclusions).
    pub fn prefix(version: u64, until_serial: u64) -> Self {
        CommitPoint {
            version,
            until_serial,
            exclusions: Vec::new(),
        }
    }

    /// True iff `serial` is covered by this commit point.
    pub fn covers(&self, serial: u64) -> bool {
        serial <= self.until_serial && !self.exclusions.contains(&serial)
    }
}

#[derive(Debug, Default)]
struct Detached {
    /// `(version, point)` entries, one per checkpoint version the session
    /// contributed a CPR point to before detaching, plus a final entry at
    /// the version its last ops ran under. Monotone in both components:
    /// "all serials `<= point` were applied under checkpoint versions
    /// `<= version`".
    points: Vec<(u64, u64)>,
    /// Serial of the last operation the session accepted. Used as the
    /// resume point for a *live* re-attach (no crash in between — every
    /// accepted op is still in memory, so nothing needs replay).
    last_serial: u64,
}

/// Side table of commit points for sessions that have detached (dropped
/// their handle, disconnected, or been evicted by the watchdog). Keeps
/// the per-session recovery contract intact across checkpoints the
/// session is not present for.
#[derive(Debug, Default)]
pub struct DetachedSessions {
    inner: Mutex<HashMap<SessionId, Detached>>,
}

impl DetachedSessions {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a cleanly-detached session: `points` are the CPR points it
    /// had marked for still-uncommitted checkpoint versions (oldest
    /// first), and `last_serial` its final accepted serial tagged with
    /// the version its trailing ops ran under.
    pub fn record(&self, guid: SessionId, points: Vec<(u64, u64)>, last_serial: (u64, u64)) {
        let mut map = self.inner.lock().unwrap();
        let d = map.entry(guid).or_default();
        d.points = points;
        d.points.push(last_serial);
        d.last_serial = last_serial.1;
    }

    /// Record an evicted session. Eviction cancels every operation after
    /// the rolled-back CPR `point`, so the point doubles as the last
    /// serial: a resuming client must re-issue everything after it.
    pub fn record_evicted(&self, guid: SessionId, version: u64, point: u64) {
        let mut map = self.inner.lock().unwrap();
        let d = map.entry(guid).or_default();
        d.points = vec![(version, point)];
        d.last_serial = point;
    }

    /// The serial a session should resume from if the store has been
    /// continuously up (live re-attach): its last accepted serial.
    /// `None` if the guid never detached in this process lifetime.
    pub fn last_serial(&self, guid: SessionId) -> Option<u64> {
        self.inner.lock().unwrap().get(&guid).map(|d| d.last_serial)
    }

    /// Commit points detached sessions contribute to the manifest of
    /// checkpoint `version`: for each guid, the largest point recorded at
    /// a version `<= version` (ops up to that point were applied under
    /// checkpoint versions at or below the one committing now).
    pub fn points_for(&self, version: u64) -> Vec<(SessionId, u64)> {
        let map = self.inner.lock().unwrap();
        map.iter()
            .filter_map(|(&guid, d)| {
                d.points
                    .iter()
                    .filter(|&&(v, _)| v <= version)
                    .map(|&(_, p)| p)
                    .max()
                    .map(|p| (guid, p))
            })
            .collect()
    }

    /// Drop point entries subsumed by the committed manifest of
    /// `version` (their value now lives in the manifest / the engine's
    /// carried-forward durable points). The `last_serial` survives for
    /// live re-attach.
    pub fn prune_committed(&self, version: u64) {
        let mut map = self.inner.lock().unwrap();
        for d in map.values_mut() {
            d.points.retain(|&(v, _)| v > version);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_point_covers() {
        let cp = CommitPoint {
            version: 3,
            until_serial: 10,
            exclusions: vec![7],
        };
        assert!(cp.covers(6));
        assert!(!cp.covers(7), "excluded serial is not durable");
        assert!(cp.covers(10));
        assert!(!cp.covers(11));
        assert_eq!(CommitPoint::prefix(1, 5).exclusions, Vec::<u64>::new());
    }

    #[test]
    fn detached_prefix_points_by_version() {
        let d = DetachedSessions::new();
        // Session 1 detached mid-checkpoint v=4: it had marked point 10
        // for v=4, then ran 2 more ops under v=5 before detaching.
        d.record(1, vec![(4, 10)], (5, 12));
        // Manifest for v=4 sees only the marked point.
        assert_eq!(d.points_for(4), vec![(1, 10)]);
        // A later checkpoint covers everything.
        assert_eq!(d.points_for(5), vec![(1, 12)]);
        assert_eq!(d.points_for(9), vec![(1, 12)]);
        // An older version predates every entry.
        assert!(d.points_for(3).is_empty());
        // Live re-attach resumes after the last accepted op.
        assert_eq!(d.last_serial(1), Some(12));
        assert_eq!(d.last_serial(2), None);
    }

    #[test]
    fn evicted_session_reports_rolled_back_point() {
        let d = DetachedSessions::new();
        // Evicted during v=6 with ops 8..=11 cancelled: point rolled to 7.
        d.record_evicted(9, 6, 7);
        assert_eq!(d.points_for(6), vec![(9, 7)]);
        assert_eq!(d.points_for(8), vec![(9, 7)]);
        // The pre-eviction serial (11) must NOT be reported anywhere.
        assert_eq!(d.last_serial(9), Some(7));
    }

    #[test]
    fn prune_keeps_last_serial() {
        let d = DetachedSessions::new();
        d.record(1, vec![(2, 3)], (3, 5));
        d.prune_committed(3);
        assert!(d.points_for(9).is_empty());
        assert_eq!(d.last_serial(1), Some(5), "live-resume point survives");
    }

    #[test]
    fn re_record_supersedes() {
        let d = DetachedSessions::new();
        d.record(1, vec![], (2, 4));
        // Session re-attached, ran to serial 9, detached again.
        d.record(1, vec![], (2, 9));
        assert_eq!(d.points_for(2), vec![(1, 9)]);
        assert_eq!(d.last_serial(1), Some(9));
    }
}
