//! Global system state: (phase, version) packed into a single atomic word.
//!
//! Worker threads read the global state only during epoch synchronization,
//! so a single-load snapshot of both fields is required for consistency —
//! hence the packing (paper Sec. 4.1: `Global.phase` and `Global.version`).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::Phase;

/// Packed (phase, version) with atomic transitions.
///
/// Layout: `version` in the low 48 bits, `phase` in the high 8 bits.
#[derive(Debug)]
pub struct SystemState {
    word: AtomicU64,
}

const VERSION_BITS: u32 = 48;
const VERSION_MASK: u64 = (1 << VERSION_BITS) - 1;

#[inline]
fn pack(phase: Phase, version: u64) -> u64 {
    debug_assert!(version <= VERSION_MASK);
    ((phase as u64) << VERSION_BITS) | version
}

#[inline]
fn unpack(word: u64) -> (Phase, u64) {
    (
        Phase::from_u8((word >> VERSION_BITS) as u8),
        word & VERSION_MASK,
    )
}

impl SystemState {
    /// Initial state: `Rest` at version 1 (version 0 is reserved to mean
    /// "no checkpoint").
    pub fn new() -> Self {
        SystemState {
            word: AtomicU64::new(pack(Phase::Rest, 1)),
        }
    }

    /// Start at an explicit version, e.g. after recovery.
    pub fn at_version(version: u64) -> Self {
        SystemState {
            word: AtomicU64::new(pack(Phase::Rest, version)),
        }
    }

    /// One-load snapshot of (phase, version).
    #[inline]
    pub fn load(&self) -> (Phase, u64) {
        unpack(self.word.load(Ordering::Acquire))
    }

    /// Current phase.
    #[inline]
    pub fn phase(&self) -> Phase {
        self.load().0
    }

    /// Current version.
    #[inline]
    pub fn version(&self) -> u64 {
        self.load().1
    }

    /// Atomically transition `(from_phase, from_version) → (to_phase,
    /// to_version)`. Returns `false` if the state was not as expected —
    /// e.g. a concurrent commit request already advanced it.
    pub fn transition(&self, from: (Phase, u64), to: (Phase, u64)) -> bool {
        self.word
            .compare_exchange(
                pack(from.0, from.1),
                pack(to.0, to.1),
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// Unconditionally set the state (used on recovery paths; not during a
    /// live commit).
    pub fn store(&self, phase: Phase, version: u64) {
        self.word.store(pack(phase, version), Ordering::Release);
    }
}

impl Default for SystemState {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_is_rest_v1() {
        let s = SystemState::new();
        assert_eq!(s.load(), (Phase::Rest, 1));
    }

    #[test]
    fn pack_unpack_roundtrip() {
        for p in Phase::ALL {
            for v in [0u64, 1, 12345, VERSION_MASK] {
                assert_eq!(unpack(pack(p, v)), (p, v));
            }
        }
    }

    #[test]
    fn transition_succeeds_from_expected_state() {
        let s = SystemState::new();
        assert!(s.transition((Phase::Rest, 1), (Phase::Prepare, 1)));
        assert_eq!(s.load(), (Phase::Prepare, 1));
    }

    #[test]
    fn transition_fails_from_wrong_state() {
        let s = SystemState::new();
        assert!(!s.transition((Phase::Prepare, 1), (Phase::InProgress, 1)));
        assert_eq!(s.load(), (Phase::Rest, 1), "state unchanged on failure");
    }

    #[test]
    fn commit_cycle_bumps_version() {
        let s = SystemState::new();
        assert!(s.transition((Phase::Rest, 1), (Phase::Prepare, 1)));
        assert!(s.transition((Phase::Prepare, 1), (Phase::InProgress, 1)));
        assert!(s.transition((Phase::InProgress, 1), (Phase::WaitFlush, 1)));
        assert!(s.transition((Phase::WaitFlush, 1), (Phase::Rest, 2)));
        assert_eq!(s.load(), (Phase::Rest, 2));
    }

    #[test]
    fn concurrent_commit_requests_one_wins() {
        use std::sync::Arc;
        let s = Arc::new(SystemState::new());
        let winners: usize = (0..8)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    s.transition((Phase::Rest, 1), (Phase::Prepare, 1)) as usize
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum();
        assert_eq!(winners, 1);
    }
}
