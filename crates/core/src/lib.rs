//! Core CPR abstractions shared by the transactional database
//! (`cpr-memdb`) and the FASTER key-value store (`cpr-faster`).
//!
//! *Concurrent Prefix Recovery* (CPR) is a group-commit durability model:
//! instead of acknowledging individual operations, the system periodically
//! tells each client session `i` a *commit point* `t_i` in the session's
//! local operation timeline such that **all** operations before `t_i` are
//! durable and **none** after are (paper, Definition 1). A CPR commit is
//! coordinated by a global state machine whose transitions are realized
//! lazily by worker threads through the epoch framework (`cpr-epoch`).
//!
//! This crate provides the pieces both systems share:
//! * [`Phase`] — the commit state machine phases;
//! * [`SystemState`] — (phase, version) packed into one atomic word;
//! * [`SessionRegistry`] — per-session published state used both for the
//!   "all sessions have entered phase P" trigger conditions and for
//!   recording per-session CPR points;
//! * [`manifest`] — durable checkpoint metadata.

pub mod liveness;
pub mod manifest;
mod phase;
pub mod resume;
mod sessions;
mod state;
pub mod sync;
pub mod value;
mod version;

pub use liveness::{
    BusyState, Clock, CommitOutcome, LivenessConfig, SessionStatus, SystemClock, VirtualClock,
};
pub use manifest::{CheckpointKind, CheckpointManifest, SessionCpr};
pub use phase::Phase;
pub use resume::{CommitPoint, DetachedSessions};
pub use sessions::{SessionId, SessionInfo, SessionRegistry, SessionSlot};
pub use state::SystemState;
pub use sync::NoWaitLock;
pub use value::{pod_read, pod_size, pod_write, Pod};
pub use version::CheckpointVersion;

/// One-stop imports for applications using either engine:
///
/// ```
/// use cpr_core::prelude::*;
///
/// let cfg = LivenessConfig::system();
/// assert_eq!(Phase::Rest.name(), "rest");
/// assert_eq!(CheckpointVersion::NONE, 0);
/// let _ = (cfg, CommitOutcome::default());
/// ```
pub mod prelude {
    pub use crate::liveness::{CommitOutcome, LivenessConfig, SessionStatus};
    pub use crate::manifest::{CheckpointKind, CheckpointManifest};
    pub use crate::{CheckpointVersion, CommitPoint, Phase, SessionId, SessionInfo};
}
