//! The [`CheckpointVersion`] newtype.
//!
//! CPR versions are small monotone integers (the `v` of the paper's
//! `(phase, version)` pairs), but a raw `u64` in a public signature says
//! nothing about which of the repo's many counters it is (serials,
//! epochs, tokens, versions…). Engine APIs traffic in
//! [`CheckpointVersion`] instead; the durable manifest keeps a plain
//! `u64` (wire format, documented in [`crate::manifest`]).
//!
//! The newtype compares directly against `u64` in both directions, so
//! call sites like `db.committed_version() >= 1` read naturally.

use serde::{Deserialize, Serialize, Value};

/// A CPR commit version. Version 0 means "nothing committed yet";
/// committed versions start at 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CheckpointVersion(pub u64);

impl CheckpointVersion {
    /// No checkpoint committed yet.
    pub const NONE: CheckpointVersion = CheckpointVersion(0);

    /// The raw version number.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// The next version (`v + 1`).
    #[inline]
    pub fn next(self) -> CheckpointVersion {
        CheckpointVersion(self.0 + 1)
    }
}

impl From<u64> for CheckpointVersion {
    fn from(v: u64) -> Self {
        CheckpointVersion(v)
    }
}

impl From<CheckpointVersion> for u64 {
    fn from(v: CheckpointVersion) -> Self {
        v.0
    }
}

impl PartialEq<u64> for CheckpointVersion {
    fn eq(&self, other: &u64) -> bool {
        self.0 == *other
    }
}

impl PartialEq<CheckpointVersion> for u64 {
    fn eq(&self, other: &CheckpointVersion) -> bool {
        *self == other.0
    }
}

impl PartialOrd<u64> for CheckpointVersion {
    fn partial_cmp(&self, other: &u64) -> Option<std::cmp::Ordering> {
        self.0.partial_cmp(other)
    }
}

impl PartialOrd<CheckpointVersion> for u64 {
    fn partial_cmp(&self, other: &CheckpointVersion) -> Option<std::cmp::Ordering> {
        self.partial_cmp(&other.0)
    }
}

impl std::fmt::Display for CheckpointVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

// Hand-written (the vendored serde_derive handles only named-field
// structs): serializes transparently as the inner integer.
impl Serialize for CheckpointVersion {
    fn to_value(&self) -> Value {
        Value::UInt(self.0)
    }
}

impl Deserialize for CheckpointVersion {
    fn from_value(v: &Value) -> Result<Self, serde::DeError> {
        u64::from_value(v).map(CheckpointVersion)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compares_against_raw_u64() {
        let v = CheckpointVersion(2);
        assert!(v == 2);
        assert!(2u64 == v);
        assert!(v > 1);
        assert!(v < 3);
        assert!(1u64 < v);
        assert!(v >= 2);
        assert_eq!(v.next(), 3);
        assert_eq!(u64::from(v), 2);
        assert_eq!(CheckpointVersion::from(7u64).get(), 7);
        assert_eq!(CheckpointVersion::NONE, 0);
    }

    #[test]
    fn displays_with_v_prefix() {
        assert_eq!(CheckpointVersion(3).to_string(), "v3");
    }

    #[test]
    fn serializes_as_plain_integer() {
        let v = CheckpointVersion(42);
        assert_eq!(v.to_value(), Value::UInt(42));
        let back = CheckpointVersion::from_value(&Value::UInt(42)).unwrap();
        assert_eq!(back, v);
    }
}
