//! Plain-old-data values storable by the database and the key-value store.
//!
//! Both systems keep values inline — in record slots (`cpr-memdb`) or raw
//! log pages (`cpr-faster`) — and serialize them byte-wise into
//! checkpoints. [`Pod`] captures the contract that makes this sound.

/// Marker for types that are plain old data.
///
/// # Safety
/// Implementors must guarantee:
/// * the type is `Copy` with no padding-dependent semantics — any byte
///   pattern of length `size_of::<Self>()` is a valid value;
/// * it contains no pointers, no interior mutability, and no drop glue.
///
/// These allow values to be bit-copied into checkpoint buffers and raw log
/// pages and read back with `ptr::read_unaligned`.
pub unsafe trait Pod: Copy + Send + Sync + 'static {}

unsafe impl Pod for u8 {}
unsafe impl Pod for u16 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for i8 {}
unsafe impl Pod for i16 {}
unsafe impl Pod for i32 {}
unsafe impl Pod for i64 {}
unsafe impl Pod for usize {}
unsafe impl Pod for () {}
unsafe impl<T: Pod, const N: usize> Pod for [T; N] {}

/// Byte-wise size of a `Pod` value.
pub const fn pod_size<T: Pod>() -> usize {
    std::mem::size_of::<T>()
}

/// Append the raw bytes of `v` to `out`.
pub fn pod_write<T: Pod>(v: &T, out: &mut Vec<u8>) {
    // SAFETY: Pod guarantees `T` is valid to view as bytes.
    let bytes =
        unsafe { std::slice::from_raw_parts(v as *const T as *const u8, std::mem::size_of::<T>()) };
    out.extend_from_slice(bytes);
}

/// Read a value from the front of `buf`.
///
/// # Panics
/// Panics if `buf` is shorter than `size_of::<T>()`.
pub fn pod_read<T: Pod>(buf: &[u8]) -> T {
    assert!(buf.len() >= std::mem::size_of::<T>(), "short buffer");
    // SAFETY: length checked; Pod guarantees any bit pattern is valid.
    unsafe { std::ptr::read_unaligned(buf.as_ptr() as *const T) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip() {
        let mut buf = Vec::new();
        pod_write(&0xDEAD_BEEF_u64, &mut buf);
        assert_eq!(buf.len(), 8);
        assert_eq!(pod_read::<u64>(&buf), 0xDEAD_BEEF);
    }

    #[test]
    fn array_roundtrip() {
        let v: [u64; 8] = [1, 2, 3, 4, 5, 6, 7, 8];
        let mut buf = Vec::new();
        pod_write(&v, &mut buf);
        assert_eq!(buf.len(), 64);
        assert_eq!(pod_read::<[u64; 8]>(&buf), v);
    }

    #[test]
    fn unaligned_read_is_fine() {
        let mut buf = vec![0xFFu8];
        pod_write(&42u64, &mut buf);
        assert_eq!(pod_read::<u64>(&buf[1..]), 42);
    }

    #[test]
    #[should_panic(expected = "short buffer")]
    fn short_buffer_panics() {
        pod_read::<u64>(&[1, 2, 3]);
    }
}
