//! Shared synchronization primitives.

use std::sync::atomic::{AtomicU64, Ordering};

/// Exclusive bit of the lock word; lower bits count shared holders.
const EXCLUSIVE: u64 = 1 << 63;

/// A reader/writer latch with *No-Wait* semantics: acquisition never
/// blocks, it either succeeds immediately or fails.
///
/// Used as the record lock of the transactional database (strict 2PL
/// No-Wait — a failed acquisition aborts the transaction) and as the
/// per-hash-bucket latch of FASTER's fine-grained CPR variant (paper
/// Sec. 6.2: prepare threads take it shared, in-progress threads take it
/// exclusive to hand records over to the next version).
#[derive(Debug, Default)]
pub struct NoWaitLock {
    word: AtomicU64,
}

impl NoWaitLock {
    pub fn new() -> Self {
        NoWaitLock {
            word: AtomicU64::new(0),
        }
    }

    /// Try to acquire in shared (read) mode.
    #[inline]
    pub fn try_shared(&self) -> bool {
        let mut cur = self.word.load(Ordering::Relaxed);
        loop {
            if cur & EXCLUSIVE != 0 {
                return false;
            }
            match self.word.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(v) => cur = v,
            }
        }
    }

    /// Try to acquire in exclusive (write) mode.
    #[inline]
    pub fn try_exclusive(&self) -> bool {
        self.word
            .compare_exchange(0, EXCLUSIVE, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    /// Try to upgrade a shared lock (held by the caller) to exclusive.
    /// Succeeds only if the caller is the sole shared holder. On success
    /// the caller holds the exclusive lock; on failure it still holds its
    /// shared lock.
    #[inline]
    pub fn try_upgrade(&self) -> bool {
        self.word
            .compare_exchange(1, EXCLUSIVE, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    /// Downgrade an exclusive lock (held by the caller) to shared.
    #[inline]
    pub fn downgrade(&self) {
        debug_assert_eq!(self.word.load(Ordering::Relaxed), EXCLUSIVE);
        self.word.store(1, Ordering::Release);
    }

    /// Release the shared lock.
    #[inline]
    pub fn release_shared(&self) {
        let prev = self.word.fetch_sub(1, Ordering::Release);
        debug_assert!(prev & EXCLUSIVE == 0 && prev > 0, "unbalanced release");
    }

    #[inline]
    pub fn release_exclusive(&self) {
        debug_assert_eq!(self.word.load(Ordering::Relaxed), EXCLUSIVE);
        self.word.store(0, Ordering::Release);
    }

    /// Current number of shared holders (0 if exclusively held).
    pub fn shared_count(&self) -> u64 {
        let w = self.word.load(Ordering::Acquire);
        if w & EXCLUSIVE != 0 {
            0
        } else {
            w
        }
    }

    pub fn is_locked(&self) -> bool {
        self.word.load(Ordering::Acquire) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn shared_locks_stack() {
        let l = NoWaitLock::new();
        assert!(l.try_shared());
        assert!(l.try_shared());
        assert_eq!(l.shared_count(), 2);
        assert!(!l.try_exclusive(), "exclusive blocked by readers");
        l.release_shared();
        l.release_shared();
        assert!(l.try_exclusive());
    }

    #[test]
    fn exclusive_blocks_everything() {
        let l = NoWaitLock::new();
        assert!(l.try_exclusive());
        assert!(!l.try_shared());
        assert!(!l.try_exclusive());
        l.release_exclusive();
        assert!(l.try_shared());
    }

    #[test]
    fn upgrade_only_for_sole_holder() {
        let l = NoWaitLock::new();
        assert!(l.try_shared());
        assert!(l.try_upgrade());
        l.downgrade();
        assert!(l.try_shared());
        assert!(!l.try_upgrade(), "two holders: no upgrade");
        l.release_shared();
        l.release_shared();
    }

    #[test]
    fn lock_under_contention_grants_one_exclusive() {
        let l = Arc::new(NoWaitLock::new());
        let wins: usize = (0..8)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || l.try_exclusive() as usize)
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum();
        assert_eq!(wins, 1);
    }
}
