//! Session liveness: leases, clocks, and commit-outcome reporting.
//!
//! CPR's commit protocol advances a phase only when *every* registered
//! session has refreshed into it, so one stalled, preempted, or dead
//! client thread wedges the checkpoint forever. The liveness layer gives
//! each session a **lease**: a heartbeat word bumped (one relaxed store)
//! on every refresh, measured against a coarse monotonic [`Clock`]. A
//! watchdog owned by the engine scans the heartbeats while a commit is in
//! flight and, after a grace period, either *proxy-advances* an idle
//! straggler, *evicts* one parked mid-transaction, or aborts the
//! checkpoint and retries with backoff when the straggler holds locks.
//!
//! The clock is a trait so tests drive virtual time deterministically.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::sessions::SessionId;

/// Coarse monotonic time source measured in abstract *ticks*.
///
/// The watchdog compares heartbeat ticks against `now()`; nothing in the
/// protocol depends on the tick unit, only on monotonicity.
pub trait Clock: Send + Sync + fmt::Debug {
    fn now(&self) -> u64;
}

/// Wall-clock ticks in milliseconds since construction.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    pub fn new() -> Self {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> u64 {
        self.origin.elapsed().as_millis() as u64
    }
}

/// A manually driven clock for deterministic liveness tests.
#[derive(Debug, Default)]
pub struct VirtualClock {
    ticks: AtomicU64,
}

impl VirtualClock {
    pub fn new() -> Self {
        VirtualClock {
            ticks: AtomicU64::new(0),
        }
    }

    /// Advance virtual time by `n` ticks.
    pub fn advance(&self, n: u64) {
        self.ticks.fetch_add(n, Ordering::AcqRel);
    }

    pub fn set(&self, t: u64) {
        self.ticks.fetch_max(t, Ordering::AcqRel);
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> u64 {
        self.ticks.load(Ordering::Acquire)
    }
}

/// Lease state of a session, written only via CAS so the watchdog and the
/// owning session thread arbitrate hand-offs race-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStatus {
    /// Normal operation.
    Active,
    /// The watchdog observed a stale lease and suspended the session; the
    /// owner must refresh and reactivate before issuing operations. While
    /// suspended, the watchdog may publish phase state on its behalf.
    Suspended,
    /// The lease expired while the session was mid-operation: the session
    /// is dead to the store. Operations fail with a retryable eviction
    /// error; the client must open a fresh session.
    Evicted,
    /// Transient: the watchdog is publishing state on the session's
    /// behalf. The owner must wait for `Suspended` before reactivating,
    /// so a proxy publish can never interleave with an owner resuming.
    Proxying,
}

impl SessionStatus {
    #[inline]
    pub fn from_u64(w: u64) -> Self {
        match w {
            0 => SessionStatus::Active,
            1 => SessionStatus::Suspended,
            2 => SessionStatus::Evicted,
            _ => SessionStatus::Proxying,
        }
    }
}

/// What the owning session thread is doing right now, published with
/// sequentially consistent stores so the watchdog's decision table can
/// trust it (Dekker-style flag, see the watchdog module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusyState {
    /// Between operations (safe to proxy-advance).
    Idle,
    /// Inside an operation but not yet holding any locks (safe to evict).
    InTxn,
    /// Acquiring or holding 2PL locks / latches: neither proxy-advance nor
    /// eviction is safe — the checkpoint must abort and retry.
    Locking,
}

impl BusyState {
    #[inline]
    pub fn from_u64(w: u64) -> Self {
        match w {
            0 => BusyState::Idle,
            1 => BusyState::InTxn,
            _ => BusyState::Locking,
        }
    }
}

/// Watchdog configuration. Opt-in: engines without one never touch the
/// lease words beyond the single heartbeat store per refresh.
#[derive(Debug, Clone)]
pub struct LivenessConfig {
    /// Tick source for heartbeats and grace measurement.
    pub clock: Arc<dyn Clock>,
    /// Ticks a session's lease may go unrenewed during an in-flight
    /// commit before the watchdog acts on it.
    pub grace_ticks: u64,
    /// Real-time interval between watchdog scans (virtual-clock tests keep
    /// this small; grace is still measured in clock ticks).
    pub poll_interval: Duration,
    /// Commit attempts (initial + retries) before the watchdog gives up
    /// and reports the blockers.
    pub max_attempts: u32,
    /// Base of the exponential retry backoff, in clock ticks.
    pub backoff_base_ticks: u64,
    /// Maximum uniformly distributed jitter added per backoff, in ticks.
    pub backoff_jitter_ticks: u64,
    /// Seed for the jitter PRNG (deterministic under test).
    pub seed: u64,
}

impl LivenessConfig {
    /// Millisecond wall-clock defaults: 1 s grace, 5 attempts.
    pub fn system() -> Self {
        Self::with_clock(Arc::new(SystemClock::new()))
    }

    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        LivenessConfig {
            clock,
            grace_ticks: 1000,
            poll_interval: Duration::from_millis(1),
            max_attempts: 5,
            backoff_base_ticks: 10,
            backoff_jitter_ticks: 10,
            seed: 0x5EED_CAFE,
        }
    }

    pub fn grace_ticks(mut self, t: u64) -> Self {
        self.grace_ticks = t;
        self
    }
    pub fn poll_interval(mut self, d: Duration) -> Self {
        self.poll_interval = d;
        self
    }
    pub fn max_attempts(mut self, n: u32) -> Self {
        self.max_attempts = n.max(1);
        self
    }
    pub fn backoff_base_ticks(mut self, t: u64) -> Self {
        self.backoff_base_ticks = t;
        self
    }
    pub fn backoff_jitter_ticks(mut self, t: u64) -> Self {
        self.backoff_jitter_ticks = t;
        self
    }
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Backoff before retry number `attempt` (1-based): exponential in the
    /// base, plus jitter drawn from `rng_state` (xorshift, caller-owned).
    pub fn backoff_ticks(&self, attempt: u32, rng_state: &mut u64) -> u64 {
        let exp = self
            .backoff_base_ticks
            .saturating_mul(1u64 << attempt.min(20));
        let jitter = if self.backoff_jitter_ticks == 0 {
            0
        } else {
            xorshift64(rng_state) % (self.backoff_jitter_ticks + 1)
        };
        exp.saturating_add(jitter)
    }
}

/// Minimal xorshift64 step — enough for backoff jitter without pulling a
/// PRNG dependency into the core crate.
#[inline]
pub fn xorshift64(state: &mut u64) -> u64 {
    let mut x = (*state).max(1);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Report of the most recent watchdog-supervised commit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommitOutcome {
    /// Commit attempts made (1 = clean first try).
    pub attempts: u32,
    /// Sessions whose phase state the watchdog published on their behalf.
    pub proxy_advanced: Vec<SessionId>,
    /// Sessions evicted mid-transaction.
    pub evicted: Vec<SessionId>,
    /// Checkpoint attempts rolled back via `CheckpointStore::abort`.
    pub aborted: u32,
    /// The version that became durable, if the commit succeeded.
    pub committed_version: Option<crate::CheckpointVersion>,
    /// True when `max_attempts` was exhausted without a durable commit.
    pub gave_up: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_advances() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), 0);
        c.advance(5);
        c.advance(7);
        assert_eq!(c.now(), 12);
        c.set(10); // fetch_max: never goes backwards
        assert_eq!(c.now(), 12);
        c.set(50);
        assert_eq!(c.now(), 50);
    }

    #[test]
    fn system_clock_is_monotone() {
        let c = SystemClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn backoff_grows_and_jitters_deterministically() {
        let cfg = LivenessConfig::with_clock(Arc::new(VirtualClock::new()))
            .backoff_base_ticks(10)
            .backoff_jitter_ticks(5)
            .seed(42);
        let mut s1 = 42u64;
        let mut s2 = 42u64;
        let a: Vec<u64> = (1..=4).map(|i| cfg.backoff_ticks(i, &mut s1)).collect();
        let b: Vec<u64> = (1..=4).map(|i| cfg.backoff_ticks(i, &mut s2)).collect();
        assert_eq!(a, b, "same seed, same schedule");
        for (i, w) in a.iter().enumerate() {
            let exp = 10u64 << (i as u32 + 1);
            assert!(*w >= exp && *w <= exp + 5, "attempt {i}: {w} vs base {exp}");
        }
    }

    #[test]
    fn status_and_busy_roundtrip() {
        for s in [
            SessionStatus::Active,
            SessionStatus::Suspended,
            SessionStatus::Evicted,
            SessionStatus::Proxying,
        ] {
            assert_eq!(SessionStatus::from_u64(s as u64), s);
        }
        for b in [BusyState::Idle, BusyState::InTxn, BusyState::Locking] {
            assert_eq!(BusyState::from_u64(b as u64), b);
        }
    }
}
