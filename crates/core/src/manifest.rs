//! Durable checkpoint metadata.
//!
//! A CPR commit persists, next to the captured data, a manifest describing
//! *what* was committed: the database version, the per-session CPR points,
//! and (for FASTER) the HybridLog/index offsets used by recovery (paper
//! Secs. 6.2–6.4).

use serde::{Deserialize, Serialize};

use crate::sessions::SessionId;

/// What kind of checkpoint a manifest describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CheckpointKind {
    /// Whole-database capture (the in-memory transactional DB).
    Database,
    /// FASTER fold-over log commit: read-only offset advanced to the tail;
    /// the log file itself is the checkpoint (incremental).
    FoldOver,
    /// FASTER snapshot log commit: volatile log region written to a
    /// separate snapshot file; offsets unchanged.
    Snapshot,
    /// FASTER fuzzy hash-index checkpoint.
    Index,
}

/// Per-session commit point: all operations with serial ≤ `cpr_point`
/// are durable in this checkpoint; none after are.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionCpr {
    pub guid: SessionId,
    pub cpr_point: u64,
}

/// Durable description of one checkpoint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CheckpointManifest {
    /// Unique, monotonically increasing token.
    pub token: u64,
    pub kind: CheckpointKind,
    /// The committed database version `v`.
    pub version: u64,
    /// HybridLog tail when the commit was requested (`L_hs`), if any.
    pub log_begin: Option<u64>,
    /// HybridLog tail when all version-`v` operations had completed
    /// (`L_he`), if any. Recovery replays `[min(L_is, L_hs), max(L_ie,
    /// L_he))`.
    pub log_end: Option<u64>,
    /// HybridLog tail before the fuzzy index write started (`L_is`).
    pub index_begin: Option<u64>,
    /// HybridLog tail after the fuzzy index write completed (`L_ie`).
    pub index_end: Option<u64>,
    /// Snapshot commits: first address covered by the snapshot file (the
    /// main log file covers everything below it).
    pub snapshot_start: Option<u64>,
    /// Per-session CPR points.
    pub sessions: Vec<SessionCpr>,
    /// Number of records captured (database checkpoints).
    pub records: Option<u64>,
    /// Incremental database checkpoints: token of the checkpoint this
    /// delta builds on (recovery applies the chain oldest → newest).
    pub base: Option<u64>,
}

impl CheckpointManifest {
    pub fn new(token: u64, kind: CheckpointKind, version: u64) -> Self {
        CheckpointManifest {
            token,
            kind,
            version,
            log_begin: None,
            log_end: None,
            index_begin: None,
            index_end: None,
            snapshot_start: None,
            sessions: Vec::new(),
            records: None,
            base: None,
        }
    }

    /// The recovered CPR point for `guid`, if the session is known.
    pub fn cpr_point(&self, guid: SessionId) -> Option<u64> {
        self.sessions
            .iter()
            .find(|s| s.guid == guid)
            .map(|s| s.cpr_point)
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("manifest serializes")
    }

    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CheckpointManifest {
        let mut m = CheckpointManifest::new(3, CheckpointKind::FoldOver, 7);
        m.log_begin = Some(4096);
        m.log_end = Some(8192);
        m.sessions = vec![
            SessionCpr {
                guid: 1,
                cpr_point: 100,
            },
            SessionCpr {
                guid: 2,
                cpr_point: 250,
            },
        ];
        m
    }

    #[test]
    fn json_roundtrip() {
        let m = sample();
        let j = m.to_json();
        let back = CheckpointManifest::from_json(&j).unwrap();
        assert_eq!(back.token, 3);
        assert_eq!(back.kind, CheckpointKind::FoldOver);
        assert_eq!(back.version, 7);
        assert_eq!(back.log_begin, Some(4096));
        assert_eq!(back.sessions.len(), 2);
        assert_eq!(back.cpr_point(2), Some(250));
    }

    #[test]
    fn cpr_point_for_unknown_session_is_none() {
        assert_eq!(sample().cpr_point(42), None);
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(CheckpointManifest::from_json("{not json").is_err());
    }
}
