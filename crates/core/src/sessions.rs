//! Per-session published state.
//!
//! Every client session owns a slot here. The slot publishes the session's
//! thread-local view of the commit state machine — (phase, version) — plus
//! its session-local *serial number* (a strictly increasing count of
//! accepted operations) and the serial at its last CPR point.
//!
//! Trigger-action conditions ("all sessions have entered phase ≥ P at
//! version v") scan the registry; a scan is O(#slots) and happens only
//! while a commit is in flight, never on the hot path.

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam_utils::CachePadded;

use crate::liveness::{BusyState, SessionStatus};
use crate::Phase;

/// Session identifier — the paper's session `Guid`.
pub type SessionId = u64;

/// A session's unified public view, shared by both engines (replaces the
/// ad-hoc `view() -> (Phase, u64)` tuples).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionInfo {
    /// The session's stable identifier (paper: `Guid`).
    pub guid: SessionId,
    /// Serial number of the most recently accepted operation.
    pub serial: u64,
    /// The session's thread-local view of the commit state machine.
    pub phase: Phase,
    /// The CPR version the session is operating at.
    pub version: crate::CheckpointVersion,
}

const VERSION_BITS: u32 = 48;
const VERSION_MASK: u64 = (1 << VERSION_BITS) - 1;

#[inline]
fn pack(phase: Phase, version: u64) -> u64 {
    ((phase as u64) << VERSION_BITS) | (version & VERSION_MASK)
}

#[inline]
fn unpack(word: u64) -> (Phase, u64) {
    (
        Phase::from_u8((word >> VERSION_BITS) as u8),
        word & VERSION_MASK,
    )
}

/// One session's published state. All fields are written only by the owning
/// session thread; read by whichever thread evaluates trigger conditions.
#[derive(Debug)]
pub struct SessionSlot {
    /// 0 = free; otherwise `guid + 1` (so guid 0 is usable).
    owner: AtomicU64,
    /// Packed (phase, version): the session's thread-local state-machine view.
    state: AtomicU64,
    /// Serial number of the most recently accepted operation.
    serial: AtomicU64,
    /// Serial number at the session's last CPR point.
    cpr_point: AtomicU64,
    /// Lease heartbeat: clock tick of the session's last refresh. Written
    /// with a single relaxed store — the only liveness cost on the hot
    /// path.
    heartbeat: AtomicU64,
    /// [`SessionStatus`] word; transitions are CASes so the owner thread
    /// and the watchdog arbitrate hand-offs race-free.
    status: AtomicU64,
    /// [`BusyState`] word; SeqCst stores pair with SeqCst status loads
    /// (Dekker) so the watchdog never proxy-advances a session that has
    /// already entered an operation.
    busy: AtomicU64,
    /// Epoch-table slot of the owning thread (`idx + 1`; 0 = unknown) so
    /// the watchdog can release a straggler's pinned epoch.
    epoch_slot: AtomicU64,
}

impl SessionSlot {
    fn free() -> Self {
        SessionSlot {
            owner: AtomicU64::new(0),
            state: AtomicU64::new(pack(Phase::Rest, 1)),
            serial: AtomicU64::new(0),
            cpr_point: AtomicU64::new(0),
            heartbeat: AtomicU64::new(0),
            status: AtomicU64::new(SessionStatus::Active as u64),
            busy: AtomicU64::new(BusyState::Idle as u64),
            epoch_slot: AtomicU64::new(0),
        }
    }
}

/// Registry of active sessions, sized at construction.
#[derive(Debug)]
pub struct SessionRegistry {
    slots: Box<[CachePadded<SessionSlot>]>,
}

impl SessionRegistry {
    pub fn new(max_sessions: usize) -> Self {
        assert!(max_sessions > 0);
        let slots = (0..max_sessions)
            .map(|_| CachePadded::new(SessionSlot::free()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        SessionRegistry { slots }
    }

    /// Claim a slot for `guid`, initializing its view to (phase, version).
    /// Returns the slot index.
    ///
    /// # Panics
    /// Panics if all slots are taken.
    pub fn acquire(&self, guid: SessionId, phase: Phase, version: u64) -> usize {
        for (i, slot) in self.slots.iter().enumerate() {
            if slot
                .owner
                .compare_exchange(0, guid + 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                slot.state.store(pack(phase, version), Ordering::Release);
                slot.serial.store(0, Ordering::Release);
                slot.cpr_point.store(0, Ordering::Release);
                slot.heartbeat.store(0, Ordering::Release);
                slot.status
                    .store(SessionStatus::Active as u64, Ordering::SeqCst);
                slot.busy.store(BusyState::Idle as u64, Ordering::SeqCst);
                slot.epoch_slot.store(0, Ordering::Release);
                return i;
            }
        }
        panic!("session registry exhausted: {} slots", self.slots.len());
    }

    /// Release a slot.
    pub fn release(&self, idx: usize) {
        self.slots[idx].owner.store(0, Ordering::Release);
    }

    /// Publish the session's state-machine view.
    #[inline]
    pub fn publish(&self, idx: usize, phase: Phase, version: u64) {
        self.slots[idx]
            .state
            .store(pack(phase, version), Ordering::Release);
    }

    /// The session's published (phase, version).
    #[inline]
    pub fn view(&self, idx: usize) -> (Phase, u64) {
        unpack(self.slots[idx].state.load(Ordering::Acquire))
    }

    /// Record that the session accepted an operation with `serial`.
    #[inline]
    pub fn set_serial(&self, idx: usize, serial: u64) {
        self.slots[idx].serial.store(serial, Ordering::Release);
    }

    #[inline]
    pub fn serial(&self, idx: usize) -> u64 {
        self.slots[idx].serial.load(Ordering::Acquire)
    }

    /// Mark the session's CPR point at its current serial number and return
    /// it. Called exactly when the session transitions prepare→in-progress.
    pub fn mark_cpr_point(&self, idx: usize) -> u64 {
        let s = self.serial(idx);
        self.slots[idx].cpr_point.store(s, Ordering::Release);
        s
    }

    #[inline]
    pub fn cpr_point(&self, idx: usize) -> u64 {
        self.slots[idx].cpr_point.load(Ordering::Acquire)
    }

    /// Overwrite a session's CPR point directly. Used by the watchdog when
    /// evicting a session with cancelled pending operations: the point
    /// rolls back below the earliest cancelled serial so the manifest
    /// never claims an operation that was not applied.
    pub fn set_cpr_point(&self, idx: usize, serial: u64) {
        self.slots[idx].cpr_point.store(serial, Ordering::Release);
    }

    // ---- lease / liveness ---------------------------------------------------

    /// Renew the session's lease: one relaxed store, the entire hot-path
    /// cost of liveness tracking.
    #[inline]
    pub fn heartbeat(&self, idx: usize, now: u64) {
        self.slots[idx].heartbeat.store(now, Ordering::Relaxed);
    }

    #[inline]
    pub fn last_heartbeat(&self, idx: usize) -> u64 {
        self.slots[idx].heartbeat.load(Ordering::Relaxed)
    }

    /// Publish what the owning thread is doing (SeqCst: pairs with the
    /// watchdog's status CASes — Dekker-style mutual visibility).
    #[inline]
    pub fn set_busy(&self, idx: usize, b: BusyState) {
        self.slots[idx].busy.store(b as u64, Ordering::SeqCst);
    }

    #[inline]
    pub fn busy(&self, idx: usize) -> BusyState {
        BusyState::from_u64(self.slots[idx].busy.load(Ordering::SeqCst))
    }

    #[inline]
    pub fn status(&self, idx: usize) -> SessionStatus {
        SessionStatus::from_u64(self.slots[idx].status.load(Ordering::SeqCst))
    }

    /// Watchdog: Active → Suspended. Acting (proxy-advance / evict) waits
    /// for the *next* scan, closing the window where the owner entered an
    /// operation concurrently with the suspension.
    pub fn try_suspend(&self, idx: usize) -> bool {
        self.slots[idx]
            .status
            .compare_exchange(
                SessionStatus::Active as u64,
                SessionStatus::Suspended as u64,
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok()
    }

    /// Watchdog: Suspended → Evicted. Only a suspended session can be
    /// evicted (two-scan rule).
    pub fn try_evict(&self, idx: usize) -> bool {
        self.slots[idx]
            .status
            .compare_exchange(
                SessionStatus::Suspended as u64,
                SessionStatus::Evicted as u64,
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok()
    }

    /// Owner thread: Suspended → Active, after refreshing its view (so a
    /// watchdog proxy-publish can never be overwritten by stale state).
    /// Fails if the watchdog evicted the session in the meantime.
    pub fn try_reactivate(&self, idx: usize) -> bool {
        self.slots[idx]
            .status
            .compare_exchange(
                SessionStatus::Suspended as u64,
                SessionStatus::Active as u64,
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok()
    }

    /// Owner thread: wait out any in-flight proxy publish, then
    /// reactivate. Returns `false` iff the session was evicted. The
    /// *caller* must refresh its view to at least the global state before
    /// resuming operations (a proxy publish may have advanced it).
    pub fn await_reactivate(&self, idx: usize) -> bool {
        loop {
            match self.status(idx) {
                SessionStatus::Active => return true,
                SessionStatus::Evicted => return false,
                SessionStatus::Suspended => {
                    if self.try_reactivate(idx) {
                        return true;
                    }
                }
                SessionStatus::Proxying => {
                    // The watchdog's publish window is a few stores long.
                    std::hint::spin_loop();
                }
            }
        }
    }

    /// Watchdog: Suspended → Proxying. While held, the owner cannot
    /// reactivate, so [`SessionRegistry::proxy_advance`] cannot race an
    /// owner resuming with a stale view. Must be paired with
    /// [`SessionRegistry::end_proxy`].
    pub fn try_begin_proxy(&self, idx: usize) -> bool {
        self.slots[idx]
            .status
            .compare_exchange(
                SessionStatus::Suspended as u64,
                SessionStatus::Proxying as u64,
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok()
    }

    /// Watchdog: Proxying → Suspended (publish finished).
    pub fn end_proxy(&self, idx: usize) {
        let _ = self.slots[idx].status.compare_exchange(
            SessionStatus::Proxying as u64,
            SessionStatus::Suspended as u64,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
    }

    /// Relaxed eviction probe for hot paths: eviction is sticky, so a
    /// stale read only delays detection by one refresh.
    #[inline]
    pub fn is_evicted(&self, idx: usize) -> bool {
        self.slots[idx].status.load(Ordering::Relaxed) == SessionStatus::Evicted as u64
    }

    /// Record the owning thread's epoch-table slot for stale-epoch
    /// reclamation.
    pub fn set_epoch_slot(&self, idx: usize, epoch_slot: usize) {
        self.slots[idx]
            .epoch_slot
            .store(epoch_slot as u64 + 1, Ordering::Release);
    }

    pub fn epoch_slot(&self, idx: usize) -> Option<usize> {
        match self.slots[idx].epoch_slot.load(Ordering::Acquire) {
            0 => None,
            s => Some((s - 1) as usize),
        }
    }

    /// Watchdog: publish `(phase, version)` on behalf of a *suspended*
    /// session, optionally marking its CPR point at its last accepted
    /// serial (the prepare → in-progress crossing). Returns the CPR point
    /// marked, if any. The caller must hold the Suspended (or Evicted)
    /// status — the owner cannot race this publish because it reactivates
    /// only after refreshing to at least this state.
    pub fn proxy_advance(
        &self,
        idx: usize,
        phase: Phase,
        version: u64,
        mark_point: bool,
    ) -> Option<u64> {
        debug_assert_ne!(self.status(idx), SessionStatus::Active);
        let point = mark_point.then(|| self.mark_cpr_point(idx));
        self.publish(idx, phase, version);
        point
    }

    /// Occupied, non-evicted slots that have **not** reached
    /// `(phase, version)` — the sessions holding the commit back.
    pub fn blockers(&self, phase: Phase, version: u64) -> Vec<(usize, SessionId)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                let owner = s.owner.load(Ordering::Acquire);
                if owner == 0 {
                    return None;
                }
                if SessionStatus::from_u64(s.status.load(Ordering::SeqCst))
                    == SessionStatus::Evicted
                {
                    return None;
                }
                let (p, v) = unpack(s.state.load(Ordering::Acquire));
                let reached = v > version || (v == version && p >= phase);
                (!reached).then_some((i, owner - 1))
            })
            .collect()
    }

    /// First occupied, non-evicted slot that has **not** reached
    /// `(phase, version)`, as `(slot, guid)` — an allocation-free sample
    /// for metrics ("which session is holding this transition back right
    /// now"). Use [`SessionRegistry::blockers`] for the complete list.
    pub fn first_blocker(&self, phase: Phase, version: u64) -> Option<(usize, SessionId)> {
        self.slots.iter().enumerate().find_map(|(i, s)| {
            let owner = s.owner.load(Ordering::Acquire);
            if owner == 0 {
                return None;
            }
            if SessionStatus::from_u64(s.status.load(Ordering::SeqCst)) == SessionStatus::Evicted {
                return None;
            }
            let (p, v) = unpack(s.state.load(Ordering::Acquire));
            let reached = v > version || (v == version && p >= phase);
            (!reached).then_some((i, owner - 1))
        })
    }

    /// Guid owning slot `idx`, if any.
    pub fn guid(&self, idx: usize) -> Option<SessionId> {
        match self.slots[idx].owner.load(Ordering::Acquire) {
            0 => None,
            g => Some(g - 1),
        }
    }

    /// Number of occupied slots.
    pub fn active(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.owner.load(Ordering::Acquire) != 0)
            .count()
    }

    /// True iff every occupied slot has reached `(phase, version)` or
    /// beyond — the trigger condition used by the commit state machines.
    ///
    /// "Beyond" means a strictly larger version, or the same version with a
    /// phase at least `phase`. Evicted sessions are skipped: their dead
    /// thread will never refresh, and their committed prefix is already
    /// fixed at their (rolled-back) CPR point.
    pub fn all_at_least(&self, phase: Phase, version: u64) -> bool {
        self.slots.iter().all(|s| {
            if s.owner.load(Ordering::Acquire) == 0 {
                return true;
            }
            if SessionStatus::from_u64(s.status.load(Ordering::SeqCst)) == SessionStatus::Evicted {
                return true;
            }
            let (p, v) = unpack(s.state.load(Ordering::Acquire));
            v > version || (v == version && p >= phase)
        })
    }

    /// Snapshot of (guid, cpr_point) for every occupied slot — the
    /// per-session commit points persisted in the checkpoint manifest.
    pub fn cpr_points(&self) -> Vec<(SessionId, u64)> {
        self.slots
            .iter()
            .filter_map(|s| {
                let owner = s.owner.load(Ordering::Acquire);
                (owner != 0).then(|| (owner - 1, s.cpr_point.load(Ordering::Acquire)))
            })
            .collect()
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_cycle() {
        let reg = SessionRegistry::new(2);
        let a = reg.acquire(7, Phase::Rest, 1);
        let b = reg.acquire(9, Phase::Rest, 1);
        assert_eq!(reg.active(), 2);
        assert_eq!(reg.guid(a), Some(7));
        assert_eq!(reg.guid(b), Some(9));
        reg.release(a);
        assert_eq!(reg.active(), 1);
        let c = reg.acquire(11, Phase::Rest, 1);
        assert_eq!(c, a, "freed slot reused");
    }

    #[test]
    fn guid_zero_is_usable() {
        let reg = SessionRegistry::new(1);
        let i = reg.acquire(0, Phase::Rest, 1);
        assert_eq!(reg.guid(i), Some(0));
    }

    #[test]
    fn all_at_least_over_phases_and_versions() {
        let reg = SessionRegistry::new(3);
        let a = reg.acquire(1, Phase::Rest, 1);
        let b = reg.acquire(2, Phase::Rest, 1);
        assert!(reg.all_at_least(Phase::Rest, 1));
        assert!(!reg.all_at_least(Phase::Prepare, 1));

        reg.publish(a, Phase::Prepare, 1);
        assert!(!reg.all_at_least(Phase::Prepare, 1), "b still at rest");
        reg.publish(b, Phase::Prepare, 1);
        assert!(reg.all_at_least(Phase::Prepare, 1));

        // A session already at the next version counts as "beyond".
        reg.publish(a, Phase::Rest, 2);
        assert!(!reg.all_at_least(Phase::WaitFlush, 1), "b at prepare");
        reg.publish(b, Phase::Rest, 2);
        assert!(reg.all_at_least(Phase::WaitFlush, 1));
    }

    #[test]
    fn empty_registry_is_vacuously_ready() {
        let reg = SessionRegistry::new(4);
        assert!(reg.all_at_least(Phase::WaitFlush, 99));
    }

    #[test]
    fn cpr_points_snapshot() {
        let reg = SessionRegistry::new(4);
        let a = reg.acquire(10, Phase::Rest, 1);
        let b = reg.acquire(20, Phase::Rest, 1);
        reg.set_serial(a, 5);
        reg.set_serial(b, 8);
        assert_eq!(reg.mark_cpr_point(a), 5);
        assert_eq!(reg.mark_cpr_point(b), 8);
        let mut pts = reg.cpr_points();
        pts.sort_unstable();
        assert_eq!(pts, vec![(10, 5), (20, 8)]);
    }

    #[test]
    fn lease_status_state_machine() {
        let reg = SessionRegistry::new(1);
        let i = reg.acquire(3, Phase::Rest, 1);
        assert_eq!(reg.status(i), SessionStatus::Active);
        assert!(!reg.try_evict(i), "cannot evict an active session");
        assert!(!reg.try_reactivate(i), "nothing to reactivate");
        assert!(reg.try_suspend(i));
        assert!(!reg.try_suspend(i), "already suspended");
        assert!(reg.try_reactivate(i));
        assert_eq!(reg.status(i), SessionStatus::Active);
        assert!(reg.try_suspend(i));
        assert!(reg.try_evict(i));
        assert_eq!(reg.status(i), SessionStatus::Evicted);
        assert!(!reg.try_reactivate(i), "eviction is final");
        // Re-acquire resets the lease.
        reg.release(i);
        let j = reg.acquire(4, Phase::Rest, 1);
        assert_eq!(j, i);
        assert_eq!(reg.status(j), SessionStatus::Active);
        assert_eq!(reg.busy(j), BusyState::Idle);
    }

    #[test]
    fn evicted_sessions_do_not_block_triggers() {
        let reg = SessionRegistry::new(2);
        let a = reg.acquire(1, Phase::Rest, 1);
        let b = reg.acquire(2, Phase::Rest, 1);
        reg.publish(a, Phase::Prepare, 1);
        assert!(!reg.all_at_least(Phase::Prepare, 1));
        assert_eq!(reg.blockers(Phase::Prepare, 1), vec![(b, 2)]);
        assert!(reg.try_suspend(b) && reg.try_evict(b));
        assert!(reg.all_at_least(Phase::Prepare, 1));
        assert!(reg.blockers(Phase::Prepare, 1).is_empty());
        // The evicted session still contributes its CPR point.
        assert_eq!(reg.cpr_points().len(), 2);
    }

    #[test]
    fn proxy_advance_publishes_state_and_point() {
        let reg = SessionRegistry::new(1);
        let i = reg.acquire(9, Phase::Rest, 1);
        reg.set_serial(i, 41);
        assert!(reg.try_suspend(i));
        assert_eq!(reg.proxy_advance(i, Phase::Prepare, 1, false), None);
        assert_eq!(reg.view(i), (Phase::Prepare, 1));
        assert_eq!(reg.cpr_point(i), 0);
        assert_eq!(reg.proxy_advance(i, Phase::InProgress, 1, true), Some(41));
        assert_eq!(reg.view(i), (Phase::InProgress, 1));
        assert_eq!(reg.cpr_point(i), 41);
    }

    #[test]
    fn proxy_arbitration_blocks_reactivation() {
        let reg = SessionRegistry::new(1);
        let i = reg.acquire(1, Phase::Rest, 1);
        assert!(!reg.try_begin_proxy(i), "active session cannot be proxied");
        assert!(reg.try_suspend(i));
        assert!(reg.try_begin_proxy(i));
        assert!(!reg.try_reactivate(i), "owner blocked while proxying");
        reg.end_proxy(i);
        assert_eq!(reg.status(i), SessionStatus::Suspended);
        assert!(reg.await_reactivate(i));
        assert_eq!(reg.status(i), SessionStatus::Active);
        assert!(!reg.is_evicted(i));
    }

    #[test]
    fn heartbeat_and_epoch_slot_roundtrip() {
        let reg = SessionRegistry::new(1);
        let i = reg.acquire(1, Phase::Rest, 1);
        assert_eq!(reg.last_heartbeat(i), 0);
        reg.heartbeat(i, 17);
        assert_eq!(reg.last_heartbeat(i), 17);
        assert_eq!(reg.epoch_slot(i), None);
        reg.set_epoch_slot(i, 0);
        assert_eq!(reg.epoch_slot(i), Some(0));
        reg.set_epoch_slot(i, 5);
        assert_eq!(reg.epoch_slot(i), Some(5));
    }

    #[test]
    fn cpr_point_rollback() {
        let reg = SessionRegistry::new(1);
        let i = reg.acquire(1, Phase::Rest, 1);
        reg.set_serial(i, 10);
        reg.mark_cpr_point(i);
        assert_eq!(reg.cpr_point(i), 10);
        reg.set_cpr_point(i, 7);
        assert_eq!(reg.cpr_point(i), 7);
    }

    #[test]
    fn serial_updates_visible() {
        let reg = SessionRegistry::new(1);
        let i = reg.acquire(1, Phase::Rest, 1);
        for s in 1..100 {
            reg.set_serial(i, s);
            assert_eq!(reg.serial(i), s);
        }
    }
}
