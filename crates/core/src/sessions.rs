//! Per-session published state.
//!
//! Every client session owns a slot here. The slot publishes the session's
//! thread-local view of the commit state machine — (phase, version) — plus
//! its session-local *serial number* (a strictly increasing count of
//! accepted operations) and the serial at its last CPR point.
//!
//! Trigger-action conditions ("all sessions have entered phase ≥ P at
//! version v") scan the registry; a scan is O(#slots) and happens only
//! while a commit is in flight, never on the hot path.

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam_utils::CachePadded;

use crate::Phase;

/// Session identifier — the paper's session `Guid`.
pub type SessionId = u64;

const VERSION_BITS: u32 = 48;
const VERSION_MASK: u64 = (1 << VERSION_BITS) - 1;

#[inline]
fn pack(phase: Phase, version: u64) -> u64 {
    ((phase as u64) << VERSION_BITS) | (version & VERSION_MASK)
}

#[inline]
fn unpack(word: u64) -> (Phase, u64) {
    (
        Phase::from_u8((word >> VERSION_BITS) as u8),
        word & VERSION_MASK,
    )
}

/// One session's published state. All fields are written only by the owning
/// session thread; read by whichever thread evaluates trigger conditions.
#[derive(Debug)]
pub struct SessionSlot {
    /// 0 = free; otherwise `guid + 1` (so guid 0 is usable).
    owner: AtomicU64,
    /// Packed (phase, version): the session's thread-local state-machine view.
    state: AtomicU64,
    /// Serial number of the most recently accepted operation.
    serial: AtomicU64,
    /// Serial number at the session's last CPR point.
    cpr_point: AtomicU64,
}

impl SessionSlot {
    fn free() -> Self {
        SessionSlot {
            owner: AtomicU64::new(0),
            state: AtomicU64::new(pack(Phase::Rest, 1)),
            serial: AtomicU64::new(0),
            cpr_point: AtomicU64::new(0),
        }
    }
}

/// Registry of active sessions, sized at construction.
#[derive(Debug)]
pub struct SessionRegistry {
    slots: Box<[CachePadded<SessionSlot>]>,
}

impl SessionRegistry {
    pub fn new(max_sessions: usize) -> Self {
        assert!(max_sessions > 0);
        let slots = (0..max_sessions)
            .map(|_| CachePadded::new(SessionSlot::free()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        SessionRegistry { slots }
    }

    /// Claim a slot for `guid`, initializing its view to (phase, version).
    /// Returns the slot index.
    ///
    /// # Panics
    /// Panics if all slots are taken.
    pub fn acquire(&self, guid: SessionId, phase: Phase, version: u64) -> usize {
        for (i, slot) in self.slots.iter().enumerate() {
            if slot
                .owner
                .compare_exchange(0, guid + 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                slot.state.store(pack(phase, version), Ordering::Release);
                slot.serial.store(0, Ordering::Release);
                slot.cpr_point.store(0, Ordering::Release);
                return i;
            }
        }
        panic!("session registry exhausted: {} slots", self.slots.len());
    }

    /// Release a slot.
    pub fn release(&self, idx: usize) {
        self.slots[idx].owner.store(0, Ordering::Release);
    }

    /// Publish the session's state-machine view.
    #[inline]
    pub fn publish(&self, idx: usize, phase: Phase, version: u64) {
        self.slots[idx]
            .state
            .store(pack(phase, version), Ordering::Release);
    }

    /// The session's published (phase, version).
    #[inline]
    pub fn view(&self, idx: usize) -> (Phase, u64) {
        unpack(self.slots[idx].state.load(Ordering::Acquire))
    }

    /// Record that the session accepted an operation with `serial`.
    #[inline]
    pub fn set_serial(&self, idx: usize, serial: u64) {
        self.slots[idx].serial.store(serial, Ordering::Release);
    }

    #[inline]
    pub fn serial(&self, idx: usize) -> u64 {
        self.slots[idx].serial.load(Ordering::Acquire)
    }

    /// Mark the session's CPR point at its current serial number and return
    /// it. Called exactly when the session transitions prepare→in-progress.
    pub fn mark_cpr_point(&self, idx: usize) -> u64 {
        let s = self.serial(idx);
        self.slots[idx].cpr_point.store(s, Ordering::Release);
        s
    }

    #[inline]
    pub fn cpr_point(&self, idx: usize) -> u64 {
        self.slots[idx].cpr_point.load(Ordering::Acquire)
    }

    /// Guid owning slot `idx`, if any.
    pub fn guid(&self, idx: usize) -> Option<SessionId> {
        match self.slots[idx].owner.load(Ordering::Acquire) {
            0 => None,
            g => Some(g - 1),
        }
    }

    /// Number of occupied slots.
    pub fn active(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.owner.load(Ordering::Acquire) != 0)
            .count()
    }

    /// True iff every occupied slot has reached `(phase, version)` or
    /// beyond — the trigger condition used by the commit state machines.
    ///
    /// "Beyond" means a strictly larger version, or the same version with a
    /// phase at least `phase`.
    pub fn all_at_least(&self, phase: Phase, version: u64) -> bool {
        self.slots.iter().all(|s| {
            if s.owner.load(Ordering::Acquire) == 0 {
                return true;
            }
            let (p, v) = unpack(s.state.load(Ordering::Acquire));
            v > version || (v == version && p >= phase)
        })
    }

    /// Snapshot of (guid, cpr_point) for every occupied slot — the
    /// per-session commit points persisted in the checkpoint manifest.
    pub fn cpr_points(&self) -> Vec<(SessionId, u64)> {
        self.slots
            .iter()
            .filter_map(|s| {
                let owner = s.owner.load(Ordering::Acquire);
                (owner != 0).then(|| (owner - 1, s.cpr_point.load(Ordering::Acquire)))
            })
            .collect()
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_cycle() {
        let reg = SessionRegistry::new(2);
        let a = reg.acquire(7, Phase::Rest, 1);
        let b = reg.acquire(9, Phase::Rest, 1);
        assert_eq!(reg.active(), 2);
        assert_eq!(reg.guid(a), Some(7));
        assert_eq!(reg.guid(b), Some(9));
        reg.release(a);
        assert_eq!(reg.active(), 1);
        let c = reg.acquire(11, Phase::Rest, 1);
        assert_eq!(c, a, "freed slot reused");
    }

    #[test]
    fn guid_zero_is_usable() {
        let reg = SessionRegistry::new(1);
        let i = reg.acquire(0, Phase::Rest, 1);
        assert_eq!(reg.guid(i), Some(0));
    }

    #[test]
    fn all_at_least_over_phases_and_versions() {
        let reg = SessionRegistry::new(3);
        let a = reg.acquire(1, Phase::Rest, 1);
        let b = reg.acquire(2, Phase::Rest, 1);
        assert!(reg.all_at_least(Phase::Rest, 1));
        assert!(!reg.all_at_least(Phase::Prepare, 1));

        reg.publish(a, Phase::Prepare, 1);
        assert!(!reg.all_at_least(Phase::Prepare, 1), "b still at rest");
        reg.publish(b, Phase::Prepare, 1);
        assert!(reg.all_at_least(Phase::Prepare, 1));

        // A session already at the next version counts as "beyond".
        reg.publish(a, Phase::Rest, 2);
        assert!(!reg.all_at_least(Phase::WaitFlush, 1), "b at prepare");
        reg.publish(b, Phase::Rest, 2);
        assert!(reg.all_at_least(Phase::WaitFlush, 1));
    }

    #[test]
    fn empty_registry_is_vacuously_ready() {
        let reg = SessionRegistry::new(4);
        assert!(reg.all_at_least(Phase::WaitFlush, 99));
    }

    #[test]
    fn cpr_points_snapshot() {
        let reg = SessionRegistry::new(4);
        let a = reg.acquire(10, Phase::Rest, 1);
        let b = reg.acquire(20, Phase::Rest, 1);
        reg.set_serial(a, 5);
        reg.set_serial(b, 8);
        assert_eq!(reg.mark_cpr_point(a), 5);
        assert_eq!(reg.mark_cpr_point(b), 8);
        let mut pts = reg.cpr_points();
        pts.sort_unstable();
        assert_eq!(pts, vec![(10, 5), (20, 8)]);
    }

    #[test]
    fn serial_updates_visible() {
        let reg = SessionRegistry::new(1);
        let i = reg.acquire(1, Phase::Rest, 1);
        for s in 1..100 {
            reg.set_serial(i, s);
            assert_eq!(reg.serial(i), s);
        }
    }
}
