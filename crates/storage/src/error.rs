//! Typed storage errors.
//!
//! The device layer plumbs `std::io::Result` end to end (completion
//! handles carry error *messages* across threads), but fault-injection
//! and checkpoint-store failures have structure worth keeping:
//! [`StorageError`] distinguishes a real I/O failure from an injected
//! transient fault and from a frozen post-crash device, and converts
//! losslessly into `io::Error` for the existing plumbing.

use std::fmt;
use std::io;

/// A storage-layer failure.
#[derive(Debug)]
#[non_exhaustive]
pub enum StorageError {
    /// An underlying I/O operation failed.
    Io(io::Error),
    /// A scripted fault fired for this operation (transient: a retry is
    /// a new operation and may succeed). Carries the fault-plan seed so
    /// a failing run can be replayed from its message.
    Injected { op: u64, seed: u64 },
    /// The simulated crash has fired: all I/O fails and on-disk state is
    /// frozen until the store is reopened fault-free.
    Crashed { op: u64, seed: u64 },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::Injected { op, seed } => {
                write!(f, "injected fault at op {op} (plan seed {seed:#018x})")
            }
            StorageError::Crashed { op, seed } => {
                write!(
                    f,
                    "simulated crash: I/O frozen at op {op} (plan seed {seed:#018x})"
                )
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl From<StorageError> for io::Error {
    fn from(e: StorageError) -> Self {
        match e {
            StorageError::Io(e) => e,
            other => io::Error::other(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = StorageError::Injected { op: 3, seed: 0xBEEF };
        assert!(e.to_string().contains("op 3"), "{e}");
        assert!(std::error::Error::source(&e).is_none());
        let io_err: io::Error = e.into();
        assert!(io_err.to_string().contains("injected fault"));

        let wrapped = StorageError::from(io::Error::other("disk on fire"));
        assert!(std::error::Error::source(&wrapped).is_some());
        assert!(wrapped.to_string().contains("disk on fire"));
    }
}
