//! Simulated durable storage for the CPR reproduction.
//!
//! The paper evaluates on local NVMe SSDs; this crate replaces them with a
//! [`Device`] abstraction with two implementations:
//!
//! * [`FileDevice`] — file-backed positioned I/O with a dedicated writer
//!   thread providing asynchronous completions (the common case);
//! * [`MemDevice`] — an in-memory device with optional simulated latency
//!   and bandwidth, for deterministic tests and for machines without a
//!   fast disk.
//!
//! Both deliver the property CPR relies on: writes are issued from worker
//! threads without blocking and complete asynchronously; a completion
//! handle ([`IoHandle`]) reports when data is durable.
//!
//! [`CheckpointStore`] lays out checkpoint directories and persists
//! [`cpr_core::CheckpointManifest`]s with atomic (write-temp-then-rename)
//! commit semantics.

mod checkpoint;
mod device;
mod error;
mod fault;
mod metered;

pub use checkpoint::CheckpointStore;
pub use device::{
    env_io_threads, Device, FileDevice, IoHandle, IoProfile, MemDevice, WRITE_STRIPE_BITS,
};
pub use error::StorageError;
pub use fault::{Fault, FaultDevice, FaultInjector, FaultPlan, IoVerdict};
pub use metered::MeteredDevice;
