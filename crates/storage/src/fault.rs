//! Scriptable storage fault injection for crash-recovery testing.
//!
//! A [`FaultInjector`] holds a schedule of faults indexed by a global
//! *operation counter*: every write issued through a [`FaultDevice`] (and
//! every checkpoint-store file write — see
//! [`CheckpointStore::open_with`](crate::CheckpointStore::open_with))
//! consumes one operation number and is matched against the schedule.
//! Supported faults:
//!
//! * **fail** — the operation returns an injected I/O error and nothing
//!   reaches the inner device. The counter still advances, so a retry (a
//!   new operation) succeeds: this models transient errors.
//! * **torn** — only a prefix of the data is persisted, then the
//!   operation reports failure: a torn page/manifest write.
//! * **delay** — completion is withheld for a fixed duration.
//! * **crash** — from that operation on, *every* I/O fails and the
//!   on-disk state freezes (even cleanup like
//!   [`CheckpointStore::abort`](crate::CheckpointStore::abort) becomes a
//!   no-op), exactly as if the process had died at that instant. The
//!   surviving directory can then be reopened by a fresh, fault-free
//!   store to exercise recovery.
//!
//! Schedules are either built explicitly ([`FaultPlan`] builder methods),
//! armed dynamically relative to the current counter ([`FaultInjector::
//! crash_after`] and friends — useful when a test wants "the 2nd write
//! from *now*"), or generated from a single `u64` seed
//! ([`FaultPlan::from_seed`]) so any failing torture case is replayable
//! from one printed number.

use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::device::{Device, IoHandle};

/// One scheduled fault, keyed by the injector's operation counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Operation `op` fails with an injected error (transient: later
    /// operations succeed).
    Fail { op: u64 },
    /// Operation `op` persists only its first `keep` bytes, then fails.
    Torn { op: u64, keep: usize },
    /// Operation `op` completes only after `millis` milliseconds.
    Delay { op: u64, millis: u64 },
    /// From operation `op` on, all I/O fails and on-disk state freezes.
    Crash { op: u64 },
}

impl Fault {
    fn op(&self) -> u64 {
        match *self {
            Fault::Fail { op }
            | Fault::Torn { op, .. }
            | Fault::Delay { op, .. }
            | Fault::Crash { op } => op,
        }
    }
}

/// A replayable fault schedule. `seed` is carried along purely for
/// diagnostics (it is printed inside every injected error message).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    pub faults: Vec<Fault>,
    pub seed: u64,
}

impl FaultPlan {
    /// An empty plan (faults can still be armed dynamically later).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    pub fn fail_op(mut self, op: u64) -> Self {
        self.faults.push(Fault::Fail { op });
        self
    }

    pub fn torn_op(mut self, op: u64, keep: usize) -> Self {
        self.faults.push(Fault::Torn { op, keep });
        self
    }

    pub fn delay_op(mut self, op: u64, millis: u64) -> Self {
        self.faults.push(Fault::Delay { op, millis });
        self
    }

    pub fn crash_at(mut self, op: u64) -> Self {
        self.faults.push(Fault::Crash { op });
        self
    }

    /// Derive a random schedule from `seed`: one to three faults at
    /// operations in `[0, horizon)`, with a crash as the final fault
    /// roughly half the time. Identical seeds produce identical plans.
    pub fn from_seed(seed: u64, horizon: u64) -> Self {
        let horizon = horizon.max(1);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut plan = FaultPlan {
            faults: Vec::new(),
            seed,
        };
        let n = rng.gen_range(1u32..=3);
        for _ in 0..n {
            let op = rng.gen_range(0..horizon);
            plan.faults.push(match rng.gen_range(0u32..3) {
                0 => Fault::Fail { op },
                1 => Fault::Torn {
                    op,
                    keep: rng.gen_range(0u64..256) as usize,
                },
                _ => Fault::Delay {
                    op,
                    millis: rng.gen_range(1u64..5),
                },
            });
        }
        if rng.gen_bool(0.5) {
            plan.faults.push(Fault::Crash {
                op: rng.gen_range(0..horizon),
            });
        }
        plan
    }
}

/// What the injector decided for one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoVerdict {
    Ok,
    Fail,
    Torn { keep: usize },
    Delay { millis: u64 },
    Crashed,
}

/// Shared fault state consulted by every decorated I/O path. Cheap to
/// clone via `Arc`; one injector is typically shared between a
/// [`FaultDevice`] and a [`CheckpointStore`](crate::CheckpointStore) so
/// their writes draw from a single operation sequence.
pub struct FaultInjector {
    ops: AtomicU64,
    crashed: AtomicBool,
    /// Operation number at which the crash fires (`u64::MAX` = disarmed).
    crash_at: AtomicU64,
    faults: Mutex<Vec<Fault>>,
    /// Read operations draw from their own counter and schedule so that
    /// arming a read fault never perturbs the write-op numbering that
    /// every crash-schedule test is written against.
    read_ops: AtomicU64,
    read_faults: Mutex<Vec<Fault>>,
    /// Read-op number at which a crash fires (`u64::MAX` = disarmed).
    read_crash_at: AtomicU64,
    seed: u64,
    /// Operations that drew a non-[`IoVerdict::Ok`] verdict — surfaced
    /// as `faults_injected` in metrics reports.
    hits: AtomicU64,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("ops", &self.op_count())
            .field("crashed", &self.crashed())
            .field("seed", &self.seed)
            .finish()
    }
}

impl FaultInjector {
    pub fn new(plan: FaultPlan) -> Self {
        let crash_at = plan
            .faults
            .iter()
            .filter_map(|f| match f {
                Fault::Crash { op } => Some(*op),
                _ => None,
            })
            .min()
            .unwrap_or(u64::MAX);
        let faults = plan
            .faults
            .into_iter()
            .filter(|f| !matches!(f, Fault::Crash { .. }))
            .collect();
        FaultInjector {
            ops: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
            crash_at: AtomicU64::new(crash_at),
            faults: Mutex::new(faults),
            read_ops: AtomicU64::new(0),
            read_faults: Mutex::new(Vec::new()),
            read_crash_at: AtomicU64::new(u64::MAX),
            seed: plan.seed,
            hits: AtomicU64::new(0),
        }
    }

    /// Injector with a seed-derived schedule over the first `horizon`
    /// operations (see [`FaultPlan::from_seed`]).
    pub fn from_seed(seed: u64, horizon: u64) -> Self {
        Self::new(FaultPlan::from_seed(seed, horizon))
    }

    /// Operations consumed so far.
    pub fn op_count(&self) -> u64 {
        self.ops.load(Ordering::Acquire)
    }

    /// True once the simulated crash has fired (or was forced).
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::Acquire)
    }

    /// Crash immediately: all subsequent I/O fails, disk state freezes.
    pub fn crash_now(&self) {
        self.crashed.store(true, Ordering::Release);
    }

    /// Crash at the `n`-th operation from now (0 = the very next one).
    pub fn crash_after(&self, n: u64) {
        let at = self.op_count() + n;
        // Keep the earliest armed crash.
        self.crash_at.fetch_min(at, Ordering::AcqRel);
    }

    /// Fail (transiently) the `n`-th operation from now.
    pub fn fail_after(&self, n: u64) {
        self.arm(Fault::Fail {
            op: self.op_count() + n,
        });
    }

    /// Tear the `n`-th operation from now, keeping its first `keep` bytes.
    pub fn torn_after(&self, n: u64, keep: usize) {
        self.arm(Fault::Torn {
            op: self.op_count() + n,
            keep,
        });
    }

    /// Delay the `n`-th operation from now by `millis`.
    pub fn delay_after(&self, n: u64, millis: u64) {
        self.arm(Fault::Delay {
            op: self.op_count() + n,
            millis,
        });
    }

    /// Arm an absolute-indexed fault.
    pub fn arm(&self, fault: Fault) {
        if let Fault::Crash { op } = fault {
            self.crash_at.fetch_min(op, Ordering::AcqRel);
            return;
        }
        self.faults.lock().push(fault);
    }

    /// Consume one operation number and return its verdict. Public so
    /// out-of-crate write paths (e.g. the memdb WAL flusher) can draw
    /// from the same fault sequence as the storage layer.
    pub fn next_io(&self) -> IoVerdict {
        let op = self.ops.fetch_add(1, Ordering::AcqRel);
        if self.crashed() || op >= self.crash_at.load(Ordering::Acquire) {
            self.crashed.store(true, Ordering::Release);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return IoVerdict::Crashed;
        }
        let mut faults = self.faults.lock();
        if let Some(i) = faults.iter().position(|f| f.op() == op) {
            let f = faults.remove(i);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return match f {
                Fault::Fail { .. } => IoVerdict::Fail,
                Fault::Torn { keep, .. } => IoVerdict::Torn { keep },
                Fault::Delay { millis, .. } => IoVerdict::Delay { millis },
                Fault::Crash { .. } => unreachable!("crashes live in crash_at"),
            };
        }
        IoVerdict::Ok
    }

    /// Fail (transiently) the `n`-th *read* operation from now. Reads
    /// have their own counter ([`FaultInjector::next_read_io`]); arming
    /// read faults never shifts write-op numbering. Used to kill the
    /// recovery scan mid-flight.
    pub fn fail_read_after(&self, n: u64) {
        self.read_faults.lock().push(Fault::Fail {
            op: self.read_ops.load(Ordering::Acquire) + n,
        });
    }

    /// Crash at the `n`-th *read* operation from now: every subsequent
    /// I/O (reads and writes) fails and the on-disk state freezes.
    pub fn crash_read_after(&self, n: u64) {
        let at = self.read_ops.load(Ordering::Acquire) + n;
        self.read_crash_at.fetch_min(at, Ordering::AcqRel);
    }

    /// Consume one *read* operation number and return its verdict.
    /// Without armed read faults this only checks the crashed flag, so
    /// the default behaviour ("reads fail only after a crash") is
    /// unchanged.
    pub fn next_read_io(&self) -> IoVerdict {
        let op = self.read_ops.fetch_add(1, Ordering::AcqRel);
        if self.crashed() || op >= self.read_crash_at.load(Ordering::Acquire) {
            self.crashed.store(true, Ordering::Release);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return IoVerdict::Crashed;
        }
        let mut faults = self.read_faults.lock();
        if let Some(i) = faults.iter().position(|f| f.op() == op) {
            let f = faults.remove(i);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return match f {
                Fault::Fail { .. } => IoVerdict::Fail,
                Fault::Torn { keep, .. } => IoVerdict::Torn { keep },
                Fault::Delay { millis, .. } => IoVerdict::Delay { millis },
                Fault::Crash { .. } => IoVerdict::Crashed,
            };
        }
        IoVerdict::Ok
    }

    /// Operations that drew a fault verdict so far (fail, torn, delay,
    /// or crashed).
    pub fn fault_hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// The typed injected-error value for the current state (includes
    /// the seed so a failing run can be replayed from its message).
    pub fn storage_error(&self) -> crate::StorageError {
        let op = self.op_count().saturating_sub(1);
        if self.crashed() {
            crate::StorageError::Crashed { op, seed: self.seed }
        } else {
            crate::StorageError::Injected { op, seed: self.seed }
        }
    }

    /// [`FaultInjector::storage_error`] converted for `io::Result`
    /// plumbing.
    pub fn error(&self) -> io::Error {
        self.storage_error().into()
    }
}

/// A [`Device`] decorator applying a [`FaultInjector`]'s schedule to
/// every write. Reads draw from a *separate* read-op sequence
/// ([`FaultInjector::next_read_io`]) that is fault-free unless read
/// faults are explicitly armed, so by default reads and syncs fail only
/// after a crash and never shift the "fail the Nth *write*" numbering.
pub struct FaultDevice {
    inner: Arc<dyn Device>,
    injector: Arc<FaultInjector>,
}

impl FaultDevice {
    pub fn new(inner: Arc<dyn Device>, injector: Arc<FaultInjector>) -> Self {
        FaultDevice { inner, injector }
    }

    pub fn injector(&self) -> &Arc<FaultInjector> {
        &self.injector
    }

    fn failed_handle(&self) -> IoHandle {
        let h = IoHandle::pending();
        h.complete(Err(self.injector.error()));
        h
    }
}

impl Device for FaultDevice {
    fn write_at(&self, offset: u64, data: Vec<u8>) -> IoHandle {
        match self.injector.next_io() {
            IoVerdict::Ok => self.inner.write_at(offset, data),
            IoVerdict::Crashed | IoVerdict::Fail => self.failed_handle(),
            IoVerdict::Torn { keep } => {
                // Persist the prefix, then report failure once it lands —
                // the caller sees an error while the device holds torn
                // bytes, like a page write interrupted by power loss.
                let keep = keep.min(data.len());
                let inner_handle = self.inner.write_at(offset, data[..keep].to_vec());
                let handle = IoHandle::pending();
                let relay = handle.clone();
                let err = self.injector.error();
                std::thread::spawn(move || {
                    let _ = inner_handle.wait();
                    relay.complete(Err(err));
                });
                handle
            }
            IoVerdict::Delay { millis } => {
                let inner = Arc::clone(&self.inner);
                let handle = IoHandle::pending();
                let relay = handle.clone();
                std::thread::spawn(move || {
                    std::thread::sleep(Duration::from_millis(millis));
                    relay.complete(inner.write_at(offset, data).wait());
                });
                handle
            }
        }
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        match self.injector.next_read_io() {
            IoVerdict::Ok => self.inner.read_at(offset, buf),
            IoVerdict::Delay { millis } => {
                std::thread::sleep(Duration::from_millis(millis));
                self.inner.read_at(offset, buf)
            }
            IoVerdict::Fail | IoVerdict::Crashed | IoVerdict::Torn { .. } => {
                Err(self.injector.error())
            }
        }
    }

    fn sync(&self) -> io::Result<()> {
        if self.injector.crashed() {
            return Err(self.injector.error());
        }
        self.inner.sync()
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;

    fn faulty(plan: FaultPlan) -> (FaultDevice, Arc<FaultInjector>) {
        let injector = Arc::new(FaultInjector::new(plan));
        let inner: Arc<dyn Device> = MemDevice::new();
        (FaultDevice::new(inner, Arc::clone(&injector)), injector)
    }

    #[test]
    fn nth_write_fails_and_retry_succeeds() {
        let (dev, _inj) = faulty(FaultPlan::new().fail_op(1));
        assert!(dev.write_at(0, vec![1; 8]).wait().is_ok());
        let err = dev.write_at(8, vec![2; 8]).wait().unwrap_err();
        assert!(err.to_string().contains("injected fault"), "{err}");
        // Retry is a new operation: it succeeds (transient semantics).
        assert!(dev.write_at(8, vec![2; 8]).wait().is_ok());
        let mut buf = [0u8; 8];
        dev.read_at(8, &mut buf).unwrap();
        assert_eq!(buf, [2; 8]);
    }

    #[test]
    fn torn_write_persists_prefix_then_errors() {
        let (dev, _inj) = faulty(FaultPlan::new().torn_op(1, 3));
        assert!(dev.write_at(0, vec![1; 8]).wait().is_ok());
        assert!(dev.write_at(0, vec![7; 8]).wait().is_err());
        dev.sync().unwrap();
        let mut buf = [0u8; 8];
        dev.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf[..3], &[7, 7, 7], "torn prefix must be durable");
        assert_eq!(&buf[3..], &[1; 5], "suffix must not have landed");
    }

    #[test]
    fn crash_freezes_all_io() {
        let (dev, inj) = faulty(FaultPlan::new().crash_at(1));
        assert!(dev.write_at(0, vec![1; 8]).wait().is_ok());
        assert!(dev.write_at(8, vec![2; 8]).wait().is_err());
        assert!(inj.crashed());
        // Everything after the crash fails: writes, reads, syncs.
        assert!(dev.write_at(16, vec![3; 8]).wait().is_err());
        assert!(dev.read_at(0, &mut [0u8; 8]).is_err());
        assert!(dev.sync().is_err());
    }

    #[test]
    fn delayed_write_completes_later() {
        let (dev, _inj) = faulty(FaultPlan::new().delay_op(0, 10));
        let start = std::time::Instant::now();
        let h = dev.write_at(0, vec![9; 8]);
        assert!(h.wait().is_ok());
        assert!(start.elapsed() >= Duration::from_millis(10));
        let mut buf = [0u8; 8];
        dev.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, [9; 8]);
    }

    #[test]
    fn dynamic_arming_is_relative_to_current_op() {
        let (dev, inj) = faulty(FaultPlan::new());
        assert!(dev.write_at(0, vec![0; 8]).wait().is_ok());
        inj.fail_after(1); // not the next write — the one after
        assert!(dev.write_at(8, vec![0; 8]).wait().is_ok());
        assert!(dev.write_at(16, vec![0; 8]).wait().is_err());
        inj.crash_after(0);
        assert!(dev.write_at(24, vec![0; 8]).wait().is_err());
        assert!(inj.crashed());
    }

    #[test]
    fn read_faults_have_their_own_op_sequence() {
        let (dev, inj) = faulty(FaultPlan::new());
        dev.write_at(0, vec![1; 8]).wait().unwrap();
        dev.sync().unwrap();
        let mut buf = [0u8; 8];
        inj.fail_read_after(1);
        dev.read_at(0, &mut buf).unwrap();
        assert!(dev.read_at(0, &mut buf).is_err(), "2nd read from now fails");
        dev.read_at(0, &mut buf).unwrap();
        // Arming and consuming read faults must not have consumed any
        // write ops: the very next write is op 1 (after the one above).
        inj.fail_after(0);
        assert!(dev.write_at(8, vec![2; 8]).wait().is_err());
        // A read-op crash freezes everything, like a write-op crash.
        inj.crash_read_after(0);
        assert!(dev.read_at(0, &mut buf).is_err());
        assert!(inj.crashed());
        assert!(dev.write_at(0, vec![3; 8]).wait().is_err());
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::from_seed(0xDEAD_BEEF, 100);
        let b = FaultPlan::from_seed(0xDEAD_BEEF, 100);
        assert_eq!(a.faults, b.faults);
        assert!(!a.faults.is_empty());
        let c = FaultPlan::from_seed(0xDEAD_BEF0, 100);
        // Different seeds *may* collide, but not for these two.
        assert_ne!(a.faults, c.faults);
    }
}
