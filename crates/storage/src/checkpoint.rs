//! Checkpoint directory layout and manifest persistence.
//!
//! Layout under the store root:
//!
//! ```text
//! <root>/cpt.<token>/manifest.json   -- committed last (temp + rename)
//! <root>/cpt.<token>/<data files>    -- db.dat / log.dat / index.dat / ...
//! ```
//!
//! A checkpoint is *committed* iff its `manifest.json` exists **and
//! parses**; recovery scans for the largest committed token. Crashes
//! mid-checkpoint therefore leave only ignorable garbage — including a
//! torn (truncated) manifest, which reads as "uncommitted", never as a
//! parse panic.
//!
//! When opened with [`CheckpointStore::open_with`], every file write is
//! routed through a shared [`FaultInjector`], drawing from the same
//! operation sequence as any [`FaultDevice`](crate::FaultDevice) holding
//! that injector — so a test can say "crash on the 2nd storage write from
//! now" and hit the manifest commit precisely.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cpr_core::CheckpointManifest;

use crate::fault::{FaultInjector, IoVerdict};

/// A directory of committed checkpoints.
pub struct CheckpointStore {
    root: PathBuf,
    next_token: AtomicU64,
    injector: Option<Arc<FaultInjector>>,
    metrics: Option<Arc<cpr_metrics::Registry>>,
}

impl CheckpointStore {
    /// Open (creating if needed) a checkpoint store rooted at `root`.
    pub fn open(root: impl AsRef<Path>) -> io::Result<Self> {
        Self::open_with(root, None)
    }

    /// Open with an optional fault injector applied to every file write
    /// (checkpoint data files and manifest commits).
    pub fn open_with(
        root: impl AsRef<Path>,
        injector: Option<Arc<FaultInjector>>,
    ) -> io::Result<Self> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        let max = Self::scan_tokens(&root)?.into_iter().max().unwrap_or(0);
        Ok(CheckpointStore {
            root,
            next_token: AtomicU64::new(max + 1),
            injector,
            metrics: None,
        })
    }

    /// Attach a metrics registry: every checkpoint file write records
    /// its byte count and write-to-durable latency. A disabled registry
    /// keeps the write path unchanged.
    pub fn with_metrics(mut self, metrics: Arc<cpr_metrics::Registry>) -> Self {
        if metrics.is_enabled() {
            self.metrics = Some(metrics);
        }
        self
    }

    /// Write one file's bytes, subject to fault injection. A `Torn`
    /// verdict persists a truncated file at the *final* path (modelling a
    /// crash mid-write) and still reports failure; `Fail`/`Crashed`
    /// verdicts leave no trace. Fault-free writes are atomic
    /// (temp + rename) and synced.
    fn write_injected(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let issued = self.metrics.as_ref().map(|m| {
            m.storage_write_issued(data.len() as u64);
            (m, std::time::Instant::now())
        });
        let res = self.write_injected_inner(path, data);
        if let Some((m, t0)) = issued {
            m.storage_write_done(t0.elapsed());
        }
        res
    }

    fn write_injected_inner(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        if let Some(inj) = &self.injector {
            match inj.next_io() {
                IoVerdict::Ok => {}
                IoVerdict::Fail | IoVerdict::Crashed => return Err(inj.error()),
                IoVerdict::Torn { keep } => {
                    let keep = keep.min(data.len());
                    fs::write(path, &data[..keep])?;
                    return Err(inj.error());
                }
                IoVerdict::Delay { millis } => {
                    std::thread::sleep(Duration::from_millis(millis));
                }
            }
        }
        let tmp = path.with_extension("tmp");
        Self::write_body(&tmp, data)?;
        fs::File::open(&tmp)?.sync_data()?;
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Write the file body, striping large payloads across
    /// `CPR_IO_THREADS` positioned writers. The fault verdict was already
    /// drawn by the caller — whole-file atomicity (temp + rename) and
    /// one-op accounting are unchanged; only the copy is parallel.
    fn write_body(path: &Path, data: &[u8]) -> io::Result<()> {
        const PARALLEL_THRESHOLD: usize = 8 << 20;
        let threads = crate::device::env_io_threads();
        if threads <= 1 || data.len() < PARALLEL_THRESHOLD {
            return fs::write(path, data);
        }
        use std::os::unix::fs::FileExt;
        let file = fs::File::create(path)?;
        file.set_len(data.len() as u64)?;
        let chunk = data.len().div_ceil(threads);
        std::thread::scope(|s| {
            let mut joins = Vec::with_capacity(threads);
            for (i, slice) in data.chunks(chunk).enumerate() {
                let file = &file;
                joins.push(s.spawn(move || file.write_all_at(slice, (i * chunk) as u64)));
            }
            for j in joins {
                j.join().expect("checkpoint writer panicked")?;
            }
            Ok(())
        })
    }

    fn scan_tokens(root: &Path) -> io::Result<Vec<u64>> {
        let mut tokens = Vec::new();
        for entry in fs::read_dir(root)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(tok) = name.strip_prefix("cpt.") else {
                continue;
            };
            let Ok(tok) = tok.parse::<u64>() else {
                continue;
            };
            // Committed only if the manifest exists.
            if entry.path().join("manifest.json").exists() {
                tokens.push(tok);
            }
        }
        Ok(tokens)
    }

    /// Allocate a fresh token and create its (uncommitted) directory.
    pub fn begin(&self) -> io::Result<u64> {
        if let Some(inj) = &self.injector {
            if inj.crashed() {
                return Err(inj.error());
            }
        }
        let token = self.next_token.fetch_add(1, Ordering::AcqRel);
        fs::create_dir_all(self.dir(token))?;
        Ok(token)
    }

    /// Discard an uncommitted checkpoint: delete `token`'s directory so a
    /// failed attempt leaves no on-disk garbage. After a simulated crash
    /// this is a no-op — the frozen filesystem keeps whatever (possibly
    /// torn) state the crash left, exactly as a real power cut would.
    pub fn abort(&self, token: u64) -> io::Result<()> {
        if let Some(inj) = &self.injector {
            if inj.crashed() {
                return Ok(());
            }
        }
        match fs::remove_dir_all(self.dir(token)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Write a named data file inside `token`'s directory, subject to
    /// fault injection (one storage operation).
    pub fn write_file(&self, token: u64, name: &str, data: &[u8]) -> io::Result<()> {
        self.write_injected(&self.file(token, name), data)
    }

    /// Read a named data file from `token`'s directory, subject to read
    /// fault injection (one *read* operation — see
    /// [`FaultInjector::next_read_io`]). Recovery goes through this so a
    /// test can kill recovery itself on a chosen checkpoint read.
    pub fn read_file(&self, token: u64, name: &str) -> io::Result<Vec<u8>> {
        if let Some(inj) = &self.injector {
            match inj.next_read_io() {
                IoVerdict::Ok => {}
                IoVerdict::Delay { millis } => {
                    std::thread::sleep(Duration::from_millis(millis));
                }
                IoVerdict::Fail | IoVerdict::Crashed | IoVerdict::Torn { .. } => {
                    return Err(inj.error());
                }
            }
        }
        fs::read(self.file(token, name))
    }

    /// Directory for `token`'s files.
    pub fn dir(&self, token: u64) -> PathBuf {
        self.root.join(format!("cpt.{token}"))
    }

    /// Path of a named data file inside `token`'s directory.
    pub fn file(&self, token: u64, name: &str) -> PathBuf {
        self.dir(token).join(name)
    }

    /// Commit `token` by atomically writing its manifest (one storage
    /// operation under fault injection; a torn verdict leaves a truncated
    /// `manifest.json` that recovery must treat as uncommitted).
    pub fn commit(&self, manifest: &CheckpointManifest) -> io::Result<()> {
        let path = self.dir(manifest.token).join("manifest.json");
        self.write_injected(&path, manifest.to_json().as_bytes())
    }

    /// Load the manifest of `token`, if committed.
    pub fn manifest(&self, token: u64) -> io::Result<CheckpointManifest> {
        let raw = fs::read_to_string(self.file(token, "manifest.json"))?;
        CheckpointManifest::from_json(&raw)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// All committed tokens, ascending.
    pub fn tokens(&self) -> io::Result<Vec<u64>> {
        let mut t = Self::scan_tokens(&self.root)?;
        t.sort_unstable();
        Ok(t)
    }

    /// The newest committed checkpoint, if any. A checkpoint whose
    /// manifest exists but does not parse (torn write at crash time) is
    /// skipped, not an error.
    pub fn latest(&self) -> io::Result<Option<CheckpointManifest>> {
        self.latest_matching(|_| true)
    }

    /// The newest committed checkpoint satisfying `pred` (e.g. "is a full
    /// checkpoint", "kind == Index"). Unreadable or torn manifests are
    /// treated as uncommitted and skipped.
    pub fn latest_matching(
        &self,
        pred: impl Fn(&CheckpointManifest) -> bool,
    ) -> io::Result<Option<CheckpointManifest>> {
        for tok in self.tokens()?.into_iter().rev() {
            let Ok(m) = self.manifest(tok) else { continue };
            if pred(&m) {
                return Ok(Some(m));
            }
        }
        Ok(None)
    }

    /// Remove every checkpoint directory (testing / GC).
    pub fn clear(&self) -> io::Result<()> {
        for entry in fs::read_dir(&self.root)? {
            let p = entry?.path();
            if p.is_dir() {
                fs::remove_dir_all(p)?;
            }
        }
        Ok(())
    }

    pub fn root(&self) -> &Path {
        &self.root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpr_core::{CheckpointKind, SessionCpr};

    fn manifest(token: u64, version: u64, kind: CheckpointKind) -> CheckpointManifest {
        let mut m = CheckpointManifest::new(token, kind, version);
        m.sessions.push(SessionCpr {
            guid: 1,
            cpr_point: 42,
        });
        m
    }

    #[test]
    fn begin_commit_latest_cycle() {
        let dir = tempfile::tempdir().unwrap();
        let store = CheckpointStore::open(dir.path()).unwrap();
        assert!(store.latest().unwrap().is_none());

        let t1 = store.begin().unwrap();
        store
            .commit(&manifest(t1, 1, CheckpointKind::Database))
            .unwrap();
        let t2 = store.begin().unwrap();
        assert!(t2 > t1);
        store
            .commit(&manifest(t2, 2, CheckpointKind::Database))
            .unwrap();

        let latest = store.latest().unwrap().unwrap();
        assert_eq!(latest.token, t2);
        assert_eq!(latest.version, 2);
        assert_eq!(latest.cpr_point(1), Some(42));
    }

    #[test]
    fn uncommitted_checkpoints_are_invisible() {
        let dir = tempfile::tempdir().unwrap();
        let store = CheckpointStore::open(dir.path()).unwrap();
        let t1 = store.begin().unwrap();
        store
            .commit(&manifest(t1, 1, CheckpointKind::Database))
            .unwrap();
        let _t2 = store.begin().unwrap(); // crash before manifest write
        let latest = store.latest().unwrap().unwrap();
        assert_eq!(latest.token, t1, "uncommitted t2 must be ignored");
    }

    #[test]
    fn reopen_resumes_token_sequence() {
        let dir = tempfile::tempdir().unwrap();
        {
            let store = CheckpointStore::open(dir.path()).unwrap();
            let t = store.begin().unwrap();
            store
                .commit(&manifest(t, 1, CheckpointKind::Database))
                .unwrap();
        }
        let store = CheckpointStore::open(dir.path()).unwrap();
        let t = store.begin().unwrap();
        assert!(t >= 2, "token sequence must not repeat: got {t}");
    }

    #[test]
    fn latest_matching_filters_by_kind() {
        let dir = tempfile::tempdir().unwrap();
        let store = CheckpointStore::open(dir.path()).unwrap();
        let t1 = store.begin().unwrap();
        store
            .commit(&manifest(t1, 1, CheckpointKind::Index))
            .unwrap();
        let t2 = store.begin().unwrap();
        store
            .commit(&manifest(t2, 1, CheckpointKind::FoldOver))
            .unwrap();
        let idx = store
            .latest_matching(|m| m.kind == CheckpointKind::Index)
            .unwrap()
            .unwrap();
        assert_eq!(idx.token, t1);
    }

    #[test]
    fn data_files_live_inside_checkpoint_dir() {
        let dir = tempfile::tempdir().unwrap();
        let store = CheckpointStore::open(dir.path()).unwrap();
        let t = store.begin().unwrap();
        std::fs::write(store.file(t, "db.dat"), b"payload").unwrap();
        store
            .commit(&manifest(t, 1, CheckpointKind::Database))
            .unwrap();
        let bytes = std::fs::read(store.file(t, "db.dat")).unwrap();
        assert_eq!(bytes, b"payload");
    }

    #[test]
    fn abort_deletes_uncommitted_checkpoint_dir() {
        let dir = tempfile::tempdir().unwrap();
        let store = CheckpointStore::open(dir.path()).unwrap();
        let t = store.begin().unwrap();
        std::fs::write(store.file(t, "db.dat"), b"partial").unwrap();
        assert!(store.dir(t).exists());
        store.abort(t).unwrap();
        assert!(!store.dir(t).exists(), "aborted checkpoint dir must be gone");
        // Idempotent: aborting again (or a never-begun token) is fine.
        store.abort(t).unwrap();
        store.abort(9999).unwrap();
        // The store remains usable for a subsequent successful checkpoint.
        let t2 = store.begin().unwrap();
        assert!(t2 > t);
        store
            .commit(&manifest(t2, 1, CheckpointKind::Database))
            .unwrap();
        assert_eq!(store.latest().unwrap().unwrap().token, t2);
    }

    #[test]
    fn torn_manifest_reads_as_uncommitted() {
        let dir = tempfile::tempdir().unwrap();
        let store = CheckpointStore::open(dir.path()).unwrap();
        let t1 = store.begin().unwrap();
        store
            .commit(&manifest(t1, 1, CheckpointKind::Database))
            .unwrap();
        // Simulate a crash that tore the next manifest mid-write.
        let t2 = store.begin().unwrap();
        let full = manifest(t2, 2, CheckpointKind::Database).to_json();
        std::fs::write(store.file(t2, "manifest.json"), &full.as_bytes()[..full.len() / 2])
            .unwrap();
        // Strict single-token load still errors...
        assert!(store.manifest(t2).is_err());
        // ...but recovery-facing scans skip it instead of failing.
        let latest = store.latest().unwrap().unwrap();
        assert_eq!(latest.token, t1, "torn t2 manifest must be skipped");
    }

    #[test]
    fn injected_commit_failure_leaves_no_manifest() {
        use crate::fault::{FaultInjector, FaultPlan};
        let dir = tempfile::tempdir().unwrap();
        let inj = std::sync::Arc::new(FaultInjector::new(FaultPlan::new()));
        let store =
            CheckpointStore::open_with(dir.path(), Some(std::sync::Arc::clone(&inj))).unwrap();
        let t = store.begin().unwrap();
        store.write_file(t, "db.dat", b"data").unwrap();
        inj.fail_after(0);
        assert!(store.commit(&manifest(t, 1, CheckpointKind::Database)).is_err());
        assert!(!store.file(t, "manifest.json").exists());
        // Transient failure: a retried commit (new op) succeeds.
        store
            .commit(&manifest(t, 1, CheckpointKind::Database))
            .unwrap();
        assert_eq!(store.latest().unwrap().unwrap().token, t);
    }

    #[test]
    fn abort_after_crash_preserves_torn_state() {
        use crate::fault::{FaultInjector, FaultPlan};
        let dir = tempfile::tempdir().unwrap();
        let inj = std::sync::Arc::new(FaultInjector::new(FaultPlan::new()));
        let store =
            CheckpointStore::open_with(dir.path(), Some(std::sync::Arc::clone(&inj))).unwrap();
        let t = store.begin().unwrap();
        inj.torn_after(0, 10);
        inj.crash_after(1);
        assert!(store.commit(&manifest(t, 1, CheckpointKind::Database)).is_err());
        assert!(inj.crashed() || store.file(t, "manifest.json").exists());
        // Post-crash abort must NOT clean up: the torn manifest is what a
        // real crash would leave for recovery to tolerate.
        inj.crash_now();
        store.abort(t).unwrap();
        assert!(store.file(t, "manifest.json").exists());
        assert!(store.begin().is_err(), "new checkpoints impossible after crash");
    }

    #[test]
    fn clear_removes_everything() {
        let dir = tempfile::tempdir().unwrap();
        let store = CheckpointStore::open(dir.path()).unwrap();
        let t = store.begin().unwrap();
        store
            .commit(&manifest(t, 1, CheckpointKind::Database))
            .unwrap();
        store.clear().unwrap();
        assert!(store.latest().unwrap().is_none());
    }
}
