//! Checkpoint directory layout and manifest persistence.
//!
//! Layout under the store root:
//!
//! ```text
//! <root>/cpt.<token>/manifest.json   -- committed last (temp + rename)
//! <root>/cpt.<token>/<data files>    -- db.dat / log.dat / index.dat / ...
//! ```
//!
//! A checkpoint is *committed* iff its `manifest.json` exists; recovery
//! scans for the largest committed token. Crashes mid-checkpoint therefore
//! leave only ignorable garbage.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use cpr_core::CheckpointManifest;

/// A directory of committed checkpoints.
pub struct CheckpointStore {
    root: PathBuf,
    next_token: AtomicU64,
}

impl CheckpointStore {
    /// Open (creating if needed) a checkpoint store rooted at `root`.
    pub fn open(root: impl AsRef<Path>) -> io::Result<Self> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        let max = Self::scan_tokens(&root)?.into_iter().max().unwrap_or(0);
        Ok(CheckpointStore {
            root,
            next_token: AtomicU64::new(max + 1),
        })
    }

    fn scan_tokens(root: &Path) -> io::Result<Vec<u64>> {
        let mut tokens = Vec::new();
        for entry in fs::read_dir(root)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(tok) = name.strip_prefix("cpt.") else {
                continue;
            };
            let Ok(tok) = tok.parse::<u64>() else {
                continue;
            };
            // Committed only if the manifest exists.
            if entry.path().join("manifest.json").exists() {
                tokens.push(tok);
            }
        }
        Ok(tokens)
    }

    /// Allocate a fresh token and create its (uncommitted) directory.
    pub fn begin(&self) -> io::Result<u64> {
        let token = self.next_token.fetch_add(1, Ordering::AcqRel);
        fs::create_dir_all(self.dir(token))?;
        Ok(token)
    }

    /// Directory for `token`'s files.
    pub fn dir(&self, token: u64) -> PathBuf {
        self.root.join(format!("cpt.{token}"))
    }

    /// Path of a named data file inside `token`'s directory.
    pub fn file(&self, token: u64, name: &str) -> PathBuf {
        self.dir(token).join(name)
    }

    /// Commit `token` by atomically writing its manifest.
    pub fn commit(&self, manifest: &CheckpointManifest) -> io::Result<()> {
        let dir = self.dir(manifest.token);
        let tmp = dir.join("manifest.json.tmp");
        fs::write(&tmp, manifest.to_json())?;
        fs::rename(&tmp, dir.join("manifest.json"))?;
        Ok(())
    }

    /// Load the manifest of `token`, if committed.
    pub fn manifest(&self, token: u64) -> io::Result<CheckpointManifest> {
        let raw = fs::read_to_string(self.file(token, "manifest.json"))?;
        CheckpointManifest::from_json(&raw)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// All committed tokens, ascending.
    pub fn tokens(&self) -> io::Result<Vec<u64>> {
        let mut t = Self::scan_tokens(&self.root)?;
        t.sort_unstable();
        Ok(t)
    }

    /// The newest committed checkpoint, if any.
    pub fn latest(&self) -> io::Result<Option<CheckpointManifest>> {
        match self.tokens()?.last() {
            Some(&tok) => Ok(Some(self.manifest(tok)?)),
            None => Ok(None),
        }
    }

    /// The newest committed checkpoint satisfying `pred` (e.g. "is a full
    /// checkpoint", "kind == Index").
    pub fn latest_matching(
        &self,
        pred: impl Fn(&CheckpointManifest) -> bool,
    ) -> io::Result<Option<CheckpointManifest>> {
        for tok in self.tokens()?.into_iter().rev() {
            let m = self.manifest(tok)?;
            if pred(&m) {
                return Ok(Some(m));
            }
        }
        Ok(None)
    }

    /// Remove every checkpoint directory (testing / GC).
    pub fn clear(&self) -> io::Result<()> {
        for entry in fs::read_dir(&self.root)? {
            let p = entry?.path();
            if p.is_dir() {
                fs::remove_dir_all(p)?;
            }
        }
        Ok(())
    }

    pub fn root(&self) -> &Path {
        &self.root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpr_core::{CheckpointKind, SessionCpr};

    fn manifest(token: u64, version: u64, kind: CheckpointKind) -> CheckpointManifest {
        let mut m = CheckpointManifest::new(token, kind, version);
        m.sessions.push(SessionCpr {
            guid: 1,
            cpr_point: 42,
        });
        m
    }

    #[test]
    fn begin_commit_latest_cycle() {
        let dir = tempfile::tempdir().unwrap();
        let store = CheckpointStore::open(dir.path()).unwrap();
        assert!(store.latest().unwrap().is_none());

        let t1 = store.begin().unwrap();
        store
            .commit(&manifest(t1, 1, CheckpointKind::Database))
            .unwrap();
        let t2 = store.begin().unwrap();
        assert!(t2 > t1);
        store
            .commit(&manifest(t2, 2, CheckpointKind::Database))
            .unwrap();

        let latest = store.latest().unwrap().unwrap();
        assert_eq!(latest.token, t2);
        assert_eq!(latest.version, 2);
        assert_eq!(latest.cpr_point(1), Some(42));
    }

    #[test]
    fn uncommitted_checkpoints_are_invisible() {
        let dir = tempfile::tempdir().unwrap();
        let store = CheckpointStore::open(dir.path()).unwrap();
        let t1 = store.begin().unwrap();
        store
            .commit(&manifest(t1, 1, CheckpointKind::Database))
            .unwrap();
        let _t2 = store.begin().unwrap(); // crash before manifest write
        let latest = store.latest().unwrap().unwrap();
        assert_eq!(latest.token, t1, "uncommitted t2 must be ignored");
    }

    #[test]
    fn reopen_resumes_token_sequence() {
        let dir = tempfile::tempdir().unwrap();
        {
            let store = CheckpointStore::open(dir.path()).unwrap();
            let t = store.begin().unwrap();
            store
                .commit(&manifest(t, 1, CheckpointKind::Database))
                .unwrap();
        }
        let store = CheckpointStore::open(dir.path()).unwrap();
        let t = store.begin().unwrap();
        assert!(t >= 2, "token sequence must not repeat: got {t}");
    }

    #[test]
    fn latest_matching_filters_by_kind() {
        let dir = tempfile::tempdir().unwrap();
        let store = CheckpointStore::open(dir.path()).unwrap();
        let t1 = store.begin().unwrap();
        store
            .commit(&manifest(t1, 1, CheckpointKind::Index))
            .unwrap();
        let t2 = store.begin().unwrap();
        store
            .commit(&manifest(t2, 1, CheckpointKind::FoldOver))
            .unwrap();
        let idx = store
            .latest_matching(|m| m.kind == CheckpointKind::Index)
            .unwrap()
            .unwrap();
        assert_eq!(idx.token, t1);
    }

    #[test]
    fn data_files_live_inside_checkpoint_dir() {
        let dir = tempfile::tempdir().unwrap();
        let store = CheckpointStore::open(dir.path()).unwrap();
        let t = store.begin().unwrap();
        std::fs::write(store.file(t, "db.dat"), b"payload").unwrap();
        store
            .commit(&manifest(t, 1, CheckpointKind::Database))
            .unwrap();
        let bytes = std::fs::read(store.file(t, "db.dat")).unwrap();
        assert_eq!(bytes, b"payload");
    }

    #[test]
    fn clear_removes_everything() {
        let dir = tempfile::tempdir().unwrap();
        let store = CheckpointStore::open(dir.path()).unwrap();
        let t = store.begin().unwrap();
        store
            .commit(&manifest(t, 1, CheckpointKind::Database))
            .unwrap();
        store.clear().unwrap();
        assert!(store.latest().unwrap().is_none());
    }
}
