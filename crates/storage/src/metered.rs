//! A [`Device`] decorator that feeds a metrics registry.
//!
//! Records, per write: bytes issued, queue depth at issue, and the
//! issue-to-durable completion latency (via the handle's completion
//! callback). Syncs record their blocking duration. Engines wrap their
//! log device in a [`MeteredDevice`] only when metrics are enabled, so
//! the disabled path pays nothing at all.

use std::io;
use std::sync::Arc;
use std::time::Instant;

use cpr_metrics::Registry;

use crate::device::{Device, IoHandle};

/// Metering [`Device`] decorator; see the module docs.
pub struct MeteredDevice {
    inner: Arc<dyn Device>,
    metrics: Arc<Registry>,
}

impl MeteredDevice {
    pub fn new(inner: Arc<dyn Device>, metrics: Arc<Registry>) -> Self {
        MeteredDevice { inner, metrics }
    }
}

impl Device for MeteredDevice {
    fn write_at(&self, offset: u64, data: Vec<u8>) -> IoHandle {
        if !self.metrics.is_enabled() {
            return self.inner.write_at(offset, data);
        }
        self.metrics.storage_write_issued(data.len() as u64);
        let issued = Instant::now();
        let handle = self.inner.write_at(offset, data);
        let metrics = Arc::clone(&self.metrics);
        handle.on_complete(move |_ok| {
            metrics.storage_write_done(issued.elapsed());
        });
        handle
    }

    // One logical write in the metrics, however many queues it fans
    // out to underneath.
    fn write_vectored_at(&self, offset: u64, bufs: Vec<Vec<u8>>) -> IoHandle {
        if !self.metrics.is_enabled() {
            return self.inner.write_vectored_at(offset, bufs);
        }
        let total: usize = bufs.iter().map(Vec::len).sum();
        self.metrics.storage_write_issued(total as u64);
        let issued = Instant::now();
        let handle = self.inner.write_vectored_at(offset, bufs);
        let metrics = Arc::clone(&self.metrics);
        handle.on_complete(move |_ok| {
            metrics.storage_write_done(issued.elapsed());
        });
        handle
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        self.inner.read_at(offset, buf)
    }

    fn sync(&self) -> io::Result<()> {
        if !self.metrics.is_enabled() {
            return self.inner.sync();
        }
        let t0 = Instant::now();
        let res = self.inner.sync();
        self.metrics.storage_sync(t0.elapsed());
        res
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;

    #[test]
    fn write_and_sync_are_recorded() {
        let metrics = Registry::new();
        let dev = MeteredDevice::new(MemDevice::new(), Arc::clone(&metrics));
        dev.write_at(0, vec![7; 128]).wait().unwrap();
        dev.sync().unwrap();
        let s = metrics.snapshot();
        assert_eq!(s.storage.writes, 1);
        assert_eq!(s.storage.bytes_written, 128);
        assert_eq!(s.storage.syncs, 1);
        assert_eq!(s.storage.flush_latency.count, 2);
        assert!(s.storage.max_queue_depth >= 1);
        let mut buf = [0u8; 4];
        dev.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, [7; 4]);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let metrics = Registry::noop();
        let dev = MeteredDevice::new(MemDevice::new(), Arc::clone(&metrics));
        dev.write_at(0, vec![1; 64]).wait().unwrap();
        dev.sync().unwrap();
        let s = metrics.snapshot();
        assert_eq!(s.storage.writes, 0);
        assert_eq!(s.storage.syncs, 0);
    }
}
