//! Asynchronous block devices.
//!
//! Writes are queued to background writer threads. [`FileDevice`] can run
//! a *pool* of writer queues (see [`FileDevice::create_pooled`]): writes
//! are routed to a queue by the 1 MiB stripe of their starting offset, so
//! overlapping writes to the same region stay on one queue in issue
//! order, while bulk flushes that span many stripes fan out across all
//! queues. [`Device::sync`] is a completion barrier across every queue.

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex, RwLock};

/// Writes are striped over writer queues in units of this many bytes.
/// Two writes whose start offsets share a stripe land on the same queue
/// and therefore apply in issue order.
pub const WRITE_STRIPE_BITS: u32 = 20;

/// Writer-pool width taken from the `CPR_IO_THREADS` environment
/// variable (also the default recovery-scan and capture parallelism in
/// the engines). Defaults to 1 — fully serial, the behaviour every
/// deterministic fault-schedule test was written against.
pub fn env_io_threads() -> usize {
    std::env::var("CPR_IO_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map(|n| n.clamp(1, 64))
        .unwrap_or(1)
}

/// Simulated device speed: per-operation latencies plus write bandwidth.
/// Used by benchmarks to model disk-like storage on hosts whose page
/// cache would otherwise absorb everything.
#[derive(Clone, Copy, Debug)]
pub struct IoProfile {
    /// Added to every write job, on the writer thread that executes it.
    pub write_latency: Duration,
    /// Added to every `read_at`, on the calling thread.
    pub read_latency: Duration,
    /// Bytes per second per writer queue (`u64::MAX` = unthrottled).
    pub bandwidth: u64,
}

impl IoProfile {
    pub const NONE: IoProfile = IoProfile {
        write_latency: Duration::ZERO,
        read_latency: Duration::ZERO,
        bandwidth: u64::MAX,
    };

    fn throttle_write(&self, bytes: usize) {
        if !self.write_latency.is_zero() {
            std::thread::sleep(self.write_latency);
        }
        if self.bandwidth != u64::MAX && bytes > 0 {
            let secs = bytes as f64 / self.bandwidth as f64;
            std::thread::sleep(Duration::from_secs_f64(secs));
        }
    }
}

impl Default for IoProfile {
    fn default() -> Self {
        IoProfile::NONE
    }
}

/// Completion handle for an asynchronous device operation.
///
/// Cloning shares the same completion state. `wait()` blocks until the
/// operation completes and returns its result; `is_done()` polls.
#[derive(Clone)]
pub struct IoHandle {
    inner: Arc<IoInner>,
}

/// Completion observer: receives the operation's success flag.
type CompletionCallback = Box<dyn FnOnce(bool) + Send>;

struct IoInner {
    state: Mutex<IoState>,
    cv: Condvar,
    /// Callbacks fired (with the success flag) exactly once when the
    /// operation completes. Registered via [`IoHandle::on_complete`];
    /// used by metering decorators to observe completion latency.
    callbacks: Mutex<Vec<CompletionCallback>>,
}

enum IoState {
    Pending,
    Done(Option<String>), // None = ok, Some = error message
    /// `Done` after the result has been taken by `wait`.
    Consumed(bool),
}

impl IoHandle {
    /// A fresh, not-yet-completed handle (for custom async operations).
    pub fn pending() -> Self {
        IoHandle {
            inner: Arc::new(IoInner {
                state: Mutex::new(IoState::Pending),
                cv: Condvar::new(),
                callbacks: Mutex::new(Vec::new()),
            }),
        }
    }

    /// An already-completed successful handle (for synchronous devices).
    pub fn ready() -> Self {
        let h = Self::pending();
        h.complete(Ok(()));
        h
    }

    /// A handle that completes when every handle in `handles` has —
    /// successfully only if all succeeded (the first error message wins).
    /// Scatter-gather writes return one of these.
    pub fn join(handles: Vec<IoHandle>) -> Self {
        if handles.is_empty() {
            return Self::ready();
        }
        let out = Self::pending();
        let remaining = Arc::new(AtomicUsize::new(handles.len()));
        let failure: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));
        for h in handles {
            let out = out.clone();
            let remaining = Arc::clone(&remaining);
            let failure = Arc::clone(&failure);
            let err_probe = h.clone();
            h.on_complete(move |ok| {
                if !ok {
                    // The child already completed, so this does not block.
                    let msg = err_probe
                        .wait()
                        .err()
                        .map(|e| e.to_string())
                        .unwrap_or_else(|| "io failed".into());
                    failure.lock().get_or_insert(msg);
                }
                if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                    out.complete(match failure.lock().take() {
                        None => Ok(()),
                        Some(msg) => Err(io::Error::other(msg)),
                    });
                }
            });
        }
        out
    }

    /// Complete the operation (wakes all waiters, fires callbacks).
    pub fn complete(&self, result: io::Result<()>) {
        let ok = result.is_ok();
        let mut st = self.inner.state.lock();
        *st = IoState::Done(result.err().map(|e| e.to_string()));
        self.inner.cv.notify_all();
        drop(st);
        for cb in self.inner.callbacks.lock().drain(..) {
            cb(ok);
        }
    }

    /// Run `f(success)` when the operation completes — immediately if it
    /// already has. Used by metering decorators to observe completion
    /// latency and queue depth without wrapping the handle type.
    pub fn on_complete(&self, f: impl FnOnce(bool) + Send + 'static) {
        {
            let st = self.inner.state.lock();
            if matches!(*st, IoState::Pending) {
                self.inner.callbacks.lock().push(Box::new(f));
                return;
            }
        }
        let ok = match &*self.inner.state.lock() {
            IoState::Done(err) => err.is_none(),
            IoState::Consumed(ok) => *ok,
            IoState::Pending => unreachable!("pending handled above"),
        };
        f(ok);
    }

    /// True once the operation has completed (successfully or not).
    pub fn is_done(&self) -> bool {
        !matches!(*self.inner.state.lock(), IoState::Pending)
    }

    /// Block until completion; returns the operation result.
    pub fn wait(&self) -> io::Result<()> {
        let mut st = self.inner.state.lock();
        loop {
            match &*st {
                IoState::Pending => self.inner.cv.wait(&mut st),
                IoState::Done(err) => {
                    let res = match err {
                        None => Ok(()),
                        Some(msg) => Err(io::Error::other(msg.clone())),
                    };
                    let ok = res.is_ok();
                    *st = IoState::Consumed(ok);
                    return res;
                }
                IoState::Consumed(ok) => {
                    return if *ok {
                        Ok(())
                    } else {
                        Err(io::Error::other("io previously failed"))
                    };
                }
            }
        }
    }
}

/// A durable device addressed by byte offset.
///
/// Writes are asynchronous: they may be issued from hot paths and complete
/// in the background. Reads are synchronous at this layer — asynchronous
/// read scheduling for disk-resident records is built on top by the I/O
/// pool in `cpr-faster`.
pub trait Device: Send + Sync + 'static {
    /// Queue `data` to be written at `offset`. The handle completes when
    /// the data is durable.
    fn write_at(&self, offset: u64, data: Vec<u8>) -> IoHandle;

    /// Queue `bufs` as one logical scatter-gather write: the buffers land
    /// back to back starting at `offset`. The default concatenates into a
    /// single [`Device::write_at`] — exactly one underlying write, which
    /// is what the fault-injecting and metering decorators count as one
    /// I/O. Pooled devices override this to fan the buffers out across
    /// writer queues.
    fn write_vectored_at(&self, offset: u64, bufs: Vec<Vec<u8>>) -> IoHandle {
        let total = bufs.iter().map(Vec::len).sum();
        let mut data = Vec::with_capacity(total);
        for b in bufs {
            data.extend_from_slice(&b);
        }
        self.write_at(offset, data)
    }

    /// Fill `buf` from `offset`. Reads past the physical end of the
    /// device **zero-fill** the remainder rather than erroring — a
    /// freshly truncated or sparse log reads as zeroes, which the
    /// recovery scan treats as "no record". Every implementation (and
    /// decorator) must preserve this.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()>;

    /// Wait for all previously queued writes (on every queue) to be
    /// durable.
    fn sync(&self) -> io::Result<()>;

    /// One past the largest byte ever written.
    fn len(&self) -> u64;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

enum Job {
    Write {
        offset: u64,
        data: Vec<u8>,
        handle: IoHandle,
    },
    Barrier(IoHandle),
    Shutdown,
}

/// File-backed device with a pool of dedicated writer threads.
///
/// With one queue (the default) this is exactly the old single-writer
/// device: every write applies in issue order. With `n > 1` queues,
/// writes are routed by offset stripe ([`WRITE_STRIPE_BITS`]), keeping
/// same-region writes ordered while striped bulk flushes proceed in
/// parallel; [`FileDevice::sync`] barriers all queues and then issues a
/// single `fdatasync`.
pub struct FileDevice {
    file: Arc<std::fs::File>,
    txs: Vec<Sender<Job>>,
    writers: Mutex<Vec<JoinHandle<()>>>,
    high_water: AtomicU64,
    profile: IoProfile,
}

impl FileDevice {
    /// Create (or truncate) the file at `path` with a single writer queue.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::create_pooled(path, 1)
    }

    /// Create (or truncate) the file at `path` with `queues` writer
    /// threads.
    pub fn create_pooled(path: impl AsRef<Path>, queues: usize) -> io::Result<Self> {
        Self::create_with(path, queues, IoProfile::NONE)
    }

    /// [`FileDevice::create_pooled`] with a simulated speed profile.
    pub fn create_with(
        path: impl AsRef<Path>,
        queues: usize,
        profile: IoProfile,
    ) -> io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Self::from_parts(file, 0, queues, profile))
    }

    /// Open an existing file (e.g. for recovery) with a single queue.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::open_pooled(path, 1)
    }

    /// Open an existing file with `queues` writer threads.
    pub fn open_pooled(path: impl AsRef<Path>, queues: usize) -> io::Result<Self> {
        Self::open_with(path, queues, IoProfile::NONE)
    }

    /// [`FileDevice::open_pooled`] with a simulated speed profile.
    pub fn open_with(
        path: impl AsRef<Path>,
        queues: usize,
        profile: IoProfile,
    ) -> io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)?;
        let len = file.metadata()?.len();
        Ok(Self::from_parts(file, len, queues, profile))
    }

    fn from_parts(file: std::fs::File, len: u64, queues: usize, profile: IoProfile) -> Self {
        let queues = queues.max(1);
        let file = Arc::new(file);
        let mut txs = Vec::with_capacity(queues);
        let mut writers = Vec::with_capacity(queues);
        for q in 0..queues {
            let (tx, rx) = unbounded::<Job>();
            let wfile = Arc::clone(&file);
            let writer = std::thread::Builder::new()
                .name(format!("cpr-file-writer-{q}"))
                .spawn(move || {
                    use std::os::unix::fs::FileExt;
                    for job in rx {
                        match job {
                            Job::Write {
                                offset,
                                data,
                                handle,
                            } => {
                                profile.throttle_write(data.len());
                                let res = wfile.write_all_at(&data, offset);
                                handle.complete(res);
                            }
                            // Queue-drain marker only; the caller issues
                            // one fdatasync after *all* queues drain.
                            Job::Barrier(handle) => handle.complete(Ok(())),
                            Job::Shutdown => break,
                        }
                    }
                })
                .expect("spawn writer thread");
            txs.push(tx);
            writers.push(writer);
        }
        FileDevice {
            file,
            txs,
            writers: Mutex::new(writers),
            high_water: AtomicU64::new(len),
            profile,
        }
    }

    /// Number of writer queues.
    pub fn queues(&self) -> usize {
        self.txs.len()
    }

    fn queue_for(&self, offset: u64) -> usize {
        if self.txs.len() == 1 {
            0
        } else {
            ((offset >> WRITE_STRIPE_BITS) as usize) % self.txs.len()
        }
    }

    fn enqueue(&self, offset: u64, data: Vec<u8>) -> IoHandle {
        let handle = IoHandle::pending();
        self.high_water
            .fetch_max(offset + data.len() as u64, Ordering::AcqRel);
        self.txs[self.queue_for(offset)]
            .send(Job::Write {
                offset,
                data,
                handle: handle.clone(),
            })
            .expect("writer thread alive");
        handle
    }
}

impl Device for FileDevice {
    fn write_at(&self, offset: u64, data: Vec<u8>) -> IoHandle {
        self.enqueue(offset, data)
    }

    fn write_vectored_at(&self, offset: u64, bufs: Vec<Vec<u8>>) -> IoHandle {
        let mut handles = Vec::with_capacity(bufs.len());
        let mut at = offset;
        for data in bufs {
            let next = at + data.len() as u64;
            handles.push(self.enqueue(at, data));
            at = next;
        }
        IoHandle::join(handles)
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        use std::os::unix::fs::FileExt;
        if !self.profile.read_latency.is_zero() {
            std::thread::sleep(self.profile.read_latency);
        }
        let mut done = 0usize;
        while done < buf.len() {
            match self.file.read_at(&mut buf[done..], offset + done as u64) {
                Ok(0) => {
                    // Past the physical end: the rest reads as zeroes.
                    buf[done..].fill(0);
                    break;
                }
                Ok(n) => done += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    fn sync(&self) -> io::Result<()> {
        let mut barriers = Vec::with_capacity(self.txs.len());
        for tx in &self.txs {
            let handle = IoHandle::pending();
            tx.send(Job::Barrier(handle.clone()))
                .expect("writer thread alive");
            barriers.push(handle);
        }
        IoHandle::join(barriers).wait()?;
        self.file.sync_data()
    }

    fn len(&self) -> u64 {
        self.high_water.load(Ordering::Acquire)
    }
}

impl Drop for FileDevice {
    fn drop(&mut self) {
        for tx in &self.txs {
            let _ = tx.send(Job::Shutdown);
        }
        for w in self.writers.lock().drain(..) {
            let _ = w.join();
        }
    }
}

/// In-memory device with optional simulated latency/bandwidth.
pub struct MemDevice {
    data: RwLock<Vec<u8>>,
    tx: Sender<Job>,
    writer: Mutex<Option<JoinHandle<()>>>,
    high_water: AtomicU64,
}

impl MemDevice {
    pub fn new() -> Arc<Self> {
        Self::with_profile(Duration::ZERO, u64::MAX)
    }

    /// `latency` is added per write job; `bandwidth` (bytes/sec) throttles
    /// large writes — together they approximate an SSD for experiments that
    /// care about flush duration (e.g. paper Fig. 12's 6-second flushes).
    pub fn with_profile(latency: Duration, bandwidth: u64) -> Arc<Self> {
        let profile = IoProfile {
            write_latency: latency,
            read_latency: Duration::ZERO,
            bandwidth,
        };
        let (tx, rx) = unbounded::<Job>();
        let dev = Arc::new(MemDevice {
            data: RwLock::new(Vec::new()),
            tx,
            writer: Mutex::new(None),
            high_water: AtomicU64::new(0),
        });
        let weak = Arc::downgrade(&dev);
        let writer = std::thread::Builder::new()
            .name("cpr-mem-writer".into())
            .spawn(move || {
                for job in rx {
                    match job {
                        Job::Write {
                            offset,
                            data,
                            handle,
                        } => {
                            profile.throttle_write(data.len());
                            let Some(dev) = weak.upgrade() else { break };
                            let end = offset as usize + data.len();
                            let mut store = dev.data.write();
                            if store.len() < end {
                                store.resize(end, 0);
                            }
                            store[offset as usize..end].copy_from_slice(&data);
                            drop(store);
                            handle.complete(Ok(()));
                        }
                        Job::Barrier(handle) => handle.complete(Ok(())),
                        Job::Shutdown => break,
                    }
                }
            })
            .expect("spawn writer thread");
        *dev.writer.lock() = Some(writer);
        dev
    }
}

impl Device for MemDevice {
    fn write_at(&self, offset: u64, data: Vec<u8>) -> IoHandle {
        let handle = IoHandle::pending();
        self.high_water
            .fetch_max(offset + data.len() as u64, Ordering::AcqRel);
        self.tx
            .send(Job::Write {
                offset,
                data,
                handle: handle.clone(),
            })
            .expect("writer thread alive");
        handle
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        let store = self.data.read();
        let start = (offset as usize).min(store.len());
        let n = (store.len() - start).min(buf.len());
        buf[..n].copy_from_slice(&store[start..start + n]);
        buf[n..].fill(0);
        Ok(())
    }

    fn sync(&self) -> io::Result<()> {
        let handle = IoHandle::pending();
        self.tx
            .send(Job::Barrier(handle.clone()))
            .expect("writer thread alive");
        handle.wait()
    }

    fn len(&self) -> u64 {
        self.high_water.load(Ordering::Acquire)
    }
}

impl Drop for MemDevice {
    fn drop(&mut self) {
        let _ = self.tx.send(Job::Shutdown);
        if let Some(w) = self.writer.lock().take() {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(dev: &dyn Device) {
        let h = dev.write_at(10, vec![1, 2, 3, 4]);
        h.wait().unwrap();
        let mut buf = [0u8; 4];
        dev.read_at(10, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3, 4]);
        assert_eq!(dev.len(), 14);
    }

    #[test]
    fn mem_device_roundtrip() {
        let dev = MemDevice::new();
        roundtrip(&*dev);
    }

    #[test]
    fn file_device_roundtrip() {
        let dir = tempfile::tempdir().unwrap();
        let dev = FileDevice::create(dir.path().join("log.dat")).unwrap();
        roundtrip(&dev);
    }

    #[test]
    fn pooled_file_device_roundtrip() {
        let dir = tempfile::tempdir().unwrap();
        let dev = FileDevice::create_pooled(dir.path().join("log.dat"), 4).unwrap();
        assert_eq!(dev.queues(), 4);
        roundtrip(&dev);
    }

    #[test]
    fn file_device_reopen_preserves_data() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("log.dat");
        {
            let dev = FileDevice::create(&path).unwrap();
            dev.write_at(0, b"hello world".to_vec()).wait().unwrap();
            dev.sync().unwrap();
        }
        let dev = FileDevice::open(&path).unwrap();
        assert_eq!(dev.len(), 11);
        let mut buf = [0u8; 11];
        dev.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"hello world");
    }

    #[test]
    fn writes_are_ordered_per_offset() {
        let dev = MemDevice::new();
        for i in 0..100u8 {
            dev.write_at(0, vec![i]);
        }
        dev.sync().unwrap();
        let mut b = [0u8; 1];
        dev.read_at(0, &mut b).unwrap();
        assert_eq!(b[0], 99, "last queued write wins");
    }

    #[test]
    fn pooled_writes_same_stripe_stay_ordered() {
        let dir = tempfile::tempdir().unwrap();
        let dev = FileDevice::create_pooled(dir.path().join("log.dat"), 4).unwrap();
        for i in 0..100u8 {
            dev.write_at(0, vec![i]);
        }
        dev.sync().unwrap();
        let mut b = [0u8; 1];
        dev.read_at(0, &mut b).unwrap();
        assert_eq!(b[0], 99, "same-stripe writes route to one queue, in order");
    }

    #[test]
    fn pooled_sync_barriers_every_queue() {
        let dir = tempfile::tempdir().unwrap();
        let dev = FileDevice::create_with(
            dir.path().join("log.dat"),
            4,
            IoProfile {
                write_latency: Duration::from_millis(3),
                ..IoProfile::NONE
            },
        )
        .unwrap();
        let stripe = 1u64 << WRITE_STRIPE_BITS;
        let handles: Vec<IoHandle> = (0..8)
            .map(|i| dev.write_at(i * stripe, vec![i as u8; 16]))
            .collect();
        dev.sync().unwrap();
        for h in &handles {
            assert!(h.is_done(), "sync must drain every queue");
        }
    }

    #[test]
    fn write_vectored_matches_concatenated_write() {
        let dir = tempfile::tempdir().unwrap();
        let pooled = FileDevice::create_pooled(dir.path().join("a.dat"), 4).unwrap();
        let mem = MemDevice::new();
        let bufs: Vec<Vec<u8>> = (0..6u8).map(|i| vec![i; 100_000]).collect();
        let flat: Vec<u8> = bufs.iter().flatten().copied().collect();
        pooled.write_vectored_at(8, bufs.clone()).wait().unwrap();
        mem.write_vectored_at(8, bufs).wait().unwrap();
        for dev in [&pooled as &dyn Device, &*mem] {
            let mut got = vec![0u8; flat.len()];
            dev.read_at(8, &mut got).unwrap();
            assert_eq!(got, flat);
            assert_eq!(dev.len(), 8 + flat.len() as u64);
        }
    }

    #[test]
    fn sync_waits_for_queued_writes() {
        let dev = MemDevice::with_profile(Duration::from_millis(5), u64::MAX);
        let h = dev.write_at(0, vec![7; 64]);
        dev.sync().unwrap();
        assert!(h.is_done(), "barrier must drain earlier writes");
    }

    #[test]
    fn read_past_end_zero_fills() {
        let dir = tempfile::tempdir().unwrap();
        let file = FileDevice::create(dir.path().join("log.dat")).unwrap();
        let mem = MemDevice::new();
        for dev in [&file as &dyn Device, &*mem] {
            dev.write_at(0, vec![7]).wait().unwrap();
            // For the file device the byte must be on disk before the
            // short read; the mem device applies it at write completion.
            dev.sync().unwrap();
            let mut buf = [0xffu8; 8];
            dev.read_at(0, &mut buf).unwrap();
            assert_eq!(buf, [7, 0, 0, 0, 0, 0, 0, 0], "tail zero-fills");
            let mut past = [0xffu8; 4];
            dev.read_at(100, &mut past).unwrap();
            assert_eq!(past, [0; 4], "fully past-end read is all zeroes");
        }
    }

    #[test]
    fn join_handle_aggregates_errors() {
        let ok = IoHandle::ready();
        let bad = IoHandle::pending();
        let joined = IoHandle::join(vec![ok, bad.clone()]);
        assert!(!joined.is_done());
        bad.complete(Err(io::Error::other("queue 3 exploded")));
        let err = joined.wait().unwrap_err();
        assert!(err.to_string().contains("queue 3 exploded"), "{err}");
        assert!(IoHandle::join(Vec::new()).wait().is_ok());
    }

    #[test]
    fn handle_wait_is_idempotent() {
        let dev = MemDevice::new();
        let h = dev.write_at(0, vec![1, 2]);
        h.wait().unwrap();
        h.wait().unwrap();
        assert!(h.is_done());
    }

    #[test]
    fn bandwidth_throttle_slows_writes() {
        let dev = MemDevice::with_profile(Duration::ZERO, 1_000_000); // 1 MB/s
        let start = std::time::Instant::now();
        dev.write_at(0, vec![0u8; 100_000]).wait().unwrap();
        assert!(
            start.elapsed() >= Duration::from_millis(80),
            "100 KB at 1 MB/s should take ~100 ms"
        );
    }

    #[test]
    fn env_io_threads_parses_and_clamps() {
        // Process-global env: this is the only test that touches it.
        std::env::set_var("CPR_IO_THREADS", "4");
        assert_eq!(env_io_threads(), 4);
        std::env::set_var("CPR_IO_THREADS", "0");
        assert_eq!(env_io_threads(), 1, "clamped up");
        std::env::set_var("CPR_IO_THREADS", "nonsense");
        assert_eq!(env_io_threads(), 1, "unparsable falls back");
        std::env::remove_var("CPR_IO_THREADS");
        assert_eq!(env_io_threads(), 1);
    }
}
