//! Asynchronous block devices.

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex, RwLock};

/// Completion handle for an asynchronous device operation.
///
/// Cloning shares the same completion state. `wait()` blocks until the
/// operation completes and returns its result; `is_done()` polls.
#[derive(Clone)]
pub struct IoHandle {
    inner: Arc<IoInner>,
}

/// Completion observer: receives the operation's success flag.
type CompletionCallback = Box<dyn FnOnce(bool) + Send>;

struct IoInner {
    state: Mutex<IoState>,
    cv: Condvar,
    /// Callbacks fired (with the success flag) exactly once when the
    /// operation completes. Registered via [`IoHandle::on_complete`];
    /// used by metering decorators to observe completion latency.
    callbacks: Mutex<Vec<CompletionCallback>>,
}

enum IoState {
    Pending,
    Done(Option<String>), // None = ok, Some = error message
    /// `Done` after the result has been taken by `wait`.
    Consumed(bool),
}

impl IoHandle {
    /// A fresh, not-yet-completed handle (for custom async operations).
    pub fn pending() -> Self {
        IoHandle {
            inner: Arc::new(IoInner {
                state: Mutex::new(IoState::Pending),
                cv: Condvar::new(),
                callbacks: Mutex::new(Vec::new()),
            }),
        }
    }

    /// An already-completed successful handle (for synchronous devices).
    pub fn ready() -> Self {
        let h = Self::pending();
        h.complete(Ok(()));
        h
    }

    /// Complete the operation (wakes all waiters, fires callbacks).
    pub fn complete(&self, result: io::Result<()>) {
        let ok = result.is_ok();
        let mut st = self.inner.state.lock();
        *st = IoState::Done(result.err().map(|e| e.to_string()));
        self.inner.cv.notify_all();
        drop(st);
        for cb in self.inner.callbacks.lock().drain(..) {
            cb(ok);
        }
    }

    /// Run `f(success)` when the operation completes — immediately if it
    /// already has. Used by metering decorators to observe completion
    /// latency and queue depth without wrapping the handle type.
    pub fn on_complete(&self, f: impl FnOnce(bool) + Send + 'static) {
        {
            let st = self.inner.state.lock();
            if matches!(*st, IoState::Pending) {
                self.inner.callbacks.lock().push(Box::new(f));
                return;
            }
        }
        let ok = match &*self.inner.state.lock() {
            IoState::Done(err) => err.is_none(),
            IoState::Consumed(ok) => *ok,
            IoState::Pending => unreachable!("pending handled above"),
        };
        f(ok);
    }

    /// True once the operation has completed (successfully or not).
    pub fn is_done(&self) -> bool {
        !matches!(*self.inner.state.lock(), IoState::Pending)
    }

    /// Block until completion; returns the operation result.
    pub fn wait(&self) -> io::Result<()> {
        let mut st = self.inner.state.lock();
        loop {
            match &*st {
                IoState::Pending => self.inner.cv.wait(&mut st),
                IoState::Done(err) => {
                    let res = match err {
                        None => Ok(()),
                        Some(msg) => Err(io::Error::other(msg.clone())),
                    };
                    let ok = res.is_ok();
                    *st = IoState::Consumed(ok);
                    return res;
                }
                IoState::Consumed(ok) => {
                    return if *ok {
                        Ok(())
                    } else {
                        Err(io::Error::other("io previously failed"))
                    };
                }
            }
        }
    }
}

/// A durable device addressed by byte offset.
///
/// Writes are asynchronous: they may be issued from hot paths and complete
/// in the background. Reads are synchronous at this layer — asynchronous
/// read scheduling for disk-resident records is built on top by the I/O
/// pool in `cpr-faster`.
pub trait Device: Send + Sync + 'static {
    /// Queue `data` to be written at `offset`. The handle completes when
    /// the data is durable.
    fn write_at(&self, offset: u64, data: Vec<u8>) -> IoHandle;

    /// Read exactly `buf.len()` bytes at `offset`.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()>;

    /// Wait for all previously queued writes to be durable.
    fn sync(&self) -> io::Result<()>;

    /// One past the largest byte ever written.
    fn len(&self) -> u64;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

enum Job {
    Write {
        offset: u64,
        data: Vec<u8>,
        handle: IoHandle,
    },
    Barrier(IoHandle),
    Shutdown,
}

/// File-backed device with a dedicated writer thread.
pub struct FileDevice {
    file: Arc<std::fs::File>,
    tx: Sender<Job>,
    writer: Mutex<Option<JoinHandle<()>>>,
    high_water: AtomicU64,
}

impl FileDevice {
    /// Create (or truncate) the file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Self::from_file(file, 0))
    }

    /// Open an existing file (e.g. for recovery).
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)?;
        let len = file.metadata()?.len();
        Ok(Self::from_file(file, len))
    }

    fn from_file(file: std::fs::File, len: u64) -> Self {
        let file = Arc::new(file);
        let (tx, rx) = unbounded::<Job>();
        let wfile = Arc::clone(&file);
        let writer = std::thread::Builder::new()
            .name("cpr-file-writer".into())
            .spawn(move || {
                use std::os::unix::fs::FileExt;
                for job in rx {
                    match job {
                        Job::Write {
                            offset,
                            data,
                            handle,
                        } => {
                            let res = wfile.write_all_at(&data, offset);
                            handle.complete(res);
                        }
                        Job::Barrier(handle) => {
                            handle.complete(wfile.sync_data());
                        }
                        Job::Shutdown => break,
                    }
                }
            })
            .expect("spawn writer thread");
        FileDevice {
            file,
            tx,
            writer: Mutex::new(Some(writer)),
            high_water: AtomicU64::new(len),
        }
    }
}

impl Device for FileDevice {
    fn write_at(&self, offset: u64, data: Vec<u8>) -> IoHandle {
        let handle = IoHandle::pending();
        self.high_water
            .fetch_max(offset + data.len() as u64, Ordering::AcqRel);
        self.tx
            .send(Job::Write {
                offset,
                data,
                handle: handle.clone(),
            })
            .expect("writer thread alive");
        handle
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.read_exact_at(buf, offset)
    }

    fn sync(&self) -> io::Result<()> {
        let handle = IoHandle::pending();
        self.tx
            .send(Job::Barrier(handle.clone()))
            .expect("writer thread alive");
        handle.wait()
    }

    fn len(&self) -> u64 {
        self.high_water.load(Ordering::Acquire)
    }
}

impl Drop for FileDevice {
    fn drop(&mut self) {
        let _ = self.tx.send(Job::Shutdown);
        if let Some(w) = self.writer.lock().take() {
            let _ = w.join();
        }
    }
}

/// In-memory device with optional simulated latency/bandwidth.
pub struct MemDevice {
    data: RwLock<Vec<u8>>,
    tx: Sender<Job>,
    writer: Mutex<Option<JoinHandle<()>>>,
    high_water: AtomicU64,
}

impl MemDevice {
    pub fn new() -> Arc<Self> {
        Self::with_profile(Duration::ZERO, u64::MAX)
    }

    /// `latency` is added per write job; `bandwidth` (bytes/sec) throttles
    /// large writes — together they approximate an SSD for experiments that
    /// care about flush duration (e.g. paper Fig. 12's 6-second flushes).
    pub fn with_profile(latency: Duration, bandwidth: u64) -> Arc<Self> {
        let (tx, rx) = unbounded::<Job>();
        let dev = Arc::new(MemDevice {
            data: RwLock::new(Vec::new()),
            tx,
            writer: Mutex::new(None),
            high_water: AtomicU64::new(0),
        });
        let weak = Arc::downgrade(&dev);
        let writer = std::thread::Builder::new()
            .name("cpr-mem-writer".into())
            .spawn(move || {
                for job in rx {
                    match job {
                        Job::Write {
                            offset,
                            data,
                            handle,
                        } => {
                            if !latency.is_zero() {
                                std::thread::sleep(latency);
                            }
                            if bandwidth != u64::MAX && !data.is_empty() {
                                let secs = data.len() as f64 / bandwidth as f64;
                                std::thread::sleep(Duration::from_secs_f64(secs));
                            }
                            let Some(dev) = weak.upgrade() else { break };
                            let end = offset as usize + data.len();
                            let mut store = dev.data.write();
                            if store.len() < end {
                                store.resize(end, 0);
                            }
                            store[offset as usize..end].copy_from_slice(&data);
                            drop(store);
                            handle.complete(Ok(()));
                        }
                        Job::Barrier(handle) => handle.complete(Ok(())),
                        Job::Shutdown => break,
                    }
                }
            })
            .expect("spawn writer thread");
        *dev.writer.lock() = Some(writer);
        dev
    }
}

impl Device for MemDevice {
    fn write_at(&self, offset: u64, data: Vec<u8>) -> IoHandle {
        let handle = IoHandle::pending();
        self.high_water
            .fetch_max(offset + data.len() as u64, Ordering::AcqRel);
        self.tx
            .send(Job::Write {
                offset,
                data,
                handle: handle.clone(),
            })
            .expect("writer thread alive");
        handle
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        let store = self.data.read();
        let end = offset as usize + buf.len();
        if end > store.len() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("read past end: {} > {}", end, store.len()),
            ));
        }
        buf.copy_from_slice(&store[offset as usize..end]);
        Ok(())
    }

    fn sync(&self) -> io::Result<()> {
        let handle = IoHandle::pending();
        self.tx
            .send(Job::Barrier(handle.clone()))
            .expect("writer thread alive");
        handle.wait()
    }

    fn len(&self) -> u64 {
        self.high_water.load(Ordering::Acquire)
    }
}

impl Drop for MemDevice {
    fn drop(&mut self) {
        let _ = self.tx.send(Job::Shutdown);
        if let Some(w) = self.writer.lock().take() {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(dev: &dyn Device) {
        let h = dev.write_at(10, vec![1, 2, 3, 4]);
        h.wait().unwrap();
        let mut buf = [0u8; 4];
        dev.read_at(10, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3, 4]);
        assert_eq!(dev.len(), 14);
    }

    #[test]
    fn mem_device_roundtrip() {
        let dev = MemDevice::new();
        roundtrip(&*dev);
    }

    #[test]
    fn file_device_roundtrip() {
        let dir = tempfile::tempdir().unwrap();
        let dev = FileDevice::create(dir.path().join("log.dat")).unwrap();
        roundtrip(&dev);
    }

    #[test]
    fn file_device_reopen_preserves_data() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("log.dat");
        {
            let dev = FileDevice::create(&path).unwrap();
            dev.write_at(0, b"hello world".to_vec()).wait().unwrap();
            dev.sync().unwrap();
        }
        let dev = FileDevice::open(&path).unwrap();
        assert_eq!(dev.len(), 11);
        let mut buf = [0u8; 11];
        dev.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"hello world");
    }

    #[test]
    fn writes_are_ordered_per_offset() {
        let dev = MemDevice::new();
        for i in 0..100u8 {
            dev.write_at(0, vec![i]);
        }
        dev.sync().unwrap();
        let mut b = [0u8; 1];
        dev.read_at(0, &mut b).unwrap();
        assert_eq!(b[0], 99, "last queued write wins");
    }

    #[test]
    fn sync_waits_for_queued_writes() {
        let dev = MemDevice::with_profile(Duration::from_millis(5), u64::MAX);
        let h = dev.write_at(0, vec![7; 64]);
        dev.sync().unwrap();
        assert!(h.is_done(), "barrier must drain earlier writes");
    }

    #[test]
    fn read_past_end_errors() {
        let dev = MemDevice::new();
        dev.write_at(0, vec![1]).wait().unwrap();
        let mut buf = [0u8; 8];
        assert!(dev.read_at(0, &mut buf).is_err());
    }

    #[test]
    fn handle_wait_is_idempotent() {
        let dev = MemDevice::new();
        let h = dev.write_at(0, vec![1, 2]);
        h.wait().unwrap();
        h.wait().unwrap();
        assert!(h.is_done());
    }

    #[test]
    fn bandwidth_throttle_slows_writes() {
        let dev = MemDevice::with_profile(Duration::ZERO, 1_000_000); // 1 MB/s
        let start = std::time::Instant::now();
        dev.write_at(0, vec![0u8; 100_000]).wait().unwrap();
        assert!(
            start.elapsed() >= Duration::from_millis(80),
            "100 KB at 1 MB/s should take ~100 ms"
        );
    }
}
