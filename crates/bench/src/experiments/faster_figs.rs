//! FASTER experiments: Figs. 12, 13, 14, 15, 18 and the §7.3.1 per-phase
//! profile.

use cpr_faster::{CheckpointVariant, VersionGrain};

use crate::args::Args;
use crate::faster_run::{run_end_to_end, run_faster, FasterRunConfig};
use crate::report::Report;

fn base_cfg(args: &Args, read_pct: u32, zipf: bool) -> FasterRunConfig {
    let threads = *args.list("threads", &[1, 2, 4]).iter().max().unwrap();
    let mut cfg = FasterRunConfig::scaled(threads, read_pct, zipf);
    cfg.num_keys = args.u64("keys", 200_000);
    cfg.seconds = args.f64("seconds", 3.0);
    cfg.sample_every = cfg.seconds / 10.0;
    cfg
}

/// Fig. 12 — throughput vs time with two full commits (paper: at 10 s and
/// 40 s of a 60 s run → here at 1/6 and 4/6 of the run), for fold-over vs
/// snapshot and Zipf vs Uniform; (a) 90:10, (b) 50:50, (c) 0:100;
/// (d) log growth for 0:100.
pub fn fig12(args: &Args) {
    let part = args.str("part", "all");
    let mixes: &[(&str, u32)] = &[("a (90:10)", 90), ("b (50:50)", 50), ("c (0:100)", 0)];
    if part == "all" || part == "throughput" {
        for (label, read_pct) in mixes {
            let mut r = Report::new(
                format!("Fig 12{label}: throughput vs time, full commits"),
                &["t_s", "variant", "dist", "Mops"],
            );
            for variant in [CheckpointVariant::FoldOver, CheckpointVariant::Snapshot] {
                for zipf in [true, false] {
                    let mut cfg = base_cfg(args, *read_pct, zipf);
                    cfg.variant = variant;
                    cfg.checkpoint_at = vec![cfg.seconds * (1.0 / 6.0), cfg.seconds * (4.0 / 6.0)];
                    let res = run_faster(&cfg);
                    for s in res.timeline {
                        r.row(vec![
                            format!("{:.2}", s.t),
                            format!("{variant:?}"),
                            if zipf { "zipf" } else { "uniform" }.into(),
                            format!("{:.3}", s.mops),
                        ]);
                    }
                }
            }
            r.print();
        }
    }
    if part == "all" || part == "loggrowth" {
        let mut r = Report::new(
            "Fig 12d: HybridLog size vs time, 0:100",
            &["t_s", "variant", "dist", "log_MB"],
        );
        for variant in [CheckpointVariant::FoldOver, CheckpointVariant::Snapshot] {
            for zipf in [true, false] {
                let mut cfg = base_cfg(args, 0, zipf);
                cfg.variant = variant;
                cfg.checkpoint_at = vec![cfg.seconds * (1.0 / 6.0), cfg.seconds * (4.0 / 6.0)];
                let res = run_faster(&cfg);
                for s in res.timeline {
                    r.row(vec![
                        format!("{:.2}", s.t),
                        format!("{variant:?}"),
                        if zipf { "zipf" } else { "uniform" }.into(),
                        format!("{:.2}", s.log_tail as f64 / 1e6),
                    ]);
                }
            }
        }
        r.print();
    }
}

/// Fig. 13 — throughput vs time for a varying number of threads, 50:50,
/// full fold-over commits; (a) Zipf, (b) Uniform.
pub fn fig13(args: &Args) {
    let threads_list = args.list("threads", &[1, 2, 4]);
    for zipf in [true, false] {
        let mut r = Report::new(
            format!(
                "Fig 13{}: throughput vs time by #threads ({})",
                if zipf { "a" } else { "b" },
                if zipf { "zipf" } else { "uniform" }
            ),
            &["t_s", "threads", "Mops"],
        );
        for &t in &threads_list {
            let mut cfg = base_cfg(args, 50, zipf);
            cfg.threads = t;
            cfg.checkpoint_at = vec![cfg.seconds * (1.0 / 6.0), cfg.seconds * (4.0 / 6.0)];
            let res = run_faster(&cfg);
            for s in res.timeline {
                r.row(vec![
                    format!("{:.2}", s.t),
                    t.to_string(),
                    format!("{:.3}", s.mops),
                ]);
            }
        }
        r.print();
    }
}

/// Fig. 14 — operation latency vs time during log-only fold-over commits,
/// fine- vs coarse-grained version shift; (a) 0:100 blind updates,
/// (b) 0:100 RMW. Also prints whole-run latency percentiles per
/// configuration.
pub fn fig14(args: &Args) {
    for (label, rmw) in [("a (blind)", false), ("b (RMW)", true)] {
        let mut r = Report::new(
            format!("Fig 14{label}: latency vs time, log-only fold-over"),
            &["t_s", "grain", "dist", "latency_us"],
        );
        let mut p = Report::new(
            format!("Fig 14{label}: whole-run latency percentiles"),
            &["grain", "dist", "p50_us", "p95_us", "p99_us"],
        );
        for grain in [VersionGrain::Coarse, VersionGrain::Fine] {
            for zipf in [true, false] {
                let mut cfg = base_cfg(args, 0, zipf);
                cfg.rmw = rmw;
                cfg.grain = grain;
                cfg.log_only = true;
                cfg.variant = CheckpointVariant::FoldOver;
                cfg.checkpoint_at = vec![cfg.seconds * 0.3, cfg.seconds * 0.65];
                let res = run_faster(&cfg);
                for s in res.timeline {
                    r.row(vec![
                        format!("{:.2}", s.t),
                        format!("{grain:?}"),
                        if zipf { "zipf" } else { "uniform" }.into(),
                        format!("{:.3}", s.avg_latency_us),
                    ]);
                }
                p.row(vec![
                    format!("{grain:?}"),
                    if zipf { "zipf" } else { "uniform" }.into(),
                    format!("{:.3}", res.lat_p50_us),
                    format!("{:.3}", res.lat_p95_us),
                    format!("{:.3}", res.lat_p99_us),
                ]);
            }
        }
        r.print();
        p.print();
    }
}

/// Fig. 15 — end-to-end: clients with bounded in-flight buffers, log-only
/// fold-over commits at 80% fill; throughput and commit interval vs
/// buffer size (paper: 31 KB – 977 KB per client = ~2k–61k 16-byte
/// entries; scaled here).
pub fn fig15(args: &Args) {
    let mut r = Report::new(
        "Fig 15: end-to-end throughput vs per-client buffer",
        &["buffer_entries", "dist", "Mops", "commit_interval_ms"],
    );
    let sizes = args.list("buffers", &[512, 1024, 2048, 4096, 8192]);
    for zipf in [true, false] {
        for &b in &sizes {
            let cfg = base_cfg(args, 50, zipf);
            let res = run_end_to_end(&cfg, b);
            r.row(vec![
                b.to_string(),
                if zipf { "zipf" } else { "uniform" }.into(),
                format!("{:.3}", res.mops),
                format!("{:.1}", res.avg_commit_interval_s * 1000.0),
            ]);
        }
    }
    r.print();
}

/// Fig. 18 (Appx. E.3) — frequent log-only commits (paper: every 15 s of
/// a 60 s run → every quarter here): throughput for 90:10 / 50:50 / 0:100
/// and log growth for 0:100.
pub fn fig18(args: &Args) {
    let part = args.str("part", "all");
    let mixes: &[(&str, u32)] = &[("a (90:10)", 90), ("b (50:50)", 50), ("c (0:100)", 0)];
    if part == "all" || part == "throughput" {
        for (label, read_pct) in mixes {
            let mut r = Report::new(
                format!("Fig 18{label}: throughput vs time, frequent log-only commits"),
                &["t_s", "variant", "dist", "Mops"],
            );
            for variant in [CheckpointVariant::FoldOver, CheckpointVariant::Snapshot] {
                for zipf in [true, false] {
                    let mut cfg = base_cfg(args, *read_pct, zipf);
                    cfg.variant = variant;
                    cfg.log_only = true;
                    cfg.checkpoint_at = (1..4).map(|i| cfg.seconds * i as f64 / 4.0).collect();
                    let res = run_faster(&cfg);
                    for s in res.timeline {
                        r.row(vec![
                            format!("{:.2}", s.t),
                            format!("{variant:?}"),
                            if zipf { "zipf" } else { "uniform" }.into(),
                            format!("{:.3}", s.mops),
                        ]);
                    }
                }
            }
            r.print();
        }
    }
    if part == "all" || part == "loggrowth" {
        let mut r = Report::new(
            "Fig 18d: log growth vs time, frequent log-only commits, 0:100",
            &["t_s", "variant", "dist", "log_MB"],
        );
        for variant in [CheckpointVariant::FoldOver, CheckpointVariant::Snapshot] {
            for zipf in [true, false] {
                let mut cfg = base_cfg(args, 0, zipf);
                cfg.variant = variant;
                cfg.log_only = true;
                cfg.checkpoint_at = (1..4).map(|i| cfg.seconds * i as f64 / 4.0).collect();
                let res = run_faster(&cfg);
                for s in res.timeline {
                    r.row(vec![
                        format!("{:.2}", s.t),
                        format!("{variant:?}"),
                        if zipf { "zipf" } else { "uniform" }.into(),
                        format!("{:.2}", s.log_tail as f64 / 1e6),
                    ]);
                }
            }
        }
        r.print();
    }
}

/// §7.3.1 — per-phase durations of one full commit ("each phase lasted
/// around 5 ms, except wait-flush").
pub fn phases(args: &Args) {
    let mut cfg = base_cfg(args, 50, true);
    cfg.checkpoint_at = vec![cfg.seconds * 0.4];
    let res = run_faster(&cfg);
    let mut r = Report::new(
        "Sec 7.3.1: CPR phase durations (one full fold-over commit)",
        &["phase", "entered_at_ms", "duration_ms"],
    );
    let marks = &res.phase_durations;
    for (i, (phase, at)) in marks.iter().enumerate() {
        let dur = marks.get(i + 1).map(|(_, next)| next - at).unwrap_or(0.0);
        r.row(vec![
            phase.to_string(),
            format!("{:.2}", at * 1000.0),
            format!("{:.2}", dur * 1000.0),
        ]);
    }
    r.print();
}
