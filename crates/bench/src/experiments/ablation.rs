//! Ablations beyond the paper's figures (DESIGN.md §5): the incremental
//! (delta) checkpoint optimization of paper Sec. 4.1, and recovery time
//! across FASTER's checkpoint variants.

use std::time::{Duration, Instant};

use cpr_faster::{CheckpointVariant, FasterBuilder, HlogConfig, VersionGrain};
use cpr_memdb::{Access, Durability, MemDb, TxnRequest};
use cpr_storage::CheckpointStore;
use cpr_workload::keys::{KeyDist, Sampler};

use crate::args::Args;
use crate::report::Report;

pub fn ablation(args: &Args) {
    incremental_vs_full(args);
    recovery_time_by_variant(args);
}

/// Incremental vs full database checkpoints on a skewed write workload:
/// captured records and capture duration per commit.
fn incremental_vs_full(args: &Args) {
    let keys = args.u64("keys", 200_000);
    let ops_per_round = (keys / 4).max(1) as usize;
    let rounds = 4u64;
    let mut r = Report::new(
        "Ablation: incremental vs full memdb checkpoints (zipf 0.9 writes)",
        &["mode", "commit#", "records_captured", "capture_ms"],
    );
    for incremental in [false, true] {
        let dir = tempfile::tempdir().unwrap();
        let db: MemDb<u64> = MemDb::builder(Durability::Cpr)
                .dir(dir.path())
                .capacity(keys as usize * 2)
                .incremental(incremental)
                .open()
                .unwrap();
        for k in 0..keys {
            db.load(k, k);
        }
        let mut s = db.session(0);
        let mut reads = Vec::new();
        let mut sampler = Sampler::new(KeyDist::Zipfian { theta: 0.9 }, keys, 7);
        for round in 1..=rounds {
            for _ in 0..ops_per_round {
                let key = sampler.next_key();
                let accesses = [(key, Access::Write)];
                let seeds = [round];
                let req = TxnRequest {
                    accesses: &accesses,
                    write_seeds: &seeds,
                };
                while s.execute(&req, &mut reads).is_err() {}
            }
            db.request_commit();
            while db.committed_version() < round {
                s.refresh();
                std::thread::sleep(Duration::from_micros(200));
            }
            let store = CheckpointStore::open(dir.path()).unwrap();
            let m = store.latest().unwrap().unwrap();
            r.row(vec![
                if incremental { "incremental" } else { "full" }.into(),
                round.to_string(),
                m.records.unwrap_or(0).to_string(),
                format!(
                    "{:.2}",
                    db.last_capture_duration().unwrap_or_default().as_secs_f64() * 1000.0
                ),
            ]);
        }
    }
    r.print();
}

/// Wall-clock recovery time for FASTER by checkpoint variant and scope.
fn recovery_time_by_variant(args: &Args) {
    let keys = args.u64("keys", 200_000).min(200_000);
    let mut r = Report::new(
        "Ablation: FASTER recovery time by checkpoint variant",
        &["variant", "scope", "log_bytes", "recover_ms"],
    );
    for (variant, log_only) in [
        (CheckpointVariant::FoldOver, false),
        (CheckpointVariant::FoldOver, true),
        (CheckpointVariant::Snapshot, false),
        (CheckpointVariant::Snapshot, true),
    ] {
        let dir = tempfile::tempdir().unwrap();
        let opts = || {
            FasterBuilder::u64_sums(dir.path())
                .hlog(HlogConfig {
                    page_bits: 16,
                    memory_pages: 256,
                    mutable_pages: 230,
                    value_size: 8,
                })
                .index_buckets(1 << 14)
                .grain(VersionGrain::Fine)
        };
        let log_bytes;
        {
            let kv = opts().open().unwrap();
            let mut s = kv.start_session(1);
            for k in 0..keys {
                s.upsert(k, k);
            }
            while s.pending_len() > 0 {
                s.refresh();
            }
            assert!(kv.request_checkpoint(variant, log_only));
            while kv.committed_version() < 1 {
                s.refresh();
            }
            log_bytes = kv.log_tail();
        }
        let t0 = Instant::now();
        let (kv, manifest) = opts().recover().unwrap();
        let ms = t0.elapsed().as_secs_f64() * 1000.0;
        assert!(manifest.is_some());
        drop(kv);
        r.row(vec![
            format!("{variant:?}"),
            if log_only { "log-only" } else { "full" }.into(),
            log_bytes.to_string(),
            format!("{ms:.1}"),
        ]);
    }
    r.print();
}
