//! Straggler injection: YCSB on FASTER with one session that
//! periodically *parks* — `--stall-every N` ops it goes silent for
//! `--stall-ms M` milliseconds, issuing no operations and no refreshes,
//! exactly the thread-gets-descheduled / client-goes-away hazard of a
//! CPR group commit. The main thread issues back-to-back checkpoints and
//! reports commit-latency p50/p99 with the liveness watchdog off vs on.
//!
//! Without the watchdog every commit waits out the stall (p99 tracks
//! `stall_ms`); with it the straggler is proxy-advanced or evicted
//! within the grace period and the tail collapses.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cpr_faster::{
    CheckpointVariant, FasterBuilder, HlogConfig, LivenessConfig, ReadResult, Status,
};
use cpr_workload::keys::KeyDist;
use cpr_workload::ycsb::{OpKind, YcsbConfig, YcsbGenerator};

use crate::args::Args;
use crate::hist::Histogram;
use crate::report::Report;

pub fn stragglers(args: &Args) {
    let keys = args.u64("keys", 100_000);
    let seconds = args.f64("seconds", 2.0);
    let threads = *args.list("threads", &[4]).last().unwrap_or(&4);
    let stall_every = args.u64("stall-every", 20_000);
    let stall_ms = args.u64("stall-ms", 50);
    let mut r = Report::new(
        format!(
            "Stragglers: FASTER fold-over commits, {threads} threads, one session \
             parking {stall_ms} ms every {stall_every} ops"
        ),
        &[
            "watchdog", "ckpts", "aborted", "p50_ms", "p99_ms", "max_ms", "Mops", "proxied",
            "evicted",
        ],
    );
    for watchdog in [false, true] {
        r.row(run(keys, seconds, threads, stall_every, stall_ms, watchdog));
    }
    r.print();
}

fn run(
    keys: u64,
    seconds: f64,
    threads: usize,
    stall_every: u64,
    stall_ms: u64,
    watchdog: bool,
) -> Vec<String> {
    let dir = tempfile::tempdir().expect("tempdir");
    let mut opts = FasterBuilder::u64_sums(dir.path())
        .index_buckets(1 << 14)
        .hlog(HlogConfig {
            page_bits: 16,      // 64 KiB pages
            memory_pages: 1024, // working set stays memory-resident
            mutable_pages: 920,
            value_size: 8,
        })
        .refresh_every(64);
    if watchdog {
        // Grace well below the stall (SystemClock ticks are ms) so the
        // watchdog acts while the straggler is parked, but far above the
        // refresh cadence of a healthy thread.
        let grace = (stall_ms / 4).max(5);
        opts = opts.liveness(
            LivenessConfig::system()
                .grace_ticks(grace)
                .poll_interval(Duration::from_millis(1)),
        );
    }
    let kv = opts.open().expect("open");
    {
        let mut loader = kv.start_session(1000);
        for k in 0..keys {
            loader.upsert(k, k);
        }
    }

    let stop = Arc::new(AtomicBool::new(false));
    let total_ops = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let kv = kv.clone();
            let stop = Arc::clone(&stop);
            let total_ops = Arc::clone(&total_ops);
            std::thread::spawn(move || {
                let mut guid = t as u64 + 1;
                let mut s = kv.start_session(guid);
                let mut gen = YcsbGenerator::new(
                    YcsbConfig::read_update(keys, KeyDist::Zipfian { theta: 0.99 }, 50),
                    0xC0FFEE + t as u64,
                );
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let op = gen.next_op();
                    let evicted = match op.kind {
                        OpKind::Read => matches!(s.read(op.key), ReadResult::Evicted),
                        _ => s.upsert(op.key, op.arg) == Status::Evicted,
                    };
                    if evicted {
                        // Dead-session reclamation: the old registration is
                        // gone; re-enlist under a fresh guid and carry on.
                        guid += threads as u64;
                        s = kv.start_session(guid);
                        continue;
                    }
                    ops += 1;
                    // Thread 0 is the straggler: park without refreshing.
                    if t == 0 && stall_every > 0 && ops.is_multiple_of(stall_every) {
                        std::thread::sleep(Duration::from_millis(stall_ms));
                    }
                    if ops.is_multiple_of(1024) {
                        total_ops.fetch_add(1024, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();

    // Commit loop: back-to-back fold-over commits, each latency sampled.
    let hist = Histogram::new();
    let started = Instant::now();
    let mut ckpts = 0u64;
    let mut aborted = 0u64;
    let mut proxied = 0u64;
    let mut evicted = 0u64;
    let mut max_ms = 0.0f64;
    while started.elapsed().as_secs_f64() < seconds {
        let target = kv.committed_version().next();
        let t0 = Instant::now();
        if !kv.request_checkpoint(CheckpointVariant::FoldOver, true) {
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }
        loop {
            if kv.committed_version() >= target || kv.last_commit_outcome().gave_up {
                break;
            }
            if t0.elapsed().as_secs_f64() > seconds + 10.0 {
                break; // safety valve: a wedged commit fails the run loudly
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        hist.record(t0.elapsed().as_nanos() as u64);
        max_ms = max_ms.max(ms);
        let out = kv.last_commit_outcome();
        ckpts += 1;
        aborted += out.aborted as u64;
        proxied += out.proxy_advanced.len() as u64;
        evicted += out.evicted.len() as u64;
        std::thread::sleep(Duration::from_millis(2));
    }
    let elapsed = started.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().unwrap();
    }
    vec![
        if watchdog { "on" } else { "off" }.into(),
        ckpts.to_string(),
        aborted.to_string(),
        format!("{:.2}", hist.quantile(0.50) as f64 / 1e6),
        format!("{:.2}", hist.quantile(0.99) as f64 / 1e6),
        format!("{max_ms:.2}"),
        format!(
            "{:.3}",
            total_ops.load(Ordering::Relaxed) as f64 / elapsed / 1e6
        ),
        proxied.to_string(),
        evicted.to_string(),
    ]
}
