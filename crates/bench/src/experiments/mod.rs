//! One module per paper figure family.

pub mod ablation;
pub mod extra;
pub mod faster_figs;
pub mod memdb_figs;
pub mod net;
pub mod recovery;
pub mod stragglers;
pub mod ycsb;
