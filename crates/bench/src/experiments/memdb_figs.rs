//! Transactional-database experiments: Figs. 2, 10, 11, 16 (YCSB) and 17
//! (TPC-C).

use cpr_memdb::Durability;

use crate::args::Args;
use crate::memdb_run::{run_memdb, MemdbRunConfig, MemdbWorkload};
use crate::report::Report;

pub const SYSTEMS: [(&str, Durability); 3] = [
    ("CPR", Durability::Cpr),
    ("CALC", Durability::Calc),
    ("WAL", Durability::Wal),
];

fn ycsb(keys: u64, txn_size: usize, write_pct: u32, theta: f64) -> MemdbWorkload {
    MemdbWorkload::Ycsb {
        num_keys: keys,
        txn_size,
        write_pct,
        theta: Some(theta),
    }
}

/// Fig. 2 (teaser) — scalability of CPR vs CALC vs WAL, 1-key txns,
/// low-contention YCSB 50:50.
pub fn fig02(args: &Args) {
    scalability_figure(
        args,
        "Fig 2: scalability, 1-key txns, theta=0.1, 50:50",
        1,
        0.1,
    );
}

fn scalability_figure(args: &Args, title: &str, txn_size: usize, theta: f64) {
    let seconds = args.f64("seconds", 2.0);
    let threads = args.list("threads", &[1, 2, 4, 8]);
    let keys = args.u64("keys", 250_000);
    let mut r = Report::new(title, &["threads", "CPR_Mtps", "CALC_Mtps", "WAL_Mtps"]);
    for &t in &threads {
        let mut row = vec![t.to_string()];
        for (_, sys) in SYSTEMS {
            let mut cfg = MemdbRunConfig::new(sys, t, ycsb(keys, txn_size, 50, theta));
            cfg.seconds = seconds;
            let res = run_memdb(&cfg);
            row.push(format!("{:.3}", res.mtps));
        }
        r.row(row);
    }
    r.print();
}

fn latency_figure(args: &Args, title: &str, txn_size: usize, theta: f64) {
    let seconds = args.f64("seconds", 2.0);
    let threads = args.list("threads", &[1, 2, 4, 8]);
    let keys = args.u64("keys", 250_000);
    let mut r = Report::new(title, &["threads", "CPR_us", "CALC_us", "WAL_us"]);
    for &t in &threads {
        let mut row = vec![t.to_string()];
        for (_, sys) in SYSTEMS {
            let mut cfg = MemdbRunConfig::new(sys, t, ycsb(keys, txn_size, 50, theta));
            cfg.seconds = seconds;
            let res = run_memdb(&cfg);
            row.push(format!("{:.2}", res.avg_latency_us));
        }
        r.row(row);
    }
    r.print();
}

fn breakdown_figure(args: &Args, title: &str, theta: f64) {
    let seconds = args.f64("seconds", 2.0);
    let keys = args.u64("keys", 250_000);
    let max_threads = *args.list("threads", &[1, 2, 4, 8]).iter().max().unwrap();
    let mut r = Report::new(
        title,
        &[
            "size",
            "threads",
            "system",
            "exec%",
            "abort%",
            "tail%",
            "logwrite%",
        ],
    );
    for txn_size in [1usize, 10] {
        for threads in [1usize, max_threads] {
            for (name, sys) in SYSTEMS {
                let mut cfg = MemdbRunConfig::new(sys, threads, ycsb(keys, txn_size, 50, theta));
                cfg.seconds = seconds;
                cfg.profile = true;
                let res = run_memdb(&cfg);
                let b = res.stats.breakdown();
                r.row(vec![
                    txn_size.to_string(),
                    threads.to_string(),
                    name.to_string(),
                    format!("{:.1}", b[0] * 100.0),
                    format!("{:.1}", b[1] * 100.0),
                    format!("{:.1}", b[2] * 100.0),
                    format!("{:.1}", b[3] * 100.0),
                ]);
            }
        }
    }
    r.print();
}

/// Fig. 10 — low-contention YCSB: scalability (a/b), latency (c/d),
/// breakdown (e).
pub fn fig10(args: &Args) {
    run_ycsb_family(args, 0.1, "Fig 10");
}

/// Fig. 16 (Appx. E.1) — the same family at high contention (θ = 0.99).
pub fn fig16(args: &Args) {
    run_ycsb_family(args, 0.99, "Fig 16");
}

fn run_ycsb_family(args: &Args, theta: f64, fig: &str) {
    let part = args.str("part", "all");
    if part == "all" || part == "scalability" {
        scalability_figure(
            args,
            &format!("{fig}a: scalability, size 1, theta={theta}"),
            1,
            theta,
        );
        scalability_figure(
            args,
            &format!("{fig}b: scalability, size 10, theta={theta}"),
            10,
            theta,
        );
    }
    if part == "all" || part == "latency" {
        latency_figure(
            args,
            &format!("{fig}c: latency, size 1, theta={theta}"),
            1,
            theta,
        );
        latency_figure(
            args,
            &format!("{fig}d: latency, size 10, theta={theta}"),
            10,
            theta,
        );
    }
    if part == "all" || part == "breakdown" {
        breakdown_figure(
            args,
            &format!("{fig}e: time breakdown, theta={theta}"),
            theta,
        );
    }
}

/// Fig. 11 — throughput during checkpoints (a/b), vs read % (c/d), vs txn
/// size (e). Checkpoint marks scale with --seconds (paper: 30/60/90 s).
pub fn fig11(args: &Args) {
    let part = args.str("part", "all");
    let seconds = args.f64("seconds", 3.0);
    let threads = *args.list("threads", &[1, 2, 4, 8]).iter().max().unwrap();
    let keys = args.u64("keys", 250_000);

    if part == "all" || part == "timeline" {
        for (label, txn_size) in [("a", 1usize), ("b", 10usize)] {
            let mut r = Report::new(
                format!("Fig 11{label}: throughput vs time w/ checkpoints, size {txn_size}"),
                &["t_s", "system", "mix", "Mtps"],
            );
            for (name, sys) in SYSTEMS {
                for write_pct in [50u32, 100] {
                    let mut cfg =
                        MemdbRunConfig::new(sys, threads, ycsb(keys, txn_size, write_pct, 0.1));
                    cfg.seconds = seconds;
                    cfg.sample_every = seconds / 8.0;
                    // The paper commits at 30/60/90 s of a 120 s run:
                    // commit at 1/4, 2/4, 3/4 of the run here.
                    cfg.checkpoint_at = vec![seconds * 0.25, seconds * 0.5, seconds * 0.75];
                    let res = run_memdb(&cfg);
                    for (t, m) in res.timeline {
                        r.row(vec![
                            format!("{t:.2}"),
                            name.to_string(),
                            format!("{write_pct}:{}", 100 - write_pct),
                            format!("{m:.3}"),
                        ]);
                    }
                }
            }
            r.print();
        }
    }
    if part == "all" || part == "readpct" {
        for (label, txn_size) in [("c", 1usize), ("d", 10usize)] {
            let mut r = Report::new(
                format!("Fig 11{label}: throughput vs read %, size {txn_size}"),
                &["read_pct", "CPR_Mtps", "CALC_Mtps", "WAL_Mtps"],
            );
            for read_pct in [0u32, 25, 50, 75, 90] {
                let mut row = vec![read_pct.to_string()];
                for (_, sys) in SYSTEMS {
                    let mut cfg = MemdbRunConfig::new(
                        sys,
                        threads,
                        ycsb(keys, txn_size, 100 - read_pct, 0.1),
                    );
                    cfg.seconds = args.f64("seconds", 2.0);
                    let res = run_memdb(&cfg);
                    row.push(format!("{:.3}", res.mtps));
                }
                r.row(row);
            }
            r.print();
        }
    }
    if part == "all" || part == "txnsize" {
        let mut r = Report::new(
            "Fig 11e: throughput vs txn size, 50:50",
            &["txn_size", "CPR_Mtps", "CALC_Mtps", "WAL_Mtps"],
        );
        for txn_size in [1usize, 3, 5, 7, 10] {
            let mut row = vec![txn_size.to_string()];
            for (_, sys) in SYSTEMS {
                let mut cfg = MemdbRunConfig::new(sys, threads, ycsb(keys, txn_size, 50, 0.1));
                cfg.seconds = args.f64("seconds", 2.0);
                let res = run_memdb(&cfg);
                row.push(format!("{:.3}", res.mtps));
            }
            r.row(row);
        }
        r.print();
    }
}

/// Fig. 17 (Appx. E.2) — TPC-C: checkpoint timeline, scalability for the
/// 50:50 and payment-only mixes, latency, breakdown.
pub fn fig17(args: &Args) {
    let part = args.str("part", "all");
    let seconds = args.f64("seconds", 3.0);
    let threads_list = args.list("threads", &[1, 2, 4, 8]);
    let max_threads = *threads_list.iter().max().unwrap();
    let warehouses = args.u64("warehouses", 4); // scaled from the paper's 256

    if part == "all" || part == "timeline" {
        let mut r = Report::new(
            "Fig 17a: TPC-C 50:50 throughput vs time w/ checkpoints",
            &["t_s", "system", "Mtps"],
        );
        for (name, sys) in SYSTEMS {
            let mut cfg = MemdbRunConfig::new(
                sys,
                max_threads,
                MemdbWorkload::Tpcc {
                    warehouses,
                    payment_pct: 50,
                },
            );
            cfg.seconds = seconds;
            cfg.sample_every = seconds / 8.0;
            cfg.checkpoint_at = vec![seconds * 0.25, seconds * 0.5, seconds * 0.75];
            let res = run_memdb(&cfg);
            for (t, m) in res.timeline {
                r.row(vec![format!("{t:.2}"), name.to_string(), format!("{m:.3}")]);
            }
        }
        r.print();
    }
    if part == "all" || part == "scalability" {
        for (label, payment_pct) in [("b (50:50)", 50u32), ("c (payments only)", 100)] {
            let mut r = Report::new(
                format!("Fig 17{label}: TPC-C scalability"),
                &["threads", "CPR_Mtps", "CALC_Mtps", "WAL_Mtps"],
            );
            for &t in &threads_list {
                let mut row = vec![t.to_string()];
                for (_, sys) in SYSTEMS {
                    let mut cfg = MemdbRunConfig::new(
                        sys,
                        t,
                        MemdbWorkload::Tpcc {
                            warehouses,
                            payment_pct,
                        },
                    );
                    cfg.seconds = args.f64("seconds", 2.0);
                    let res = run_memdb(&cfg);
                    row.push(format!("{:.3}", res.mtps));
                }
                r.row(row);
            }
            r.print();
        }
    }
    if part == "all" || part == "latency" {
        let mut r = Report::new(
            "Fig 17d: TPC-C 50:50 latency",
            &["threads", "CPR_us", "CALC_us", "WAL_us"],
        );
        for &t in &threads_list {
            let mut row = vec![t.to_string()];
            for (_, sys) in SYSTEMS {
                let mut cfg = MemdbRunConfig::new(
                    sys,
                    t,
                    MemdbWorkload::Tpcc {
                        warehouses,
                        payment_pct: 50,
                    },
                );
                cfg.seconds = args.f64("seconds", 2.0);
                let res = run_memdb(&cfg);
                row.push(format!("{:.2}", res.avg_latency_us));
            }
            r.row(row);
        }
        r.print();
    }
    if part == "all" || part == "breakdown" {
        let mut r = Report::new(
            "Fig 17e: TPC-C time breakdown",
            &[
                "mix",
                "threads",
                "system",
                "exec%",
                "abort%",
                "tail%",
                "logwrite%",
            ],
        );
        for (mix, payment_pct) in [("both", 50u32), ("payments", 100)] {
            for threads in [1usize, max_threads] {
                for (name, sys) in SYSTEMS {
                    let mut cfg = MemdbRunConfig::new(
                        sys,
                        threads,
                        MemdbWorkload::Tpcc {
                            warehouses,
                            payment_pct,
                        },
                    );
                    cfg.seconds = args.f64("seconds", 2.0);
                    cfg.profile = true;
                    let res = run_memdb(&cfg);
                    let b = res.stats.breakdown();
                    r.row(vec![
                        mix.to_string(),
                        threads.to_string(),
                        name.to_string(),
                        format!("{:.1}", b[0] * 100.0),
                        format!("{:.1}", b[1] * 100.0),
                        format!("{:.1}", b[2] * 100.0),
                        format!("{:.1}", b[3] * 100.0),
                    ]);
                }
            }
        }
        r.print();
    }
}
