//! Extra experiments exercising paper parameters the figure suite does
//! not: the 100-byte value size of Sec. 7.1, and FASTER's
//! larger-than-memory regime (working set exceeding the in-memory log,
//! driving the asynchronous I/O pending path under load).

use std::time::Instant;

use cpr_faster::{FasterBuilder, HlogConfig, VersionGrain};
use cpr_workload::keys::KeyDist;
use cpr_workload::ycsb::{OpKind, YcsbConfig, YcsbGenerator};

use crate::args::Args;
use crate::report::Report;

pub fn extra(args: &Args) {
    value_size_sweep(args);
    larger_than_memory(args);
}

/// 8-byte vs ~100-byte values (paper Sec. 7.1 uses both): wide values
/// cost more per op (more words moved) and grow the log faster.
fn value_size_sweep(args: &Args) {
    let keys = args.u64("keys", 100_000);
    let seconds = args.f64("seconds", 2.0);
    let mut r = Report::new(
        "Extra: value size 8B vs 104B, 50:50 YCSB, zipf",
        &["value_bytes", "Mops", "log_MB_end"],
    );
    // 8-byte values.
    {
        let (mops, log_mb) = run_fixed::<u64>(keys, seconds, 8, |old, d| old.wrapping_add(d));
        r.row(vec!["8".into(), format!("{mops:.3}"), format!("{log_mb:.2}")]);
    }
    // 104-byte values (13 words — the paper's "100 byte" point).
    {
        let (mops, log_mb) =
            run_fixed::<[u64; 13]>(keys, seconds, 104, |mut old, d| {
                old[0] = old[0].wrapping_add(d[0]);
                old
            });
        r.row(vec!["104".into(), format!("{mops:.3}"), format!("{log_mb:.2}")]);
    }
    r.print();
}

fn run_fixed<V: cpr_core::Pod + From8>(
    keys: u64,
    seconds: f64,
    value_size: usize,
    rmw: fn(V, V) -> V,
) -> (f64, f64) {
    let dir = tempfile::tempdir().unwrap();
    let kv = FasterBuilder::<V>::new(dir.path())
        .index_buckets(1 << 14)
        .hlog(HlogConfig {
            page_bits: 16,
            memory_pages: 1024,
            mutable_pages: 920,
            value_size,
        })
        .refresh_every(64)
        .grain(VersionGrain::Fine)
        .max_sessions(8)
        .io_threads(2)
        .rmw(rmw)
        .open()
        .unwrap();
    let mut s = kv.start_session(1);
    for k in 0..keys {
        s.upsert(k, V::from8(k));
    }
    let mut gen = YcsbGenerator::new(
        YcsbConfig::read_update(keys, KeyDist::Zipfian { theta: 0.99 }, 50),
        7,
    );
    let started = Instant::now();
    let mut ops = 0u64;
    while started.elapsed().as_secs_f64() < seconds {
        for _ in 0..1024 {
            let op = gen.next_op();
            match op.kind {
                OpKind::Read => {
                    let _ = s.read(op.key);
                }
                _ => {
                    let _ = s.upsert(op.key, V::from8(op.arg));
                }
            }
            ops += 1;
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    (
        ops as f64 / elapsed / 1e6,
        kv.log_tail() as f64 / 1e6,
    )
}

/// Build a value from a u64 seed (bench-local helper trait).
trait From8: Sized {
    fn from8(x: u64) -> Self;
}
impl From8 for u64 {
    fn from8(x: u64) -> Self {
        x
    }
}
impl From8 for [u64; 13] {
    fn from8(x: u64) -> Self {
        [x; 13]
    }
}

/// Larger-than-memory: shrink the in-memory log below the working set
/// and watch throughput degrade as reads go to the device via the
/// asynchronous pending path — FASTER's defining capability (paper
/// Secs. 1, 5).
fn larger_than_memory(args: &Args) {
    let keys = args.u64("keys", 200_000);
    let seconds = args.f64("seconds", 2.0);
    // Working set: keys × 24 B records ≈ 4.8 MB at the default key count.
    let mut r = Report::new(
        "Extra: larger-than-memory (uniform 90:10 reads)",
        &["memory_MB", "workingset_MB", "Mops", "pending_ops", "pending_%"],
    );
    for memory_pages in [512usize, 128, 64, 32] {
        let dir = tempfile::tempdir().unwrap();
        let opts = FasterBuilder::u64_sums(dir.path())
            .hlog(HlogConfig {
                page_bits: 14, // 16 KiB pages
                memory_pages,
                mutable_pages: memory_pages / 2,
                value_size: 8,
            })
            .index_buckets(1 << 14)
            .refresh_every(32);
        let kv = opts.open().unwrap();
        let mut s = kv.start_session(1);
        for k in 0..keys {
            s.upsert(k, k);
        }
        // Drain the preload's own pendings before timing.
        for _ in 0..10_000 {
            if s.pending_len() == 0 {
                break;
            }
            s.refresh();
        }
        let mut gen = YcsbGenerator::new(
            YcsbConfig::read_update(keys, KeyDist::Uniform, 90),
            11,
        );
        let started = Instant::now();
        let mut ops = 0u64;
        let mut completions = Vec::new();
        while started.elapsed().as_secs_f64() < seconds {
            for _ in 0..256 {
                let op = gen.next_op();
                match op.kind {
                    OpKind::Read => {
                        let _ = s.read(op.key);
                    }
                    _ => {
                        let _ = s.upsert(op.key, op.arg);
                    }
                }
                ops += 1;
            }
            s.drain_completions(&mut completions);
            completions.clear();
        }
        let elapsed = started.elapsed().as_secs_f64();
        let pend = s.stats.went_pending;
        r.row(vec![
            format!("{:.1}", (memory_pages as u64 * (1 << 14)) as f64 / 1e6),
            format!("{:.1}", (keys * 24) as f64 / 1e6),
            format!("{:.3}", ops as f64 / elapsed / 1e6),
            pend.to_string(),
            format!("{:.2}", pend as f64 / ops as f64 * 100.0),
        ]);
    }
    r.print();
}
