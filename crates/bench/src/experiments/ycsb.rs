//! `ycsb` — the observability showcase: run the YCSB mix on *both*
//! engines with a live metrics registry and print (and optionally dump
//! as JSON via `--metrics-out`) commit-latency percentiles, per-phase
//! checkpoint timings, epoch drain behaviour and storage traffic.

use std::sync::Arc;

use cpr_faster::CheckpointVariant;
use cpr_memdb::Durability;
use cpr_metrics::{MetricsReport, Registry};

use crate::args::Args;
use crate::faster_run::{run_faster, FasterRunConfig};
use crate::memdb_run::{run_memdb, MemdbRunConfig, MemdbWorkload};
use crate::report::Report;

pub fn ycsb(args: &Args) {
    let seconds = args.f64("seconds", 2.0);
    let threads = *args.list("threads", &[4]).first().unwrap_or(&4);
    let keys = args.u64("keys", 200_000);
    let metrics_out = args.str("metrics-out", "");

    // `--overhead only`: skip the showcase and run just the disabled vs
    // enabled A/B, so it can be interleaved with a baseline build under
    // identical (cold-process) conditions.
    if args.str("overhead", "") == "only" {
        overhead(seconds, threads, keys);
        return;
    }

    // ---- memdb: YCSB transactions under CPR durability -----------------
    let mem_reg = Registry::new();
    let mut mem_cfg = MemdbRunConfig::new(
        Durability::Cpr,
        threads,
        MemdbWorkload::Ycsb {
            num_keys: keys,
            txn_size: 4,
            write_pct: 50,
            theta: Some(0.9),
        },
    );
    mem_cfg.seconds = seconds;
    mem_cfg.checkpoint_at = vec![seconds * 0.35, seconds * 0.7];
    mem_cfg.metrics = Some(Arc::clone(&mem_reg));
    let mem_res = run_memdb(&mem_cfg);
    let mem_report = mem_reg.snapshot();

    // ---- faster: 50:50 read/update, fold-over + snapshot commits -------
    let kv_reg = Registry::new();
    let mut kv_cfg = FasterRunConfig::scaled(threads, 50, true);
    kv_cfg.num_keys = keys;
    kv_cfg.seconds = seconds;
    kv_cfg.variant = CheckpointVariant::FoldOver;
    kv_cfg.checkpoint_at = vec![seconds * 0.35, seconds * 0.7];
    kv_cfg.metrics = Some(Arc::clone(&kv_reg));
    let kv_res = run_faster(&kv_cfg);
    let kv_report = kv_reg.snapshot();

    let mut r = Report::new(
        "YCSB with live metrics (cpr-metrics end-to-end)",
        &[
            "engine", "mtps", "ops", "p50_us", "p90_us", "p99_us", "ckpts", "epoch_bumps",
            "mb_written",
        ],
    );
    for (engine, mtps, report) in [
        ("memdb/cpr", mem_res.mtps, &mem_report),
        ("faster", kv_res.mops, &kv_report),
    ] {
        let lat = &report.ops.commit_latency;
        r.row(vec![
            engine.into(),
            format!("{mtps:.3}"),
            format!("{}", report.ops.committed),
            format!("{:.1}", lat.p50_ns as f64 / 1000.0),
            format!("{:.1}", lat.p90_ns as f64 / 1000.0),
            format!("{:.1}", lat.p99_ns as f64 / 1000.0),
            format!("{}", report.checkpoints.len()),
            format!("{}", report.epoch.bumps),
            format!("{:.2}", report.storage.bytes_written as f64 / 1e6),
        ]);
    }
    r.print();

    let mut phases = Report::new(
        "Per-checkpoint phase timings (time-in-phase, ms)",
        &["engine", "version", "kind", "committed", "phase", "ms"],
    );
    for (engine, report) in [("memdb/cpr", &mem_report), ("faster", &kv_report)] {
        for t in &report.checkpoints {
            for span in &t.phases {
                phases.row(vec![
                    engine.into(),
                    format!("{}", t.version),
                    t.kind.clone(),
                    format!("{}", t.committed),
                    span.phase.clone(),
                    format!("{:.3}", span.secs * 1000.0),
                ]);
            }
        }
    }
    phases.print();

    if !metrics_out.is_empty() {
        let json = combined_json(&mem_report, &kv_report);
        std::fs::write(&metrics_out, json).expect("write --metrics-out file");
        eprintln!("[cpr-bench] metrics report written to {metrics_out}");
    }

    if args.str("overhead", "") == "true" {
        overhead(seconds, threads, keys);
    }
}

/// `--overhead true`: the same FASTER YCSB run with the registry
/// disabled vs enabled, quantifying the cost of live metrics (the
/// disabled path must stay within noise).
fn overhead(seconds: f64, threads: usize, keys: u64) {
    let mut r = Report::new(
        "Metrics overhead: identical FASTER YCSB runs",
        &["metrics", "mops", "delta_pct"],
    );
    let mut base = 0.0;
    for enabled in [false, true] {
        let mut cfg = FasterRunConfig::scaled(threads, 50, true);
        cfg.num_keys = keys;
        cfg.seconds = seconds;
        cfg.checkpoint_at = vec![seconds * 0.5];
        cfg.metrics = enabled.then(Registry::new);
        let res = run_faster(&cfg);
        if !enabled {
            base = res.mops;
        }
        r.row(vec![
            if enabled { "enabled" } else { "disabled" }.into(),
            format!("{:.3}", res.mops),
            format!("{:+.2}", (res.mops - base) / base * 100.0),
        ]);
    }
    r.print();
}

/// `{"memdb": <report>, "faster": <report>}`, pretty-printed.
fn combined_json(memdb: &MetricsReport, faster: &MetricsReport) -> String {
    use serde::Serialize;
    // A raw `Value` is not itself `Serialize`; wrap it.
    struct Combined(serde::Value);
    impl Serialize for Combined {
        fn to_value(&self) -> serde::Value {
            self.0.clone()
        }
    }
    let combined = Combined(serde::Value::Object(vec![
        ("memdb".to_string(), memdb.to_value()),
        ("faster".to_string(), faster.to_value()),
    ]));
    serde_json::to_string_pretty(&combined).expect("metrics serialize")
}
