//! Parallel flush & recovery scaling (ISSUE 5 acceptance run).
//!
//! Builds a FASTER store with 1 KiB values, takes an early full
//! checkpoint (index image), fills the hybrid log to `--log-mb`, takes
//! a log-only fold-over checkpoint, then recovers the store from disk —
//! once per entry in `--threads`. Recovery must scan essentially the
//! whole log suffix to catch the index up. Flush time comes
//! from the `flush.fold-over` phase timing, recovery is wall-clocked
//! around `recover()` with the partitioned-scan phase reported
//! separately. Every run must land on the same recovered state: the
//! serialized hash index and the on-disk log prefix are digested and
//! compared across thread counts.
//!
//! The host this grows on has a single core, so raw parallel speedup
//! from CPU is unavailable; like the §7 single-core notes elsewhere in
//! this repo, the device is given a simulated per-I/O latency
//! (`--write-latency-us` / `--read-latency-us`) so the benchmark
//! measures what the multi-queue writer pool and partitioned recovery
//! scan actually overlap: in-flight I/O time. Set both to 0 on a real
//! multi-core box to measure CPU scaling instead.
//!
//! Results are printed as a table and written to `--out`
//! (default `BENCH_recovery.json`).

use std::time::{Duration, Instant};

use cpr_faster::{CheckpointVariant, FasterKv, HlogConfig};
use cpr_metrics::Registry;
use cpr_storage::IoProfile;

use crate::args::Args;
use crate::report::Report;

/// 1 KiB values: with the 8-byte header and 8-byte key each record is
/// 1040 bytes, so a 1 GiB log holds ~1M records — big enough that the
/// recovery scan is I/O-bound, few enough that the per-slot fold stays
/// cheap on this host's single core. The fill uses a fresh key per
/// record: repeated keys would be updated in place while the page is
/// mutable and the log would stop growing.
type Val = [u8; 1024];

const RECORD_BYTES: u64 = 1040;

fn value_for(key: u64) -> Val {
    let mut v = [0u8; 1024];
    v[..8].copy_from_slice(&key.to_le_bytes());
    v[8..16].copy_from_slice(&(!key).to_le_bytes());
    v
}

struct RunResult {
    threads: usize,
    fill_s: f64,
    flush_s: f64,
    recover_s: f64,
    scan_s: f64,
    index_digest: u64,
    log_digest: u64,
    log_bytes: u64,
}

pub fn recovery(args: &Args) {
    let threads = args.list("threads", &[1, 2, 4, 8]);
    let log_mb = args.u64("log-mb", 1024);
    let write_lat = Duration::from_micros(args.u64("write-latency-us", 10_000));
    let read_lat = Duration::from_micros(args.u64("read-latency-us", 10_000));
    let out = args.str("out", "BENCH_recovery.json");

    let mut results: Vec<RunResult> = Vec::new();
    for &t in &threads {
        let r = run_one(t, log_mb, write_lat, read_lat);
        eprintln!(
            "[cpr-bench] threads={} fill={:.2}s flush={:.2}s recover={:.2}s (scan {:.2}s)",
            t, r.fill_s, r.flush_s, r.recover_s, r.scan_s
        );
        results.push(r);
    }

    // Byte-identity across thread counts: same index image, same log
    // prefix, no matter how the flush was striped or the scan split.
    let base = &results[0];
    for r in &results[1..] {
        assert_eq!(
            r.index_digest, base.index_digest,
            "recovered index diverged between {} and {} threads",
            base.threads, r.threads
        );
        assert_eq!(
            r.log_digest, base.log_digest,
            "recovered log prefix diverged between {} and {} threads",
            base.threads, r.threads
        );
        assert_eq!(r.log_bytes, base.log_bytes);
    }

    let mut rep = Report::new(
        format!(
            "Parallel flush & recovery, {} MiB log, {}us/{}us simulated write/read latency",
            log_mb,
            write_lat.as_micros(),
            read_lat.as_micros()
        ),
        &[
            "threads",
            "flush_s",
            "flush_x",
            "recover_s",
            "recover_x",
            "scan_s",
            "scan_x",
        ],
    );
    for r in &results {
        rep.row(vec![
            r.threads.to_string(),
            format!("{:.3}", r.flush_s),
            format!("{:.2}", base.flush_s / r.flush_s),
            format!("{:.3}", r.recover_s),
            format!("{:.2}", base.recover_s / r.recover_s),
            format!("{:.3}", r.scan_s),
            format!("{:.2}", base.scan_s / r.scan_s),
        ]);
    }
    rep.print();

    let json = results_json(&results, log_mb, write_lat, read_lat);
    std::fs::write(&out, json).expect("write --out file");
    eprintln!("[cpr-bench] recovery scaling report written to {out}");
}

fn run_one(t: usize, log_mb: u64, write_lat: Duration, read_lat: Duration) -> RunResult {
    let dir = tempfile::tempdir().expect("tempdir");
    let profile = IoProfile {
        write_latency: write_lat,
        read_latency: read_lat,
        bandwidth: u64::MAX,
    };
    let target_bytes = log_mb * (1 << 20);
    // 4 MiB pages; keep every page in memory and mutable until the
    // checkpoint so the fold-over flush (not incremental page closes)
    // writes the whole log and `flush.fold-over` times all of it.
    let pages = (((target_bytes >> 22) as usize) + 2).next_power_of_two();
    let hlog = HlogConfig {
        page_bits: 22,
        memory_pages: pages,
        mutable_pages: pages - 1,
        value_size: std::mem::size_of::<Val>(),
    };

    let metrics = Registry::new();
    let kv: FasterKv<Val> = FasterKv::builder(dir.path())
        .hlog(hlog)
        .index_buckets(1 << 16)
        .write_queues(t)
        .recovery_threads(t)
        .io_profile(profile)
        .metrics(metrics.clone())
        .refresh_every(1 << 20)
        .open()
        .expect("open store");

    let mut s = kv.start_session(1);

    // Early *full* checkpoint: dumps the (near-empty) index. The log-only
    // checkpoint after the fill skips the index dump, so recovery loads
    // this old index image and must scan essentially the whole log to
    // rebuild — the paper's model of infrequent index checkpoints plus a
    // long hybrid-log suffix, and the work the partitioned scan splits.
    assert!(kv.request_checkpoint(CheckpointVariant::FoldOver, false));
    pump_to_rest(&kv, &mut s);

    let fill_t0 = Instant::now();
    let mut key = 0u64;
    while kv.log_tail() < target_bytes {
        s.upsert(key, value_for(key));
        key += 1;
        if key.is_multiple_of(4096) {
            s.refresh();
        }
    }
    while s.pending_len() > 0 {
        s.refresh();
    }
    let fill_s = fill_t0.elapsed().as_secs_f64();

    assert!(kv.request_checkpoint(CheckpointVariant::FoldOver, true));
    pump_to_rest(&kv, &mut s);
    drop(s);
    let flush_s = phase_seconds(&metrics, "flush.fold-over");
    let log_bytes = kv.log_tail();
    drop(kv);

    let rec_metrics = Registry::new();
    let rec_t0 = Instant::now();
    let (kv2, manifest) = FasterKv::<Val>::builder(dir.path())
        .hlog(hlog)
        .index_buckets(1 << 16)
        .write_queues(t)
        .recovery_threads(t)
        .io_profile(profile)
        .metrics(rec_metrics.clone())
        .recover()
        .expect("recover store");
    let recover_s = rec_t0.elapsed().as_secs_f64();
    assert!(manifest.is_some(), "no checkpoint manifest found");
    let scan_s = phase_seconds(&rec_metrics, "recovery.scan");

    let index_digest = kv2.index_digest();
    drop(kv2);
    let log_digest = file_digest(&dir.path().join("log.dat"), log_bytes);

    RunResult {
        threads: t,
        fill_s,
        flush_s,
        recover_s,
        scan_s,
        index_digest,
        log_digest,
        log_bytes,
    }
}

/// Drive the commit state machine to completion from a session loop.
fn pump_to_rest(kv: &FasterKv<Val>, s: &mut cpr_faster::FasterSession<Val>) {
    let deadline = Instant::now() + Duration::from_secs(600);
    while kv.state().0 != cpr_core::Phase::Rest {
        s.refresh();
        assert!(Instant::now() < deadline, "checkpoint stalled");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Last recorded duration for phase `name`, in seconds (0.0 if absent).
fn phase_seconds(metrics: &Registry, name: &str) -> f64 {
    metrics
        .snapshot()
        .phase_timings
        .iter()
        .rev()
        .find(|p| p.name == name)
        .map(|p| p.millis / 1000.0)
        .unwrap_or(0.0)
}

/// FNV-1a over the first `len` bytes of `path`, read in 1 MiB chunks.
fn file_digest(path: &std::path::Path, len: u64) -> u64 {
    use std::io::Read;
    let mut f = std::fs::File::open(path).expect("open log for digest");
    let mut remaining = len;
    let mut buf = vec![0u8; 1 << 20];
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    while remaining > 0 {
        let want = (remaining as usize).min(buf.len());
        let n = f.read(&mut buf[..want]).expect("read log for digest");
        if n == 0 {
            break; // log file may be sparse past the durable watermark
        }
        for &b in &buf[..n] {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        remaining -= n as u64;
    }
    h
}

fn results_json(
    results: &[RunResult],
    log_mb: u64,
    write_lat: Duration,
    read_lat: Duration,
) -> String {
    use serde::{Serialize, Value};
    let base = &results[0];
    let runs: Vec<Value> = results
        .iter()
        .map(|r| {
            Value::Object(vec![
                ("threads".into(), Value::UInt(r.threads as u64)),
                ("fill_s".into(), Value::Float(r.fill_s)),
                ("flush_s".into(), Value::Float(r.flush_s)),
                ("flush_speedup".into(), Value::Float(base.flush_s / r.flush_s)),
                ("recover_s".into(), Value::Float(r.recover_s)),
                (
                    "recover_speedup".into(),
                    Value::Float(base.recover_s / r.recover_s),
                ),
                ("scan_s".into(), Value::Float(r.scan_s)),
                ("scan_speedup".into(), Value::Float(base.scan_s / r.scan_s)),
                (
                    "index_digest".into(),
                    Value::Str(format!("{:016x}", r.index_digest)),
                ),
                (
                    "log_digest".into(),
                    Value::Str(format!("{:016x}", r.log_digest)),
                ),
                ("log_bytes".into(), Value::UInt(r.log_bytes)),
            ])
        })
        .collect();
    struct Doc(Value);
    impl Serialize for Doc {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
    let doc = Doc(Value::Object(vec![
        ("experiment".into(), Value::Str("recovery".into())),
        ("log_mb".into(), Value::UInt(log_mb)),
        ("record_bytes".into(), Value::UInt(RECORD_BYTES)),
        (
            "write_latency_us".into(),
            Value::UInt(write_lat.as_micros() as u64),
        ),
        (
            "read_latency_us".into(),
            Value::UInt(read_lat.as_micros() as u64),
        ),
        (
            "state_identical_across_threads".into(),
            Value::Bool(true),
        ),
        ("runs".into(), Value::Array(runs)),
    ]));
    serde_json::to_string_pretty(&doc).expect("serialize recovery report")
}
