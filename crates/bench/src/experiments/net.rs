//! Network sessions experiment: loopback server throughput and
//! client-observed batch RTT percentiles (DESIGN.md "Network sessions").
//!
//! An in-process `cpr-net` server wraps an engine; `T` client threads
//! connect over 127.0.0.1 and pipeline batches of `B` ops (window `W`
//! batches deep). Latency percentiles come from a shared `cpr-metrics`
//! registry fed by the clients (one `record_commit` per acked batch), so
//! the numbers are exactly what a remote CPR client would observe.

use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cpr_faster::{FasterBuilder, HlogConfig};
use cpr_memdb::{Durability, MemDb};
use cpr_metrics::Registry;
use cpr_net::{NetClient, NetEngine, NetServer};

use crate::args::Args;
use crate::report::Report;

pub fn net(args: &Args) {
    let engine = args.str("engine", "faster");
    let seconds = args.f64("seconds", 2.0);
    let keys = args.u64("keys", 100_000);
    let batch = args.u64("batch", 512) as usize;
    let window = args.u64("window", 8) as usize;
    let read_pct = args.u64("read-pct", 50);
    let threads = args.list("threads", &[1, 2, 4]);

    let mut r = Report::new(
        format!(
            "Network sessions: loopback {engine}, batch {batch}, window {window}, \
             {read_pct}% reads"
        ),
        &[
            "threads", "ops", "secs", "mops_s", "batch_p50_us", "batch_p99_us",
        ],
    );
    for &t in &threads {
        let dir = tempfile::tempdir().unwrap();
        let row = match engine.as_str() {
            "memdb" => {
                let db: Arc<MemDb<u64>> = Arc::new(
                    MemDb::builder(Durability::Cpr)
                        .dir(dir.path())
                        .capacity(keys as usize * 2)
                        .max_sessions(t + 4)
                        .open()
                        .unwrap(),
                );
                run(db, t, seconds, keys, batch, window, read_pct)
            }
            _ => {
                let kv = Arc::new(
                    FasterBuilder::u64_sums(dir.path())
                        .hlog(HlogConfig {
                            page_bits: 22,
                            memory_pages: 64,
                            mutable_pages: 48,
                            value_size: 8,
                        })
                        .index_buckets((keys as usize * 2).next_power_of_two())
                        .max_sessions(t + 4)
                        .open()
                        .unwrap(),
                );
                run(kv, t, seconds, keys, batch, window, read_pct)
            }
        };
        r.row(row);
    }
    r.print();
}

fn run<E: NetEngine>(
    engine: Arc<E>,
    threads: usize,
    seconds: f64,
    keys: u64,
    batch: usize,
    window: usize,
    read_pct: u64,
) -> Vec<String> {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let server = NetServer::serve(engine, listener).unwrap();
    let addr = server.addr();
    let metrics = Registry::new();
    let deadline = Instant::now() + Duration::from_secs_f64(seconds);

    let t0 = Instant::now();
    let workers: Vec<_> = (0..threads)
        .map(|tid| {
            let metrics = Arc::clone(&metrics);
            std::thread::spawn(move || {
                let mut c = NetClient::connect(addr, 1000 + tid as u64).unwrap();
                c.set_batch_size(batch);
                c.set_window(window);
                c.set_metrics(metrics);
                // Cheap xorshift so the generator never bottlenecks the
                // socket path.
                let mut rng = 0x9e3779b97f4a7c15u64 ^ (tid as u64).wrapping_mul(0xa076_1d64);
                let mut ops = 0u64;
                while Instant::now() < deadline {
                    for _ in 0..batch {
                        rng ^= rng << 13;
                        rng ^= rng >> 7;
                        rng ^= rng << 17;
                        let key = rng % keys;
                        if rng % 100 < read_pct {
                            c.read(key).unwrap();
                        } else {
                            c.upsert(key, rng).unwrap();
                        }
                        ops += 1;
                    }
                    c.flush().unwrap();
                    c.take_results();
                }
                c.sync().unwrap();
                c.take_results();
                c.goodbye().unwrap();
                ops
            })
        })
        .collect();
    let total: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    let secs = t0.elapsed().as_secs_f64();

    let lat = metrics.snapshot().ops.commit_latency;
    vec![
        threads.to_string(),
        total.to_string(),
        format!("{secs:.2}"),
        format!("{:.3}", total as f64 / secs / 1e6),
        format!("{:.1}", lat.p50_ns as f64 / 1e3),
        format!("{:.1}", lat.p99_ns as f64 / 1e3),
    ]
}
