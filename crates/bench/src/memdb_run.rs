//! Shared runner for the transactional-database experiments
//! (Figs. 2, 10, 11, 16, 17).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cpr_memdb::{Access, ClientStats, DbValue, Durability, MemDb, TxnRequest};
use cpr_workload::keys::KeyDist;
use cpr_workload::tpcc::{TpccConfig, TpccGenerator};
use cpr_workload::txn::{AccessType, TxnConfig, TxnGenerator};

/// Which transaction stream to run.
#[derive(Clone, Copy, Debug)]
pub enum MemdbWorkload {
    /// YCSB-style multi-key transactions.
    Ycsb {
        num_keys: u64,
        txn_size: usize,
        write_pct: u32,
        theta: Option<f64>,
    },
    /// TPC-C lite (Payment / New-Order).
    Tpcc { warehouses: u64, payment_pct: u32 },
}

#[derive(Clone, Debug)]
pub struct MemdbRunConfig {
    pub system: Durability,
    pub threads: usize,
    pub seconds: f64,
    pub profile: bool,
    /// Wall-clock marks (seconds) at which to request a commit.
    pub checkpoint_at: Vec<f64>,
    pub sample_every: f64,
    pub workload: MemdbWorkload,
    /// Optional live metrics registry wired into the database.
    pub metrics: Option<Arc<cpr_metrics::Registry>>,
}

impl MemdbRunConfig {
    pub fn new(system: Durability, threads: usize, workload: MemdbWorkload) -> Self {
        MemdbRunConfig {
            system,
            threads,
            seconds: 2.0,
            profile: false,
            checkpoint_at: Vec::new(),
            sample_every: 0.5,
            workload,
            metrics: None,
        }
    }
}

#[derive(Debug, Clone)]
#[allow(dead_code)] // aggregate fields are consumed by a subset of the figures
pub struct MemdbRunResult {
    pub committed: u64,
    pub elapsed: f64,
    pub stats: ClientStats,
    /// (time, M txns/sec over the preceding interval)
    pub timeline: Vec<(f64, f64)>,
    pub mtps: f64,
    pub avg_latency_us: f64,
}

fn dist(theta: Option<f64>) -> KeyDist {
    match theta {
        Some(t) => KeyDist::Zipfian { theta: t },
        None => KeyDist::Uniform,
    }
}

/// Run one configuration to completion and return aggregates.
pub fn run_memdb(cfg: &MemdbRunConfig) -> MemdbRunResult {
    match cfg.workload {
        MemdbWorkload::Ycsb { .. } => run_generic::<u64>(cfg),
        // TPC-C rows are "considerably larger" (paper E.2): 64-byte values.
        MemdbWorkload::Tpcc { .. } => run_generic::<[u64; 8]>(cfg),
    }
}

fn run_generic<V: DbValue>(cfg: &MemdbRunConfig) -> MemdbRunResult {
    let dir = tempfile::tempdir().expect("tempdir");
    let capacity = match cfg.workload {
        MemdbWorkload::Ycsb { num_keys, .. } => num_keys as usize * 2,
        MemdbWorkload::Tpcc { warehouses, .. } => (warehouses as usize) * 140_000,
    };
    let mut opts = MemDb::builder(cfg.system)
        .dir(dir.path())
        .capacity(capacity)
        .profile(cfg.profile)
        .max_sessions(cfg.threads + 4)
        .refresh_every(64);
    if let Some(m) = &cfg.metrics {
        opts = opts.metrics(Arc::clone(m));
    }
    let db: MemDb<V> = opts.open().expect("open db");

    // Pre-load.
    match cfg.workload {
        MemdbWorkload::Ycsb { num_keys, .. } => {
            for k in 0..num_keys {
                db.load(k, V::from_seed(k));
            }
        }
        MemdbWorkload::Tpcc { warehouses, .. } => {
            for k in TpccConfig::mix(warehouses, 50).preload_keys() {
                db.load(k, V::from_seed(k));
            }
        }
    }

    let stop = Arc::new(AtomicBool::new(false));
    let counters: Arc<Vec<AtomicU64>> =
        Arc::new((0..cfg.threads).map(|_| AtomicU64::new(0)).collect());

    let workers: Vec<_> = (0..cfg.threads)
        .map(|t| {
            let db = db.clone();
            let stop = stop.clone();
            let counters = Arc::clone(&counters);
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                let mut session = db.session(t as u64);
                let mut reads: Vec<V> = Vec::new();
                let mut accesses: Vec<(u64, Access)> = Vec::new();
                let seed = 0x5EED_0000 + t as u64;
                let mut ycsb_gen;
                let mut tpcc_gen;
                type NextTxn<'a> = Box<dyn FnMut(&mut Vec<(u64, Access)>) -> Vec<u64> + 'a>;
                let mut next: NextTxn<'_> = match cfg.workload {
                    MemdbWorkload::Ycsb {
                        num_keys,
                        txn_size,
                        write_pct,
                        theta,
                    } => {
                        ycsb_gen = TxnGenerator::new(
                            TxnConfig::mix(num_keys, dist(theta), txn_size, write_pct),
                            seed,
                        );
                        Box::new(move |acc| {
                            let txn = ycsb_gen.next_txn();
                            acc.clear();
                            acc.extend(txn.accesses.iter().map(|&(k, a)| {
                                (
                                    k,
                                    match a {
                                        AccessType::Read => Access::Read,
                                        AccessType::Write => Access::Write,
                                    },
                                )
                            }));
                            txn.write_vals
                        })
                    }
                    MemdbWorkload::Tpcc {
                        warehouses,
                        payment_pct,
                    } => {
                        tpcc_gen = TpccGenerator::new(
                            TpccConfig::mix(warehouses, payment_pct),
                            t as u64,
                            seed,
                        );
                        Box::new(move |acc| {
                            let (_, txn) = tpcc_gen.next_txn();
                            acc.clear();
                            acc.extend(txn.accesses.iter().map(|&(k, a)| {
                                (
                                    k,
                                    match a {
                                        AccessType::Read => Access::Read,
                                        AccessType::Write => Access::Write,
                                    },
                                )
                            }));
                            txn.write_vals
                        })
                    }
                };

                while !stop.load(Ordering::Relaxed) {
                    let seeds = next(&mut accesses);
                    let req = TxnRequest {
                        accesses: &accesses,
                        write_seeds: &seeds,
                    };
                    // Retry conflicts/CPR aborts until committed (the
                    // aborted work is what the breakdown's Abort bucket
                    // accounts).
                    let mut tries = 0;
                    while session.execute(&req, &mut reads).is_err() {
                        tries += 1;
                        if tries > 1_000 {
                            std::thread::yield_now();
                            tries = 0;
                        }
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                    counters[t].fetch_add(1, Ordering::Relaxed);
                }
                // Keep refreshing so an in-flight commit can finish.
                let deadline = Instant::now() + Duration::from_secs(10);
                while db.state().0 != cpr_core::Phase::Rest && Instant::now() < deadline {
                    session.refresh();
                    std::thread::sleep(Duration::from_millis(1));
                }
            })
        })
        .collect();

    // Monitor loop: samples + checkpoint triggers.
    let started = Instant::now();
    let mut timeline = Vec::new();
    let mut ckpts: Vec<f64> = cfg.checkpoint_at.clone();
    ckpts.sort_by(|a, b| a.partial_cmp(b).unwrap());
    ckpts.reverse(); // pop from the back
    let mut last_count = 0u64;
    let mut last_t = 0.0f64;
    while started.elapsed().as_secs_f64() < cfg.seconds {
        std::thread::sleep(Duration::from_secs_f64(
            cfg.sample_every.min(cfg.seconds / 2.0),
        ));
        let t = started.elapsed().as_secs_f64();
        let count: u64 = counters.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        timeline.push((t, (count - last_count) as f64 / (t - last_t) / 1e6));
        last_count = count;
        last_t = t;
        if let Some(&mark) = ckpts.last() {
            if t >= mark {
                ckpts.pop();
                db.request_commit();
            }
        }
    }
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().unwrap();
    }
    let elapsed = started.elapsed().as_secs_f64();
    let committed: u64 = counters.iter().map(|c| c.load(Ordering::Relaxed)).sum();
    let stats = db.stats();
    MemdbRunResult {
        committed,
        elapsed,
        timeline,
        mtps: committed as f64 / elapsed / 1e6,
        avg_latency_us: cfg.threads as f64 * elapsed / committed.max(1) as f64 * 1e6,
        stats,
    }
}
