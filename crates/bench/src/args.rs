//! Minimal command-line parsing (flags of the form `--name value`).

use std::collections::HashMap;

pub struct Args {
    pub experiment: String,
    flags: HashMap<String, String>,
}

impl Args {
    pub fn parse(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
        let experiment = argv.next().ok_or_else(usage)?;
        let mut flags = HashMap::new();
        let rest: Vec<String> = argv.collect();
        let mut i = 0;
        while i < rest.len() {
            let k = rest[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got {}", rest[i]))?;
            let v = rest
                .get(i + 1)
                .ok_or_else(|| format!("--{k} needs a value"))?;
            flags.insert(k.to_string(), v.clone());
            i += 2;
        }
        Ok(Args { experiment, flags })
    }

    pub fn f64(&self, name: &str, default: f64) -> f64 {
        self.flags
            .get(name)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{name} must be a number"))
            })
            .unwrap_or(default)
    }

    pub fn u64(&self, name: &str, default: u64) -> u64 {
        self.flags
            .get(name)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{name} must be an integer"))
            })
            .unwrap_or(default)
    }

    pub fn str(&self, name: &str, default: &str) -> String {
        self.flags
            .get(name)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Comma-separated integer list.
    pub fn list(&self, name: &str, default: &[usize]) -> Vec<usize> {
        match self.flags.get(name) {
            None => default.to_vec(),
            Some(v) => v
                .split(',')
                .map(|s| s.trim().parse().expect("integer list"))
                .collect(),
        }
    }
}

pub fn usage() -> String {
    "usage: cpr-bench <experiment> [--seconds S] [--threads a,b,c] [--keys N] [--part P]\n\
     \u{20}       stragglers also takes [--stall-every N] [--stall-ms M]\n\
     \u{20}       ycsb also takes [--metrics-out PATH] (writes a combined JSON metrics report)\n\
     \u{20}       and [--overhead true|only] (disabled-vs-enabled registry A/B on the FASTER run)\n\
     \u{20}       net also takes [--engine faster|memdb] [--batch B] [--window W] [--read-pct P]\n\
     \u{20}       recovery also takes [--log-mb M] [--write-latency-us U] [--read-latency-us U]\n\
     \u{20}       and [--out PATH] (flush/recovery scaling report, default BENCH_recovery.json)\n\
     experiments: fig02 fig10 fig11 fig12 fig13 fig14 fig15 fig16 fig17 fig18 phases ablation \
     extra stragglers ycsb net recovery all"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Args {
        Args::parse(s.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn parses_flags() {
        let a = parse(&["fig02", "--seconds", "1.5", "--threads", "1,2,4"]);
        assert_eq!(a.experiment, "fig02");
        assert_eq!(a.f64("seconds", 9.0), 1.5);
        assert_eq!(a.list("threads", &[8]), vec![1, 2, 4]);
        assert_eq!(a.u64("keys", 7), 7);
    }

    #[test]
    fn missing_value_is_error() {
        assert!(Args::parse(["x", "--seconds"].iter().map(|s| s.to_string())).is_err());
    }
}
