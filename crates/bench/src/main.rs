//! `cpr-bench` — regenerates every table and figure of the CPR paper's
//! evaluation (Sec. 7 and Appendix E) on laptop-scale parameters.
//!
//! ```text
//! cpr-bench <experiment> [--seconds S] [--threads 1,2,4] [--keys N] [--part P]
//! ```
//!
//! See DESIGN.md for the experiment ↔ figure mapping and EXPERIMENTS.md
//! for paper-vs-measured results.

mod args;
mod experiments;
mod faster_run;
mod hist;
mod memdb_run;
mod report;

use args::{usage, Args};

fn main() {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}\n{}", usage());
            std::process::exit(2);
        }
    };
    let t0 = std::time::Instant::now();
    match args.experiment.as_str() {
        "fig02" => experiments::memdb_figs::fig02(&args),
        "fig10" => experiments::memdb_figs::fig10(&args),
        "fig11" => experiments::memdb_figs::fig11(&args),
        "fig12" => experiments::faster_figs::fig12(&args),
        "fig13" => experiments::faster_figs::fig13(&args),
        "fig14" => experiments::faster_figs::fig14(&args),
        "fig15" => experiments::faster_figs::fig15(&args),
        "fig16" => experiments::memdb_figs::fig16(&args),
        "fig17" => experiments::memdb_figs::fig17(&args),
        "fig18" => experiments::faster_figs::fig18(&args),
        "phases" => experiments::faster_figs::phases(&args),
        "ablation" => experiments::ablation::ablation(&args),
        "extra" => experiments::extra::extra(&args),
        "stragglers" => experiments::stragglers::stragglers(&args),
        "net" => experiments::net::net(&args),
        "ycsb" => experiments::ycsb::ycsb(&args),
        "recovery" => experiments::recovery::recovery(&args),
        "all" => {
            experiments::memdb_figs::fig02(&args);
            experiments::memdb_figs::fig10(&args);
            experiments::memdb_figs::fig11(&args);
            experiments::faster_figs::fig12(&args);
            experiments::faster_figs::fig13(&args);
            experiments::faster_figs::fig14(&args);
            experiments::faster_figs::fig15(&args);
            experiments::memdb_figs::fig16(&args);
            experiments::memdb_figs::fig17(&args);
            experiments::faster_figs::fig18(&args);
            experiments::faster_figs::phases(&args);
            experiments::ablation::ablation(&args);
            experiments::extra::extra(&args);
        }
        other => {
            eprintln!("unknown experiment '{other}'\n{}", usage());
            std::process::exit(2);
        }
    }
    eprintln!("[cpr-bench] done in {:.1}s", t0.elapsed().as_secs_f64());
}
