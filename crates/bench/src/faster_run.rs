//! Shared runner for the FASTER experiments (Figs. 12, 13, 14, 15, 18 and
//! the §7.3.1 phase profile).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cpr_faster::{CheckpointVariant, FasterKv, FasterBuilder, HlogConfig, Status, VersionGrain};
use cpr_workload::keys::KeyDist;
use cpr_workload::ycsb::{OpKind, YcsbConfig, YcsbGenerator};

use crate::hist::Histogram;

#[derive(Clone, Debug)]
pub struct FasterRunConfig {
    pub threads: usize,
    pub num_keys: u64,
    /// Read percentage; remainder is blind updates unless `rmw`.
    pub read_pct: u32,
    /// All updates are read-modify-writes ("0:100 RMW").
    pub rmw: bool,
    pub zipf: bool,
    pub seconds: f64,
    pub hlog: HlogConfig,
    pub index_buckets: usize,
    pub variant: CheckpointVariant,
    pub grain: VersionGrain,
    pub log_only: bool,
    /// Wall-clock marks (seconds) at which to request a commit.
    pub checkpoint_at: Vec<f64>,
    pub sample_every: f64,
    /// Optional live metrics registry wired into the store.
    pub metrics: Option<Arc<cpr_metrics::Registry>>,
}

impl FasterRunConfig {
    /// Laptop-scale defaults (see EXPERIMENTS.md for the paper-scale
    /// parameters these stand in for).
    pub fn scaled(threads: usize, read_pct: u32, zipf: bool) -> Self {
        FasterRunConfig {
            threads,
            num_keys: 200_000,
            read_pct,
            rmw: false,
            zipf,
            seconds: 3.0,
            hlog: HlogConfig {
                page_bits: 16,      // 64 KiB pages
                memory_pages: 1024, // 64 MiB in memory: working set stays resident
                mutable_pages: 920, // ~90% mutable, as in the paper
                value_size: 8,
            },
            index_buckets: 1 << 15, // ≈ #keys/2 entries counting 7 per bucket
            variant: CheckpointVariant::FoldOver,
            grain: VersionGrain::Fine,
            log_only: false,
            checkpoint_at: Vec::new(),
            sample_every: 0.5,
            metrics: None,
        }
    }
}

#[derive(Debug, Clone)]
pub struct FasterSample {
    pub t: f64,
    pub mops: f64,
    pub avg_latency_us: f64,
    /// HybridLog tail (bytes) — the log-growth metric.
    pub log_tail: u64,
}

#[derive(Debug, Clone)]
#[allow(dead_code)] // aggregate fields are consumed by a subset of the figures
pub struct FasterRunResult {
    pub ops: u64,
    pub elapsed: f64,
    pub mops: f64,
    pub timeline: Vec<FasterSample>,
    pub phase_durations: Vec<(cpr_core::Phase, f64)>,
    /// Sampled-operation latency percentiles over the whole run (µs).
    pub lat_p50_us: f64,
    pub lat_p95_us: f64,
    pub lat_p99_us: f64,
}

/// Run one configuration to completion.
pub fn run_faster(cfg: &FasterRunConfig) -> FasterRunResult {
    let dir = tempfile::tempdir().expect("tempdir");
    let mut opts = FasterBuilder::u64_sums(dir.path())
        .hlog(cfg.hlog)
        .index_buckets(cfg.index_buckets)
        .grain(cfg.grain)
        .refresh_every(64);
    if let Some(m) = &cfg.metrics {
        opts = opts.metrics(Arc::clone(m));
    }
    let kv: FasterKv<u64> = opts.open().expect("open faster");

    // Pre-load every key so reads always hit.
    {
        let mut s = kv.start_session(1_000_000);
        for k in 0..cfg.num_keys {
            s.upsert(k, k);
        }
        while s.pending_len() > 0 {
            s.refresh();
        }
    }

    let ycsb = if cfg.rmw {
        YcsbConfig::rmw_only(cfg.num_keys, key_dist(cfg.zipf))
    } else {
        YcsbConfig::read_update(cfg.num_keys, key_dist(cfg.zipf), cfg.read_pct)
    };

    let stop = Arc::new(AtomicBool::new(false));
    let op_counts: Arc<Vec<AtomicU64>> =
        Arc::new((0..cfg.threads).map(|_| AtomicU64::new(0)).collect());
    let lat_sum_ns = Arc::new(AtomicU64::new(0));
    let lat_count = Arc::new(AtomicU64::new(0));
    let lat_hist = Arc::new(Histogram::new());

    let workers: Vec<_> = (0..cfg.threads)
        .map(|t| {
            let kv = kv.clone();
            let stop = stop.clone();
            let op_counts = Arc::clone(&op_counts);
            let lat_sum = Arc::clone(&lat_sum_ns);
            let lat_cnt = Arc::clone(&lat_count);
            let lat_hist = Arc::clone(&lat_hist);
            std::thread::spawn(move || {
                let mut s = kv.start_session(t as u64);
                let mut gen = YcsbGenerator::new(ycsb, 0xFA57 + t as u64);
                let mut completions = Vec::new();
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let op = gen.next_op();
                    // Sample latency on every 64th op.
                    let timed = n.is_multiple_of(64);
                    let t0 = timed.then(Instant::now);
                    match op.kind {
                        OpKind::Read => {
                            let _ = s.read(op.key);
                        }
                        OpKind::Upsert => {
                            let _ = s.upsert(op.key, op.arg);
                        }
                        OpKind::Rmw => {
                            let _: Status = s.rmw(op.key, op.arg);
                        }
                    }
                    if let Some(t0) = t0 {
                        let ns = t0.elapsed().as_nanos() as u64;
                        lat_sum.fetch_add(ns, Ordering::Relaxed);
                        lat_cnt.fetch_add(1, Ordering::Relaxed);
                        lat_hist.record(ns);
                    }
                    n += 1;
                    op_counts[t].fetch_add(1, Ordering::Relaxed);
                    if n.is_multiple_of(256) {
                        s.drain_completions(&mut completions);
                        completions.clear();
                    }
                }
                // Let any in-flight commit finish, then drain pendings.
                let deadline = Instant::now() + Duration::from_secs(20);
                while (kv.state().0 != cpr_core::Phase::Rest || s.pending_len() > 0)
                    && Instant::now() < deadline
                {
                    s.refresh();
                    std::thread::sleep(Duration::from_millis(1));
                }
            })
        })
        .collect();

    let started = Instant::now();
    let mut timeline = Vec::new();
    let mut ckpts = cfg.checkpoint_at.clone();
    ckpts.sort_by(|a, b| a.partial_cmp(b).unwrap());
    ckpts.reverse();
    let (mut last_ops, mut last_t, mut last_lat, mut last_latn) = (0u64, 0.0f64, 0u64, 0u64);
    while started.elapsed().as_secs_f64() < cfg.seconds {
        std::thread::sleep(Duration::from_secs_f64(
            cfg.sample_every.min(cfg.seconds / 2.0),
        ));
        let t = started.elapsed().as_secs_f64();
        let ops: u64 = op_counts.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        let ls = lat_sum_ns.load(Ordering::Relaxed);
        let ln = lat_count.load(Ordering::Relaxed);
        timeline.push(FasterSample {
            t,
            mops: (ops - last_ops) as f64 / (t - last_t) / 1e6,
            avg_latency_us: if ln > last_latn {
                (ls - last_lat) as f64 / (ln - last_latn) as f64 / 1000.0
            } else {
                0.0
            },
            log_tail: kv.log_tail(),
        });
        last_ops = ops;
        last_t = t;
        last_lat = ls;
        last_latn = ln;
        if let Some(&mark) = ckpts.last() {
            if t >= mark {
                ckpts.pop();
                kv.request_checkpoint(cfg.variant, cfg.log_only);
            }
        }
    }
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().unwrap();
    }
    let elapsed = started.elapsed().as_secs_f64();
    let ops: u64 = op_counts.iter().map(|c| c.load(Ordering::Relaxed)).sum();
    FasterRunResult {
        ops,
        elapsed,
        mops: ops as f64 / elapsed / 1e6,
        timeline,
        phase_durations: kv
            .last_checkpoint_phases()
            .into_iter()
            .map(|(p, d)| (p, d.as_secs_f64()))
            .collect(),
        lat_p50_us: lat_hist.quantile(0.50) as f64 / 1000.0,
        lat_p95_us: lat_hist.quantile(0.95) as f64 / 1000.0,
        lat_p99_us: lat_hist.quantile(0.99) as f64 / 1000.0,
    }
}

fn key_dist(zipf: bool) -> KeyDist {
    if zipf {
        KeyDist::Zipfian { theta: 0.99 }
    } else {
        KeyDist::Uniform
    }
}

/// The end-to-end client-buffer experiment (paper Fig. 15): each client
/// keeps a bounded buffer of in-flight (uncommitted) requests, pruned at
/// CPR points; a log-only fold-over commit is requested whenever a buffer
/// reaches 80%, and clients block when full.
pub struct EndToEndResult {
    pub mops: f64,
    pub avg_commit_interval_s: f64,
}

pub fn run_end_to_end(cfg: &FasterRunConfig, buffer_entries: usize) -> EndToEndResult {
    let dir = tempfile::tempdir().expect("tempdir");
    let opts = FasterBuilder::u64_sums(dir.path())
        .hlog(cfg.hlog)
        .index_buckets(cfg.index_buckets)
        .grain(cfg.grain)
        .refresh_every(64);
    let kv: FasterKv<u64> = opts.open().expect("open faster");
    {
        let mut s = kv.start_session(1_000_000);
        for k in 0..cfg.num_keys {
            s.upsert(k, k);
        }
        while s.pending_len() > 0 {
            s.refresh();
        }
    }
    let ycsb = YcsbConfig::read_update(cfg.num_keys, key_dist(cfg.zipf), cfg.read_pct);
    let stop = Arc::new(AtomicBool::new(false));
    let ops_total = Arc::new(AtomicU64::new(0));
    let commits = Arc::new(AtomicU64::new(0));

    let workers: Vec<_> = (0..cfg.threads)
        .map(|t| {
            let kv = kv.clone();
            let stop = stop.clone();
            let ops_total = Arc::clone(&ops_total);
            let commits = Arc::clone(&commits);
            std::thread::spawn(move || {
                let mut s = kv.start_session(t as u64);
                let mut gen = YcsbGenerator::new(ycsb, 0xE2E + t as u64);
                // In-flight ops: serials in (durable, serial].
                while !stop.load(Ordering::Relaxed) {
                    let in_flight = s.serial() - s.durable_serial();
                    if in_flight as usize >= buffer_entries {
                        // Buffer full: block until a commit prunes it.
                        s.refresh();
                        std::thread::sleep(Duration::from_micros(50));
                        continue;
                    }
                    if in_flight as usize * 10 >= buffer_entries * 8 {
                        // 80% full: ask for a log-only fold-over commit.
                        if kv.request_checkpoint(CheckpointVariant::FoldOver, true) {
                            commits.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    let op = gen.next_op();
                    match op.kind {
                        OpKind::Read => {
                            let _ = s.read(op.key);
                        }
                        _ => {
                            let _ = s.upsert(op.key, op.arg);
                        }
                    }
                    ops_total.fetch_add(1, Ordering::Relaxed);
                }
                let deadline = Instant::now() + Duration::from_secs(20);
                while (kv.state().0 != cpr_core::Phase::Rest || s.pending_len() > 0)
                    && Instant::now() < deadline
                {
                    s.refresh();
                    std::thread::sleep(Duration::from_millis(1));
                }
            })
        })
        .collect();

    let started = Instant::now();
    while started.elapsed().as_secs_f64() < cfg.seconds {
        std::thread::sleep(Duration::from_millis(50));
    }
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().unwrap();
    }
    let elapsed = started.elapsed().as_secs_f64();
    let n_commits = commits.load(Ordering::Relaxed).max(1);
    EndToEndResult {
        mops: ops_total.load(Ordering::Relaxed) as f64 / elapsed / 1e6,
        avg_commit_interval_s: elapsed / n_commits as f64,
    }
}
