//! A tiny lock-free log-scale histogram for latency sampling.
//!
//! Values (nanoseconds) land in power-of-two buckets with 4 linear
//! sub-buckets each — ~19 % worst-case relative error, which is plenty
//! for the paper's µs-scale latency plots, at the cost of one atomic
//! increment per recorded sample.

use std::sync::atomic::{AtomicU64, Ordering};

const SUB_BITS: u32 = 2; // 4 sub-buckets per power of two
const SUBS: usize = 1 << SUB_BITS;
const POWERS: usize = 40; // up to ~2^40 ns ≈ 18 minutes
const BUCKETS: usize = POWERS * SUBS;

/// Concurrent log-scale histogram of `u64` values.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
        }
    }

    #[inline]
    fn bucket_of(value: u64) -> usize {
        if value < SUBS as u64 {
            return value as usize;
        }
        let power = 63 - value.leading_zeros();
        let sub = (value >> (power - SUB_BITS)) as usize & (SUBS - 1);
        (((power - SUB_BITS + 1) as usize) * SUBS + sub).min(BUCKETS - 1)
    }

    /// Representative (upper-bound) value of a bucket.
    fn bucket_value(idx: usize) -> u64 {
        if idx < SUBS {
            return idx as u64;
        }
        let power = (idx / SUBS) as u32 + SUB_BITS - 1;
        let sub = (idx % SUBS) as u64;
        (1u64 << power) + ((sub + 1) << (power - SUB_BITS))
    }

    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Value at quantile `q` in `[0, 1]` (upper-bound estimate).
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return Self::bucket_value(i);
            }
        }
        Self::bucket_value(BUCKETS - 1)
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_for_tiny_values() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.quantile(0.25), 0);
        assert_eq!(h.quantile(1.0), 3);
    }

    #[test]
    fn quantiles_are_close_for_large_values() {
        let h = Histogram::new();
        for i in 1..=10_000u64 {
            h.record(i * 100); // 100ns .. 1ms
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        // Log-scale error bound: within ~25 %.
        assert!(
            (400_000..=650_000).contains(&p50),
            "p50 {p50} not near 500_000"
        );
        assert!(
            (850_000..=1_300_000).contains(&p99),
            "p99 {p99} not near 990_000"
        );
        assert!(p50 < p99);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn monotone_quantiles() {
        let h = Histogram::new();
        let mut x = 1u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(x % 10_000_000);
        }
        let mut last = 0;
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(v >= last, "quantile regressed at {q}");
            last = v;
        }
    }

    #[test]
    fn concurrent_recording_counts_everything() {
        let h = std::sync::Arc::new(Histogram::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(i);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
    }
}
