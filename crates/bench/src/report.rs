//! Output helpers: every experiment prints a human-readable table plus a
//! machine-readable CSV block (between `BEGIN-CSV`/`END-CSV` markers) so
//! results can be diffed against the paper's figures.

/// A simple column-aligned table with a CSV twin.
pub struct Report {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Report {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push(cells);
    }

    pub fn print(&self) {
        println!("\n== {} ==", self.title);
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
            }
            println!("{}", s.trim_end());
        };
        line(&self.columns);
        for row in &self.rows {
            line(row);
        }
        println!("BEGIN-CSV {}", slug(&self.title));
        println!("{}", self.columns.join(","));
        for row in &self.rows {
            println!("{}", row.join(","));
        }
        println!("END-CSV");
    }
}

fn slug(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut r = Report::new("Fig 2", &["threads", "mops"]);
        r.row(vec!["1".into(), "2.5".into()]);
        r.print();
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        let mut r = Report::new("x", &["a"]);
        r.row(vec!["1".into(), "2".into()]);
    }
}
