//! Criterion micro-benchmarks for the hot structures underlying the
//! paper's numbers: epoch refresh, trigger-action bump/drain, hash-index
//! probes, HybridLog allocation and in-place updates, 2PL lock
//! acquisition, WAL reservation + copy, CALC commit-log appends, and the
//! Zipfian sampler. These are the ablation knobs called out in DESIGN.md.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cpr_core::NoWaitLock;
use cpr_epoch::EpochManager;
use cpr_faster::index::{key_hash, HashIndex};
use cpr_faster::{FasterKv, FasterBuilder, HlogConfig};
use cpr_memdb::{Access, CommitLog, Durability, MemDb, TxnRequest, Wal};
use cpr_workload::keys::{KeyDist, Sampler};

fn bench_epoch(c: &mut Criterion) {
    let mgr = Arc::new(EpochManager::new(8));
    let guard = mgr.register();
    c.bench_function("epoch/refresh", |b| b.iter(|| guard.refresh()));
    c.bench_function("epoch/bump_and_drain", |b| {
        b.iter(|| {
            guard.bump_epoch(|| {});
            guard.refresh();
        })
    });
}

fn bench_latch(c: &mut Criterion) {
    let l = NoWaitLock::new();
    c.bench_function("latch/shared_acquire_release", |b| {
        b.iter(|| {
            assert!(l.try_shared());
            l.release_shared();
        })
    });
    c.bench_function("latch/exclusive_acquire_release", |b| {
        b.iter(|| {
            assert!(l.try_exclusive());
            l.release_exclusive();
        })
    });
}

fn bench_index(c: &mut Criterion) {
    let idx = HashIndex::new(1 << 14);
    for k in 0..100_000u64 {
        let slot = idx.find_or_create(key_hash(k));
        loop {
            let cur = slot.address();
            if slot.try_update(cur, 24 * (k + 1)) {
                break;
            }
        }
    }
    let mut k = 0u64;
    c.bench_function("index/find_hit", |b| {
        b.iter(|| {
            k = (k + 1) % 100_000;
            black_box(idx.find(key_hash(k)).map(|s| s.address()))
        })
    });
}

fn bench_zipfian(c: &mut Criterion) {
    let mut zipf = Sampler::new(KeyDist::Zipfian { theta: 0.99 }, 1 << 20, 7);
    let mut uni = Sampler::new(KeyDist::Uniform, 1 << 20, 7);
    c.bench_function("workload/zipfian_draw", |b| {
        b.iter(|| black_box(zipf.next_key()))
    });
    c.bench_function("workload/uniform_draw", |b| {
        b.iter(|| black_box(uni.next_key()))
    });
}

fn bench_commit_log(c: &mut Criterion) {
    let log = CommitLog::new(1 << 20);
    c.bench_function("calc/commit_log_append", |b| {
        b.iter(|| black_box(log.append(42)))
    });
}

fn bench_wal(c: &mut Criterion) {
    let dir = tempfile::tempdir().unwrap();
    let wal = Wal::create(
        dir.path().join("wal.log"),
        1 << 24,
        std::time::Duration::from_millis(5),
    )
    .unwrap();
    let payload = [0u8; 24]; // 1-key redo record
    c.bench_function("wal/append_24B", |b| {
        b.iter(|| black_box(wal.append(&payload)))
    });
}

fn bench_memdb_txn(c: &mut Criterion) {
    let dir = tempfile::tempdir().unwrap();
    let db: MemDb<u64> = MemDb::builder(Durability::Cpr)
            .dir(dir.path())
            .capacity(1 << 16)
        .open()
    .unwrap();
    for k in 0..10_000u64 {
        db.load(k, k);
    }
    let mut s = db.session(0);
    let mut reads = Vec::new();
    let mut k = 0u64;
    c.bench_function("memdb/1key_write_txn", |b| {
        b.iter(|| {
            k = (k + 1) % 10_000;
            let accesses = [(k, Access::Write)];
            let seeds = [k];
            let req = TxnRequest {
                accesses: &accesses,
                write_seeds: &seeds,
            };
            while s.execute(&req, &mut reads).is_err() {}
        })
    });
}

fn bench_faster_ops(c: &mut Criterion) {
    let dir = tempfile::tempdir().unwrap();
    let kv: FasterKv<u64> = FasterBuilder::u64_sums(dir.path())
            .hlog(HlogConfig {
                page_bits: 16,
                memory_pages: 256,
                mutable_pages: 230,
                value_size: 8,
            })
            .index_buckets(1 << 13)
        .open()
    .unwrap();
    let mut s = kv.start_session(1);
    for k in 0..50_000u64 {
        s.upsert(k, k);
    }
    let mut k = 0u64;
    c.bench_function("faster/upsert_hot", |b| {
        b.iter(|| {
            k = (k + 1) % 50_000;
            black_box(s.upsert(k, k))
        })
    });
    c.bench_function("faster/read_hot", |b| {
        b.iter(|| {
            k = (k + 1) % 50_000;
            black_box(s.read(k))
        })
    });
    c.bench_function("faster/rmw_hot", |b| {
        b.iter(|| {
            k = (k + 1) % 50_000;
            black_box(s.rmw(k, 1))
        })
    });
}

criterion_group! {
    name = micro;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = bench_epoch, bench_latch, bench_index, bench_zipfian,
        bench_commit_log, bench_wal, bench_memdb_txn, bench_faster_ops
}
criterion_main!(micro);
