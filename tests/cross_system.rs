//! Cross-crate integration: the same logical history applied to both
//! CPR-enabled systems (the transactional database and FASTER) must
//! produce identical recovered key-value states, and the epoch framework
//! must coordinate both without ever blocking worker progress.

use std::time::Duration;

use cpr::faster::{CheckpointVariant, FasterKv, FasterBuilder, HlogConfig, ReadResult};
use cpr::memdb::{Access, Durability, MemDb, TxnRequest};
use cpr::workload::keys::{KeyDist, Sampler};

/// Deterministic single-key upsert history.
fn history(n: usize, keys: u64, seed: u64) -> Vec<(u64, u64)> {
    let mut sampler = Sampler::new(KeyDist::Zipfian { theta: 0.5 }, keys, seed);
    (0..n)
        .map(|i| {
            let k = sampler.next_key();
            (k, (i as u64) << 20 | k)
        })
        .collect()
}

#[test]
fn memdb_and_faster_agree_on_recovered_state() {
    const KEYS: u64 = 32;
    let ops = history(500, KEYS, 42);
    let committed = 300; // commit after this many ops; the rest is lost

    // --- memdb ---
    let dir_db = tempfile::tempdir().unwrap();
    let db_opts = || {
        MemDb::builder(Durability::Cpr)
            .dir(dir_db.path())
            .capacity(128)
            .refresh_every(8)
    };
    {
        let db: MemDb<u64> = db_opts().open().unwrap();
        let mut s = db.session(0);
        let mut reads = Vec::new();
        for (i, &(k, v)) in ops.iter().enumerate() {
            let accesses = [(k, Access::Write)];
            let seeds = [v];
            let req = TxnRequest {
                accesses: &accesses,
                write_seeds: &seeds,
            };
            while s.execute(&req, &mut reads).is_err() {}
            if i + 1 == committed {
                db.request_commit();
                while db.committed_version() < 1 {
                    s.refresh();
                    std::thread::sleep(Duration::from_micros(100));
                }
            }
        }
    }
    let (db2, _) = db_opts().recover().unwrap();

    // --- faster ---
    let dir_kv = tempfile::tempdir().unwrap();
    let kv_opts = || {
        FasterBuilder::u64_sums(dir_kv.path())
            .hlog(HlogConfig {
                page_bits: 12,
                memory_pages: 32,
                mutable_pages: 16,
                value_size: 8,
            })
            .refresh_every(8)
    };
    {
        let kv: FasterKv<u64> = kv_opts().open().unwrap();
        let mut s = kv.start_session(0);
        for (i, &(k, v)) in ops.iter().enumerate() {
            s.upsert(k, v);
            if i + 1 == committed {
                while s.pending_len() > 0 {
                    s.refresh();
                }
                assert!(kv.request_checkpoint(CheckpointVariant::FoldOver, false));
                while kv.committed_version() < 1 {
                    s.refresh();
                    std::thread::sleep(Duration::from_micros(100));
                }
                assert_eq!(s.durable_serial(), committed as u64);
            }
        }
    }
    let (kv2, _) = kv_opts().recover().unwrap();
    let (mut s2, point) = kv2.continue_session(0);
    assert_eq!(point, committed as u64);

    // --- compare: both must equal the model prefix ---
    let mut model = std::collections::HashMap::new();
    for &(k, v) in &ops[..committed] {
        model.insert(k, v);
    }
    for key in 0..KEYS {
        let db_val = db2.read(key);
        let kv_val = match s2.read(key) {
            ReadResult::Found(v) => Some(v),
            ReadResult::NotFound => None,
            ReadResult::Evicted => panic!("session evicted"),
            ReadResult::Pending => {
                let mut out = Vec::new();
                loop {
                    s2.refresh();
                    s2.drain_completions(&mut out);
                    if let Some(c) = out.iter().find(|c| c.key == key) {
                        break c.value;
                    }
                    std::thread::sleep(Duration::from_micros(100));
                }
            }
        };
        let expect = model.get(&key).copied();
        assert_eq!(db_val, expect, "memdb key {key}");
        assert_eq!(kv_val, expect, "faster key {key}");
    }
}

/// The durable prefix reported to a session is monotone and never
/// overtakes the accepted serial, across repeated commits on both
/// systems.
#[test]
fn durable_prefix_is_monotone_and_bounded() {
    let dir = tempfile::tempdir().unwrap();
    let kv: FasterKv<u64> =
        FasterBuilder::u64_sums(dir.path()).refresh_every(4).open().unwrap();
    let mut s = kv.start_session(1);
    let mut last_durable = 0;
    for round in 1..=4u64 {
        for i in 0..50u64 {
            s.upsert(i, round * 1000 + i);
        }
        while s.pending_len() > 0 {
            s.refresh();
        }
        assert!(kv.request_checkpoint(CheckpointVariant::FoldOver, true));
        while kv.committed_version() < round {
            s.refresh();
            std::thread::sleep(Duration::from_micros(100));
        }
        let d = s.durable_serial();
        assert!(d >= last_durable, "durable prefix regressed");
        assert!(d <= s.serial(), "durable prefix overtook accepted serial");
        assert_eq!(d, round * 50, "commit {round} point");
        last_durable = d;
    }
}

/// Sessions joining and leaving mid-commit never deadlock the state
/// machine (registry conditions must tolerate churn).
#[test]
fn session_churn_during_commit_completes() {
    let dir = tempfile::tempdir().unwrap();
    let kv: FasterKv<u64> =
        FasterBuilder::u64_sums(dir.path()).refresh_every(4).open().unwrap();
    let mut s0 = kv.start_session(0);
    for i in 0..100u64 {
        s0.upsert(i, i);
    }
    assert!(kv.request_checkpoint(CheckpointVariant::FoldOver, true));
    // Churn: short-lived sessions appear and disappear while the commit
    // is in flight.
    for g in 1..6u64 {
        let mut s = kv.start_session(g);
        s.upsert(g, g);
        s.refresh();
        drop(s);
        s0.refresh();
    }
    assert!(
        kv.wait_for_version(1, Duration::from_secs(20)),
        "commit stalled under session churn: state {:?}",
        kv.state()
    );
}
