//! Fault-injecting crash-schedule harness for prefix recovery.
//!
//! Every test threads a scripted [`FaultInjector`] underneath the
//! checkpoint I/O of memdb (CPR) and FASTER (fold-over and snapshot),
//! "crashes" the storage stack at a chosen point of the commit state
//! machine (PREPARE / IN-PROGRESS / WAIT-FLUSH, plus specific
//! checkpoint writes within WAIT-FLUSH), then reopens from the
//! surviving directory with a fault-free stack and asserts:
//!
//! 1. the live system never panics or wedges — a failed checkpoint
//!    aborts (no manifest) and sessions return to REST;
//! 2. the recovered state equals a model replay of **exactly** the
//!    committed prefix — all operations before the surviving commit
//!    point, none after (paper Definition 1).
//!
//! All randomness derives from explicit `u64` seeds printed with every
//! case and embedded in every assertion message, so any failure is
//! replayable by pinning the seed.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use cpr::core::Phase;
use cpr::faster::{
    CheckpointVariant, FasterKv, FasterBuilder, FasterSession, HlogConfig, ReadResult,
    VersionGrain,
};
use cpr::memdb::{MemDbBuilder, Access, Durability, MemDb, Session, TxnRequest};
use cpr::storage::{FaultInjector, FaultPlan};

const KEYS: u64 = 16;
const SPLIT: u64 = 0x9e37_79b9_7f4a_7c15; // golden-ratio stream splitter
const PUMP_DEADLINE: Duration = Duration::from_secs(20);

// ---------------------------------------------------------------------------
// Deterministic operation schedules + model replay
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum Op {
    Upsert { key: u64, val: u64 },
    Merge { key: u64, delta: u64 },
    Delete { key: u64 },
}

fn gen_ops(seed: u64, n: usize) -> Vec<Op> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| match rng.gen_range(0u32..10) {
            0..=5 => Op::Upsert {
                key: rng.gen_range(0..KEYS),
                val: rng.gen_range(0u64..1_000_000),
            },
            6..=8 => Op::Merge {
                key: rng.gen_range(0..KEYS),
                delta: rng.gen_range(1u64..100),
            },
            _ => Op::Delete {
                key: rng.gen_range(0..KEYS),
            },
        })
        .collect()
}

fn model_replay(ops: &[Op]) -> HashMap<u64, u64> {
    let mut m = HashMap::new();
    for &op in ops {
        match op {
            Op::Upsert { key, val } => {
                m.insert(key, val);
            }
            Op::Merge { key, delta } => {
                let v = m.get(&key).copied().unwrap_or(0).wrapping_add(delta);
                m.insert(key, v);
            }
            Op::Delete { key } => {
                m.remove(&key);
            }
        }
    }
    m
}

// ---------------------------------------------------------------------------
// The crash schedule: where in the commit state machine to pull the plug
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum CrashPoint {
    /// Wait until the system is observed in `phase`, then freeze all
    /// I/O; run `extra_ops` more (doomed) transactions afterwards so the
    /// crash lands amid different amounts of in-flight work.
    Phase { phase: Phase, extra_ops: usize },
    /// Freeze at the `k`-th checkpoint I/O of the WAIT-FLUSH pass
    /// (armed before the request; only the capture performs I/O).
    WaitFlushOp { k: u64 },
    /// Tear the manifest write mid-file; the commit must abort.
    TornManifest,
    /// Freeze immediately *after* the manifest lands: the commit is
    /// durable and recovery must include the second prefix.
    CommitThenFreeze { ops: u64 },
}

fn crash_label(p: &CrashPoint) -> String {
    match p {
        CrashPoint::Phase { phase, extra_ops } => format!("{phase:?}+{extra_ops}ops"),
        CrashPoint::WaitFlushOp { k } => format!("WaitFlush@io{k}"),
        CrashPoint::TornManifest => "WaitFlush@torn-manifest".into(),
        CrashPoint::CommitThenFreeze { .. } => "freeze-after-commit".into(),
    }
}

/// ≥3 crash points in each of PREPARE, IN-PROGRESS, and WAIT-FLUSH.
/// `wait_flush_ops` is how many checkpoint I/Os precede the commit
/// becoming durable (crashing at any of them must abort it); the torn
/// manifest is one more WAIT-FLUSH point on top.
fn sweep_points(wait_flush_ops: u64) -> Vec<CrashPoint> {
    let mut pts = Vec::new();
    for phase in [Phase::Prepare, Phase::InProgress] {
        for extra_ops in [0usize, 2, 5] {
            pts.push(CrashPoint::Phase { phase, extra_ops });
        }
    }
    for k in 0..wait_flush_ops {
        pts.push(CrashPoint::WaitFlushOp { k });
    }
    pts.push(CrashPoint::TornManifest);
    pts
}

// ---------------------------------------------------------------------------
// memdb (CPR) harness
// ---------------------------------------------------------------------------

fn memdb_opts(dir: &std::path::Path, inj: Option<Arc<FaultInjector>>) -> MemDbBuilder<u64> {
    let mut o = MemDb::builder(Durability::Cpr)
        .dir(dir)
        .capacity(64)
        .refresh_every(4);
    if let Some(i) = inj {
        o = o.fault_injector(i);
    }
    o
}

fn memdb_exec(s: &mut Session<u64>, op: Op) {
    let (access, key, seed) = match op {
        Op::Upsert { key, val } => (Access::Write, key, val),
        Op::Merge { key, delta } => (Access::Merge, key, delta),
        Op::Delete { key } => (Access::Delete, key, 0),
    };
    let accesses = [(key, access)];
    let seeds = [seed];
    let req = TxnRequest {
        accesses: &accesses,
        write_seeds: &seeds,
    };
    let mut reads = Vec::new();
    while s.execute(&req, &mut reads).is_err() {}
}

/// Pump refreshes until the in-flight commit either lands (`true`) or
/// aborts (`false`). Panics (with the seed) if neither happens.
fn memdb_pump(db: &MemDb<u64>, s: &mut Session<u64>, target_v: u64, failures0: u64, tag: &str) -> bool {
    let deadline = Instant::now() + PUMP_DEADLINE;
    loop {
        if db.committed_version() >= target_v {
            return true;
        }
        if db.checkpoint_failures() > failures0 {
            return false;
        }
        assert!(Instant::now() < deadline, "commit pump wedged: {tag}");
        s.refresh();
        std::thread::sleep(Duration::from_micros(200));
    }
}

fn memdb_wait_rest(db: &MemDb<u64>, s: &mut Session<u64>, tag: &str) {
    let deadline = Instant::now() + PUMP_DEADLINE;
    while db.state().0 != Phase::Rest {
        assert!(Instant::now() < deadline, "never returned to REST: {tag}");
        s.refresh();
        std::thread::sleep(Duration::from_micros(200));
    }
}

fn memdb_crash_case(seed: u64, point: CrashPoint) {
    let label = crash_label(&point);
    let tag = format!("memdb case {label} seed={seed:#018x}");
    println!("{tag}");
    let dir = tempfile::tempdir().unwrap();
    let inj = Arc::new(FaultInjector::new(FaultPlan::new()));
    let ops_a = gen_ops(seed, 40);
    let ops_b = gen_ops(seed ^ SPLIT, 25);
    let committed_second;
    {
        let db: MemDb<u64> = memdb_opts(dir.path(), Some(inj.clone())).open().unwrap();
        let mut s = db.session(1);
        for &op in &ops_a {
            memdb_exec(&mut s, op);
        }
        assert!(db.request_commit(), "{tag}");
        assert!(memdb_pump(&db, &mut s, 1, 0, &tag), "fault-free commit must land: {tag}");
        for &op in &ops_b {
            memdb_exec(&mut s, op);
        }
        let failures0 = db.checkpoint_failures();
        let (_, v) = db.state();
        match point {
            CrashPoint::Phase { phase, extra_ops } => {
                assert!(db.request_commit(), "{tag}");
                if phase == Phase::InProgress {
                    let deadline = Instant::now() + PUMP_DEADLINE;
                    while db.state().0 == Phase::Prepare {
                        assert!(Instant::now() < deadline, "stuck in PREPARE: {tag}");
                        s.refresh();
                        std::thread::sleep(Duration::from_micros(100));
                    }
                }
                assert_eq!(db.state().0, phase, "{tag}");
                inj.crash_now();
                // Doomed in-flight transactions after the crash: they run
                // fine in memory but can never become durable.
                for &op in &gen_ops(seed ^ (SPLIT << 1), extra_ops) {
                    memdb_exec(&mut s, op);
                }
            }
            CrashPoint::WaitFlushOp { k } => {
                inj.crash_after(k);
                assert!(db.request_commit(), "{tag}");
            }
            CrashPoint::TornManifest => {
                inj.torn_after(1, 12); // io 0 = db.dat, io 1 = manifest
                assert!(db.request_commit(), "{tag}");
            }
            CrashPoint::CommitThenFreeze { ops } => {
                inj.crash_after(ops);
                assert!(db.request_commit(), "{tag}");
            }
        }
        committed_second = memdb_pump(&db, &mut s, v, failures0, &tag);
        let expect_commit = matches!(point, CrashPoint::CommitThenFreeze { .. });
        assert_eq!(committed_second, expect_commit, "{tag}");
        // Whatever happened, sessions must be back at REST.
        memdb_wait_rest(&db, &mut s, &tag);
    }

    // Reopen the surviving directory with a fault-free stack.
    let (db2, manifest) = memdb_opts(dir.path(), None).recover().unwrap();
    let manifest = manifest.unwrap_or_else(|| panic!("committed checkpoint lost: {tag}"));
    let expect_ops: Vec<Op> = if committed_second {
        ops_a.iter().chain(&ops_b).copied().collect()
    } else {
        ops_a.clone()
    };
    assert_eq!(
        manifest.version,
        if committed_second { 2 } else { 1 },
        "{tag}"
    );
    assert_eq!(manifest.cpr_point(1), Some(expect_ops.len() as u64), "{tag}");
    let model = model_replay(&expect_ops);
    for key in 0..KEYS {
        assert_eq!(db2.read(key), model.get(&key).copied(), "key {key}: {tag}");
    }
}

/// memdb CPR: crash sweep across PREPARE / IN-PROGRESS / WAIT-FLUSH.
#[test]
fn memdb_cpr_crash_sweep() {
    let base = 0x00c0_ffee_0000_0001u64;
    for (i, point) in sweep_points(2).into_iter().enumerate() {
        memdb_crash_case(base.wrapping_add(i as u64), point);
    }
    // The capture pass performs exactly two writes (db.dat, manifest):
    // freezing after both means the commit is durable.
    memdb_crash_case(base ^ 0xfff, CrashPoint::CommitThenFreeze { ops: 2 });
}

/// An injected write failure aborts the checkpoint cleanly — no manifest,
/// no panic, no wedge — and the *next* checkpoint succeeds.
#[test]
fn memdb_transient_failure_aborts_then_next_commit_succeeds() {
    let seed = 0x7a75_0000_0000_0001u64;
    let tag = format!("memdb transient seed={seed:#018x}");
    println!("{tag}");
    let dir = tempfile::tempdir().unwrap();
    let inj = Arc::new(FaultInjector::new(FaultPlan::new()));
    let ops = gen_ops(seed, 50);
    {
        let db: MemDb<u64> = memdb_opts(dir.path(), Some(inj.clone())).open().unwrap();
        let mut s = db.session(1);
        for &op in &ops {
            memdb_exec(&mut s, op);
        }
        // First attempt: the db.dat write fails once.
        inj.fail_after(0);
        assert!(db.request_commit(), "{tag}");
        assert!(!memdb_pump(&db, &mut s, 1, 0, &tag), "must abort: {tag}");
        assert_eq!(db.checkpoint_failures(), 1, "{tag}");
        assert_eq!(db.committed_version(), 0, "no manifest after abort: {tag}");
        memdb_wait_rest(&db, &mut s, &tag);
        // Second attempt: the transient fault is consumed; it must land.
        let (_, v) = db.state();
        assert!(db.request_commit(), "{tag}");
        assert!(memdb_pump(&db, &mut s, v, 1, &tag), "retry must commit: {tag}");
    }
    let (db2, manifest) = memdb_opts(dir.path(), None).recover().unwrap();
    let manifest = manifest.unwrap();
    assert_eq!(manifest.cpr_point(1), Some(ops.len() as u64), "{tag}");
    let model = model_replay(&ops);
    for key in 0..KEYS {
        assert_eq!(db2.read(key), model.get(&key).copied(), "key {key}: {tag}");
    }
}

// ---------------------------------------------------------------------------
// FASTER harness (fold-over + snapshot)
// ---------------------------------------------------------------------------

fn faster_opts(dir: &std::path::Path, inj: Option<Arc<FaultInjector>>) -> FasterBuilder<u64> {
    let mut o = FasterBuilder::u64_sums(dir)
        .hlog(HlogConfig {
            page_bits: 12,
            memory_pages: 16,
            mutable_pages: 8,
            value_size: 8,
        })
        .grain(VersionGrain::Fine)
        .refresh_every(4);
    if let Some(i) = inj {
        o = o.fault_injector(i);
    }
    o
}

fn faster_exec(s: &mut FasterSession<u64>, op: Op) {
    match op {
        Op::Upsert { key, val } => {
            s.upsert(key, val);
        }
        Op::Merge { key, delta } => {
            s.rmw(key, delta);
        }
        Op::Delete { key } => {
            s.delete(key);
        }
    }
}

fn faster_pump(
    kv: &FasterKv<u64>,
    s: &mut FasterSession<u64>,
    target_v: u64,
    failures0: u64,
    tag: &str,
) -> bool {
    let deadline = Instant::now() + PUMP_DEADLINE;
    loop {
        if kv.committed_version() >= target_v {
            return true;
        }
        if kv.checkpoint_failures() > failures0 {
            return false;
        }
        assert!(Instant::now() < deadline, "checkpoint pump wedged: {tag}");
        s.refresh();
        std::thread::sleep(Duration::from_micros(200));
    }
}

fn faster_wait_rest(kv: &FasterKv<u64>, s: &mut FasterSession<u64>, tag: &str) {
    let deadline = Instant::now() + PUMP_DEADLINE;
    while kv.state().0 != Phase::Rest {
        assert!(Instant::now() < deadline, "never returned to REST: {tag}");
        s.refresh();
        std::thread::sleep(Duration::from_micros(200));
    }
}

/// Read through the recovered store, riding out the async pending path.
fn faster_read(s: &mut FasterSession<u64>, key: u64, tag: &str) -> Option<u64> {
    match s.read(key) {
        ReadResult::Found(v) => Some(v),
        ReadResult::NotFound => None,
        ReadResult::Evicted => panic!("session evicted"),
        ReadResult::Pending => {
            let mut out = Vec::new();
            for _ in 0..20_000 {
                s.refresh();
                s.drain_completions(&mut out);
                if let Some(c) = out.iter().find(|c| c.key == key) {
                    return c.value;
                }
                std::thread::sleep(Duration::from_micros(100));
            }
            panic!("pending read for key {key} never completed: {tag}");
        }
    }
}

fn faster_crash_case(seed: u64, variant: CheckpointVariant, point: CrashPoint) {
    let label = crash_label(&point);
    let tag = format!("faster {variant:?} case {label} seed={seed:#018x}");
    println!("{tag}");
    let dir = tempfile::tempdir().unwrap();
    let inj = Arc::new(FaultInjector::new(FaultPlan::new()));
    let ops_a = gen_ops(seed, 40);
    let ops_b = gen_ops(seed ^ SPLIT, 25);
    {
        let kv: FasterKv<u64> = faster_opts(dir.path(), Some(inj.clone())).open().unwrap();
        let mut s = kv.start_session(7);
        for &op in &ops_a {
            faster_exec(&mut s, op);
        }
        while s.pending_len() > 0 {
            s.refresh();
        }
        assert!(kv.request_checkpoint(variant, false), "{tag}");
        assert!(faster_pump(&kv, &mut s, 1, 0, &tag), "fault-free commit must land: {tag}");
        for &op in &ops_b {
            faster_exec(&mut s, op);
        }
        while s.pending_len() > 0 {
            s.refresh();
        }
        let failures0 = kv.checkpoint_failures();
        let (_, v) = kv.state();
        match point {
            CrashPoint::Phase { phase, extra_ops } => {
                assert!(kv.request_checkpoint(variant, false), "{tag}");
                if phase == Phase::InProgress {
                    let deadline = Instant::now() + PUMP_DEADLINE;
                    while kv.state().0 == Phase::Prepare {
                        assert!(Instant::now() < deadline, "stuck in PREPARE: {tag}");
                        s.refresh();
                        std::thread::sleep(Duration::from_micros(100));
                    }
                }
                assert_eq!(kv.state().0, phase, "{tag}");
                inj.crash_now();
                for &op in &gen_ops(seed ^ (SPLIT << 1), extra_ops) {
                    faster_exec(&mut s, op);
                }
            }
            CrashPoint::WaitFlushOp { k } => {
                // io 0 = index.dat; io 1 = log flush (fold-over) or
                // snapshot.dat (snapshot); io 2 = manifest or later flush.
                inj.crash_after(k);
                assert!(kv.request_checkpoint(variant, false), "{tag}");
            }
            CrashPoint::TornManifest | CrashPoint::CommitThenFreeze { .. } => {
                unreachable!("not part of the FASTER sweep")
            }
        }
        assert!(!faster_pump(&kv, &mut s, v, failures0, &tag), "must abort: {tag}");
        faster_wait_rest(&kv, &mut s, &tag);
    }

    let (kv2, manifest) = faster_opts(dir.path(), None).recover().unwrap();
    let manifest = manifest.unwrap_or_else(|| panic!("committed checkpoint lost: {tag}"));
    assert_eq!(manifest.version, 1, "{tag}");
    let (mut s2, cpr_point) = kv2.continue_session(7);
    assert_eq!(cpr_point, ops_a.len() as u64, "{tag}");
    let model = model_replay(&ops_a);
    for key in 0..KEYS {
        assert_eq!(
            faster_read(&mut s2, key, &tag),
            model.get(&key).copied(),
            "key {key}: {tag}"
        );
    }
}

/// FASTER fold-over: crash sweep across PREPARE / IN-PROGRESS /
/// WAIT-FLUSH (index dump, log flush, manifest).
#[test]
fn faster_foldover_crash_sweep() {
    let base = 0x0f01_d000_0000_0001u64;
    for (i, point) in sweep_points(3).into_iter().enumerate() {
        if matches!(point, CrashPoint::TornManifest) {
            continue; // covered by the dedicated torn-manifest tests
        }
        faster_crash_case(base.wrapping_add(i as u64), CheckpointVariant::FoldOver, point);
    }
}

/// FASTER snapshot: the same sweep against the snapshot variant
/// (index dump, snapshot write, manifest).
#[test]
fn faster_snapshot_crash_sweep() {
    let base = 0x54a9_0000_0000_0002u64;
    for (i, point) in sweep_points(3).into_iter().enumerate() {
        if matches!(point, CrashPoint::TornManifest) {
            continue;
        }
        faster_crash_case(base.wrapping_add(i as u64), CheckpointVariant::Snapshot, point);
    }
}

/// An injected failure on the index dump aborts the checkpoint; the
/// retry (fault consumed) succeeds and recovers the full prefix.
#[test]
fn faster_transient_failure_aborts_then_next_checkpoint_succeeds() {
    let seed = 0x7a75_0000_0000_0002u64;
    let tag = format!("faster transient seed={seed:#018x}");
    println!("{tag}");
    let dir = tempfile::tempdir().unwrap();
    let inj = Arc::new(FaultInjector::new(FaultPlan::new()));
    let ops = gen_ops(seed, 50);
    {
        let kv: FasterKv<u64> = faster_opts(dir.path(), Some(inj.clone())).open().unwrap();
        let mut s = kv.start_session(7);
        for &op in &ops {
            faster_exec(&mut s, op);
        }
        while s.pending_len() > 0 {
            s.refresh();
        }
        inj.fail_after(0);
        assert!(kv.request_checkpoint(CheckpointVariant::FoldOver, false), "{tag}");
        assert!(!faster_pump(&kv, &mut s, 1, 0, &tag), "must abort: {tag}");
        assert_eq!(kv.checkpoint_failures(), 1, "{tag}");
        assert_eq!(kv.committed_version(), 0, "no manifest after abort: {tag}");
        faster_wait_rest(&kv, &mut s, &tag);
        let (_, v) = kv.state();
        assert!(kv.request_checkpoint(CheckpointVariant::FoldOver, false), "{tag}");
        assert!(faster_pump(&kv, &mut s, v, 1, &tag), "retry must commit: {tag}");
    }
    let (kv2, manifest) = faster_opts(dir.path(), None).recover().unwrap();
    assert!(manifest.is_some(), "{tag}");
    let (mut s2, cpr_point) = kv2.continue_session(7);
    assert_eq!(cpr_point, ops.len() as u64, "{tag}");
    let model = model_replay(&ops);
    for key in 0..KEYS {
        assert_eq!(
            faster_read(&mut s2, key, &tag),
            model.get(&key).copied(),
            "key {key}: {tag}"
        );
    }
}

/// A crash before the request is even made: `request_checkpoint` is
/// rejected cleanly (begin fails), the state machine stays at REST, and
/// the untouched directory recovers as a fresh store.
#[test]
fn faster_crash_before_request_is_rejected_cleanly() {
    let seed = 0xdead_0000_0000_0003u64;
    let tag = format!("faster pre-request crash seed={seed:#018x}");
    println!("{tag}");
    let dir = tempfile::tempdir().unwrap();
    let inj = Arc::new(FaultInjector::new(FaultPlan::new()));
    {
        let kv: FasterKv<u64> = faster_opts(dir.path(), Some(inj.clone())).open().unwrap();
        let mut s = kv.start_session(7);
        for &op in &gen_ops(seed, 30) {
            faster_exec(&mut s, op);
        }
        inj.crash_now();
        assert!(!kv.request_checkpoint(CheckpointVariant::FoldOver, false), "{tag}");
        assert_eq!(kv.checkpoint_failures(), 1, "{tag}");
        assert_eq!(kv.state(), (Phase::Rest, 1), "{tag}");
    }
    let (kv2, manifest) = faster_opts(dir.path(), None).recover().unwrap();
    assert!(manifest.is_none(), "{tag}");
    let (mut s2, cpr_point) = kv2.continue_session(7);
    assert_eq!(cpr_point, 0, "{tag}");
    for key in 0..KEYS {
        assert_eq!(faster_read(&mut s2, key, &tag), None, "{tag}");
    }
}

// ---------------------------------------------------------------------------
// Seeded torture: arbitrary generated fault plans, replayable by seed
// ---------------------------------------------------------------------------

fn torture_memdb(seed: u64) {
    let tag = format!("torture memdb seed={seed:#018x}");
    println!("{tag}");
    let dir = tempfile::tempdir().unwrap();
    let inj = Arc::new(FaultInjector::from_seed(seed, 8));
    let ops = gen_ops(seed ^ SPLIT, 48);
    let mut committed: HashMap<u64, u64> = HashMap::new(); // version -> prefix len
    {
        let db: MemDb<u64> = memdb_opts(dir.path(), Some(inj.clone())).open().unwrap();
        let mut s = db.session(1);
        let mut done = 0u64;
        for chunk in ops.chunks(12) {
            for &op in chunk {
                memdb_exec(&mut s, op);
            }
            done += chunk.len() as u64;
            let (_, v) = db.state();
            let failures0 = db.checkpoint_failures();
            if db.request_commit() && memdb_pump(&db, &mut s, v, failures0, &tag) {
                committed.insert(v, done);
            }
            memdb_wait_rest(&db, &mut s, &tag);
        }
    }
    let (db2, manifest) = memdb_opts(dir.path(), None).recover().unwrap();
    let prefix = match &manifest {
        Some(m) => *committed.get(&m.version).unwrap_or_else(|| {
            panic!("recovered version {} was never seen committing: {tag}", m.version)
        }),
        None => {
            assert!(committed.is_empty(), "committed checkpoint lost: {tag}");
            0
        }
    };
    if let Some(m) = &manifest {
        assert_eq!(m.cpr_point(1), Some(prefix), "{tag}");
    }
    let model = model_replay(&ops[..prefix as usize]);
    for key in 0..KEYS {
        assert_eq!(db2.read(key), model.get(&key).copied(), "key {key}: {tag}");
    }
}

fn torture_faster(seed: u64) {
    let tag = format!("torture faster seed={seed:#018x}");
    println!("{tag}");
    let dir = tempfile::tempdir().unwrap();
    let inj = Arc::new(FaultInjector::from_seed(seed, 12));
    let ops = gen_ops(seed ^ SPLIT, 48);
    let mut committed: HashMap<u64, u64> = HashMap::new();
    {
        let kv: FasterKv<u64> = faster_opts(dir.path(), Some(inj.clone())).open().unwrap();
        let mut s = kv.start_session(11);
        let mut done = 0u64;
        for (i, chunk) in ops.chunks(12).enumerate() {
            for &op in chunk {
                faster_exec(&mut s, op);
            }
            done += chunk.len() as u64;
            while s.pending_len() > 0 {
                s.refresh();
            }
            let variant = if i % 2 == 0 {
                CheckpointVariant::FoldOver
            } else {
                CheckpointVariant::Snapshot
            };
            let (_, v) = kv.state();
            let failures0 = kv.checkpoint_failures();
            if kv.request_checkpoint(variant, false) && faster_pump(&kv, &mut s, v, failures0, &tag)
            {
                committed.insert(v, done);
            }
            faster_wait_rest(&kv, &mut s, &tag);
        }
    }
    let (kv2, manifest) = faster_opts(dir.path(), None).recover().unwrap();
    let prefix = match &manifest {
        Some(m) => *committed.get(&m.version).unwrap_or_else(|| {
            panic!("recovered version {} was never seen committing: {tag}", m.version)
        }),
        None => {
            assert!(committed.is_empty(), "committed checkpoint lost: {tag}");
            0
        }
    };
    let (mut s2, cpr_point) = kv2.continue_session(11);
    assert_eq!(cpr_point, prefix, "{tag}");
    let model = model_replay(&ops[..prefix as usize]);
    for key in 0..KEYS {
        assert_eq!(
            faster_read(&mut s2, key, &tag),
            model.get(&key).copied(),
            "key {key}: {tag}"
        );
    }
}

/// Generated fault plans ([`FaultPlan::from_seed`]): whatever the
/// schedule does — transient failures, torn writes, delays, a crash —
/// the system must not panic or wedge, and recovery must reproduce
/// exactly the last committed prefix. Each seed is printed; pin it to
/// replay a failure.
#[test]
fn seeded_fault_plans_recover_a_committed_prefix() {
    for &seed in &[
        0x0000_0000_0000_002au64,
        0x0000_0000_dead_beef,
        0x1234_5678_9abc_def0,
        0xfeed_face_cafe_f00d,
        0x0bad_5eed_0bad_5eed,
    ] {
        torture_memdb(seed);
        torture_faster(seed ^ SPLIT);
    }
}

// ---------------------------------------------------------------------------
// Killing recovery itself: a recovery attempt that dies on checkpoint
// reads, scan reads, invalidation-marker writes, or (for snapshots) the
// normalization copy must surface an error — never a panic or a wedge —
// and a later fault-free attempt must still land on exactly the
// committed prefix. Recovery is re-runnable: partial marker writes and
// torn normalization copies from a dead attempt are absorbed by the
// retry, and the result is identical at any recovery thread count.
// ---------------------------------------------------------------------------

/// Commit a fold-over/snapshot checkpoint while operations overlap the
/// commit, so version-(v+1) records land below the checkpoint's log end
/// and recovery has invalidation markers to write. Returns the full
/// operation stream in session order (the committed prefix length comes
/// from `continue_session` after recovery).
fn faster_overlapped_checkpoint(
    dir: &std::path::Path,
    variant: CheckpointVariant,
    seed: u64,
    tag: &str,
) -> Vec<Op> {
    let kv: FasterKv<u64> = faster_opts(dir, None).open().unwrap();
    let mut s = kv.start_session(7);
    let ops_a = gen_ops(seed, 40);
    for &op in &ops_a {
        faster_exec(&mut s, op);
    }
    while s.pending_len() > 0 {
        s.refresh();
    }
    let ops_b = gen_ops(seed ^ SPLIT, 4000);
    assert!(kv.request_checkpoint(variant, false), "{tag}");
    let mut executed = Vec::new();
    let mut i = 0usize;
    let deadline = Instant::now() + PUMP_DEADLINE;
    while kv.committed_version() < 1 {
        let op = ops_b[i % ops_b.len()];
        faster_exec(&mut s, op);
        executed.push(op);
        i += 1;
        s.refresh();
        assert!(Instant::now() < deadline, "overlapped commit wedged: {tag}");
        std::thread::sleep(Duration::from_micros(50));
    }
    faster_wait_rest(&kv, &mut s, tag);
    while s.pending_len() > 0 {
        s.refresh();
    }
    let mut all = ops_a;
    all.extend(executed);
    all
}

/// Recover `dir` fault-free at `threads` recovery threads and check the
/// store against the model replay of the committed prefix; returns the
/// recovered index digest.
fn faster_check_recovered(
    dir: &std::path::Path,
    ops: &[Op],
    threads: usize,
    tag: &str,
) -> u64 {
    let (kv, manifest) = faster_opts(dir, None)
        .recovery_threads(threads)
        .recover()
        .unwrap_or_else(|e| panic!("fault-free recovery failed ({threads} threads): {e}: {tag}"));
    assert!(manifest.is_some(), "committed checkpoint lost: {tag}");
    let (mut s, cpr_point) = kv.continue_session(7);
    assert!(
        cpr_point as usize >= 40 && cpr_point as usize <= ops.len(),
        "cpr point {cpr_point} outside [40, {}]: {tag}",
        ops.len()
    );
    let model = model_replay(&ops[..cpr_point as usize]);
    for key in 0..KEYS {
        assert_eq!(
            faster_read(&mut s, key, tag),
            model.get(&key).copied(),
            "key {key} ({threads} threads): {tag}"
        );
    }
    kv.index_digest()
}

fn faster_recovery_kill_case(variant: CheckpointVariant, seed: u64) {
    let tag = format!("faster {variant:?} recovery-kill seed={seed:#018x}");
    println!("{tag}");
    let dir = tempfile::tempdir().unwrap();
    let ops = faster_overlapped_checkpoint(dir.path(), variant, seed, &tag);

    // Attempt 1: the first recovery read (snapshot.dat for snapshots,
    // index.dat for fold-over) hits a crashed device.
    let inj = Arc::new(FaultInjector::new(FaultPlan::new()));
    inj.crash_read_after(0);
    let r = faster_opts(dir.path(), Some(inj.clone()))
        .recovery_threads(2)
        .recover();
    assert!(r.is_err(), "recovery must die on read 0: {tag}");
    assert!(inj.fault_hits() >= 1, "{tag}");

    // Attempt 2: a later read — the index load or a partitioned-scan
    // chunk — fails transiently mid-recovery.
    let inj = Arc::new(FaultInjector::new(FaultPlan::new()));
    inj.fail_read_after(1);
    let r = faster_opts(dir.path(), Some(inj.clone()))
        .recovery_threads(2)
        .recover();
    assert!(r.is_err(), "recovery must die on read 1: {tag}");

    // Attempt 3: the first recovery *write* dies. For fold-over that is
    // an invalidation marker (present when operations overlapped the
    // commit); for snapshot it is the normalization copy, torn mid-write
    // so the retry must re-copy over the partial bytes.
    let inj = Arc::new(FaultInjector::new(FaultPlan::new()));
    match variant {
        CheckpointVariant::FoldOver => inj.fail_after(0),
        CheckpointVariant::Snapshot => inj.torn_after(0, 7),
    }
    let r = faster_opts(dir.path(), Some(inj.clone()))
        .recovery_threads(2)
        .recover();
    match r {
        Err(_) => assert!(inj.fault_hits() >= 1, "{tag}"),
        Ok(_) => assert_eq!(
            inj.fault_hits(),
            0,
            "recovery succeeded past an armed write fault: {tag}"
        ),
    }

    // Fault-free attempts now succeed — partial markers and torn
    // normalization bytes from the dead attempts are absorbed — and the
    // recovered state is identical at 1, 2, and 4 recovery threads.
    let d2 = faster_check_recovered(dir.path(), &ops, 2, &tag);
    let d1 = faster_check_recovered(dir.path(), &ops, 1, &tag);
    let d4 = faster_check_recovered(dir.path(), &ops, 4, &tag);
    assert_eq!(d1, d2, "index digest differs between 1 and 2 threads: {tag}");
    assert_eq!(d1, d4, "index digest differs between 1 and 4 threads: {tag}");
}

/// FASTER fold-over: recovery killed on checkpoint reads, scan reads,
/// and marker writes; retries converge on the committed prefix.
#[test]
fn faster_foldover_recovery_killed_then_retried() {
    faster_recovery_kill_case(CheckpointVariant::FoldOver, 0x4b11_0000_0000_0001);
}

/// FASTER snapshot: recovery killed on the snapshot read and a torn
/// normalization copy; the retry re-copies and recovers.
#[test]
fn faster_snapshot_recovery_killed_then_retried() {
    faster_recovery_kill_case(CheckpointVariant::Snapshot, 0x4b11_0000_0000_0002);
}

/// memdb CPR: recovery killed on the checkpoint read; the retry loads
/// the committed prefix, identically at any recovery thread count.
#[test]
fn memdb_recovery_killed_then_retried() {
    let seed = 0x4b11_0000_0000_0003u64;
    let tag = format!("memdb recovery-kill seed={seed:#018x}");
    println!("{tag}");
    let dir = tempfile::tempdir().unwrap();
    let ops = gen_ops(seed, 50);
    {
        let db: MemDb<u64> = memdb_opts(dir.path(), None).open().unwrap();
        let mut s = db.session(1);
        for &op in &ops {
            memdb_exec(&mut s, op);
        }
        assert!(db.request_commit(), "{tag}");
        assert!(memdb_pump(&db, &mut s, 1, 0, &tag), "commit must land: {tag}");
        memdb_wait_rest(&db, &mut s, &tag);
    }

    // Two dead attempts: db.dat read fails, then the device crashes on it.
    let inj = Arc::new(FaultInjector::new(FaultPlan::new()));
    inj.fail_read_after(0);
    assert!(
        memdb_opts(dir.path(), Some(inj.clone())).recover().is_err(),
        "recovery must die on a failed checkpoint read: {tag}"
    );
    assert!(inj.fault_hits() >= 1, "{tag}");
    let inj = Arc::new(FaultInjector::new(FaultPlan::new()));
    inj.crash_read_after(0);
    assert!(
        memdb_opts(dir.path(), Some(inj)).recover().is_err(),
        "recovery must die on a crashed checkpoint read: {tag}"
    );

    // Fault-free retries at different thread counts agree with the model.
    let model = model_replay(&ops);
    for threads in [1usize, 2, 4] {
        let (db2, manifest) = memdb_opts(dir.path(), None)
            .recovery_threads(threads)
            .recover()
            .unwrap_or_else(|e| {
                panic!("fault-free recovery failed ({threads} threads): {e}: {tag}")
            });
        let manifest = manifest.unwrap_or_else(|| panic!("manifest lost: {tag}"));
        assert_eq!(manifest.cpr_point(1), Some(ops.len() as u64), "{tag}");
        for key in 0..KEYS {
            assert_eq!(
                db2.read(key),
                model.get(&key).copied(),
                "key {key} ({threads} threads): {tag}"
            );
        }
    }
}
