//! End-to-end observability tests: a live `cpr_metrics::Registry` wired
//! through both engines must produce complete checkpoint timelines
//! (REST → prepare → … → REST), op-latency histograms, and epoch /
//! storage instrumentation — while a disabled registry stays empty.

use std::sync::Arc;
use std::time::Duration;

use cpr_faster::{CheckpointVariant, FasterKv, ReadResult, Status};
use cpr_memdb::{Access, Durability, MemDb, TxnRequest};
use cpr_metrics::{CheckpointTimeline, Registry};

/// The tracer's phase labels, in transition order, for one engine.
fn phase_labels(t: &CheckpointTimeline) -> Vec<&str> {
    t.phases.iter().map(|p| p.phase.as_str()).collect()
}

/// Fold-over AND snapshot checkpoints on FASTER must both yield complete
/// timelines walking prepare → in-progress → wait-pending → wait-flush.
#[test]
fn faster_phase_tracer_covers_both_checkpoint_variants() {
    let dir = tempfile::tempdir().unwrap();
    let metrics = Registry::new();
    let kv: FasterKv<u64> = FasterKv::builder(dir.path())
        .refresh_every(8)
        .metrics(Arc::clone(&metrics))
        .open()
        .unwrap();
    let mut s = kv.start_session(1);
    for k in 0..256u64 {
        assert_eq!(s.upsert(k, k), Status::Ok);
    }

    for (i, variant) in [CheckpointVariant::FoldOver, CheckpointVariant::Snapshot]
        .into_iter()
        .enumerate()
    {
        assert!(kv.request_checkpoint(variant, false));
        while kv.committed_version() < (i as u64 + 1) {
            s.refresh();
            std::thread::sleep(Duration::from_millis(1));
        }
        // Touch the store so the next checkpoint has fresh data.
        assert_eq!(s.read(0), ReadResult::Found(0));
    }

    let report = kv.metrics_snapshot();
    assert!(report.enabled);
    assert_eq!(report.checkpoints.len(), 2, "{:?}", report.checkpoints);

    for (t, kind) in report.checkpoints.iter().zip(["fold-over", "snapshot"]) {
        assert_eq!(t.kind, kind);
        assert!(t.committed, "checkpoint {kind} must commit");
        assert_eq!(
            phase_labels(t),
            vec!["prepare", "in-progress", "wait-pending", "wait-flush"],
            "timeline for {kind} incomplete"
        );
        assert!(t.total_secs > 0.0);
        // Each span starts where tracing left the previous one.
        for w in t.phases.windows(2) {
            assert!(w[1].enter_secs >= w[0].enter_secs);
        }
    }

    // Op instrumentation: 256 upserts + 2 reads landed in the histograms.
    assert_eq!(report.ops.writes, 256);
    assert_eq!(report.ops.reads, 2);
    assert_eq!(report.ops.committed, 258);
    assert!(report.ops.commit_latency.count > 0);
    // The epoch was bumped for every phase transition.
    assert!(report.epoch.bumps >= 6, "epoch bumps: {}", report.epoch.bumps);
    // Fold-over flushes the log through the metered device.
    assert!(report.storage.bytes_written > 0);
}

/// The memdb CPR backend must produce the same complete timeline shape
/// (its machine has no wait-pending phase).
#[test]
fn memdb_phase_tracer_yields_complete_timeline() {
    let dir = tempfile::tempdir().unwrap();
    let metrics = Registry::new();
    let db: MemDb<u64> = MemDb::builder(Durability::Cpr)
        .dir(dir.path())
        .refresh_every(4)
        .metrics(Arc::clone(&metrics))
        .open()
        .unwrap();
    for k in 0..64u64 {
        db.load(k, k);
    }
    let mut s = db.session(0);
    let mut reads = Vec::new();
    for k in 0..32u64 {
        let accesses = [(k, Access::Write)];
        let seeds = [k + 100];
        let txn = TxnRequest {
            accesses: &accesses,
            write_seeds: &seeds,
        };
        s.execute(&txn, &mut reads).unwrap();
    }
    assert!(db.request_commit());
    while db.committed_version() < 1 {
        s.refresh();
        std::thread::sleep(Duration::from_millis(1));
    }

    let report = db.metrics_snapshot();
    assert!(report.enabled);
    assert_eq!(report.checkpoints.len(), 1);
    let t = &report.checkpoints[0];
    assert_eq!(t.kind, "cpr");
    assert!(t.committed);
    assert_eq!(phase_labels(t), vec!["prepare", "in-progress", "wait-flush"]);
    assert_eq!(report.ops.committed, 32);
    assert_eq!(report.ops.writes, 32);
    assert!(report.storage.bytes_written > 0, "capture must hit storage");
}

/// A store opened without a registry reports a disabled, empty snapshot
/// (the default no-op sink).
#[test]
fn disabled_registry_reports_empty() {
    let dir = tempfile::tempdir().unwrap();
    let kv: FasterKv<u64> = FasterKv::builder(dir.path()).open().unwrap();
    let mut s = kv.start_session(1);
    for k in 0..64u64 {
        s.upsert(k, k);
    }
    assert!(kv.request_checkpoint(CheckpointVariant::FoldOver, false));
    while kv.committed_version() < 1 {
        s.refresh();
        std::thread::sleep(Duration::from_millis(1));
    }
    let report = kv.metrics_snapshot();
    assert!(!report.enabled);
    assert_eq!(report.ops.committed, 0);
    assert!(report.checkpoints.is_empty());
}
