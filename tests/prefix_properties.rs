//! Property-based crash-recovery tests: for randomized operation
//! schedules and commit points, the recovered state must equal a model
//! replay of exactly the committed prefix (all-before / none-after —
//! paper Definition 1).

use std::collections::HashMap;
use std::time::Duration;

use proptest::prelude::*;

use cpr::faster::{
    CheckpointVariant, FasterKv, FasterBuilder, HlogConfig, ReadResult, VersionGrain,
};
use cpr::memdb::{Access, DbValue, Durability, MemDb, TxnRequest};

/// One single-key operation in a generated schedule.
#[derive(Debug, Clone, Copy)]
enum Op {
    Upsert { key: u64, val: u64 },
    Merge { key: u64, delta: u64 },
    /// Deletes must cross the live/stable version-shift path like writes:
    /// a delete before the CPR point is durable, one after is discarded.
    Delete { key: u64 },
}

fn op_strategy(keys: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..keys, 0u64..1_000_000).prop_map(|(key, val)| Op::Upsert { key, val }),
        (0..keys, 1u64..100).prop_map(|(key, delta)| Op::Merge { key, delta }),
        (0..keys).prop_map(|key| Op::Delete { key }),
    ]
}

fn model_apply(model: &mut HashMap<u64, u64>, op: Op) {
    match op {
        Op::Upsert { key, val } => {
            model.insert(key, val);
        }
        Op::Merge { key, delta } => {
            *model.entry(key).or_insert(0) =
                model.get(&key).copied().unwrap_or(0).wrapping_add(delta);
        }
        Op::Delete { key } => {
            model.remove(&key);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case runs a full checkpoint + recovery cycle
        .. ProptestConfig::default()
    })]

    /// memdb (CPR): ops before the commit are recovered exactly; ops after
    /// are discarded.
    #[test]
    fn memdb_cpr_recovers_exact_prefix(
        pre in prop::collection::vec(op_strategy(16), 1..60),
        post in prop::collection::vec(op_strategy(16), 0..40),
    ) {
        let dir = tempfile::tempdir().unwrap();
        let opts = || MemDb::builder(Durability::Cpr)
            .dir(dir.path())
            .capacity(64)
            .refresh_every(4);
        let mut model: HashMap<u64, u64> = HashMap::new();

        {
            let db: MemDb<u64> = opts().open().unwrap();
            let mut s = db.session(1);
            let mut reads = Vec::new();
            let mut run = |s: &mut cpr::memdb::Session<u64>, op: Op, model: Option<&mut HashMap<u64,u64>>| {
                let (access, key, seed) = match op {
                    Op::Upsert { key, val } => (Access::Write, key, val),
                    Op::Merge { key, delta } => (Access::Merge, key, delta),
                    Op::Delete { key } => (Access::Delete, key, 0), // seed unused
                };
                let accesses = [(key, access)];
                let seeds = [seed];
                let req = TxnRequest { accesses: &accesses, write_seeds: &seeds };
                while s.execute(&req, &mut reads).is_err() {}
                if let Some(m) = model { model_apply(m, op); }
            };
            for &op in &pre {
                run(&mut s, op, Some(&mut model));
            }
            db.request_commit();
            while db.committed_version() < 1 {
                s.refresh();
                std::thread::sleep(Duration::from_micros(200));
            }
            prop_assert_eq!(s.durable_serial(), pre.len() as u64);
            for &op in &post {
                run(&mut s, op, None); // lost on crash
            }
        }

        let (db2, manifest) = opts().recover().unwrap();
        let manifest = manifest.unwrap();
        prop_assert_eq!(manifest.cpr_point(1), Some(pre.len() as u64));
        for key in 0..16u64 {
            prop_assert_eq!(
                db2.read(key),
                model.get(&key).copied(),
                "key {} after recovery", key
            );
        }
    }

    /// memdb (WAL): after an explicit sync, replay recovers everything.
    #[test]
    fn memdb_wal_replays_synced_history(
        ops in prop::collection::vec(op_strategy(8), 1..80),
    ) {
        let dir = tempfile::tempdir().unwrap();
        let opts = || MemDb::builder(Durability::Wal)
            .dir(dir.path())
            .capacity(64)
            .group_commit(Duration::from_millis(1));
        let mut model: HashMap<u64, u64> = HashMap::new();
        {
            let db: MemDb<u64> = opts().open().unwrap();
            let mut s = db.session(1);
            let mut reads = Vec::new();
            for &op in &ops {
                let (access, key, seed) = match op {
                    Op::Upsert { key, val } => (Access::Write, key, val),
                    Op::Merge { key, delta } => (Access::Merge, key, delta),
                    Op::Delete { key } => (Access::Delete, key, 0), // seed unused
                };
                let accesses = [(key, access)];
                let seeds = [seed];
                let req = TxnRequest { accesses: &accesses, write_seeds: &seeds };
                while s.execute(&req, &mut reads).is_err() {}
                model_apply(&mut model, op);
            }
            db.request_commit(); // WAL sync
        }
        let (db2, _) = opts().recover().unwrap();
        for key in 0..8u64 {
            prop_assert_eq!(db2.read(key), model.get(&key).copied(), "key {}", key);
        }
    }

    /// FASTER: randomized upsert/RMW schedules, commit, crash, recover —
    /// state equals the model prefix, and continue_session reports the
    /// exact prefix length.
    #[test]
    fn faster_recovers_exact_prefix(
        pre in prop::collection::vec(op_strategy(24), 1..60),
        post in prop::collection::vec(op_strategy(24), 0..40),
        snapshot in any::<bool>(),
        coarse in any::<bool>(),
    ) {
        let dir = tempfile::tempdir().unwrap();
        let opts = || FasterBuilder::u64_sums(dir.path())
            .hlog(HlogConfig {
                page_bits: 12,
                memory_pages: 16,
                mutable_pages: 8,
                value_size: 8,
            })
            .grain(if coarse { VersionGrain::Coarse } else { VersionGrain::Fine })
            .refresh_every(4);
        let variant = if snapshot {
            CheckpointVariant::Snapshot
        } else {
            CheckpointVariant::FoldOver
        };
        let mut model: HashMap<u64, u64> = HashMap::new();
        {
            let kv: FasterKv<u64> = opts().open().unwrap();
            let mut s = kv.start_session(9);
            for &op in &pre {
                match op {
                    Op::Upsert { key, val } => { s.upsert(key, val); }
                    Op::Merge { key, delta } => { s.rmw(key, delta); }
                    Op::Delete { key } => { s.delete(key); }
                }
                model_apply(&mut model, op);
            }
            while s.pending_len() > 0 { s.refresh(); }
            prop_assert!(kv.request_checkpoint(variant, false));
            while kv.committed_version() < 1 {
                s.refresh();
                std::thread::sleep(Duration::from_micros(200));
            }
            prop_assert_eq!(s.durable_serial(), pre.len() as u64);
            for &op in &post {
                match op {
                    Op::Upsert { key, val } => { s.upsert(key, val); }
                    Op::Merge { key, delta } => { s.rmw(key, delta); }
                    Op::Delete { key } => { s.delete(key); }
                }
            }
        }
        let (kv, _) = opts().recover().unwrap();
        let (mut s, point) = kv.continue_session(9);
        prop_assert_eq!(point, pre.len() as u64);
        for key in 0..24u64 {
            let got = match s.read(key) {
                ReadResult::Found(v) => Some(v),
                ReadResult::NotFound => None,
                ReadResult::Evicted => panic!("session evicted"),
                ReadResult::Pending => {
                    let mut out = Vec::new();
                    let mut res = None;
                    for _ in 0..5000 {
                        s.refresh();
                        s.drain_completions(&mut out);
                        if let Some(c) = out.iter().find(|c| c.key == key) {
                            res = Some(c.value);
                            break;
                        }
                        std::thread::sleep(Duration::from_micros(100));
                    }
                    res.expect("pending read completed")
                }
            };
            prop_assert_eq!(got, model.get(&key).copied(), "key {}", key);
        }
    }

    /// DbValue merge semantics used by the ledger example: sequences of
    /// merges commute with the model.
    #[test]
    fn merge_matches_wrapping_sum(deltas in prop::collection::vec(any::<u64>(), 0..50)) {
        let mut v = 0u64;
        for &d in &deltas {
            v = DbValue::merge(v, d);
        }
        let expect = deltas.iter().fold(0u64, |a, &b| a.wrapping_add(b));
        prop_assert_eq!(v, expect);
    }
}
