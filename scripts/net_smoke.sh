#!/usr/bin/env bash
# Server-crash smoke test for the network sessions subsystem (DESIGN.md
# "Network sessions"). Builds the real server and smoke-driver binaries,
# then for each engine x checkpoint-variant combination:
#
#   start cpr-net-server -> drive 200 ops (first 100 made durable by a
#   checkpoint) -> request a second checkpoint and SIGKILL the server the
#   moment it starts -> restart on the same directory -> verify the
#   recovered state is exactly the committed prefix and that a
#   reconnecting client replays exactly the uncommitted suffix.
#
# Exits non-zero if any scenario violates the CPR resume contract.
set -euo pipefail
cd "$(dirname "$0")/.."

PROFILE="${PROFILE:-release}"
cargo build --quiet --"$PROFILE" -p cpr-net --bins
BIN="target/$PROFILE"

run() {
    local engine="$1" variant="$2"
    local dir
    dir="$(mktemp -d)"
    trap 'rm -rf "$dir"' RETURN
    echo "[net-smoke] engine=$engine variant=$variant dir=$dir"
    "$BIN/cpr-net-smoke" \
        --server "$BIN/cpr-net-server" \
        --dir "$dir" --engine "$engine" --variant "$variant"
}

run faster fold-over
run faster snapshot
run memdb fold-over
echo "[net-smoke] all scenarios passed"
