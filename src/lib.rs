//! **cpr** — a Rust reproduction of *Concurrent Prefix Recovery:
//! Performing CPR on a Database* (Prasaad, Chandramouli, Kossmann,
//! SIGMOD 2019).
//!
//! CPR is a group-commit durability model without a write-ahead log: the
//! system periodically tells each client session `i` a commit point `t_i`
//! in its local operation timeline such that **all** operations before
//! `t_i` are durable and **none** after. Commits are realized by
//! asynchronous incremental checkpoints coordinated lazily through an
//! epoch-protection framework, so the normal-operation hot path carries
//! no durability overhead at all.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`epoch`] — epoch protection with conditional trigger actions;
//! * [`core`] — phases, system state, session registry, manifests;
//! * [`storage`] — simulated async devices + checkpoint store;
//! * [`workload`] — YCSB / TPC-C-lite generators;
//! * [`memdb`] — the in-memory transactional database (CPR vs the CALC
//!   and WAL baselines);
//! * [`faster`] — the FASTER key-value store with CPR checkpoints and
//!   recovery;
//! * [`metrics`] — the observability layer: op-latency histograms,
//!   per-checkpoint phase timelines, epoch and storage instrumentation.
//!
//! Runnable examples live in `examples/`; the benchmark harness that
//! regenerates every figure of the paper is the `cpr-bench` binary.

pub use cpr_core as core;
pub use cpr_epoch as epoch;
pub use cpr_faster as faster;
pub use cpr_memdb as memdb;
pub use cpr_metrics as metrics;
pub use cpr_storage as storage;
pub use cpr_workload as workload;
