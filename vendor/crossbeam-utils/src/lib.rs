//! Offline stand-in for `crossbeam-utils`, providing the subset this
//! workspace uses: [`CachePadded`]. The container building this repo has
//! no network access to crates.io, so the external crates are replaced by
//! API-compatible local implementations (see `vendor/README.md`).

use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to the length of a cache line, preventing
/// false sharing between adjacent hot atomics.
///
/// 128-byte alignment matches crossbeam's choice on x86_64 (two 64-byte
/// lines, covering the spatial prefetcher pair).
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_cache_line_aligned() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        let p = CachePadded::new(7u64);
        assert_eq!(*p, 7);
        assert_eq!(p.into_inner(), 7);
    }
}
