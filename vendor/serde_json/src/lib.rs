//! Offline stand-in for `serde_json`: text encoding for the vendored
//! `serde` [`Value`] model. The parser is a byte-level recursive-descent
//! JSON reader that reports the offset of the first offending byte — a
//! torn (truncated) manifest must come back as `Err`, never a panic,
//! because recovery treats unparsable manifests as uncommitted.

use serde::{DeError, Deserialize, Serialize, Value};

/// Parse or deserialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_str(s)?;
    Ok(T::from_value(&value)?)
}

/// Parse raw JSON text into a [`Value`] without binding it to a type.
pub fn parse_value_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

// ---------------------------------------------------------------- printer

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                out.push_str(&f.to_string());
            } else {
                // JSON has no Inf/NaN; real serde_json errors, we degrade.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------- parser

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn err(&self, what: String) -> Error {
        Error::new(format!("{} at offset {}", what, self.pos))
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep".to_string()));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.err(format!("unexpected byte `{}`", b as char))),
            None => Err(self.err("unexpected end of input".to_string())),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("invalid literal (expected `{text}`)")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`".to_string())),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`".to_string())),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string".to_string())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape".to_string()))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape".to_string()))?;
                            // Surrogate pairs unsupported; replace like lossy decode.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape".to_string())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 char (input is &str, so boundaries
                    // are valid; find the char starting here).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid utf-8".to_string()))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number".to_string()))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("invalid number".to_string()));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err(format!("integer out of range `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| self.err(format!("integer out of range `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip_pretty() {
        let v = Value::Object(vec![
            ("token".to_string(), Value::UInt(3)),
            ("kind".to_string(), Value::Str("FoldOver".to_string())),
            ("log_begin".to_string(), Value::Null),
            (
                "sessions".to_string(),
                Value::Array(vec![Value::Object(vec![
                    ("guid".to_string(), Value::UInt(1)),
                    ("cpr_point".to_string(), Value::UInt(100)),
                ])]),
            ),
        ]);
        let mut text = String::new();
        write_value(&mut text, &v, Some(2), 0);
        assert_eq!(parse_value_str(&text).unwrap(), v);
    }

    #[test]
    fn big_u64_exact() {
        let n = (37u64 << 32) | 4096; // packed page<<32|offset address
        let v = parse_value_str(&n.to_string()).unwrap();
        assert_eq!(v, Value::UInt(n));
    }

    #[test]
    fn truncated_json_is_error_not_panic() {
        for text in [
            "",
            "{",
            "{\"token\": 3,",
            "{\"token\": 3, \"kind\": \"Fold",
            "[1, 2,",
            "{not json",
            "nul",
        ] {
            assert!(parse_value_str(text).is_err(), "should reject {text:?}");
        }
    }

    #[test]
    fn escapes_roundtrip() {
        let mut out = String::new();
        write_string(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(
            parse_value_str(&out).unwrap(),
            Value::Str("a\"b\\c\nd\te\u{1}".to_string())
        );
    }

    #[test]
    fn negative_and_float_numbers() {
        assert_eq!(parse_value_str("-12").unwrap(), Value::Int(-12));
        assert_eq!(parse_value_str("1.5").unwrap(), Value::Float(1.5));
        assert_eq!(parse_value_str("2e3").unwrap(), Value::Float(2000.0));
    }
}
