//! Offline stand-in for `rand`, providing the subset this workspace uses:
//! `RngCore`, `SeedableRng::seed_from_u64`, the `Rng` extension trait
//! (`gen`, `gen_range`, `gen_bool`), and `rngs::SmallRng`.
//!
//! `SmallRng` is xoshiro256** seeded through SplitMix64 — the same
//! construction the real crate uses on 64-bit targets, chosen here for
//! identical statistical character and cheap replayability from one u64.

/// Low-level uniform bit source.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Seeding support; only the `seed_from_u64` entry point is used here.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

mod distributions {
    use super::RngCore;

    /// Types drawable uniformly from their full domain (`rng.gen()`).
    pub trait Standard: Sized {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl Standard for u64 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }

    impl Standard for u32 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32()
        }
    }

    impl Standard for usize {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() as usize
        }
    }

    impl Standard for bool {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Standard for f64 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            // 53 uniform bits into [0, 1), the standard conversion.
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Range argument accepted by `rng.gen_range`.
    pub trait SampleRange<T> {
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! int_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for std::ops::Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                    // Debiased multiply-shift (Lemire): reject the short slice
                    // below `threshold` so every value is equally likely.
                    let threshold = span.wrapping_neg() % span;
                    loop {
                        let m = (rng.next_u64() as u128) * (span as u128);
                        if (m as u64) >= threshold {
                            return self.start.wrapping_add(((m >> 64) as u64) as $t);
                        }
                    }
                }
            }

            impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    if start == <$t>::MIN && end == <$t>::MAX {
                        return rng.next_u64() as $t;
                    }
                    (start..end.wrapping_add(1)).sample_from(rng)
                }
            }
        )*};
    }

    int_range!(u64, u32, usize, u8, i64, i32);
}

pub use distributions::{SampleRange, Standard};

/// Convenience extension over any [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — small, fast, and good enough for test schedules.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            SmallRng {
                s: [
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = r.gen_range(0..3);
            assert!(w < 3);
            let x: u64 = r.gen_range(5..=5);
            assert_eq!(x, 5);
        }
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} not ~0.5");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
